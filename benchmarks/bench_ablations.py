"""Ablations of Presto's design choices (DESIGN.md S5).

* adaptive vs static GRO hold timeout (S3.2: a fixed 10 ms timeout
  "hinders TCP when the gap is due to loss");
* flowcell size sweep (64 KB is tied to max TSO; smaller cells spray
  finer but reorder more, larger cells collide like flowlets);
* round-robin vs random label iteration (S2.1);
* flowcell-based loss/reorder discrimination on vs off.
"""

from benchlib import save_result

from repro.experiments.common import run_elephant_workload
from repro.experiments.harness import TestbedConfig, format_table
from repro.metrics.stats import mean, percentile
from repro.units import KB, msec
from repro.workloads.synthetic import stride_pairs


def _stride_run(cfg, mice=True):
    return run_elephant_workload(
        cfg,
        stride_pairs(16, 8),
        warm_ns=msec(15),
        measure_ns=msec(25),
        probe_pairs=[(0, 8)],
        mice_pairs=[(1, 9), (5, 13)] if mice else [],
        mice_interval_ns=msec(4),
    )


def test_ablation_adaptive_timeout(benchmark):
    """Static 10 ms hold timeout vs the paper's alpha*EWMA."""

    def run():
        out = {}
        # oversubscribed fabric => real loss at flowcell boundaries
        base = dict(n_spines=2, n_leaves=2, hosts_per_leaf=4, seed=1)
        adaptive = TestbedConfig(scheme="presto", **base)
        static = TestbedConfig(
            scheme="presto", gro_adaptive=False,
            gro_initial_ewma_ns=msec(5), gro_alpha=2.0,  # 10 ms static
            **base,
        )
        pairs = [(i, 4 + i) for i in range(4)]
        for name, cfg in (("adaptive", adaptive), ("static10ms", static)):
            out[name] = run_elephant_workload(
                cfg, pairs, warm_ns=msec(15), measure_ns=msec(25),
                mice_pairs=[(0, 4), (2, 6)], mice_interval_ns=msec(4),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, res in results.items():
        tail = (
            percentile(res.mice_fcts_ns, 99) / 1e6 if res.mice_fcts_ns else float("nan")
        )
        rows.append([name, f"{res.mean_rate_bps / 1e9:.2f}",
                     f"{tail:.2f}", len(res.mice_fcts_ns)])
    save_result(
        "ablation_timeout",
        format_table(["timeout", "eleph Gbps", "mice p99 ms", "n mice"], rows),
    )
    # A 10 ms static hold must not beat the adaptive timeout on the mice
    # tail (it delays loss recovery at flowcell boundaries).
    adaptive = results["adaptive"]
    static = results["static10ms"]
    if adaptive.mice_fcts_ns and static.mice_fcts_ns:
        assert percentile(adaptive.mice_fcts_ns, 99) <= 1.2 * percentile(
            static.mice_fcts_ns, 99
        )


def test_ablation_flowcell_size(benchmark):
    """16 KB / 64 KB / 256 KB flowcells on the stride workload."""

    def run():
        out = {}
        for size in (16 * KB, 64 * KB, 256 * KB):
            cfg = TestbedConfig(scheme="presto", flowcell_bytes=size, seed=1)
            out[size] = _stride_run(cfg, mice=False)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{size // 1024}KB", f"{res.mean_rate_bps / 1e9:.2f}",
         f"{res.fairness:.3f}", f"{res.loss_rate:.4%}"]
        for size, res in sorted(results.items())
    ]
    save_result(
        "ablation_cellsize",
        format_table(["flowcell", "eleph Gbps", "jain", "loss"], rows),
    )
    # 64 KB (the TSO-aligned choice) performs at least as well as the
    # alternatives on this workload.
    best = max(res.mean_rate_bps for res in results.values())
    assert results[64 * KB].mean_rate_bps > 0.9 * best


def test_ablation_rr_vs_random(benchmark):
    """Round-robin vs randomized label selection per flowcell."""

    def run():
        out = {}
        for mode in ("rr", "random"):
            cfg = TestbedConfig(scheme="presto", presto_mode=mode, seed=1)
            out[mode] = _stride_run(cfg, mice=False)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, res in results.items():
        p99 = percentile(res.rtts_ns, 99) / 1e6 if res.rtts_ns else float("nan")
        rows.append([mode, f"{res.mean_rate_bps / 1e9:.2f}",
                     f"{res.fairness:.3f}", f"{p99:.2f}"])
    save_result(
        "ablation_rr_vs_random",
        format_table(["mode", "eleph Gbps", "jain", "rtt p99 ms"], rows),
    )
    # RR's deterministic evenness should not lose to randomized placement.
    assert results["rr"].mean_rate_bps > 0.95 * results["random"].mean_rate_bps


def test_ablation_loss_detection(benchmark):
    """Flowcell-based loss/reorder discrimination on vs off.

    With discrimination off, intra-flowcell sequence gaps (= real loss)
    are held like reordering, delaying SACK feedback to the sender."""

    def run():
        out = {}
        base = dict(n_spines=2, n_leaves=2, hosts_per_leaf=4, seed=1)
        for name, flag in (("on", True), ("off", False)):
            cfg = TestbedConfig(scheme="presto", gro_loss_detection=flag, **base)
            pairs = [(i, 4 + i) for i in range(4)]
            out[name] = run_elephant_workload(
                cfg, pairs, warm_ns=msec(15), measure_ns=msec(25),
                mice_pairs=[(0, 4)], mice_interval_ns=msec(4),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, res in results.items():
        tail = (
            percentile(res.mice_fcts_ns, 99) / 1e6 if res.mice_fcts_ns else float("nan")
        )
        rows.append([name, f"{res.mean_rate_bps / 1e9:.2f}", f"{tail:.2f}"])
    save_result(
        "ablation_loss_detection",
        format_table(["loss detection", "eleph Gbps", "mice p99 ms"], rows),
    )
    # Turning discrimination off must not improve elephants materially.
    assert results["on"].mean_rate_bps > 0.9 * results["off"].mean_rate_bps
