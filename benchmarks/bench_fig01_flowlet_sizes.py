"""Fig 1: stacked histogram of flowlet sizes vs competing flow count.

Paper shape: with up to ~3 competing flows, more than half of a large
transfer rides in a single flowlet (500 us inactivity timer), so
flowlet switching degenerates toward per-flow placement.
"""

from benchlib import save_result

from repro.experiments.flowlet_sizes import run_figure1
from repro.experiments.harness import format_table
from repro.units import MB, msec, usec


def test_fig1_flowlet_sizes(benchmark):
    results = benchmark.pedantic(
        run_figure1,
        kwargs=dict(
            max_competing=8,
            transfer_bytes=16 * MB,
            gap_ns=usec(500),
            duration_ns=msec(60),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for n, res in sorted(results.items()):
        top = [f"{s / 1024:.0f}K" for s in res.top(10)]
        rows.append([n, f"{res.head_fraction():.2f}", " ".join(top)])
    save_result(
        "fig01_flowlet_sizes",
        format_table(["competing", "head_frac", "top-10 flowlet sizes"], rows),
    )
    # Paper: up to 3 competing flows, >50% of the transfer in one flowlet.
    for n in (0, 1, 2, 3):
        assert results[n].head_fraction() > 0.5, (
            f"{n} competitors: head flowlet only "
            f"{results[n].head_fraction():.0%} of transfer"
        )
    # And flowlet sizes are wildly non-uniform: top flowlet dwarfs the 10th.
    sizes = results[2].top(10)
    assert sizes[0] > 10 * sizes[-1] or len(sizes) < 10
