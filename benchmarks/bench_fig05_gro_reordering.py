"""Fig 5a/5b + S5 text: Presto GRO vs official GRO under flowcell
spraying over two paths.

Paper shape: Presto GRO completely masks reordering (OoO segment count
CDF at 0) and pushes large segments at ~9.3 Gbps; official GRO leaks
heavy reordering, pushes small segments, and throughput collapses to
~4.6 Gbps (half) with worse CPU cost per byte.
"""

from benchlib import save_result

from repro.experiments.gro_micro import run_figure5
from repro.experiments.harness import format_table
from repro.metrics.stats import mean, percentile
from repro.units import msec


def test_fig5_gro_reordering(benchmark):
    results = benchmark.pedantic(
        run_figure5, kwargs=dict(duration_ns=msec(40)), rounds=1, iterations=1
    )
    rows = []
    for gro, res in results.items():
        rows.append([
            gro,
            f"{res.throughput_bps / 1e9:.2f} Gbps",
            f"{res.cpu_utilization:.0%}",
            f"{res.frac_zero_ooo:.2f}",
            f"{mean(res.segment_sizes) / 1024:.1f}K",
            f"{percentile(res.segment_sizes, 50) / 1024:.1f}K",
            res.fast_retransmits,
        ])
    save_result(
        "fig05_gro_reordering",
        format_table(
            ["gro", "tput", "cpu", "frac OoO=0", "avg seg", "p50 seg", "spurious FR"],
            rows,
        ),
    )
    presto, official = results["presto"], results["official"]
    # Fig 5a: Presto GRO masks reordering completely; official does not.
    assert presto.frac_zero_ooo >= 0.99
    assert official.frac_zero_ooo < 0.9
    # Fig 5b: Presto pushes much larger segments.
    assert mean(presto.segment_sizes) > 1.5 * mean(official.segment_sizes)
    # S5 text: ~2x throughput gap (9.3 vs 4.6 Gbps).
    assert presto.throughput_bps > 1.6 * official.throughput_bps
    # Reordering causes spurious fast retransmits only under official GRO.
    assert presto.fast_retransmits == 0
    assert official.fast_retransmits > 0
