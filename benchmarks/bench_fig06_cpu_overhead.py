"""Fig 6: receiver CPU overhead of Presto GRO.

Paper shape: under the stride workload, Presto GRO (with reordering to
mask) costs only ~6% more receive-core utilization than official GRO
running with no reordering at the same 9.3 Gbps.
"""

from benchlib import save_result

from repro.experiments.gro_micro import run_figure6
from repro.experiments.harness import format_table
from repro.units import msec


def test_fig6_cpu_overhead(benchmark):
    result = benchmark.pedantic(
        run_figure6, kwargs=dict(duration_ns=msec(40)), rounds=1, iterations=1
    )
    rows = [
        [label, f"{util:.1%}"] for label, util in sorted(result.mean_util.items())
    ]
    rows.append(["overhead", f"{result.overhead:+.1%}"])
    series_txt = "\n".join(
        f"{label}: " + " ".join(f"{u:.0%}" for _, u in pts[:20])
        for label, pts in result.series.items()
    )
    save_result(
        "fig06_cpu_overhead",
        format_table(["gro", "mean receive-core util"], rows) + "\n\n"
        "utilization time series (2 ms windows):\n" + series_txt,
    )
    # Paper: ~6% overhead; accept anything modest and nonnegative-ish.
    assert -0.02 <= result.overhead <= 0.15, f"overhead {result.overhead:.1%}"
    # Both runs are actually doing 9+ Gbps worth of work.
    assert result.mean_util["official"] > 0.3
