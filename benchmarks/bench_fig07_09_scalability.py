"""Figs 7-9: scalability benchmark (throughput / RTT / loss / fairness
vs path count).

Paper shape: Presto tracks Optimal (the non-blocking switch) within a
few percent at every path count with ~zero loss and ~perfect fairness;
ECMP loses throughput and fairness to hash collisions; MPTCP sits in
between with the highest loss rates.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.scalability import run_scalability
from repro.metrics.stats import mean, percentile
from repro.units import msec


def test_fig7_8_9_scalability(benchmark):
    grid = benchmark.pedantic(
        run_scalability,
        kwargs=dict(
            path_counts=(2, 4, 8),
            seeds=(1, 2),
            warm_ns=msec(15),
            measure_ns=msec(25),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme, points in grid.items():
        for p in points:
            rtt50 = percentile(p.rtts_ns, 50) / 1e6 if p.rtts_ns else float("nan")
            rtt99 = percentile(p.rtts_ns, 99) / 1e6 if p.rtts_ns else float("nan")
            rows.append([
                scheme, p.n_paths,
                f"{p.mean_tput_bps / 1e9:.2f}",
                f"{p.loss_rate:.4%}",
                f"{p.fairness:.3f}",
                f"{rtt50:.2f}", f"{rtt99:.2f}",
            ])
    save_result(
        "fig07_09_scalability",
        format_table(
            ["scheme", "paths", "tput Gbps", "loss", "jain", "rtt p50 ms", "rtt p99 ms"],
            rows,
        ),
        data=grid,
    )

    def curve(scheme):
        return {p.n_paths: p for p in grid[scheme]}

    presto, optimal, ecmp = curve("presto"), curve("optimal"), curve("ecmp")
    for n in (2, 4, 8):
        # Fig 7: Presto within a few percent of Optimal; ECMP clearly below.
        assert presto[n].mean_tput_bps > 0.9 * optimal[n].mean_tput_bps
        assert ecmp[n].mean_tput_bps < 0.95 * presto[n].mean_tput_bps
        # Fig 9b: Presto/Optimal near-perfect fairness, ECMP worse.
        assert presto[n].fairness > 0.97
        assert optimal[n].fairness > 0.99
        assert ecmp[n].fairness < presto[n].fairness
        # Fig 9a: Presto's loss is tiny.
        assert presto[n].loss_rate < 0.005
