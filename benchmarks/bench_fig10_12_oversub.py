"""Figs 10-12: oversubscription benchmark.

Paper shape: all schemes track Optimal as the fabric saturates (the
bottleneck moves to the shared uplinks); ECMP is the weakest under
moderate congestion; Presto matches Optimal's loss (~0) and fairness
(~1); MPTCP's loss is the highest but its fairness is good.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.oversub import run_oversub
from repro.metrics.stats import percentile
from repro.units import msec


def test_fig10_12_oversub(benchmark):
    grid = benchmark.pedantic(
        run_oversub,
        kwargs=dict(
            pair_counts=(2, 4, 8),
            seeds=(1, 2),
            warm_ns=msec(15),
            measure_ns=msec(25),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme, points in grid.items():
        for p in points:
            rtt99 = percentile(p.rtts_ns, 99) / 1e6 if p.rtts_ns else float("nan")
            rows.append([
                scheme, f"{p.oversubscription:.1f}x",
                f"{p.mean_tput_bps / 1e9:.2f}",
                f"{p.loss_rate:.4%}",
                f"{p.fairness:.3f}",
                f"{rtt99:.2f}",
            ])
    save_result(
        "fig10_12_oversub",
        format_table(
            ["scheme", "oversub", "tput Gbps", "loss", "jain", "rtt p99 ms"], rows
        ),
        data=grid,
    )
    by = {s: {p.n_pairs: p for p in pts} for s, pts in grid.items()}
    # 1x oversubscription: non-blocking, Presto ~= Optimal.
    assert by["presto"][2].mean_tput_bps > 0.9 * by["optimal"][2].mean_tput_bps
    # 4x: Presto converges near the physical fair share (2 x 10G / 8
    # pairs = 2.5 Gbps; the paper's "Optimal" keeps dedicated links and
    # stays flat, so fair share is computed from the fabric).
    fair = 2 * 10e9 / 8
    assert by["presto"][8].mean_tput_bps > 0.7 * fair
    # ECMP is the weakest under *moderate* congestion (paper S5).
    assert (
        by["ecmp"][4].mean_tput_bps
        <= min(by[s][4].mean_tput_bps for s in ("presto", "mptcp", "optimal"))
        * 1.05
    )
    # Fairness: Presto ~1 at moderate load, ECMP behind.
    assert by["presto"][4].fairness > 0.9
    assert by["ecmp"][4].fairness < 0.98
