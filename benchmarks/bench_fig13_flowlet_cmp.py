"""Fig 13: Presto vs flowlet switching (stride workload).

Paper shape: throughputs 9.3 (Presto) > 7.6 (flowlet 500 us) > 4.3
(flowlet 100 us) Gbps; Presto's RTT tail is 2-3.6x lower than either
flowlet configuration (100 us reorders heavily, 500 us collides on
giant head flowlets).
"""

from benchlib import save_result

from repro.experiments.flowlet_cmp import run_flowlet_cmp
from repro.experiments.harness import format_table
from repro.metrics.stats import percentile
from repro.units import msec


def test_fig13_flowlet_cmp(benchmark):
    results = benchmark.pedantic(
        run_flowlet_cmp,
        kwargs=dict(seeds=(1, 2), warm_ns=msec(15), measure_ns=msec(25)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme, res in results.items():
        p50 = percentile(res.rtts_ns, 50) / 1e6 if res.rtts_ns else float("nan")
        p999 = percentile(res.rtts_ns, 99.9) / 1e6 if res.rtts_ns else float("nan")
        rows.append([
            scheme,
            f"{res.mean_tput_bps / 1e9:.2f}",
            f"{p50:.2f}",
            f"{p999:.2f}",
        ])
    save_result(
        "fig13_flowlet_cmp",
        format_table(["scheme", "tput Gbps", "rtt p50 ms", "rtt p99.9 ms"], rows),
    )
    presto = results["presto"]
    f100 = results["flowlet100us"]
    f500 = results["flowlet500us"]
    # Fig 13 ordering: presto > flowlet500 > flowlet100 on throughput.
    assert presto.mean_tput_bps > f500.mean_tput_bps > f100.mean_tput_bps
    # The 100us timer costs dearly (paper: 4.3 vs 9.3 Gbps).
    assert f100.mean_tput_bps < 0.75 * presto.mean_tput_bps
