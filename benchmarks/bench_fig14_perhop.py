"""Fig 14: Presto + shadow MACs vs Presto + per-hop ECMP on flowcells.

Paper shape: 9.3 vs 8.9 Gbps — per-hop random hashing lets multiple
flows transiently pile flowcells onto one link, raising buffer
occupancy and delay; deterministic end-to-end round robin avoids it.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.perhop_cmp import run_perhop_cmp
from repro.metrics.stats import percentile
from repro.units import msec


def test_fig14_perhop(benchmark):
    results = benchmark.pedantic(
        run_perhop_cmp,
        kwargs=dict(seeds=(1, 2), warm_ns=msec(15), measure_ns=msec(25)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme, res in results.items():
        p50 = percentile(res.rtts_ns, 50) / 1e6 if res.rtts_ns else float("nan")
        p99 = percentile(res.rtts_ns, 99) / 1e6 if res.rtts_ns else float("nan")
        rows.append([
            scheme, f"{res.mean_tput_bps / 1e9:.2f}", f"{p50:.2f}", f"{p99:.2f}"
        ])
    save_result(
        "fig14_perhop",
        format_table(["scheme", "tput Gbps", "rtt p50 ms", "rtt p99 ms"], rows),
    )
    shadow = results["presto"]
    perhop = results["presto_ecmp"]
    # Paper: shadow-MAC round robin beats per-hop hashing (9.3 vs 8.9
    # Gbps) because randomized placement piles flowcells onto one link
    # transiently.  The simulator amplifies the gap: the transient skew
    # also outlives the GRO hold timeout more often, costing spurious
    # fast retransmits (see EXPERIMENTS.md).  Direction must hold.
    assert shadow.mean_tput_bps > 1.05 * perhop.mean_tput_bps
