"""Figs 15-16: synthetic workload suite (elephant throughput + mice FCT).

Paper shape (Fig 15): Presto within 1-4% of Optimal everywhere; +38-72%
over ECMP on the non-shuffle workloads; shuffle is receiver-bound so all
schemes tie.  (Fig 16): Presto's mice FCT tail tracks Optimal, ECMP's
99.9th percentile is many times worse on stride/bijection.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.synthetic import run_figure15_16
from repro.metrics.stats import percentile
from repro.units import msec


def test_fig15_16_synthetic(benchmark):
    grid = benchmark.pedantic(
        run_figure15_16,
        kwargs=dict(
            workloads=("shuffle", "random", "stride", "bijection"),
            seeds=(1, 2),
            warm_ns=msec(15),
            measure_ns=msec(25),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for (scheme, workload), res in grid.items():
        pct = res.mice_percentiles_ms()
        rows.append([
            workload, scheme,
            f"{res.mean_elephant_tput_bps / 1e9:.2f}",
            f"{pct.get('p50', float('nan')):.2f}",
            f"{pct.get('p99.9', float('nan')):.2f}",
            len(res.mice_fcts_ns),
        ])
    save_result(
        "fig15_16_synthetic",
        format_table(
            ["workload", "scheme", "eleph Gbps", "mice p50 ms", "mice p99.9 ms", "n mice"],
            rows,
        ),
        data=grid,
    )
    for workload in ("random", "stride", "bijection"):
        presto = grid[("presto", workload)]
        optimal = grid[("optimal", workload)]
        ecmp = grid[("ecmp", workload)]
        # Fig 15: Presto tracks Optimal (paper: within 1-4%; at simulator
        # scale with mice cross-traffic the gap widens to 10-20% — see
        # EXPERIMENTS.md) and clearly beats ECMP on non-shuffle loads.
        assert presto.mean_elephant_tput_bps > 0.78 * optimal.mean_elephant_tput_bps
        assert presto.mean_elephant_tput_bps > 1.15 * ecmp.mean_elephant_tput_bps
    # Shuffle: receiver-bound, schemes comparable (within 25%).
    sh_p = grid[("presto", "shuffle")].mean_elephant_tput_bps
    sh_e = grid[("ecmp", "shuffle")].mean_elephant_tput_bps
    assert abs(sh_p - sh_e) / max(sh_p, sh_e) < 0.4
    # Fig 16: ECMP's stride mice tail far worse than Presto's.
    p_tail = percentile(grid[("presto", "stride")].mice_fcts_ns, 99)
    e_tail = percentile(grid[("ecmp", "stride")].mice_fcts_ns, 99)
    assert e_tail > 1.5 * p_tail
