"""Figs 17-18: link failure (S1-L1 dies).

Paper shape: symmetry runs at line rate; hardware fast failover keeps
traffic flowing (degraded and imbalanced); the controller's weighted
stage recovers most of the loss.  RTTs grow once the network is no
longer non-blocking (Fig 18).
"""

from benchlib import save_result

from repro.experiments.failure import run_figure17, run_figure18
from repro.experiments.harness import format_table
from repro.metrics.stats import percentile
from repro.units import msec


def test_fig17_failure_throughput(benchmark):
    grid = benchmark.pedantic(
        run_figure17,
        kwargs=dict(seeds=(1, 2), warm_ns=msec(15), measure_ns=msec(25)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [stage, workload, f"{res.mean_tput_bps / 1e9:.2f}"]
        for (stage, workload), res in grid.items()
    ]
    save_result(
        "fig17_failure", format_table(["stage", "workload", "tput Gbps"], rows)
    )
    for workload in ("L1->L4", "L4->L1", "stride", "bijection"):
        sym = grid[("symmetry", workload)].mean_tput_bps
        fo = grid[("failover", workload)].mean_tput_bps
        wt = grid[("weighted", workload)].mean_tput_bps
        # symmetry is (near) line rate
        assert sym > 7e9, f"{workload} symmetry {sym / 1e9:.1f}G"
        # failover keeps the network connected (nonzero, degraded)
        assert fo > 0.5e9, f"{workload} failover {fo / 1e9:.1f}G"
        assert fo < sym
        # the weighted stage recovers over raw failover
        assert wt > 0.8 * fo, f"{workload} weighted {wt / 1e9:.1f}G < failover"


def test_fig18_failure_rtt(benchmark):
    stages = benchmark.pedantic(
        run_figure18,
        kwargs=dict(seeds=(1,), warm_ns=msec(15), measure_ns=msec(25)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for stage, res in stages.items():
        if res.rtts_ns:
            rows.append([
                stage,
                f"{percentile(res.rtts_ns, 50) / 1e6:.3f}",
                f"{percentile(res.rtts_ns, 99) / 1e6:.3f}",
                len(res.rtts_ns),
            ])
    save_result(
        "fig18_failure_rtt",
        format_table(["stage", "rtt p50 ms", "rtt p99 ms", "samples"], rows),
    )
    # Fig 18 caveat: in the paper the degraded stages' RTT CDFs sit above
    # symmetry's *at matched utilization*; our failover/weighted stages
    # run at lower throughput, so their medians can be lower while the
    # tail-to-median spread widens.  Assert the robust part: every stage
    # yields samples, and the degraded stages' relative tail (p99/p50)
    # is at least symmetry's.
    sym = stages["symmetry"]
    assert sym.rtts_ns, "no probe samples in symmetry stage"
    sym_spread = percentile(sym.rtts_ns, 99) / percentile(sym.rtts_ns, 50)
    for stage in ("failover", "weighted"):
        rtts = stages[stage].rtts_ns
        assert rtts, f"no probe samples in {stage} stage"
        spread = percentile(rtts, 99) / percentile(rtts, 50)
        assert spread >= 0.8 * sym_spread
