"""Table 1: trace-driven workload — mice FCT percentiles vs ECMP.

Paper shape: Presto ~= ECMP at the median but cuts p99 by ~56% and
p99.9 by ~60%; Optimal cuts slightly more; Presto's elephant throughput
tracks Optimal (within 2%) and beats ECMP by >10%.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.trace import run_table1, table1_normalized
from repro.units import msec


def test_table1_trace(benchmark):
    results = benchmark.pedantic(
        run_table1,
        kwargs=dict(seeds=(1, 2), duration_ns=msec(100)),
        rounds=1,
        iterations=1,
    )
    normalized = table1_normalized(results)
    rows = []
    for scheme, res in results.items():
        pct = res.mice_percentiles_ms()
        norm = normalized.get(scheme, {})
        rows.append([
            scheme,
            len(res.mice_fcts_ns),
            f"{pct.get('p50', float('nan')):.2f}",
            f"{pct.get('p99', float('nan')):.2f}",
            f"{pct.get('p99.9', float('nan')):.2f}",
            f"{norm.get('p99', 0):+.0%}" if norm else "baseline",
            f"{norm.get('p99.9', 0):+.0%}" if norm else "baseline",
            f"{res.mean_elephant_tput_bps / 1e9:.2f}",
        ])
    save_result(
        "table1_trace",
        format_table(
            ["scheme", "mice", "p50 ms", "p99 ms", "p99.9 ms",
             "p99 vs ecmp", "p99.9 vs ecmp", "eleph Gbps"],
            rows,
        ),
    )
    # Paper shape: Presto's mice FCT tail clearly below ECMP's.  (The
    # simulator shows -17..-30% at p90-p99.9 vs the paper's -32..-60%;
    # receiver-port sharing, identical across schemes, makes up a larger
    # share of our tail — see EXPERIMENTS.md.)
    assert normalized["presto"]["p90"] < -0.1
    assert normalized["presto"]["p99"] < -0.1
    # Optimal also clearly better than ECMP at the tail.
    assert normalized["optimal"]["p99"] < 0.0
    # Elephants: Presto above ECMP.
    assert (
        results["presto"].mean_elephant_tput_bps
        > results["ecmp"].mean_elephant_tput_bps
    )
