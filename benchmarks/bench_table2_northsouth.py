"""Table 2: east-west mice FCT with north-south cross traffic.

Paper shape: ECMP < MPTCP < Presto < Optimal on elephant throughput
(5.7/7.4/8.2/8.9 Gbps); Presto cuts the mice FCT tail by ~86-87% vs
ECMP; MPTCP's tail is dominated by RTO timeouts.
"""

from benchlib import save_result

from repro.experiments.harness import format_table
from repro.experiments.northsouth import run_table2, table2_normalized
from repro.units import msec


def test_table2_northsouth(benchmark):
    results = benchmark.pedantic(
        run_table2,
        kwargs=dict(seeds=(1, 2), warm_ns=msec(15), measure_ns=msec(25)),
        rounds=1,
        iterations=1,
    )
    normalized = table2_normalized(results)
    rows = []
    for scheme, res in results.items():
        pct = res.mice_percentiles_ms()
        norm = normalized.get(scheme, {})
        rows.append([
            scheme,
            f"{res.mean_elephant_tput_bps / 1e9:.2f}",
            f"{pct.get('p50', float('nan')):.2f}",
            f"{pct.get('p99.9', float('nan')):.2f}",
            f"{norm.get('p99.9', 0):+.0%}" if norm else "baseline",
            f"{res.mice_timeout_fraction:.1%}",
        ])
    save_result(
        "table2_northsouth",
        format_table(
            ["scheme", "eleph Gbps", "mice p50 ms", "mice p99.9 ms",
             "p99.9 vs ecmp", "RTO-hit mice"],
            rows,
        ),
    )
    # Throughput ordering (paper: 5.7 / 7.4 / 8.2 / 8.9).
    assert (
        results["presto"].mean_elephant_tput_bps
        > results["ecmp"].mean_elephant_tput_bps
    )
    assert (
        results["optimal"].mean_elephant_tput_bps
        >= 0.95 * results["presto"].mean_elephant_tput_bps
    )
    # Presto improves the mice tail over ECMP.
    assert normalized["presto"]["p99.9"] < -0.1
    # MPTCP mice hit RTOs more than Presto mice (the TIMEOUT row).
    assert (
        results["mptcp"].mice_timeout_fraction
        >= results["presto"].mice_timeout_fraction
    )
