"""Shared helpers for the benchmark suite."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n=== {name} ===\n{text}")
