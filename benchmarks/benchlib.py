"""Shared helpers for the benchmark suite."""

import json
import os

from repro.runner.serialize import to_jsonable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str, data=None) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it.

    Alongside the human-readable ``<name>.txt`` a machine-readable
    ``<name>.json`` is written; pass the experiment's structured result
    as ``data`` to include it (encoded with the runner's serialization
    helpers, so ``repro.runner.serialize.from_jsonable`` restores the
    original dataclasses).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    payload = {"name": name, "table": text}
    if data is not None:
        payload["data"] = to_jsonable(data)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n=== {name} ===\n{text}")
