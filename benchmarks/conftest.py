"""Benchmark harness conventions.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the (scaled-down) experiment once under ``benchmark.pedantic``,
prints the same rows/series the paper reports, and writes them to
``benchmarks/results/<name>.txt``.  Absolute numbers are simulator-scale
(see EXPERIMENTS.md); assertions check the paper's *shape* — who wins,
by roughly what factor.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))
