"""Simulator hot-path perf suite (micro + macro).

Unlike the ``bench_fig*`` modules this one does not reproduce a paper
figure: it times the simulator itself.  The bench definitions live in
:mod:`repro.perf.suite`; this wrapper runs them under pytest, saves the
rendered table through benchlib, and merges the machine-readable
numbers into ``BENCH_perf.json`` at the repo root so CI can archive one
artifact regardless of which subset ran.

Tune with environment variables (CI smoke uses a reduced scale):

* ``PERF_SCALE``    — workload multiplier, default 1.0
* ``PERF_ROUNDS``   — best-of rounds per bench, default 3
* ``PERF_MAX_DROP`` — micro-bench regression gate, default 0.20

The micro test fails when any micro bench drops more than
``PERF_MAX_DROP`` below the committed baseline
(``benchmarks/perf/baseline.json``); loosen the gate on machines with
heavy steal-time noise (see PERFORMANCE.md).  Macros are reported but
not gated here because their wall times are too long for meaningful
best-of rounds in CI.
"""

import json
import os

import benchlib
from repro.perf import (
    load_baseline,
    render_table,
    results_payload,
    run_suite,
    write_bench_json,
)
from repro.perf.report import DEFAULT_BASELINE_RELPATH, check_regression
from repro.perf.suite import MACRO_BENCHES, MICRO_BENCHES

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_perf.json")

SCALE = float(os.environ.get("PERF_SCALE", "1.0"))
ROUNDS = int(os.environ.get("PERF_ROUNDS", "3"))
MAX_DROP = float(os.environ.get("PERF_MAX_DROP", "0.20"))


def _emit(name, results):
    baseline = load_baseline(os.path.join(REPO_ROOT, DEFAULT_BASELINE_RELPATH))
    payload = results_payload(results, baseline)
    benchlib.save_result(name, render_table(payload))
    # merge into the single repo-root artifact
    merged = payload
    try:
        with open(BENCH_JSON) as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and "benches" in existing:
            existing["benches"].update(payload["benches"])
            for key in ("speedup_vs_baseline", "macro_speedup_min",
                        "baseline_python"):
                if key in payload:
                    existing[key] = payload[key]
            merged = existing
    except (OSError, ValueError):
        pass
    write_bench_json(merged, BENCH_JSON)
    return payload


def test_perf_micro():
    results = run_suite(MICRO_BENCHES, rounds=ROUNDS, scale=SCALE, log=print)
    payload = _emit("perf_micro", results)
    failures = check_regression(payload, max_drop=MAX_DROP, kinds=("micro",))
    assert not failures, "; ".join(failures)


def test_perf_macro():
    results = run_suite(MACRO_BENCHES, rounds=ROUNDS, scale=SCALE, log=print)
    payload = _emit("perf_macro", results)
    for entry in payload["benches"].values():
        assert entry["events"] > 0 and entry["events_per_sec"] > 0
