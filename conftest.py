"""Ensure `repro` is importable from a source checkout even when the
editable install step was skipped (offline environments)."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
