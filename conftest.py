"""Ensure `repro` is importable from a source checkout even when the
editable install step was skipped (offline environments), and wire the
tiered test pyramid:

* ``tier1`` — fast tests gating every push.  Any test not explicitly
  marked ``tier2`` is tier 1, and a plain ``pytest`` run selects only
  these (the default ``-m`` expression below), so push CI wall-clock
  never silently grows a nightly-sized test.
* ``tier2`` — nightly paper-fidelity runs: figure oracles over real
  seed sweeps, soak slices, oracle-report determinism.  Select with
  ``pytest -m tier2``.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "tier1: fast push-gating tests (default selection)")
    config.addinivalue_line(
        "markers",
        "tier2: nightly paper-fidelity tests (figure oracles, soak slices)")
    if not config.option.markexpr:
        config.option.markexpr = "not tier2"


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("tier2") is None:
            item.add_marker(pytest.mark.tier1)
