#!/usr/bin/env python
"""Using the library below the experiment harness: hand-built topology,
custom spanning trees, and a from-scratch Presto deployment.

This is the "library user" path rather than the "reproduce the paper"
path: build any 2-tier Clos, let the controller carve spanning trees
and push label schedules, then attach your own traffic.

Run:  python examples/custom_topology.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.host.app import BulkApp, FlowIdAllocator
from repro.host.gro import PrestoGro
from repro.host.host import Host
from repro.host.tcp import TcpConfig
from repro.net.topology import build_clos
from repro.presto.controller import PrestoController
from repro.presto.vswitch import PrestoLb
from repro.sim.engine import Simulator
from repro.units import gbps, msec, usec


def main() -> None:
    print(__doc__)
    sim = Simulator()

    # An asymmetric-ish fabric: 3 spines, 2 leaves, 25 Gbps links.
    topo = build_clos(sim, n_spines=3, n_leaves=2, rate_bps=gbps(25))

    tcp = TcpConfig(min_rto_ns=msec(20), initial_rto_ns=msec(20))
    hosts = []
    for host_id in range(6):
        host = Host(
            sim, host_id,
            lb=PrestoLb(host_id),
            gro=PrestoGro(),
            tcp_cfg=tcp,
        )
        leaf = topo.leaves[host_id // 3]
        topo.attach_host(host, leaf, rate_bps=gbps(25))
        hosts.append(host)

    # The controller: spanning trees (one per spine), shadow-MAC routes,
    # and per-destination label schedules pushed to every vSwitch.
    controller = PrestoController(topo)
    for host in hosts:
        controller.register_vswitch(host.lb)
    topo.install_underlay()

    print(f"spanning trees: {[t.spine.name for t in controller.trees]}")
    print(f"host 0 -> host 3 schedule: "
          f"{[hex(l) for l in hosts[0].lb.labels_for(3)]}\n")

    # Three cross-fabric elephants.
    flow_ids = FlowIdAllocator()
    apps = [
        BulkApp(sim, hosts[i], hosts[3 + i], flow_ids.next(),
                start_ns=i * usec(100))
        for i in range(3)
    ]
    duration = msec(25)
    sim.run(until=duration)

    for i, app in enumerate(apps):
        rate = app.delivered_bytes() * 8 / (duration / 1e9) / 1e9
        print(f"elephant h{i} -> h{3 + i}: {rate:5.2f} Gbps")
    print(f"switch drops: {topo.total_switch_drops()}")

    # Fail a link and let the controller reweight, live.
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_down()
    controller.on_link_failure(link)
    print(f"\nafter S1-L1 failure, h0 -> h3 schedule: "
          f"{[hex(l) for l in hosts[0].lb.labels_for(3)]}")
    sim.run(until=duration + msec(15))
    for i, app in enumerate(apps):
        rate = app.delivered_bytes() * 8 / ((duration + msec(15)) / 1e9) / 1e9
        print(f"elephant h{i} -> h{3 + i}: {rate:5.2f} Gbps (incl. failure period)")


if __name__ == "__main__":
    main()
