#!/usr/bin/env python
"""The small-segment-flooding problem, live (paper S2.2 / Fig 5).

Two senders spray 64 KB flowcells over two network paths.  With the
stock Linux GRO the receiver cannot merge out-of-order packets: tiny
segments flood TCP, the CPU burns, duplicate ACKs trigger spurious fast
retransmits and throughput collapses.  Presto's GRO (Algorithm 2) keeps
per-flowcell segment lists and releases them in order — line rate, zero
reordering exposed.

Run:  python examples/gro_reordering_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Testbed, TestbedConfig
from repro.metrics.reordering import ReorderTracker
from repro.metrics.stats import mean, percentile
from repro.units import msec


def run(gro: str) -> None:
    from dataclasses import replace

    # Fig 4b topology: 2 leaves, 2 spines, 2 hosts per leaf.  The
    # receive window is pinned to 1 MB (testbed-autotuned scale): with
    # the harness's scaled-down windows the two-path queues are too
    # short/symmetric to reorder at all (see EXPERIMENTS.md, Fig 5).
    cfg = TestbedConfig(
        scheme="presto", n_spines=2, n_leaves=2, hosts_per_leaf=2,
        gro_override=gro, seed=0,
    )
    cfg = replace(cfg, tcp=replace(cfg.tcp, rcv_wnd=1024 * 1024))
    tb = Testbed(cfg)
    trackers = {}
    for dst in (2, 3):
        trackers[dst] = ReorderTracker()
        tb.hosts[dst].segment_tap = trackers[dst].observe

    apps = [tb.add_elephant(0, 2), tb.add_elephant(1, 3)]
    duration = msec(30)
    tb.run(duration)

    tput = mean([a.delivered_bytes() * 8 / (duration / 1e9) / 1e9 for a in apps])
    ooo = [c for t in trackers.values() for c in t.out_of_order_counts()]
    sizes = [s for t in trackers.values() for s in t.segment_sizes()]
    masked = sum(1 for c in ooo if c == 0) / max(1, len(ooo))
    spurious = sum(
        tb.hosts[i].senders[a.flow_id].fast_retransmits
        for i, a in enumerate(apps)
    )
    cpu = max(tb.hosts[d].cpu.utilization(0, duration) for d in (2, 3))

    print(f"--- {gro} GRO ---")
    print(f"  throughput          {tput:5.2f} Gbps per flow")
    print(f"  receive-core usage  {cpu:5.0%}")
    print(f"  flowcells w/o reordering exposed to TCP: {masked:.0%}")
    print(f"  median segment pushed to TCP: {percentile(sizes, 50) / 1024:.1f} KB")
    print(f"  spurious fast retransmits: {spurious}")
    print()


def main() -> None:
    print(__doc__)
    for gro in ("official", "presto"):
        run(gro)


if __name__ == "__main__":
    main()
