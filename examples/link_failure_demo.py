#!/usr/bin/env python
"""Failure handling walkthrough (paper S3.3 / Figs 17-18).

Kills the S1-L1 link *mid-run* and watches Presto's three recovery
postures flow into one another in a single continuous simulation of an
L1 -> L4 workload:

  symmetry   the link is up: flowcells round-robin over 4 spanning trees
  failover   the link dies; OpenFlow-style fast-failover buckets
             redirect tree-1 flowcells through backup ports after the
             hardware detection latency (imbalanced, some blackholing)
  weighted   the modeled control plane notices the change
             detection+reaction later — an in-sim event, nobody calls
             the controller by hand — and prunes/reweights the label
             schedules at the vSwitches, restoring balance on 3 trees

Run:  python examples/link_failure_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.failure import run_failure_timeline


def main() -> None:
    print(__doc__)
    timeline = run_failure_timeline("L1->L4", seed=11)
    print("L1->L4 elephants, S1-L1 link dies at "
          f"t={timeline.fault_ns / 1e6:.0f} ms, controller reacts at "
          f"t={timeline.reaction_ns / 1e6:.0f} ms:\n")
    for name, phase in timeline.phases.items():
        print(f"  {name:9s}: {phase.mean_flow_tput_bps / 1e9:5.2f} Gbps "
              f"per flow  (window {phase.start_ns / 1e6:.0f}-"
              f"{phase.end_ns / 1e6:.0f} ms)")
    conv = timeline.convergence
    print("\naggregate throughput trajectory (windowed):")
    bar_unit = 2e9
    for t, rate in timeline.trajectory:
        bar = "#" * int(rate / bar_unit)
        print(f"  {t / 1e6:6.1f} ms  {rate / 1e9:5.1f} Gbps  {bar}")
    if conv.time_to_failover_ns is not None:
        print(f"\ntime to failover plateau : "
              f"{conv.time_to_failover_ns / 1e6:.1f} ms")
    if conv.time_to_rebalance_ns is not None:
        print(f"time to rebalanced state : "
              f"{conv.time_to_rebalance_ns / 1e6:.1f} ms")
    print(f"bytes blackholed by fault: "
          f"{timeline.blackholed_bytes.get('total', 0) / 1024:.0f} KB")
    print("\nsymmetry ~ line rate; failover survives but is imbalanced;")
    print("weighted recovers most of the loss with 3 of 4 trees.")


if __name__ == "__main__":
    main()
