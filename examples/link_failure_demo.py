#!/usr/bin/env python
"""Failure handling walkthrough (paper S3.3 / Figs 17-18).

Kills the S1-L1 link and shows Presto's three recovery postures on an
L1 -> L4 workload:

  symmetry   the link is up: flowcells round-robin over 4 spanning trees
  failover   the link is down; OpenFlow-style fast-failover buckets
             redirect tree-1 flowcells through backup ports (imbalanced)
  weighted   the controller prunes/reweights the label schedules at the
             vSwitches (WCMP-style duplicated labels), restoring balance

Run:  python examples/link_failure_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Testbed, TestbedConfig
from repro.metrics.collectors import ThroughputMeter
from repro.units import msec, usec


def run_stage(stage: str) -> float:
    cfg = TestbedConfig(scheme="presto", seed=11)
    tb = Testbed(cfg)

    failed = next(l for l in tb.topo.links if l.name == "L1--S1")
    if stage == "failover":
        tb.controller.enable_fast_failover(cfg.failover_latency_ns)
    if stage != "symmetry":
        failed.set_down()
    if stage == "weighted":
        tb.controller.on_link_failure(failed)  # reweight + push schedules

    rng = tb.streams.stream("starts")
    meter = ThroughputMeter()
    for i in range(4):  # L1 hosts 0-3 -> L4 hosts 12-15
        app = tb.add_elephant(i, 12 + i, start_ns=rng.randrange(usec(500)))
        meter.track(app)

    tb.run(msec(15))
    meter.mark_start(tb.sim.now)
    tb.run(msec(40))
    meter.mark_end(tb.sim.now)
    return meter.mean_rate_bps() / 1e9


def main() -> None:
    print(__doc__)
    print("L1->L4 elephants, S1-L1 link failure:\n")
    for stage in ("symmetry", "failover", "weighted"):
        print(f"  {stage:9s}: {run_stage(stage):5.2f} Gbps per flow")
    print("\nsymmetry ~ line rate; failover survives but is imbalanced;")
    print("weighted recovers most of the loss with 3 of 4 trees.")


if __name__ == "__main__":
    main()
