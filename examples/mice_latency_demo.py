#!/usr/bin/env python
"""Mice flow completion time under elephant cross-traffic (Fig 16).

Latency-sensitive 50 KB "mice" RPCs share the fabric with stride
elephants.  Under ECMP, a mouse whose flow hashes onto a congested
path waits behind a deep queue (or a loss); under Presto, every flow
is spread over all paths so the tail collapses toward the non-blocking
optimum.

Run:  python examples/mice_latency_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Testbed, TestbedConfig
from repro.metrics.stats import percentile
from repro.units import KB, msec, usec
from repro.workloads.synthetic import stride_pairs


def run_scheme(scheme: str):
    tb = Testbed(TestbedConfig(scheme=scheme, seed=5))
    rng = tb.streams.stream("starts")
    for src, dst in stride_pairs(16, 8):
        tb.add_elephant(src, dst, start_ns=rng.randrange(usec(500)))
    mice = [
        tb.add_mice(src, dst, size_bytes=50 * KB, interval_ns=msec(2),
                    start_ns=msec(8))
        for src, dst in stride_pairs(16, 8)[::4]
    ]
    tb.run(msec(60))
    fcts = [f for m in mice for f in m.fcts_ns]
    return fcts


def main() -> None:
    print(__doc__)
    print(f"{'scheme':>8} {'n':>4} {'p50 ms':>8} {'p99 ms':>8} {'p99.9 ms':>9}")
    for scheme in ("ecmp", "presto", "optimal"):
        fcts = run_scheme(scheme)
        if not fcts:
            print(f"{scheme:>8}  (no mice completed)")
            continue
        print(
            f"{scheme:>8} {len(fcts):>4} "
            f"{percentile(fcts, 50) / 1e6:8.2f} "
            f"{percentile(fcts, 99) / 1e6:8.2f} "
            f"{percentile(fcts, 99.9) / 1e6:9.2f}"
        )


if __name__ == "__main__":
    main()
