#!/usr/bin/env python
"""Quickstart: Presto vs ECMP on the paper's 16-host Clos testbed.

Builds the Fig 3 topology, runs one stride(8) elephant per host under
each load-balancing scheme, and prints per-flow goodput plus Jain's
fairness — the essence of the paper's headline result (Presto tracks a
non-blocking switch; ECMP loses throughput to hash collisions).

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Testbed, TestbedConfig
from repro.metrics.collectors import ThroughputMeter
from repro.metrics.stats import jain_fairness
from repro.units import msec, usec
from repro.workloads.synthetic import stride_pairs


def run_scheme(scheme: str, warm_ms: int = 15, measure_ms: int = 25) -> None:
    tb = Testbed(TestbedConfig(scheme=scheme, seed=42))
    rng = tb.streams.stream("starts")

    meter = ThroughputMeter()
    apps = []
    for src, dst in stride_pairs(n_hosts=16, stride=8):
        app = tb.add_elephant(src, dst, start_ns=rng.randrange(usec(500)))
        apps.append(app)
        meter.track(app)

    tb.run(msec(warm_ms))                  # let windows converge
    meter.mark_start(tb.sim.now)
    tb.run(msec(warm_ms + measure_ms))     # measurement window
    meter.mark_end(tb.sim.now)

    per_flow = meter.flow_rates_bps()
    # transfer_rate_bps aggregates MPTCP subflows back per connection
    rates = [meter.transfer_rate_bps(app, per_flow) / 1e9 for app in apps]
    print(
        f"{scheme:>8}: mean {sum(rates) / len(rates):5.2f} Gbps/flow   "
        f"Jain fairness {jain_fairness(rates):.3f}   "
        f"switch drops {tb.topo.total_switch_drops()}"
    )


def main() -> None:
    print("stride(8) elephants, 16 hosts, 4x4 leaf-spine Clos, 10 Gbps links")
    for scheme in ("ecmp", "mptcp", "presto", "optimal"):
        run_scheme(scheme)
    print("\n'optimal' = all 16 hosts on one non-blocking switch (upper bound).")
    print("Presto should track it within a few percent; ECMP should not.")


if __name__ == "__main__":
    main()
