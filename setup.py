"""Legacy setup shim: the target environment is offline and lacks the
`wheel` package, so editable installs must go through setup.py."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Presto (SIGCOMM 2015) reproduction: edge-based load balancing "
        "for fast datacenter networks, on a packet-level discrete-event simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
