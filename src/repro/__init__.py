"""repro — a reproduction of *Presto: Edge-based Load Balancing for
Fast Datacenter Networks* (SIGCOMM 2015) on a packet-level
discrete-event simulator.

Quickstart::

    from repro import Testbed, TestbedConfig
    from repro.units import msec, gbps

    tb = Testbed(TestbedConfig(scheme="presto"))
    app = tb.add_elephant(src=0, dst=8)      # host 0 -> host 8 elephant
    tb.run(msec(20))
    print(app.delivered_bytes() * 8 / 20e-3 / 1e9, "Gbps")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.experiments.harness import SCHEMES, Testbed, TestbedConfig, format_table
from repro.host.gro import OfficialGro, PrestoGro
from repro.host.tcp import TcpConfig
from repro.presto.controller import PrestoController
from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger
from repro.presto.vswitch import PrestoLb
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "TestbedConfig",
    "SCHEMES",
    "format_table",
    "Simulator",
    "TcpConfig",
    "OfficialGro",
    "PrestoGro",
    "PrestoController",
    "PrestoLb",
    "FlowcellTagger",
    "FLOWCELL_BYTES",
    "__version__",
]
