"""Experiment harness and one module per paper table/figure."""

from repro.experiments.harness import SCHEMES, Testbed, TestbedConfig, format_table
from repro.experiments.common import (
    RunResult,
    fct_percentiles,
    normalize_to,
    run_elephant_workload,
)

__all__ = [
    "Testbed",
    "TestbedConfig",
    "SCHEMES",
    "format_table",
    "RunResult",
    "run_elephant_workload",
    "fct_percentiles",
    "normalize_to",
]
