"""Shared measurement scaffolding for the paper experiments.

Every experiment follows the same skeleton: build a testbed per scheme,
start elephants (and optionally mice / RTT probes), warm up so windows
converge, measure over a window, and report.  ``ElephantRun`` bundles
that skeleton; experiment modules parameterize it.

Scale note: the paper runs 10 s x 20 trials at 10 Gbps.  Packet-level
simulation in Python makes that ~10^10 events, so defaults here use
the same rates but tens-of-ms windows and a handful of seeds; every
knob is exposed for longer runs (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.collectors import LossAccountant, ThroughputMeter
from repro.metrics.stats import jain_fairness, mean, percentile
from repro.telemetry import TelemetryConfig, per_cell_telemetry
from repro.units import KB, msec, usec

DEFAULT_WARM_NS = msec(15)
DEFAULT_MEASURE_NS = msec(30)
START_JITTER_NS = usec(500)


@dataclass
class SweepOptions:
    """The execution + passthrough options every ``run_*`` sweep shares
    — one definition instead of the seven keyword arguments previously
    copy-pasted across ``scalability.py`` / ``oversub.py`` /
    ``synthetic.py`` (and now ``fabric_sweep.py``).

    ``cell_kwargs`` centralizes the hash-preserving rule: per-cell
    telemetry joins a JobSpec's kwargs **only when set**, so default
    sweeps keep their historical content hashes and the result-store
    cache stays warm.  ``fidelity`` (and ``topology``, for sweeps that
    take one) ride inside each cell's *config*, where their defaults
    normalize to the omitted-``None`` form for the same reason.
    """

    jobs: int = 1
    store: Optional[object] = None  # ResultStore (untyped: import cycle)
    force: bool = False
    timeout_s: Optional[float] = None
    retries: int = 1
    log: Optional[Callable[[str], None]] = None
    telemetry: Optional[TelemetryConfig] = None
    fidelity: Optional[str] = None
    #: sweep-coordinator base URL (repro.service); None = run locally
    service: Optional[str] = None

    def cell_kwargs(self, label: str) -> Dict[str, Any]:
        """Kwargs to merge into one cell's JobSpec — empty when every
        option is at its default, so spec hashes do not move."""
        if self.telemetry is None:
            return {}
        return {"telemetry": per_cell_telemetry(self.telemetry, label)}

    def execute(self, specs: Sequence[Any]) -> List[Any]:
        """Fan the specs through the runner and return their results in
        spec order."""
        from repro.runner import collect_results, run_jobs

        outcomes = run_jobs(
            specs, jobs=self.jobs, store=self.store, force=self.force,
            timeout_s=self.timeout_s, retries=self.retries, log=self.log,
            service=self.service,
        )
        return collect_results(outcomes)


@dataclass
class RunResult:
    """Everything one (scheme, seed) elephant run produced."""

    scheme: str
    seed: int
    flow_rates_bps: Dict[int, float]
    per_pair_rates_bps: List[float]
    loss_rate: float
    rtts_ns: List[int] = field(default_factory=list)
    mice_fcts_ns: List[int] = field(default_factory=list)
    #: telemetry snapshot of the run (None when telemetry is off; the
    #: field is then omitted from serialized output entirely, keeping
    #: telemetry-off results byte-identical to older records)
    metrics: Optional[Dict] = field(
        default=None, metadata={"omit_if_none": True})

    @property
    def mean_rate_bps(self) -> float:
        return mean(self.per_pair_rates_bps)

    @property
    def fairness(self) -> float:
        return jain_fairness(self.per_pair_rates_bps)


def run_elephant_workload(
    cfg: TestbedConfig,
    pairs: Sequence[Tuple[int, int]],
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    probe_pairs: Sequence[Tuple[int, int]] = (),
    probe_interval_ns: int = msec(1),
    mice_pairs: Sequence[Tuple[int, int]] = (),
    mice_size: int = 50 * KB,
    mice_interval_ns: int = msec(5),
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """One trial: elephants on ``pairs`` (+ optional probes and mice),
    throughput measured over [warm, warm+measure]."""
    tb = Testbed(cfg, telemetry=telemetry)
    rng = tb.streams.stream("starts")
    apps = []
    meter = ThroughputMeter()
    for src, dst in pairs:
        app = tb.add_elephant(src, dst, start_ns=rng.randrange(START_JITTER_NS))
        apps.append(app)
        meter.track(app)
    probes = [
        tb.add_probe(src, dst, interval_ns=probe_interval_ns, start_ns=warm_ns // 2)
        for src, dst in probe_pairs
    ]
    mice = [
        tb.add_mice(src, dst, size_bytes=mice_size, interval_ns=mice_interval_ns,
                    start_ns=warm_ns // 2)
        for src, dst in mice_pairs
    ]
    loss = LossAccountant(tb.topo, tb.hosts)
    tb.run(warm_ns)
    meter.mark_start(tb.sim.now)
    loss.mark_start()
    tb.run(warm_ns + measure_ns)
    meter.mark_end(tb.sim.now)

    rates = meter.flow_rates_bps()
    per_pair = [meter.transfer_rate_bps(app, rates) for app in apps]
    snapshot = tb.telemetry.snapshot() if tb.telemetry.enabled else None
    tb.telemetry.export_trace()
    return RunResult(
        scheme=cfg.scheme,
        seed=cfg.seed,
        flow_rates_bps=rates,
        per_pair_rates_bps=per_pair,
        loss_rate=loss.loss_rate(),
        rtts_ns=[r for p in probes for r in p.rtts_ns],
        mice_fcts_ns=[f for m in mice for f in m.fcts_ns],
        metrics=snapshot,
    )


def averaged_over_seeds(
    cfg: TestbedConfig,
    pairs_fn,
    seeds: Sequence[int],
    **kwargs,
) -> List[RunResult]:
    """Run the same workload under several seeds.  ``pairs_fn(cfg, seed)``
    may vary pairs per seed (random workloads)."""
    results = []
    for seed in seeds:
        seeded = replace(cfg, seed=seed)
        results.append(run_elephant_workload(seeded, pairs_fn(seeded, seed), **kwargs))
    return results


def fct_percentiles(fcts_ns: Sequence[int]) -> Dict[str, float]:
    """The paper's FCT report: p50/p90/p99/p99.9 in milliseconds."""
    if not fcts_ns:
        return {}
    return {
        "p50": percentile(fcts_ns, 50) / 1e6,
        "p90": percentile(fcts_ns, 90) / 1e6,
        "p99": percentile(fcts_ns, 99) / 1e6,
        "p99.9": percentile(fcts_ns, 99.9) / 1e6,
    }


def normalize_to(baseline: Dict[str, float], other: Dict[str, float]) -> Dict[str, float]:
    """Relative change versus a baseline, as the paper's Tables 1/2
    (-0.56 means 56% shorter FCT than the baseline)."""
    out = {}
    for key, base in baseline.items():
        if key in other and base > 0:
            out[key] = (other[key] - base) / base
    return out
