"""Datacenter-scale fabric sweep: trace + incast workloads on fat-trees.

The paper's testbed tops out at 16 hosts; this sweep is the scale-out
counterpart, driving published trace workloads (web-search / data-
mining flow-size mixes) and an incast fan-in pattern over k-ary
fat-tree and leaf-spine fabrics built from :class:`TopologySpec` —
16 hosts at k=4 up to 128 at k=8 — normally at flow fidelity, where a
128-host run is tractable.

The unit of work is one (topology, workload, scheme, seed) simulation,
:func:`run_fabric_cell`, submitted through the parallel runner like
every other sweep.  FCT populations at this scale are too large to
keep as lists, so cells aggregate on the fly with the bounded-memory
collectors in :mod:`repro.metrics.streaming` and return summaries plus
a worst-FCT top-k.

``validate=True`` arms the spanning-tree oracle inside each cell:
:func:`repro.net.routing.validate_trees` checks every tree reaches
every host and that trunk links stay disjoint across trees before any
traffic is offered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import SweepOptions
from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.streaming import StreamingQuantiles, TopK
from repro.net.fabrics import TopologySpec, as_spec
from repro.net.routing import validate_trees
from repro.runner import JobSpec, ResultStore
from repro.telemetry import TelemetryConfig
from repro.units import MB, msec
from repro.workloads.tracedriven import (
    IncastWorkload,
    TraceWorkload,
    trace_profile,
)

DEFAULT_TOPOLOGIES = ("fat-tree:k=4", "fat-tree:k=8")
DEFAULT_WORKLOADS = ("websearch", "datamining", "incast")
DEFAULT_SCHEMES = ("ecmp", "presto")
DEFAULT_DURATION_NS = msec(30)

TRACE_WORKLOADS = ("websearch", "datamining", "kandula")
WORKLOADS = TRACE_WORKLOADS + ("incast",)


@dataclass
class FabricCellResult:
    """One (topology, workload, scheme, seed) cell's summaries."""

    scheme: str
    topology: str
    workload: str
    seed: int
    duration_ns: int
    flows_started: int
    flows_completed: int
    #: p50/p90/p99/p99.9 + count/mean/min/max of mice FCTs (ns);
    #: for incast, of request FCTs
    fct_summary: Dict[str, Optional[float]] = field(default_factory=dict)
    #: summary of elephant FCTs (ns); empty for incast
    elephant_summary: Dict[str, Optional[float]] = field(default_factory=dict)
    #: the k worst FCTs as (fct_ns, size_bytes) pairs, largest first
    worst_fcts: List[Tuple[float, Optional[int]]] = field(default_factory=list)
    #: True when the spanning-tree oracle ran (and passed) in this cell
    trees_validated: bool = False
    metrics: Optional[Dict] = field(
        default=None, metadata={"omit_if_none": True})


def fabric_config(
    topology: str,
    scheme: str,
    seed: int,
    fidelity: Optional[str] = "flow",
) -> TestbedConfig:
    """One cell's testbed config.  Flow fidelity is the default: a
    128-host fat-tree is far past what packet fidelity sustains."""
    return TestbedConfig(
        scheme=scheme, topology=topology, seed=seed, fidelity=fidelity,
    )


def run_fabric_cell(
    cfg: TestbedConfig,
    workload: str,
    duration_ns: int = DEFAULT_DURATION_NS,
    load_scale: float = 1.0,
    fanin: int = 8,
    request_bytes: int = 1 * MB,
    validate: bool = False,
    drain_ns: int = msec(5),
    telemetry: Optional[TelemetryConfig] = None,
) -> FabricCellResult:
    """One (topology, workload, scheme, seed) trial — the picklable
    job unit.  Offers ``duration_ns`` of load, then a ``drain_ns``
    grace window for in-flight transfers to finish."""
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown fabric workload {workload!r}; pick from {WORKLOADS}")
    tb = Testbed(cfg, telemetry=telemetry)
    trees_validated = False
    if validate:
        validate_trees(tb.topo, tb.controller.trees)
        trees_validated = True

    fcts = StreamingQuantiles()
    elephants = StreamingQuantiles()
    worst = TopK(16)
    rng = tb.streams.stream(f"fabric-{workload}")
    if workload == "incast":
        wl = IncastWorkload(
            tb, rng, fanin=fanin, request_bytes=request_bytes,
            stop_ns=duration_ns,
            sink=lambda fct: (fcts.add(fct), worst.add(fct, None)),
        )
    else:
        sizes, interarrivals = trace_profile(workload)
        wl = TraceWorkload(
            tb, rng, load_scale=load_scale,
            sizes=sizes, interarrivals=interarrivals,
            stop_ns=duration_ns,
            mice_sink=lambda fct: (fcts.add(fct), worst.add(fct, None)),
            elephant_sink=lambda size, fct: (
                elephants.add(fct), worst.add(fct, size)),
        )
    wl.start()
    tb.run(duration_ns + drain_ns)

    if workload == "incast":
        started, completed = wl.requests_started, wl.requests_completed
    else:
        started, completed = wl.flows_started, wl.flows_completed
    snapshot = tb.telemetry.snapshot() if tb.telemetry.enabled else None
    tb.telemetry.export_trace()
    return FabricCellResult(
        scheme=cfg.scheme,
        topology=cfg.topology_spec().cli(),
        workload=workload,
        seed=cfg.seed,
        duration_ns=duration_ns,
        flows_started=started,
        flows_completed=completed,
        fct_summary=fcts.summary(),
        elephant_summary=elephants.summary(),
        worst_fcts=worst.items(),
        trees_validated=trees_validated,
        metrics=snapshot,
    )


def fabric_specs(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2),
    duration_ns: int = DEFAULT_DURATION_NS,
    load_scale: float = 1.0,
    validate: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = "flow",
) -> List[JobSpec]:
    """The full grid as runner jobs, ordered topology > workload >
    scheme > seed.  Topology strings are validated up front so a typo
    fails before any job is queued."""
    for topology in topologies:
        as_spec(topology)
    opts = SweepOptions(telemetry=telemetry, fidelity=fidelity)
    specs = []
    for topology in topologies:
        slug = as_spec(topology).slug()
        for workload in workloads:
            for scheme in schemes:
                for seed in seeds:
                    label = f"fabric/{slug}/{workload}/{scheme}/seed{seed}"
                    specs.append(JobSpec.make(
                        run_fabric_cell,
                        cfg=fabric_config(topology, scheme, seed, fidelity),
                        label=label,
                        workload=workload,
                        duration_ns=duration_ns,
                        load_scale=load_scale,
                        validate=validate,
                        **opts.cell_kwargs(label),
                    ))
    return specs


def run_fabric_sweep(
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2),
    duration_ns: int = DEFAULT_DURATION_NS,
    load_scale: float = 1.0,
    validate: bool = False,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = "flow",
    service: Optional[str] = None,
) -> Dict[Tuple[str, str, str], List[FabricCellResult]]:
    """The full fabric grid, fanned out through the runner.  Keys are
    (topology CLI string, workload, scheme); values are the per-seed
    cell results."""
    opts = SweepOptions(jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, retries=retries, log=log,
                        telemetry=telemetry, fidelity=fidelity,
                        service=service)
    specs = fabric_specs(topologies, workloads, schemes, seeds, duration_ns,
                         load_scale, validate, telemetry=telemetry,
                         fidelity=fidelity)
    runs = opts.execute(specs)
    grid: Dict[Tuple[str, str, str], List[FabricCellResult]] = {}
    it = iter(runs)
    for topology in topologies:
        key_topo = as_spec(topology).cli()
        for workload in workloads:
            for scheme in schemes:
                grid[(key_topo, workload, scheme)] = [
                    next(it) for _ in seeds]
    return grid
