"""Figs 17-18: link failure handling, as one continuous run.

The S1-L1 link dies *while traffic flows*.  A single simulation now
crosses all three of the paper's postures in sequence:

* **symmetry** — link up, plain Presto round-robin over 4 trees;
* **failover** — the link dies mid-run (a :class:`repro.faults`
  schedule); OpenFlow-style fast-failover buckets redirect
  tree-1-labelled flowcells through the next spine after the hardware
  detection latency.  The controller has not reacted yet, so load is
  imbalanced and traffic toward L1 that reaches S1 is blackholed;
* **weighted** — the modeled control plane
  (:class:`repro.faults.controlplane.ControlPlane`) learns of the
  failure ``detection + reaction`` later — an in-sim event, not a
  manual call — prunes/reweights the tree schedules at every vSwitch,
  and balance returns.

:func:`run_failure_timeline` is the primitive: one (workload, seed)
run returning per-phase throughput plus the windowed throughput
trajectory and convergence metrics.  The legacy per-stage API
(:func:`run_failure_stage`, :func:`run_figure17`, :func:`run_figure18`)
is kept as thin wrappers that slice the timeline.

Workloads: L1->L4 (each L1 host sends to an L4 host), L4->L1, stride(8)
and random bijection; Fig 18 is the RTT distribution under bijection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    START_JITTER_NS,
)
from repro.experiments.harness import Testbed, TestbedConfig
from repro.faults.metrics import (
    BlackholeAccountant,
    ConvergenceReport,
    ThroughputTimeline,
    convergence_report,
)
from repro.faults.schedule import FaultSchedule, LinkDown
from repro.metrics.collectors import ThroughputMeter
from repro.metrics.stats import mean
from repro.sim.rand import RandomStreams
from repro.workloads.synthetic import random_bijection_pairs, stride_pairs

STAGES = ("symmetry", "failover", "weighted")
FAILURE_WORKLOADS = ("L1->L4", "L4->L1", "stride", "bijection")
FAILED_LINK = "L1--S1"

#: settle time between a transition and its measurement window: lets
#: hardware failover engage and TCP recover before we call a phase
#: "steady" (the excluded gap is still visible in the timeline samples)
PHASE_GUARD_NS_MAX = 3_000_000  # 3 ms


@dataclass
class FailureResult:
    """One Fig 17 bar / Fig 18 curve (legacy per-stage shape)."""

    stage: str
    workload: str
    mean_tput_bps: float
    rtts_ns: List[int] = field(default_factory=list)


@dataclass
class PhaseStats:
    """One posture's window within a continuous failure run."""

    name: str
    start_ns: int
    end_ns: int
    #: mean per-flow goodput inside the window (Fig 17's quantity)
    mean_flow_tput_bps: float
    rtts_ns: List[int] = field(default_factory=list)


@dataclass
class FailureTimeline:
    """Everything one continuous (workload, seed) failure run produced."""

    workload: str
    seed: int
    fault_ns: int
    reaction_ns: Optional[int]
    phases: Dict[str, PhaseStats]
    #: (window_end_ns, aggregate_goodput_bps) trajectory across the run
    trajectory: List[Tuple[int, float]]
    convergence: ConvergenceReport
    blackholed_bytes: Dict[str, int] = field(default_factory=dict)


def _workload_pairs(workload: str, seed: int) -> List[Tuple[int, int]]:
    if workload == "L1->L4":
        return [(i, 12 + i) for i in range(4)]
    if workload == "L4->L1":
        return [(12 + i, i) for i in range(4)]
    if workload == "stride":
        return stride_pairs(16, 8)
    if workload == "bijection":
        rng = RandomStreams(seed).stream("failure-bijection")
        return random_bijection_pairs(16, 4, rng)
    raise ValueError(f"unknown workload {workload!r}")


def _phase_guard_ns(cfg: TestbedConfig, measure_ns: int) -> int:
    """Settle gap after a transition, clamped so even short measurement
    windows keep a non-empty steady-state slice."""
    guard = min(PHASE_GUARD_NS_MAX, measure_ns // 3)
    return min(guard, max(0, (measure_ns - cfg.failover_latency_ns) // 2))


def run_failure_timeline(
    workload: str,
    seed: int = 1,
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = False,
    cfg: Optional[TestbedConfig] = None,
) -> FailureTimeline:
    """One continuous symmetry -> failover -> weighted run.

    Layout (all phases ``measure_ns`` long)::

        0 ........ warm | symmetry | failover ........ | weighted |
                        ^fault scheduled here          ^controller reacts

    The fault hits at ``warm_ns + measure_ns``; the control plane's
    detection+reaction delays are set so its push lands exactly one
    measurement window later, and the run ends one window after that.
    """
    pairs = _workload_pairs(workload, seed)
    t_fault = warm_ns + measure_ns
    t_react = t_fault + measure_ns
    if cfg is None:
        cfg = TestbedConfig(scheme="presto", seed=seed)
    reaction_ns = min(cfg.ctrl_reaction_delay_ns, measure_ns // 3)
    cfg = replace(
        cfg,
        ctrl_detection_delay_ns=measure_ns - reaction_ns,
        ctrl_reaction_delay_ns=reaction_ns,
    )
    guard = _phase_guard_ns(cfg, measure_ns)
    t_end = t_react + guard + measure_ns

    tb = Testbed(cfg)
    tb.controller.enable_fast_failover(cfg.failover_latency_ns)
    control = tb.enable_control_plane()
    FaultSchedule.of(LinkDown(t_fault, FAILED_LINK)).arm(tb.sim, tb.topo)

    rng = tb.streams.stream("starts")
    timeline = ThroughputTimeline(
        tb.sim, window_ns=max(1, measure_ns // 6), stop_ns=t_end)
    apps = []
    for src, dst in pairs:
        app = tb.add_elephant(src, dst, start_ns=rng.randrange(START_JITTER_NS))
        apps.append(app)
        timeline.track(app)
    probes = []
    if with_probes:
        probes = [tb.add_probe(pairs[0][0], pairs[0][1], start_ns=warm_ns // 2),
                  tb.add_probe(pairs[2][0], pairs[2][1], start_ns=warm_ns // 2)]
    accountant = BlackholeAccountant(tb.topo, tb.hosts)

    windows = {
        "symmetry": (warm_ns, t_fault),
        "failover": (t_fault + cfg.failover_latency_ns + guard, t_react),
        "weighted": (t_react + guard, t_end),
    }
    phases: Dict[str, PhaseStats] = {}
    for name in STAGES:
        start, end = windows[name]
        tb.run(start)
        meter = ThroughputMeter()
        for app in apps:
            meter.track(app)
        meter.mark_start(tb.sim.now)
        rtt_marks = [len(p.rtts_ns) for p in probes]
        tb.run(end)
        meter.mark_end(tb.sim.now)
        rates = meter.flow_rates_bps()
        phases[name] = PhaseStats(
            name=name,
            start_ns=start,
            end_ns=end,
            mean_flow_tput_bps=mean(
                [meter.transfer_rate_bps(app, rates) for app in apps]),
            rtts_ns=[r for p, n in zip(probes, rtt_marks)
                     for r in p.rtts_ns[n:]],
        )
    tb.run(t_end)

    # recovery targets are each phase's own steady aggregate: after a
    # prune the network can never see the 4-tree baseline again
    n_flows = max(1, len(apps))
    report = convergence_report(
        timeline,
        fault_ns=t_fault,
        reaction_ns=control.last_reaction_ns(),
        accountant=accountant,
        baseline_window_ns=measure_ns,
        failover_target_bps=phases["failover"].mean_flow_tput_bps * n_flows,
        rebalance_target_bps=phases["weighted"].mean_flow_tput_bps * n_flows,
    )
    return FailureTimeline(
        workload=workload,
        seed=seed,
        fault_ns=t_fault,
        reaction_ns=control.last_reaction_ns(),
        phases=phases,
        trajectory=timeline.rates_bps(),
        convergence=report,
        blackholed_bytes=accountant.delta(),
    )


# --- legacy per-stage API (thin wrappers over the timeline) -----------------


def run_failure_stage(
    stage: str,
    workload: str,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = False,
) -> FailureResult:
    """One bar of Fig 17 (or, with probes, one curve of Fig 18).

    Now a view over :func:`run_failure_timeline`: the continuous run's
    window for ``stage`` provides the numbers the three separate static
    runs used to.
    """
    if stage not in STAGES:
        raise ValueError(f"unknown stage {stage!r}")
    _workload_pairs(workload, seeds[0] if seeds else 1)  # validate early
    rates: List[float] = []
    rtts: List[int] = []
    for seed in seeds:
        tl = run_failure_timeline(
            workload, seed, warm_ns=warm_ns, measure_ns=measure_ns,
            with_probes=with_probes)
        phase = tl.phases[stage]
        rates.append(phase.mean_flow_tput_bps)
        rtts.extend(phase.rtts_ns)
    return FailureResult(stage, workload, mean(rates), rtts)


def run_figure17(
    workloads: Sequence[str] = FAILURE_WORKLOADS,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[Tuple[str, str], FailureResult]:
    """All Fig 17 bars — one continuous run per (workload, seed), each
    stage's bar read from its phase window."""
    out: Dict[Tuple[str, str], FailureResult] = {}
    for workload in workloads:
        timelines = [
            run_failure_timeline(workload, seed, warm_ns=warm_ns,
                                 measure_ns=measure_ns)
            for seed in seeds
        ]
        for stage in STAGES:
            out[(stage, workload)] = FailureResult(
                stage, workload,
                mean([tl.phases[stage].mean_flow_tput_bps
                      for tl in timelines]),
            )
    return out


def run_figure18(
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, FailureResult]:
    """RTT distributions per stage under random bijection."""
    out: Dict[str, FailureResult] = {}
    timelines = [
        run_failure_timeline("bijection", seed, warm_ns=warm_ns,
                             measure_ns=measure_ns, with_probes=True)
        for seed in seeds
    ]
    for stage in STAGES:
        out[stage] = FailureResult(
            stage, "bijection",
            mean([tl.phases[stage].mean_flow_tput_bps for tl in timelines]),
            [r for tl in timelines for r in tl.phases[stage].rtts_ns],
        )
    return out
