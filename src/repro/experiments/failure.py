"""Figs 17-18: link failure handling.

The S1-L1 link dies.  Three stages, each its own run (as the paper
defines them):

* **symmetry** — link up, plain Presto;
* **failover** — link down, leaf-side hardware fast failover redirects
  tree-1-labelled flowcells through the next spine; the controller has
  not reacted yet, so load is imbalanced (and traffic *toward* L1 that
  reaches S1 is blackholed until senders' round robin rotates past it);
* **weighted** — the controller learns of the failure, prunes/reweights
  the tree schedules at every vSwitch, and balance returns.

Workloads: L1->L4 (each L1 host sends to an L4 host), L4->L1, stride(8)
and random bijection; Fig 18 is the RTT distribution under bijection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    START_JITTER_NS,
)
from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.collectors import ThroughputMeter
from repro.metrics.stats import mean
from repro.sim.rand import RandomStreams
from repro.workloads.synthetic import random_bijection_pairs, stride_pairs

STAGES = ("symmetry", "failover", "weighted")
FAILURE_WORKLOADS = ("L1->L4", "L4->L1", "stride", "bijection")


@dataclass
class FailureResult:
    stage: str
    workload: str
    mean_tput_bps: float
    rtts_ns: List[int] = field(default_factory=list)


def _workload_pairs(workload: str, seed: int) -> List[Tuple[int, int]]:
    if workload == "L1->L4":
        return [(i, 12 + i) for i in range(4)]
    if workload == "L4->L1":
        return [(12 + i, i) for i in range(4)]
    if workload == "stride":
        return stride_pairs(16, 8)
    if workload == "bijection":
        rng = RandomStreams(seed).stream("failure-bijection")
        return random_bijection_pairs(16, 4, rng)
    raise ValueError(f"unknown workload {workload!r}")


def run_failure_stage(
    stage: str,
    workload: str,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = False,
) -> FailureResult:
    """One bar of Fig 17 (or, with probes, one curve of Fig 18)."""
    if stage not in STAGES:
        raise ValueError(f"unknown stage {stage!r}")
    rates: List[float] = []
    rtts: List[int] = []
    for seed in seeds:
        cfg = TestbedConfig(scheme="presto", seed=seed)
        tb = Testbed(cfg)
        failed_link = None
        if stage != "symmetry":
            for link in tb.topo.links:
                if link.name == "L1--S1":
                    failed_link = link
                    break
            assert failed_link is not None, "S1-L1 link not found"
        if stage == "failover":
            tb.controller.enable_fast_failover(cfg.failover_latency_ns)
        if failed_link is not None:
            failed_link.set_down()
        if stage == "weighted":
            tb.controller.on_link_failure(failed_link)
        pairs = _workload_pairs(workload, seed)
        rng = tb.streams.stream("starts")
        meter = ThroughputMeter()
        apps = []
        for src, dst in pairs:
            app = tb.add_elephant(src, dst, start_ns=rng.randrange(START_JITTER_NS))
            apps.append(app)
            meter.track(app)
        probes = []
        if with_probes:
            probes = [tb.add_probe(pairs[0][0], pairs[0][1], start_ns=warm_ns // 2),
                      tb.add_probe(pairs[2][0], pairs[2][1], start_ns=warm_ns // 2)]
        tb.run(warm_ns)
        meter.mark_start(tb.sim.now)
        tb.run(warm_ns + measure_ns)
        meter.mark_end(tb.sim.now)
        flow_rates = meter.flow_rates_bps()
        rates.extend(flow_rates[app.flow_id] for app in apps)
        rtts.extend(r for p in probes for r in p.rtts_ns)
    return FailureResult(stage, workload, mean(rates), rtts)


def run_figure17(
    workloads: Sequence[str] = FAILURE_WORKLOADS,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[Tuple[str, str], FailureResult]:
    return {
        (stage, workload): run_failure_stage(stage, workload, seeds, warm_ns, measure_ns)
        for workload in workloads
        for stage in STAGES
    }


def run_figure18(
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, FailureResult]:
    """RTT distributions per stage under random bijection."""
    return {
        stage: run_failure_stage(stage, "bijection", seeds, warm_ns, measure_ns,
                                 with_probes=True)
        for stage in STAGES
    }
