"""Fig 13: Presto vs flowlet switching (100 us and 500 us timers).

Stride(8) on the 16-host Clos.  The paper's numbers: 9.3 Gbps (Presto)
vs 7.6 (500 us) vs 4.3 (100 us); Presto's 99.9th-percentile RTT is
2-3.6x lower than the flowlet schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import mean, percentile
from repro.workloads.synthetic import stride_pairs

DEFAULT_SCHEMES = ("flowlet100us", "flowlet500us", "presto")


@dataclass
class FlowletCmpResult:
    scheme: str
    mean_tput_bps: float
    rtts_ns: List[int] = field(default_factory=list)

    def rtt_p999_ms(self) -> float:
        return percentile(self.rtts_ns, 99.9) / 1e6 if self.rtts_ns else 0.0


def run_flowlet_cmp(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, FlowletCmpResult]:
    results = {}
    for scheme in schemes:
        rates: List[float] = []
        rtts: List[int] = []
        for seed in seeds:
            cfg = TestbedConfig(scheme=scheme, seed=seed)
            run = run_elephant_workload(
                cfg,
                stride_pairs(16, 8),
                warm_ns,
                measure_ns,
                probe_pairs=[(0, 8), (5, 13)],
            )
            rates.extend(run.per_pair_rates_bps)
            rtts.extend(run.rtts_ns)
        results[scheme] = FlowletCmpResult(scheme, mean(rates), rtts)
    return results
