"""Fig 1: flowlet-size analysis.

A 1 GB-class transfer shares a single switch with 0-8 competing flows
to the same receiver; the sender's outgoing segment stream is sliced
into flowlets by an inactivity timer (500 us by default, 100 us as the
paper's secondary analysis) and the top-10 flowlet sizes per competing
count reproduce the stacked histogram: with few competitors most of the
transfer is ONE giant flowlet, so flowlet switching degenerates to
per-flow placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.harness import Testbed, TestbedConfig
from repro.net.fabrics import TopologySpec
from repro.units import MB, msec, usec


@dataclass
class FlowletSizeResult:
    competing_flows: int
    transfer_bytes: int
    flowlet_sizes: List[int]  # descending

    def top(self, n: int = 10) -> List[int]:
        return self.flowlet_sizes[:n]

    def head_fraction(self) -> float:
        """Fraction of the transfer carried by the single largest flowlet."""
        if not self.flowlet_sizes:
            return 0.0
        return self.flowlet_sizes[0] / max(1, sum(self.flowlet_sizes))


def slice_flowlets(events: List[Tuple[int, int]], gap_ns: int) -> List[int]:
    """Split a (time, bytes) emission stream into flowlet byte counts."""
    sizes: List[int] = []
    last_t = None
    for t, nbytes in events:
        if last_t is None or t - last_t > gap_ns:
            sizes.append(nbytes)
        else:
            sizes[-1] += nbytes
        last_t = t
    return sizes


def run_flowlet_sizes(
    competing: int,
    transfer_bytes: int = 64 * MB,
    gap_ns: int = usec(500),
    duration_ns: int = msec(120),
    seed: int = 0,
) -> FlowletSizeResult:
    """One bar of Fig 1 (paper: 1 GB scp; scaled default 64 MB)."""
    cfg = TestbedConfig(
        scheme="optimal",
        topology=TopologySpec.clos(4, 1, competing + 2),
        seed=seed)
    tb = Testbed(cfg)
    events: List[Tuple[int, int]] = []

    def tap(seg):
        if seg.kind == "data" and seg.flow_id == main_flow:
            events.append((tb.sim.now, seg.payload_len))

    main = tb.add_elephant(0, 1, size_bytes=transfer_bytes)
    main_flow = main.flow_id
    tb.hosts[0].tx_tap = tap
    for i in range(competing):
        tb.add_elephant(2 + i, 1)  # unbounded competitors to the receiver
    tb.run(duration_ns)
    sizes = sorted(slice_flowlets(events, gap_ns), reverse=True)
    return FlowletSizeResult(competing, transfer_bytes, sizes)


def run_figure1(
    max_competing: int = 8,
    transfer_bytes: int = 64 * MB,
    gap_ns: int = usec(500),
    duration_ns: int = msec(120),
) -> Dict[int, FlowletSizeResult]:
    """The full Fig 1 sweep: 0..max_competing background flows."""
    return {
        n: run_flowlet_sizes(n, transfer_bytes, gap_ns, duration_ns)
        for n in range(max_competing + 1)
    }
