"""Canonical tiny runs behind the determinism golden fixtures.

One small, fast configuration per scheme — the 2-path Fig 4a cell with
short warm/measure windows — serialized byte-for-byte into
``tests/golden/<scheme>.json``.  The golden test re-runs the config and
compares bytes: any change to simulation behavior (event ordering,
float math, RNG draws) shows up as a diff, which is what lets hot-path
optimizations prove they are behavior-preserving.

Regenerate intentionally-changed goldens with ``python
tools/gen_golden.py`` and review the diff like any other code change.
"""

from __future__ import annotations

import json

from repro.experiments.common import RunResult
from repro.experiments.scalability import (
    run_scalability_seed,
    scalability_config,
)
from repro.runner.serialize import to_jsonable
from repro.units import msec

GOLDEN_SEED = 1
GOLDEN_PATHS = 2
GOLDEN_WARM_NS = msec(2)
GOLDEN_MEASURE_NS = msec(3)

#: schemes added by the tournament zoo.  Their goldens pin a small
#: *tournament* cell (trace workload on a tiny Clos at packet
#: fidelity) instead of the scalability cell, so the fixture exercises
#: the behavior the zoo exists for — size-differentiated routing and
#: replication need a mixed mice/elephant workload, which the
#: elephant-only Fig 4a cell never triggers.  Keeping the dispatch
#: keyed on this explicit tuple guarantees the eight legacy fixtures
#: keep their historical bytes.
ZOO_SCHEMES = ("diffflow", "repflow", "elephant_iso")
ZOO_GOLDEN_TOPOLOGY = "clos:spines=2,leaves=2,hosts=2"
ZOO_GOLDEN_WORKLOAD = "websearch"
ZOO_GOLDEN_DURATION_NS = msec(3)
ZOO_GOLDEN_DRAIN_NS = msec(2)


def golden_zoo_run(scheme: str):
    """The canonical tiny tournament cell for a zoo ``scheme``."""
    from repro.experiments.fabric_sweep import run_fabric_cell
    from repro.experiments.harness import TestbedConfig

    return run_fabric_cell(
        TestbedConfig(scheme=scheme, topology=ZOO_GOLDEN_TOPOLOGY,
                      seed=GOLDEN_SEED),
        workload=ZOO_GOLDEN_WORKLOAD,
        duration_ns=ZOO_GOLDEN_DURATION_NS,
        drain_ns=ZOO_GOLDEN_DRAIN_NS,
    )


def golden_run(scheme: str):
    """The canonical tiny run for ``scheme``."""
    if scheme in ZOO_SCHEMES:
        return golden_zoo_run(scheme)
    return run_scalability_seed(
        scalability_config(scheme, GOLDEN_PATHS, GOLDEN_SEED),
        warm_ns=GOLDEN_WARM_NS,
        measure_ns=GOLDEN_MEASURE_NS,
        with_probes=True,
    )


def golden_bytes(scheme: str) -> str:
    """The run, serialized exactly as the fixture files store it."""
    return json.dumps(
        to_jsonable(golden_run(scheme)), indent=2, sort_keys=True
    ) + "\n"
