"""Fig 5 + Fig 6: GRO microbenchmarks.

Fig 5 (a/b): two senders on L1 spray flowcells over two paths to two
receivers on L2 (Fig 4b topology).  Comparing Presto GRO against the
unmodified ("official") GRO at the receiver yields the out-of-order
segment count CDF (5a), the pushed-segment size CDF (5b), plus the
throughput/CPU operating points the paper quotes in the text
(9.3 Gbps @ 69+6% vs 4.6 Gbps @ 86%).

Fig 6: receiver CPU utilization time series for Presto GRO (stride on
the Clos, reordering present) vs official GRO (stride on a
non-blocking switch, no reordering) — the paper's +6% overhead claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.reordering import ReorderTracker
from repro.net.fabrics import TopologySpec
from repro.metrics.stats import mean
from repro.units import SEC, msec
from repro.workloads.synthetic import stride_pairs


@dataclass
class GroMicroResult:
    gro: str
    throughput_bps: float       # mean per-flow goodput
    cpu_utilization: float      # receive-core utilization, busiest host
    ooo_counts: List[int]       # Fig 5a samples
    segment_sizes: List[int]    # Fig 5b samples
    retx_bytes: int
    fast_retransmits: int

    @property
    def frac_zero_ooo(self) -> float:
        if not self.ooo_counts:
            return 1.0
        return sum(1 for c in self.ooo_counts if c == 0) / len(self.ooo_counts)


def run_fig5(gro: str, duration_ns: int = msec(40), seed: int = 0) -> GroMicroResult:
    """One curve of Fig 5a/5b: ``gro`` is "presto" or "official".

    This experiment pins the receive window to 1 MB (vs the harness's
    scaled 640 KB): with tiny windows the two-path queues stay so short
    and symmetric that spraying barely reorders — the testbed's
    autotuned windows are what make its queues breathe enough to
    reorder, and that oscillation is the phenomenon under test."""
    from dataclasses import replace

    cfg = TestbedConfig(scheme="presto",
                        topology=TopologySpec.clos(2, 2, 2),
                        gro_override=gro, seed=seed)
    cfg = replace(cfg, tcp=replace(cfg.tcp, rcv_wnd=1024 * 1024))
    tb = Testbed(cfg)
    trackers = []
    for dst in (2, 3):
        tracker = ReorderTracker()
        tb.hosts[dst].segment_tap = tracker.observe
        trackers.append(tracker)
    apps = [tb.add_elephant(0, 2), tb.add_elephant(1, 3)]
    tb.run(duration_ns)
    rates = [a.delivered_bytes() * 8 * SEC / duration_ns for a in apps]
    senders = [tb.hosts[i].senders[a.flow_id] for i, a in enumerate(apps)]
    return GroMicroResult(
        gro=gro,
        throughput_bps=mean(rates),
        cpu_utilization=max(
            tb.hosts[dst].cpu.utilization(0, duration_ns) for dst in (2, 3)
        ),
        ooo_counts=[c for t in trackers for c in t.out_of_order_counts()],
        segment_sizes=[s for t in trackers for s in t.segment_sizes()],
        retx_bytes=sum(s.bytes_retx for s in senders),
        fast_retransmits=sum(s.fast_retransmits for s in senders),
    )


def run_figure5(duration_ns: int = msec(40), seed: int = 0) -> Dict[str, GroMicroResult]:
    return {gro: run_fig5(gro, duration_ns, seed) for gro in ("presto", "official")}


@dataclass
class CpuOverheadResult:
    series: Dict[str, List[Tuple[int, float]]]  # label -> (t, util)
    mean_util: Dict[str, float]

    @property
    def overhead(self) -> float:
        """Presto-GRO mean utilization minus official baseline (paper: ~6%)."""
        return self.mean_util["presto"] - self.mean_util["official"]


def run_figure6(duration_ns: int = msec(40), sample_ns: int = msec(2),
                seed: int = 0) -> CpuOverheadResult:
    """Fig 6: CPU overhead of Presto GRO under the stride workload.

    The official baseline runs on the non-blocking switch (no
    reordering), as in the paper.
    """
    series: Dict[str, List[Tuple[int, float]]] = {}
    mean_util: Dict[str, float] = {}
    for label, scheme, gro in (
        ("presto", "presto", "presto"),
        ("official", "optimal", "official"),
    ):
        cfg = TestbedConfig(scheme=scheme, gro_override=gro, seed=seed)
        tb = Testbed(cfg)
        n = len(tb.hosts)
        for src, dst in stride_pairs(n, 8):
            tb.add_elephant(src, dst)
        tb.run(duration_ns)
        # all 16 hosts receive one stride flow; report the mean receiver
        utils = [h.cpu.utilization(0, duration_ns) for h in tb.hosts]
        mean_util[label] = mean(utils)
        busiest = max(range(n), key=lambda i: utils[i])
        series[label] = tb.hosts[busiest].cpu.utilization_series(sample_ns)
    return CpuOverheadResult(series=series, mean_util=mean_util)
