"""Experiment harness: wire a scheme + topology + hosts into a runnable
testbed and provide the measurement scaffolding every paper experiment
shares.

A *scheme* bundles what the paper varies between compared systems: the
edge load balancer, the receiver GRO, how transfers are opened (plain
TCP vs MPTCP) and, for "Optimal", the topology override (a single
non-blocking switch).  Schemes are declared in
:mod:`repro.experiments.schemes`; ``SCHEMES`` here is a live view of
that registry, so registering a new scheme makes it runnable without
touching this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.experiments.schemes import get_scheme, is_registered, scheme_names
from repro.host.app import (
    BulkApp,
    FlowIdAllocator,
    MiceApp,
    RepFlowApp,
    RttProbeApp,
)
from repro.lb.repflow import REPFLOW_MICE_BYTES
from repro.host.cpu import CpuCosts
from repro.host.gro import OfficialGro, PrestoGro
from repro.host.host import Host
from repro.host.tcp import TcpConfig
from repro.lb.base import LoadBalancer
from repro.mptcp.mptcp import MptcpConnection
from repro.net.fabrics import TopologySpec, build_fabric
from repro.net.topology import (
    Topology,
    build_single_switch,
)
from repro.presto.controller import PrestoController
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryConfig
from repro.telemetry import instrument_testbed
from repro.units import KB, MB, gbps, msec, usec


def __getattr__(name: str):
    # PEP 562: SCHEMES stays importable but reflects the live registry.
    if name == "SCHEMES":
        return scheme_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class TestbedConfig:
    """Everything that defines one run."""

    __test__ = False  # not a pytest class, despite the name

    scheme: str = "presto"
    #: deprecated alias trio for a 2-tier Clos shape; prefer
    #: ``topology=TopologySpec...`` / ``topology="fat-tree:k=8"``.
    #: Kept (and mirrored from ``topology`` in __post_init__) so legacy
    #: readers and — critically — legacy store hashes stay bit-stable.
    n_spines: int = 4
    n_leaves: int = 4
    hosts_per_leaf: int = 4
    link_rate_bps: float = gbps(10)
    prop_delay_ns: int = usec(1)
    #: per-port hard cap; None = bounded only by the shared pool
    switch_buffer_bytes: Optional[int] = None
    #: per-switch shared packet memory (G8264-class) + DT alpha
    switch_pool_bytes: int = 4 * MB
    pool_alpha: float = 2.0
    host_buffer_bytes: int = 4 * MB
    seed: int = 0
    model_cpu: bool = True
    #: Experiment-scale TCP: the paper runs 10 s per trial so Linux's
    #: 200 ms min-RTO is 2% of a run; our packet-level runs are tens of
    #: ms, so the RTO floor is scaled to 20 ms to keep the RTO/run ratio
    #: in the same regime (see EXPERIMENTS.md "time scaling").  The
    #: receive window is 640 KB — big enough to fill 10 Gbps through the
    #: Clos's queueing RTT, small enough that a handful of flows'
    #: slow-start overshoot stays inside one switch's 4 MB shared pool
    #: (at full scale Linux autotuning and 10 s of averaging play that
    #: role).  Tests and users can pass a faithful TcpConfig() instead.
    tcp: TcpConfig = field(
        default_factory=lambda: TcpConfig(
            min_rto_ns=msec(20), initial_rto_ns=msec(20), max_rto_ns=msec(200),
            rcv_wnd=640 * KB,
        )
    )
    cpu_costs: Optional[CpuCosts] = None
    #: override the scheme's default receiver GRO: "official" | "presto"
    gro_override: Optional[str] = None
    #: MPTCP subflow count (paper configuration: 8)
    mptcp_subflows: int = 8
    #: failover detection latency when fast failover is enabled
    failover_latency_ns: int = msec(2)
    #: modeled control plane (repro.faults): how long until the
    #: controller learns of a link change, and how long it then takes
    #: to recompute + push schedules (paper S3.3: failover is
    #: microseconds in hardware, the controller is tens of ms behind)
    ctrl_detection_delay_ns: int = msec(10)
    ctrl_reaction_delay_ns: int = msec(5)
    # --- ablation knobs (DESIGN.md S5) ---------------------------------
    #: flowcell granularity (paper: 64 KB = max TSO)
    flowcell_bytes: int = 64 * KB
    #: Presto label iteration: "rr" (paper) or "random"
    presto_mode: str = "rr"
    #: Presto GRO hold-timeout adaptivity and loss/reorder discrimination
    gro_adaptive: bool = True
    gro_loss_detection: bool = True
    gro_initial_ewma_ns: Optional[int] = None
    gro_alpha: Optional[float] = None
    #: Presto GRO reordering-EWMA smoothing gain (paper: 1/8).  A gain
    #: is only meaningful in (0, 1]; tri-state with ``omit_if_none`` so
    #: unset configs keep their historic store hashes.
    gro_ewma_gain: Optional[float] = field(
        default=None, metadata={"omit_if_none": True})
    #: override the active zoo scheme's flow-size threshold (DiffFlow's
    #: 100 KB mice cutoff / elephant_iso's 1 MB detection point) — the
    #: knob repro.search sweeps for DiffFlow-style sensitivity curves.
    #: Tri-state like ``gro_ewma_gain`` for hash stability.
    zoo_threshold_bytes: Optional[int] = field(
        default=None, metadata={"omit_if_none": True})
    #: arm the always-on invariants (repro.validate): every ``run()``
    #: checks conservation laws and raises InvariantViolation on a
    #: breach.  Tri-state on purpose: the None default is omitted from
    #: serialization (``omit_if_none``) so armed-off configs hash — and
    #: hit the result-store cache — exactly like historic ones.
    validate: Optional[bool] = field(
        default=None, metadata={"omit_if_none": True})
    #: engine fidelity: "packet" (default) queues every frame, "flow"
    #: runs the fluid engine (repro.fluid).  Tri-state like ``validate``:
    #: None is omitted from serialization so historic packet-fidelity
    #: configs keep their ResultStore hashes, and an explicit "packet"
    #: normalizes to None in __post_init__ for the same reason.
    fidelity: Optional[str] = field(
        default=None, metadata={"omit_if_none": True})
    #: first-class fabric shape (repro.net.fabrics.TopologySpec, or its
    #: CLI string form, e.g. "fat-tree:k=8").  Tri-state like
    #: ``fidelity``: a 2-tier ``clos`` spec normalizes into the legacy
    #: trio above and this field back to None, so every pre-spec config
    #: hashes — and hits the result-store cache — bit-identically.
    #: Multi-tier specs stay set and keep the trio mirrored for legacy
    #: readers (rack size, host count).
    topology: Optional[TopologySpec] = field(
        default=None, metadata={"omit_if_none": True})

    def __post_init__(self) -> None:
        """Fail at construction, with actionable messages, instead of
        deep inside topology/GRO building."""
        if not is_registered(self.scheme):
            raise ValueError(
                f"unknown scheme {self.scheme!r}; pick from "
                f"{scheme_names()} (or register it via "
                f"repro.experiments.schemes.register)")
        if self.topology is not None:
            if isinstance(self.topology, str):
                self.topology = TopologySpec.parse(self.topology)
            self.topology.validate()
            if self.topology.kind == "clos":
                # a 2-tier spec IS the historic trio: normalize onto it
                # and drop the spec so hashes match pre-spec configs
                (self.n_spines, self.n_leaves,
                 self.hosts_per_leaf) = self.topology.legacy_fields()
                self.topology = None
            else:
                (self.n_spines, self.n_leaves,
                 self.hosts_per_leaf) = self.topology.legacy_fields()
        if self.gro_override not in (None, "official", "presto"):
            raise ValueError(
                f"gro_override must be None, 'official' or 'presto', "
                f"got {self.gro_override!r}")
        if self.presto_mode not in ("rr", "random"):
            raise ValueError(
                f"presto_mode must be 'rr' or 'random', "
                f"got {self.presto_mode!r}")
        for name in ("n_spines", "n_leaves", "hosts_per_leaf",
                     "mptcp_subflows"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        for name in ("link_rate_bps", "switch_pool_bytes", "pool_alpha",
                     "host_buffer_bytes", "flowcell_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("prop_delay_ns", "failover_latency_ns",
                     "ctrl_detection_delay_ns", "ctrl_reaction_delay_ns"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.switch_buffer_bytes is not None and self.switch_buffer_bytes <= 0:
            raise ValueError(
                f"switch_buffer_bytes must be positive (or None for "
                f"pool-only limiting), got {self.switch_buffer_bytes}")
        if self.gro_initial_ewma_ns is not None and self.gro_initial_ewma_ns <= 0:
            raise ValueError(
                f"gro_initial_ewma_ns must be positive, "
                f"got {self.gro_initial_ewma_ns}")
        # The search driver (repro.search) builds configs from generated
        # knob values; reject nonsense here, at construction, with a
        # message naming the knob — not deep inside GRO/topology code.
        if self.gro_alpha is not None and not (
                self.gro_alpha > 0 and math.isfinite(self.gro_alpha)):
            raise ValueError(
                f"gro_alpha must be positive and finite, "
                f"got {self.gro_alpha}")
        if self.gro_ewma_gain is not None and not (
                0.0 < self.gro_ewma_gain <= 1.0):
            raise ValueError(
                f"gro_ewma_gain must be in (0, 1], got {self.gro_ewma_gain}")
        if self.zoo_threshold_bytes is not None and self.zoo_threshold_bytes <= 0:
            raise ValueError(
                f"zoo_threshold_bytes must be positive, "
                f"got {self.zoo_threshold_bytes}")
        if self.fidelity == "packet":
            # explicit default: hash like historic configs
            self.fidelity = None
        if self.fidelity not in (None, "flow"):
            raise ValueError(
                f"fidelity must be 'packet' or 'flow', "
                f"got {self.fidelity!r}")

    def topology_spec(self) -> TopologySpec:
        """The fabric shape as a spec, whichever way it was given."""
        if self.topology is not None:
            return self.topology
        return TopologySpec.clos(
            self.n_spines, self.n_leaves, self.hosts_per_leaf)

    def with_scheme(self, scheme: str) -> "TestbedConfig":
        return replace(self, scheme=scheme)


class Testbed:
    """A built, runnable instance of one configuration."""

    __test__ = False  # not a pytest class, despite the name

    def __new__(cls, cfg: TestbedConfig,
                telemetry: Optional[TelemetryConfig] = None):
        # The fidelity knob picks the engine: ``Testbed(cfg)`` with
        # fidelity="flow" builds a FluidTestbed, so every caller —
        # experiments, sweeps, oracles — selects fidelity through the
        # config alone.  (type.__call__ then runs the *instance's*
        # class __init__, i.e. FluidTestbed.__init__.)
        if cls is Testbed and getattr(cfg, "fidelity", None) == "flow":
            from repro.fluid.testbed import FluidTestbed

            return object.__new__(FluidTestbed)
        return object.__new__(cls)

    def __init__(
        self,
        cfg: TestbedConfig,
        telemetry: Optional[TelemetryConfig] = None,
    ):
        self.cfg = cfg
        self.scheme_def = get_scheme(cfg.scheme)
        self.sim = Simulator()
        # The collector is born with the testbed because it shares the
        # simulation clock; callers pass the *config*, not an instance.
        self.telemetry = (
            Telemetry(self.sim, telemetry)
            if telemetry is not None else NULL_TELEMETRY
        )
        self.streams = RandomStreams(cfg.seed)
        self.flow_ids = FlowIdAllocator()
        self.topo = self._build_topology()
        self.hosts: List[Host] = []
        self._build_hosts()
        self.controller = PrestoController(self.topo)
        for host in self.hosts:
            self.controller.register_vswitch(host.lb)
        self.topo.install_underlay(
            leaf_hash_mode=self.scheme_def.leaf_hash_mode)
        self.apps: List[object] = []
        #: modeled control plane; None until enable_control_plane()
        self.control_plane = None
        if self.telemetry.enabled:
            instrument_testbed(self)
        #: armed invariant probe (repro.validate); None when not armed
        self.validation = None
        #: InvariantReport from the most recent validated run()
        self.last_invariant_report = None
        if cfg.validate:
            # Local import: repro.validate imports this module.
            from repro.validate.invariants import ValidationProbe

            self.validation = ValidationProbe(self)

    # --- construction -----------------------------------------------------------

    def _build_topology(self) -> Topology:
        cfg = self.cfg
        if self.scheme_def.single_switch:
            topo = build_single_switch(self.sim)
            topo.pool_bytes = cfg.switch_pool_bytes
            topo.pool_alpha = cfg.pool_alpha
            # rebuild the lone switch's pool with the configured size
            sw = topo.leaves[0]
            sw.shared_buffer.total_bytes = cfg.switch_pool_bytes
            sw.shared_buffer.alpha = cfg.pool_alpha
            return topo
        return build_fabric(
            self.sim,
            cfg.topology_spec(),
            rate_bps=cfg.link_rate_bps,
            prop_delay_ns=cfg.prop_delay_ns,
            buffer_bytes=cfg.switch_buffer_bytes,
            pool_bytes=cfg.switch_pool_bytes,
            pool_alpha=cfg.pool_alpha,
        )

    def _n_hosts(self) -> int:
        return self.cfg.topology_spec().n_hosts()

    def _make_lb(self, host_id: int) -> LoadBalancer:
        rng = self.streams.stream(f"lb{host_id}")
        return self.scheme_def.make_lb(self.cfg, host_id, rng, self.sim)

    def _make_gro(self):
        cfg = self.cfg
        kind = cfg.gro_override
        if kind is None:
            kind = self.scheme_def.gro
        if kind == "presto":
            kwargs = dict(
                adaptive=cfg.gro_adaptive,
                loss_detection=cfg.gro_loss_detection,
            )
            if cfg.gro_initial_ewma_ns is not None:
                kwargs["initial_ewma_ns"] = cfg.gro_initial_ewma_ns
            if cfg.gro_alpha is not None:
                kwargs["alpha"] = cfg.gro_alpha
            if cfg.gro_ewma_gain is not None:
                kwargs["ewma_gain"] = cfg.gro_ewma_gain
            return PrestoGro(**kwargs)
        if kind == "official":
            return OfficialGro()
        raise ValueError(f"unknown gro kind {kind!r}")

    def _build_hosts(self) -> None:
        cfg = self.cfg
        spec = cfg.topology_spec()
        for host_id in range(self._n_hosts()):
            host = Host(
                self.sim,
                host_id,
                lb=self._make_lb(host_id),
                gro=self._make_gro(),
                cpu_costs=cfg.cpu_costs,
                tcp_cfg=cfg.tcp,
                model_cpu=cfg.model_cpu,
            )
            if self.scheme_def.single_switch:
                leaf = self.topo.leaves[0]
            else:
                leaf = self.topo.leaves[spec.edge_of(host_id)]
            self.topo.attach_host(
                host,
                leaf,
                rate_bps=cfg.link_rate_bps,
                prop_delay_ns=cfg.prop_delay_ns,
                buffer_bytes=cfg.switch_buffer_bytes,
                host_buffer_bytes=cfg.host_buffer_bytes,
            )
            self.hosts.append(host)

    # --- convenience -----------------------------------------------------------

    def host(self, i: int) -> Host:
        return self.hosts[i]

    def pod_of(self, host_id: int) -> int:
        """Rack (edge switch) index a host logically belongs to, for any
        fabric shape.  The "optimal" single switch keeps the same
        numbering so workload generators stay scheme-agnostic."""
        return self.cfg.topology_spec().edge_of(host_id)

    @property
    def is_mptcp(self) -> bool:
        return self.scheme_def.transport == "mptcp"

    @property
    def is_repflow(self) -> bool:
        return self.scheme_def.transport == "repflow"

    def _replicates(self, size_bytes: Optional[int]) -> bool:
        """RepFlow races two copies of bounded mice only; elephants and
        unbounded streams stay single-path TCP."""
        return (self.is_repflow and size_bytes is not None
                and size_bytes <= REPFLOW_MICE_BYTES)

    def enable_control_plane(self):
        """Attach the modeled control plane (repro.faults): the
        controller subscribes to every link and pushes reweighted
        schedules ``ctrl_detection_delay_ns + ctrl_reaction_delay_ns``
        after any state change.  Idempotent; returns the ControlPlane."""
        if self.control_plane is None:
            from repro.faults.controlplane import ControlPlane

            self.control_plane = ControlPlane(
                self.sim,
                self.controller,
                self.topo.links,
                detection_delay_ns=self.cfg.ctrl_detection_delay_ns,
                reaction_delay_ns=self.cfg.ctrl_reaction_delay_ns,
                tracer=self.telemetry.tracer if self.telemetry.enabled else None,
            )
        return self.control_plane

    # --- traffic ----------------------------------------------------------------

    def add_elephant(
        self,
        src: int,
        dst: int,
        size_bytes: Optional[int] = None,
        start_ns: int = 0,
        on_complete=None,
    ):
        """An elephant transfer using the scheme's transport (TCP/MPTCP).

        Returns an object with ``delivered_bytes()`` and ``fct_ns``.
        """
        if self.is_mptcp:
            app = MptcpConnection(
                self.sim,
                self.hosts[src],
                self.hosts[dst],
                self.flow_ids,
                n_subflows=self.cfg.mptcp_subflows,
                size_bytes=size_bytes,
                start_ns=start_ns,
                on_complete=on_complete,
            )
        elif self._replicates(size_bytes):
            app = RepFlowApp(
                self.sim,
                self.hosts[src],
                self.hosts[dst],
                self.flow_ids,
                size_bytes=size_bytes,
                start_ns=start_ns,
                on_complete=on_complete,
            )
        else:
            app = BulkApp(
                self.sim,
                self.hosts[src],
                self.hosts[dst],
                self.flow_ids.next(),
                size_bytes=size_bytes,
                start_ns=start_ns,
                on_complete=on_complete,
            )
        self.apps.append(app)
        return app

    def add_mice(
        self,
        src: int,
        dst: int,
        size_bytes: int = 50 * KB,
        interval_ns: int = msec(100),
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
    ):
        """Periodic mice flows; returns an object exposing ``fcts_ns``."""
        if self.is_mptcp:
            app = MptcpMiceApp(
                self,
                src,
                dst,
                size_bytes=size_bytes,
                interval_ns=interval_ns,
                start_ns=start_ns,
                stop_ns=stop_ns,
            )
        elif self._replicates(size_bytes):
            app = RepFlowMiceApp(
                self,
                src,
                dst,
                size_bytes=size_bytes,
                interval_ns=interval_ns,
                start_ns=start_ns,
                stop_ns=stop_ns,
            )
        else:
            app = MiceApp(
                self.sim,
                self.hosts[src],
                self.hosts[dst],
                self.flow_ids,
                size_bytes=size_bytes,
                interval_ns=interval_ns,
                start_ns=start_ns,
                stop_ns=stop_ns,
            )
        self.apps.append(app)
        return app

    def add_probe(self, src: int, dst: int, interval_ns: int = msec(1),
                  start_ns: int = 0, stop_ns: Optional[int] = None) -> RttProbeApp:
        app = RttProbeApp(
            self.sim,
            self.hosts[src],
            self.hosts[dst],
            self.flow_ids,
            interval_ns=interval_ns,
            start_ns=start_ns,
            stop_ns=stop_ns,
        )
        self.apps.append(app)
        return app

    def run(self, until_ns: int) -> None:
        self.sim.run(until=until_ns)
        if self.cfg.validate:
            from repro.validate.invariants import (
                InvariantViolation,
                runtime_check,
            )

            report = runtime_check(self)
            self.last_invariant_report = report
            if not report.ok:
                raise InvariantViolation(
                    f"{len(report.violations)} invariant violation(s) "
                    f"after run to t={until_ns}: "
                    + "; ".join(report.violations))

    # --- measurement ----------------------------------------------------------

    def elephant_delivered(self, app) -> int:
        return app.delivered_bytes()


class RepFlowMiceApp:
    """Mice over RepFlow: each periodic request raced as two replicated
    copies on disjoint trees; its FCT is the first finisher's."""

    def __init__(self, tb: Testbed, src: int, dst: int, size_bytes: int,
                 interval_ns: int, start_ns: int = 0,
                 stop_ns: Optional[int] = None):
        self.tb = tb
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.fcts_ns: List[int] = []
        self.sent = 0
        self._transfers: List[RepFlowApp] = []
        tb.sim.schedule(start_ns, self._tick)

    def _tick(self) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        app = RepFlowApp(
            self.tb.sim,
            self.tb.hosts[self.src],
            self.tb.hosts[self.dst],
            self.tb.flow_ids,
            size_bytes=self.size_bytes,
            on_complete=self._done,
        )
        self._transfers.append(app)
        self.sent += 1
        self.tb.sim.schedule(self.interval_ns, self._tick)

    def _done(self, app: RepFlowApp) -> None:
        if app.fct_ns is not None:
            self.fcts_ns.append(app.fct_ns)

    @property
    def dup_suppressed_bytes(self) -> int:
        return sum(t.dup_suppressed_bytes for t in self._transfers)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> tuple:
        return tuple(f for t in self._transfers for f in t.flow_ids())

    def delivered_by_flow(self) -> dict:
        out: dict = {}
        for transfer in self._transfers:
            out.update(transfer.delivered_by_flow())
        return out

    def delivered_bytes(self) -> int:
        return sum(t.delivered_bytes() for t in self._transfers)


class MptcpMiceApp:
    """Mice over MPTCP: a fresh MPTCP connection per request.

    The paper's Table 2 shows these timing out — small per-subflow
    windows cannot trigger fast retransmit, so losses cost an RTO.
    """

    def __init__(self, tb: Testbed, src: int, dst: int, size_bytes: int,
                 interval_ns: int, start_ns: int = 0, stop_ns: Optional[int] = None):
        self.tb = tb
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.fcts_ns: List[int] = []
        self.sent = 0
        self._conns: List[MptcpConnection] = []
        tb.sim.schedule(start_ns, self._tick)

    def _tick(self) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        conn = MptcpConnection(
            self.tb.sim,
            self.tb.hosts[self.src],
            self.tb.hosts[self.dst],
            self.tb.flow_ids,
            n_subflows=self.tb.cfg.mptcp_subflows,
            size_bytes=self.size_bytes,
            on_complete=self._done,
        )
        self._conns.append(conn)
        self.sent += 1
        self.tb.sim.schedule(self.interval_ns, self._tick)

    def _done(self, conn: MptcpConnection) -> None:
        if conn.fct_ns is not None:
            self.fcts_ns.append(conn.fct_ns)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> tuple:
        return tuple(f for conn in self._conns for f in conn.flow_ids())

    def delivered_by_flow(self) -> dict:
        out: dict = {}
        for conn in self._conns:
            out.update(conn.delivered_by_flow())
        return out

    def delivered_bytes(self) -> int:
        return sum(conn.delivered_bytes() for conn in self._conns)


def format_table(headers: List[str], rows: List[List[object]]) -> str:
    """Plain-text table for experiment output, GitHub-markdown style."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)
