"""Table 2: east-west traffic coexisting with north-south cross
traffic.

A stride(8) elephant workload plus periodic mice runs while every
server also sends ECMP-balanced flows to WAN-limited (100 Mbps) remote
users hanging off the spines.  Reported: east-west mice FCT percentiles
(normalized to ECMP) and mean elephant throughput.  Paper: Presto cuts
tail FCT ~86-87%, MPTCP hits RTO timeouts at the tail, and throughputs
are 5.7 / 7.4 / 8.2 / 8.9 Gbps for ECMP / MPTCP / Presto / Optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    fct_percentiles,
    normalize_to,
)
from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.collectors import ThroughputMeter
from repro.metrics.stats import mean
from repro.units import KB, msec, usec
from repro.workloads.northsouth import NorthSouthWorkload
from repro.workloads.synthetic import stride_pairs

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")


@dataclass
class NorthSouthResult:
    scheme: str
    mean_elephant_tput_bps: float
    mice_fcts_ns: List[int] = field(default_factory=list)
    mice_timeout_fraction: float = 0.0

    def mice_percentiles_ms(self) -> Dict[str, float]:
        return fct_percentiles(self.mice_fcts_ns)


def run_northsouth(
    scheme: str,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    ns_interval_ns: int = msec(1),
    mice_interval_ns: int = msec(5),
) -> NorthSouthResult:
    rates: List[float] = []
    fcts: List[int] = []
    timeout_like = 0
    for seed in seeds:
        cfg = TestbedConfig(scheme=scheme, seed=seed)
        tb = Testbed(cfg)
        ns = None
        if scheme != "optimal":
            # north-south users hang off spines; the single switch has none
            ns = NorthSouthWorkload(tb, tb.streams.stream("northsouth"),
                                    interval_ns=ns_interval_ns)
            ns.start()
        meter = ThroughputMeter()
        apps = []
        rng = tb.streams.stream("starts")
        for src, dst in stride_pairs(16, 8):
            app = tb.add_elephant(src, dst, start_ns=rng.randrange(usec(500)))
            apps.append(app)
            meter.track(app)
        mice_apps = [
            tb.add_mice(src, dst, size_bytes=50 * KB,
                        interval_ns=mice_interval_ns, start_ns=warm_ns // 2)
            for src, dst in stride_pairs(16, 8)[::4]
        ]
        tb.run(warm_ns)
        meter.mark_start(tb.sim.now)
        tb.run(warm_ns + measure_ns)
        meter.mark_end(tb.sim.now)
        flow_rates = meter.flow_rates_bps()
        rates.extend(meter.transfer_rate_bps(app, flow_rates) for app in apps)
        run_fcts = [f for m in mice_apps for f in m.fcts_ns]
        fcts.extend(run_fcts)
        # "TIMEOUT" detection: FCTs that ate at least one RTO floor
        timeout_like += sum(1 for f in run_fcts if f >= cfg.tcp.min_rto_ns)
    return NorthSouthResult(
        scheme=scheme,
        mean_elephant_tput_bps=mean(rates),
        mice_fcts_ns=fcts,
        mice_timeout_fraction=timeout_like / max(1, len(fcts)),
    )


def run_table2(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, NorthSouthResult]:
    return {s: run_northsouth(s, seeds, warm_ns, measure_ns) for s in schemes}


def table2_normalized(results: Dict[str, NorthSouthResult]) -> Dict[str, Dict[str, float]]:
    base = results["ecmp"].mice_percentiles_ms()
    return {
        scheme: normalize_to(base, res.mice_percentiles_ms())
        for scheme, res in results.items()
        if scheme != "ecmp"
    }
