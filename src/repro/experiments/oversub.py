"""Figs 10-12: the oversubscription benchmark (Fig 4b topology).

Two spines, two leaves; the host-pair count sweeps 2..8 so the
leaf-to-spine fabric is 1x to 4x oversubscribed.  Reported per scheme:
mean elephant throughput (Fig 10), RTT samples (Fig 11), loss rate
(Fig 12a), fairness (Fig 12b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    RunResult,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import jain_fairness, mean

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")


@dataclass
class OversubPoint:
    scheme: str
    n_pairs: int
    mean_tput_bps: float
    loss_rate: float
    fairness: float
    rtts_ns: List[int] = field(default_factory=list)

    @property
    def oversubscription(self) -> float:
        """Host pairs over spine paths (2): 1.0x at 2 pairs, 4.0x at 8."""
        return self.n_pairs / 2.0


def run_oversub_point(
    scheme: str,
    n_pairs: int,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
) -> OversubPoint:
    pairs = [(i, n_pairs + i) for i in range(n_pairs)]
    probe_pairs = [(0, n_pairs)] if with_probes else []
    runs: List[RunResult] = []
    for seed in seeds:
        cfg = TestbedConfig(
            scheme=scheme, n_spines=2, n_leaves=2, hosts_per_leaf=n_pairs,
            seed=seed,
        )
        runs.append(
            run_elephant_workload(
                cfg, pairs, warm_ns, measure_ns, probe_pairs=probe_pairs
            )
        )
    per_flow = [r for run in runs for r in run.per_pair_rates_bps]
    return OversubPoint(
        scheme=scheme,
        n_pairs=n_pairs,
        mean_tput_bps=mean(per_flow),
        loss_rate=mean([run.loss_rate for run in runs]),
        fairness=jain_fairness(per_flow),
        rtts_ns=[r for run in runs for r in run.rtts_ns],
    )


def run_oversub(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    pair_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, List[OversubPoint]]:
    return {
        scheme: [
            run_oversub_point(scheme, n, seeds, warm_ns, measure_ns)
            for n in pair_counts
        ]
        for scheme in schemes
    }
