"""Figs 10-12: the oversubscription benchmark (Fig 4b topology).

Two spines, two leaves; the host-pair count sweeps 2..8 so the
leaf-to-spine fabric is 1x to 4x oversubscribed.  Reported per scheme:
mean elephant throughput (Fig 10), RTT samples (Fig 11), loss rate
(Fig 12a), fairness (Fig 12b).

Like the scalability sweep, the unit of work is one (scheme, pair
count, seed) simulation — :func:`run_oversub_seed` — submitted through
the parallel runner; serial entry points wrap the same function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    RunResult,
    SweepOptions,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import jain_fairness, mean
from repro.runner import JobSpec, ResultStore
from repro.telemetry import TelemetryConfig

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")


@dataclass
class OversubPoint:
    scheme: str
    n_pairs: int
    mean_tput_bps: float
    loss_rate: float
    fairness: float
    rtts_ns: List[int] = field(default_factory=list)

    @property
    def oversubscription(self) -> float:
        """Host pairs over spine paths (2): 1.0x at 2 pairs, 4.0x at 8."""
        return self.n_pairs / 2.0


def oversub_config(
    scheme: str, n_pairs: int, seed: int,
    fidelity: Optional[str] = None,
) -> TestbedConfig:
    """The Fig 4b testbed for one sweep cell: 2 spines, n_pairs host
    pairs per leaf."""
    return TestbedConfig(
        scheme=scheme, n_spines=2, n_leaves=2, hosts_per_leaf=n_pairs,
        seed=seed, fidelity=fidelity,
    )


def run_oversub_seed(
    cfg: TestbedConfig,
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """One (scheme, pair count, seed) trial — the picklable job unit."""
    n_pairs = cfg.hosts_per_leaf
    pairs = [(i, n_pairs + i) for i in range(n_pairs)]
    probe_pairs = [(0, n_pairs)] if with_probes else []
    return run_elephant_workload(
        cfg, pairs, warm_ns, measure_ns, probe_pairs=probe_pairs,
        telemetry=telemetry,
    )


def _point_from_runs(
    scheme: str, n_pairs: int, runs: Sequence[RunResult]
) -> OversubPoint:
    per_flow = [r for run in runs for r in run.per_pair_rates_bps]
    return OversubPoint(
        scheme=scheme,
        n_pairs=n_pairs,
        mean_tput_bps=mean(per_flow),
        loss_rate=mean([run.loss_rate for run in runs]),
        fairness=jain_fairness(per_flow),
        rtts_ns=[r for run in runs for r in run.rtts_ns],
    )


def run_oversub_point(
    scheme: str,
    n_pairs: int,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
) -> OversubPoint:
    runs = [
        run_oversub_seed(
            oversub_config(scheme, n_pairs, seed),
            warm_ns, measure_ns, with_probes,
        )
        for seed in seeds
    ]
    return _point_from_runs(scheme, n_pairs, runs)


def oversub_specs(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    pair_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
) -> List[JobSpec]:
    """The full grid as runner jobs, ordered scheme > pair count > seed.

    Per-cell telemetry joins a job's kwargs only when set (see
    :meth:`SweepOptions.cell_kwargs`), so default sweeps keep their
    historical content hashes (cache keys stay warm); ``fidelity``
    rides inside each cell's config."""
    opts = SweepOptions(telemetry=telemetry, fidelity=fidelity)
    specs = []
    for scheme in schemes:
        for n_pairs in pair_counts:
            for seed in seeds:
                label = f"oversub/{scheme}/pairs{n_pairs}/seed{seed}"
                specs.append(JobSpec.make(
                    run_oversub_seed,
                    cfg=oversub_config(scheme, n_pairs, seed, fidelity),
                    label=label,
                    warm_ns=warm_ns,
                    measure_ns=measure_ns,
                    with_probes=with_probes,
                    **opts.cell_kwargs(label),
                ))
    return specs


def run_oversub(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    pair_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
    service: Optional[str] = None,
) -> Dict[str, List[OversubPoint]]:
    """The full Figs 10-12 grid, fanned out through the runner."""
    opts = SweepOptions(jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, retries=retries, log=log,
                        telemetry=telemetry, fidelity=fidelity,
                        service=service)
    specs = oversub_specs(schemes, pair_counts, seeds, warm_ns, measure_ns,
                          telemetry=telemetry, fidelity=fidelity)
    runs = opts.execute(specs)
    grid: Dict[str, List[OversubPoint]] = {}
    it = iter(runs)
    for scheme in schemes:
        grid[scheme] = [
            _point_from_runs(scheme, n_pairs, [next(it) for _ in seeds])
            for n_pairs in pair_counts
        ]
    return grid
