"""Fig 14: Presto + shadow MACs (end-to-end paths) vs Presto + per-hop
ECMP hashing on the flowcell ID.

Stride(8) on the Clos.  Paper: 9.3 vs 8.9 Gbps, and the shadow-MAC
variant's RTT distribution is visibly better because deterministic
round robin avoids the transient collisions random per-hop hashing
allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import mean, percentile
from repro.workloads.synthetic import stride_pairs

DEFAULT_SCHEMES = ("presto", "presto_ecmp")


@dataclass
class PerHopResult:
    scheme: str
    mean_tput_bps: float
    rtts_ns: List[int] = field(default_factory=list)

    def rtt_p99_ms(self) -> float:
        return percentile(self.rtts_ns, 99) / 1e6 if self.rtts_ns else 0.0


def run_perhop_cmp(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, PerHopResult]:
    results = {}
    for scheme in schemes:
        rates: List[float] = []
        rtts: List[int] = []
        for seed in seeds:
            cfg = TestbedConfig(scheme=scheme, seed=seed)
            run = run_elephant_workload(
                cfg,
                stride_pairs(16, 8),
                warm_ns,
                measure_ns,
                probe_pairs=[(0, 8), (5, 13)],
            )
            rates.extend(run.per_pair_rates_bps)
            rtts.extend(run.rtts_ns)
        results[scheme] = PerHopResult(scheme, mean(rates), rtts)
    return results
