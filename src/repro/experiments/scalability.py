"""Figs 7-9: the scalability benchmark (Fig 4a topology).

Path count (= spine count) sweeps 2..8 with one L1->L2 host pair per
path.  Per scheme we report mean elephant throughput (Fig 7), RTT
samples (Fig 8), loss rate (Fig 9a) and Jain fairness (Fig 9b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    RunResult,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import jain_fairness, mean

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")


@dataclass
class ScalabilityPoint:
    scheme: str
    n_paths: int
    mean_tput_bps: float
    loss_rate: float
    fairness: float
    rtts_ns: List[int] = field(default_factory=list)


def run_scalability_point(
    scheme: str,
    n_paths: int,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
) -> ScalabilityPoint:
    """One (scheme, path count) cell of Figs 7-9, averaged over seeds."""
    pairs = [(i, n_paths + i) for i in range(n_paths)]
    probe_pairs = [(0, n_paths)] if with_probes else []
    runs: List[RunResult] = []
    for seed in seeds:
        cfg = TestbedConfig(
            scheme=scheme, n_spines=n_paths, n_leaves=2, hosts_per_leaf=n_paths,
            seed=seed,
        )
        runs.append(
            run_elephant_workload(
                cfg, pairs, warm_ns, measure_ns, probe_pairs=probe_pairs
            )
        )
    per_flow = [r for run in runs for r in run.per_pair_rates_bps]
    return ScalabilityPoint(
        scheme=scheme,
        n_paths=n_paths,
        mean_tput_bps=mean(per_flow),
        loss_rate=mean([run.loss_rate for run in runs]),
        fairness=jain_fairness(per_flow),
        rtts_ns=[r for run in runs for r in run.rtts_ns],
    )


def run_scalability(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    path_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[str, List[ScalabilityPoint]]:
    """The full Figs 7-9 grid."""
    return {
        scheme: [
            run_scalability_point(scheme, n, seeds, warm_ns, measure_ns)
            for n in path_counts
        ]
        for scheme in schemes
    }
