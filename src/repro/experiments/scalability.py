"""Figs 7-9: the scalability benchmark (Fig 4a topology).

Path count (= spine count) sweeps 2..8 with one L1->L2 host pair per
path.  Per scheme we report mean elephant throughput (Fig 7), RTT
samples (Fig 8), loss rate (Fig 9a) and Jain fairness (Fig 9b).

The sweep's unit of work is one (scheme, path count, seed) simulation
— :func:`run_scalability_seed` — which the parallel runner
(:mod:`repro.runner`) executes across worker processes; the serial
entry points are thin wrappers over the same function, so parallel and
serial results are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    RunResult,
    SweepOptions,
    run_elephant_workload,
)
from repro.experiments.harness import TestbedConfig
from repro.metrics.stats import jain_fairness, mean
from repro.runner import JobSpec, ResultStore
from repro.telemetry import TelemetryConfig

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")


@dataclass
class ScalabilityPoint:
    scheme: str
    n_paths: int
    mean_tput_bps: float
    loss_rate: float
    fairness: float
    rtts_ns: List[int] = field(default_factory=list)


def scalability_config(
    scheme: str, n_paths: int, seed: int,
    fidelity: Optional[str] = None,
) -> TestbedConfig:
    """The Fig 4a testbed for one sweep cell: n_paths spines, one
    L1->L2 host pair per path.  ``fidelity="packet"`` normalizes to the
    None default inside TestbedConfig, so explicit-packet cells hash —
    and hit the ResultStore — exactly like historic ones."""
    return TestbedConfig(
        scheme=scheme, n_spines=n_paths, n_leaves=2, hosts_per_leaf=n_paths,
        seed=seed, fidelity=fidelity,
    )


def run_scalability_seed(
    cfg: TestbedConfig,
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunResult:
    """One (scheme, path count, seed) trial — the picklable job unit."""
    n_paths = cfg.n_spines
    pairs = [(i, n_paths + i) for i in range(n_paths)]
    probe_pairs = [(0, n_paths)] if with_probes else []
    return run_elephant_workload(
        cfg, pairs, warm_ns, measure_ns, probe_pairs=probe_pairs,
        telemetry=telemetry,
    )


def _point_from_runs(
    scheme: str, n_paths: int, runs: Sequence[RunResult]
) -> ScalabilityPoint:
    per_flow = [r for run in runs for r in run.per_pair_rates_bps]
    return ScalabilityPoint(
        scheme=scheme,
        n_paths=n_paths,
        mean_tput_bps=mean(per_flow),
        loss_rate=mean([run.loss_rate for run in runs]),
        fairness=jain_fairness(per_flow),
        rtts_ns=[r for run in runs for r in run.rtts_ns],
    )


def run_scalability_point(
    scheme: str,
    n_paths: int,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
) -> ScalabilityPoint:
    """One (scheme, path count) cell of Figs 7-9, averaged over seeds."""
    runs = [
        run_scalability_seed(
            scalability_config(scheme, n_paths, seed),
            warm_ns, measure_ns, with_probes,
        )
        for seed in seeds
    ]
    return _point_from_runs(scheme, n_paths, runs)


def scalability_specs(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    path_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_probes: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
) -> List[JobSpec]:
    """The full grid as runner jobs, ordered scheme > path count > seed.

    Per-cell telemetry joins a job's kwargs only when set (see
    :meth:`SweepOptions.cell_kwargs`), so default sweeps keep their
    historical content hashes (cache keys stay warm); ``fidelity``
    rides inside each cell's config (where "packet" normalizes to the
    hash-preserving None)."""
    opts = SweepOptions(telemetry=telemetry, fidelity=fidelity)
    specs = []
    for scheme in schemes:
        for n_paths in path_counts:
            for seed in seeds:
                label = f"scalability/{scheme}/paths{n_paths}/seed{seed}"
                specs.append(JobSpec.make(
                    run_scalability_seed,
                    cfg=scalability_config(scheme, n_paths, seed, fidelity),
                    label=label,
                    warm_ns=warm_ns,
                    measure_ns=measure_ns,
                    with_probes=with_probes,
                    **opts.cell_kwargs(label),
                ))
    return specs


def run_scalability(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    path_counts: Sequence[int] = (2, 4, 6, 8),
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
    service: Optional[str] = None,
) -> Dict[str, List[ScalabilityPoint]]:
    """The full Figs 7-9 grid, fanned out through the runner.

    ``jobs=1`` (the default) preserves the historical serial behavior;
    ``jobs=N`` runs the (scheme x path x seed) cells on N worker
    processes, and ``store`` makes the sweep resumable.
    """
    opts = SweepOptions(jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, retries=retries, log=log,
                        telemetry=telemetry, fidelity=fidelity,
                        service=service)
    specs = scalability_specs(
        schemes, path_counts, seeds, warm_ns, measure_ns,
        telemetry=telemetry, fidelity=fidelity,
    )
    runs = opts.execute(specs)
    grid: Dict[str, List[ScalabilityPoint]] = {}
    it = iter(runs)
    for scheme in schemes:
        grid[scheme] = [
            _point_from_runs(scheme, n_paths, [next(it) for _ in seeds])
            for n_paths in path_counts
        ]
    return grid
