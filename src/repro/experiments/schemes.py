"""Declarative scheme registry.

A *scheme* bundles everything the paper varies between compared
systems: how the edge picks paths (the load balancer factory), which
receiver GRO runs, the transport (TCP vs MPTCP), whether the topology
is the "Optimal" single switch, and how leaf ECMP groups hash.

Adding a scheme no longer touches the harness::

    from repro.experiments.schemes import Scheme, register

    register(Scheme(
        name="flowlet50us",
        description="flowlet switching, 50 us gap",
        make_lb=lambda cfg, host_id, rng, sim: FlowletLb(
            host_id, sim, gap_ns=usec(50), rng=rng),
    ))

and it is immediately runnable everywhere (``Testbed``, the sweep
CLI's ``--schemes``, plotting scripts) because ``SCHEMES`` in
:mod:`repro.experiments.harness` is a live view of this registry.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.lb.base import LoadBalancer
from repro.lb.diffflow import DiffFlowLb
from repro.lb.ecmp import EcmpLb
from repro.lb.elephant_iso import ElephantIsoLb
from repro.lb.flowlet import FlowletLb
from repro.lb.perpacket import PerPacketLb
from repro.lb.presto_ecmp import PrestoEcmpLb
from repro.lb.repflow import RepFlowLb
from repro.net.switch import HASH_FLOW, HASH_FLOWCELL
from repro.presto.vswitch import PrestoLb
from repro.units import usec

#: LB factory signature: (cfg, host_id, rng, sim) -> LoadBalancer
LbFactory = Callable[..., LoadBalancer]


@dataclass(frozen=True)
class Scheme:
    """One comparable system, declaratively."""

    name: str
    #: builds each host's edge load balancer
    make_lb: LbFactory
    description: str = ""
    #: receiver GRO this scheme runs by default: "official" | "presto"
    gro: str = "official"
    #: transport transfers use: "tcp" | "mptcp"
    transport: str = "tcp"
    #: "Optimal" runs on one non-blocking switch instead of the Clos
    single_switch: bool = False
    #: hash mode for leaf ECMP groups over the uplinks
    leaf_hash_mode: str = HASH_FLOW


#: transports the harness knows how to open transfers for
TRANSPORTS = ("tcp", "mptcp", "repflow")

_REGISTRY: Dict[str, Scheme] = {}
#: scheme name -> the module whose import registered it, so a duplicate
#: registration error can name its rival (import-order debugging)
_REGISTERED_BY: Dict[str, str] = {}


def register(scheme: Scheme) -> Scheme:
    """Add ``scheme`` to the registry.  Name collisions are an error —
    re-registering would silently change what every experiment runs."""
    if scheme.name in _REGISTRY:
        raise ValueError(
            f"scheme {scheme.name!r} is already registered (by "
            f"{_REGISTERED_BY.get(scheme.name, '<unknown module>')}); "
            f"pick another name")
    if scheme.gro not in ("official", "presto"):
        raise ValueError(
            f"scheme {scheme.name!r}: gro must be 'official' or 'presto', "
            f"got {scheme.gro!r}")
    if scheme.transport not in TRANSPORTS:
        raise ValueError(
            f"scheme {scheme.name!r}: transport must be one of "
            f"{TRANSPORTS}, got {scheme.transport!r}")
    _REGISTRY[scheme.name] = scheme
    caller = sys._getframe(1).f_globals.get("__name__", "<unknown module>")
    _REGISTERED_BY[scheme.name] = caller
    return scheme


def get_scheme(name: str) -> Scheme:
    scheme = _REGISTRY.get(name)
    if scheme is None:
        raise ValueError(
            f"unknown scheme {name!r}; pick from {scheme_names()} "
            f"(or register it via repro.experiments.schemes.register)")
    return scheme


def scheme_names() -> Tuple[str, ...]:
    """All registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    return name in _REGISTRY


# --- the paper's eight comparable systems ------------------------------------
# Registration order is the canonical SCHEMES order experiments iterate
# in, so keep the original tuple's sequence.

register(Scheme(
    name="ecmp",
    description="per-flow ECMP hashing at the leaves (the baseline)",
    make_lb=lambda cfg, host_id, rng, sim: EcmpLb(host_id, rng),
))

register(Scheme(
    name="presto",
    description="64 KB flowcells sprayed over shadow-MAC spanning trees",
    make_lb=lambda cfg, host_id, rng, sim: PrestoLb(
        host_id, rng, threshold=cfg.flowcell_bytes, mode=cfg.presto_mode),
    gro="presto",
))

register(Scheme(
    name="mptcp",
    description="MPTCP with per-subflow ECMP paths (8 subflows)",
    make_lb=lambda cfg, host_id, rng, sim: EcmpLb(host_id, rng),
    transport="mptcp",
))

register(Scheme(
    name="optimal",
    description="all hosts on one non-blocking switch (upper bound)",
    make_lb=lambda cfg, host_id, rng, sim: LoadBalancer(host_id, rng),
    single_switch=True,
))

register(Scheme(
    name="flowlet100us",
    description="flowlet switching with a 100 us idle gap",
    make_lb=lambda cfg, host_id, rng, sim: FlowletLb(
        host_id, sim, gap_ns=usec(100), rng=rng),
))

register(Scheme(
    name="flowlet500us",
    description="flowlet switching with a 500 us idle gap",
    make_lb=lambda cfg, host_id, rng, sim: FlowletLb(
        host_id, sim, gap_ns=usec(500), rng=rng),
))

register(Scheme(
    name="perpacket",
    description="per-packet random spraying (maximal reordering)",
    make_lb=lambda cfg, host_id, rng, sim: PerPacketLb(host_id, rng),
))

register(Scheme(
    name="presto_ecmp",
    description="Presto flowcells with per-hop (flow, cell) ECMP hashing",
    make_lb=lambda cfg, host_id, rng, sim: PrestoEcmpLb(
        host_id, rng, threshold=cfg.flowcell_bytes),
    gro="presto",
    leaf_hash_mode=HASH_FLOWCELL,
))

# --- the scheme zoo: related-work competitors (see EXPERIMENTS.md
# "Tournament" for design summaries + citations) -------------------------------

register(Scheme(
    name="diffflow",
    description="DiffFlow: mice sprayed per-packet, elephants pinned "
                "via ECMP past a 100 KB cutoff",
    make_lb=lambda cfg, host_id, rng, sim: DiffFlowLb(
        host_id, rng,
        **({} if cfg.zoo_threshold_bytes is None
           else {"threshold": cfg.zoo_threshold_bytes})),
))

register(Scheme(
    name="repflow",
    description="RepFlow: mice duplicated onto a disjoint second tree, "
                "first finisher wins",
    make_lb=lambda cfg, host_id, rng, sim: RepFlowLb(host_id, rng),
    transport="repflow",
))

register(Scheme(
    name="elephant_iso",
    description="RDNA-style isolation: detected elephants moved to "
                "dedicated source-routed trees, mice share the rest",
    make_lb=lambda cfg, host_id, rng, sim: ElephantIsoLb(
        host_id, rng,
        **({} if cfg.zoo_threshold_bytes is None
           else {"threshold": cfg.zoo_threshold_bytes})),
    gro="presto",
))
