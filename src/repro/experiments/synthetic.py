"""Figs 15-16: the synthetic workload suite on the 16-host Clos.

Fig 15: mean elephant throughput for shuffle / random / stride /
random-bijection under ECMP, MPTCP, Presto and Optimal.

Fig 16: mice (50 KB) flow completion time CDFs alongside the stride,
random-bijection and shuffle elephants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    fct_percentiles,
    run_elephant_workload,
)
from repro.experiments.harness import Testbed, TestbedConfig

from repro.metrics.stats import mean
from repro.sim.rand import RandomStreams
from repro.units import KB, MB, SEC, msec
from repro.workloads.synthetic import (
    random_bijection_pairs,
    random_pairs,
    shuffle_workload,
    stride_pairs,
)

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")
WORKLOADS = ("shuffle", "random", "stride", "bijection")


@dataclass
class SyntheticResult:
    scheme: str
    workload: str
    mean_elephant_tput_bps: float
    mice_fcts_ns: List[int] = field(default_factory=list)

    def mice_percentiles_ms(self) -> Dict[str, float]:
        return fct_percentiles(self.mice_fcts_ns)


def _pairs_for(workload: str, n_hosts: int, hosts_per_pod: int, seed: int):
    rng = RandomStreams(seed).stream(f"workload-{workload}")
    if workload == "stride":
        return stride_pairs(n_hosts, 8)
    if workload == "random":
        return random_pairs(n_hosts, hosts_per_pod, rng)
    if workload == "bijection":
        return random_bijection_pairs(n_hosts, hosts_per_pod, rng)
    raise ValueError(f"unknown workload {workload!r}")


def run_synthetic(
    scheme: str,
    workload: str,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_mice: bool = True,
    mice_interval_ns: int = msec(5),
) -> SyntheticResult:
    """One (scheme, workload) cell of Figs 15/16."""
    if workload == "shuffle":
        return _run_shuffle(scheme, seeds, warm_ns, measure_ns, with_mice,
                            mice_interval_ns)
    rates: List[float] = []
    fcts: List[int] = []
    for seed in seeds:
        cfg = TestbedConfig(scheme=scheme, seed=seed)
        pairs = _pairs_for(workload, 16, 4, seed)
        mice_pairs = pairs[::4] if with_mice else []
        run = run_elephant_workload(
            cfg, pairs, warm_ns, measure_ns,
            mice_pairs=mice_pairs, mice_interval_ns=mice_interval_ns,
        )
        rates.extend(run.per_pair_rates_bps)
        fcts.extend(run.mice_fcts_ns)
    return SyntheticResult(scheme, workload, mean(rates), fcts)


def _run_shuffle(
    scheme: str,
    seeds: Sequence[int],
    warm_ns: int,
    measure_ns: int,
    with_mice: bool,
    mice_interval_ns: int,
    transfer_bytes: int = 8 * MB,
) -> SyntheticResult:
    """Shuffle is closed-loop (2 concurrent sized transfers per host), so
    it cannot reuse the open-loop elephant runner.  Throughput is the
    aggregate receive rate per host over the measurement window (the
    receiver NIC is the bottleneck, as the paper notes)."""
    rates: List[float] = []
    fcts: List[int] = []
    for seed in seeds:
        cfg = TestbedConfig(scheme=scheme, seed=seed)
        tb = Testbed(cfg)
        rng = tb.streams.stream("shuffle")
        wl = shuffle_workload(tb, transfer_bytes, concurrent=2, rng=rng)
        wl.start()
        mice_apps = []
        if with_mice:
            for src, dst in stride_pairs(16, 8)[::4]:
                mice_apps.append(
                    tb.add_mice(src, dst, size_bytes=50 * KB,
                                interval_ns=mice_interval_ns,
                                start_ns=warm_ns // 2)
                )
        delivered_start: Dict[int, int] = {}
        tb.run(warm_ns)
        for h in tb.hosts:
            delivered_start[h.host_id] = sum(
                r.delivered_bytes for r in h.receivers.values()
            )
        tb.run(warm_ns + measure_ns)
        for h in tb.hosts:
            end = sum(r.delivered_bytes for r in h.receivers.values())
            rates.append((end - delivered_start[h.host_id]) * 8 * SEC / measure_ns)
        fcts.extend(f for m in mice_apps for f in m.fcts_ns)
    return SyntheticResult(scheme, "shuffle", mean(rates), fcts)


def run_figure15_16(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = WORKLOADS,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
) -> Dict[Tuple[str, str], SyntheticResult]:
    return {
        (scheme, workload): run_synthetic(scheme, workload, seeds, warm_ns, measure_ns)
        for workload in workloads
        for scheme in schemes
    }
