"""Figs 15-16: the synthetic workload suite on the 16-host Clos.

Fig 15: mean elephant throughput for shuffle / random / stride /
random-bijection under ECMP, MPTCP, Presto and Optimal.

Fig 16: mice (50 KB) flow completion time CDFs alongside the stride,
random-bijection and shuffle elephants.

The sweep's unit of work is one (scheme, workload, seed) simulation —
:func:`run_synthetic_seed` — submitted through the parallel runner;
:func:`run_synthetic` keeps its serial per-cell signature as a thin
wrapper over the same function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    SweepOptions,
    fct_percentiles,
    run_elephant_workload,
)
from repro.experiments.harness import Testbed, TestbedConfig

from repro.metrics.stats import mean
from repro.runner import JobSpec, ResultStore
from repro.sim.rand import RandomStreams
from repro.telemetry import TelemetryConfig
from repro.units import KB, MB, SEC, msec
from repro.workloads.synthetic import (
    random_bijection_pairs,
    random_pairs,
    shuffle_workload,
    stride_pairs,
)

DEFAULT_SCHEMES = ("ecmp", "mptcp", "presto", "optimal")
WORKLOADS = ("shuffle", "random", "stride", "bijection")


@dataclass
class SyntheticResult:
    scheme: str
    workload: str
    mean_elephant_tput_bps: float
    mice_fcts_ns: List[int] = field(default_factory=list)

    def mice_percentiles_ms(self) -> Dict[str, float]:
        return fct_percentiles(self.mice_fcts_ns)


@dataclass
class SyntheticSeedRun:
    """One (scheme, workload, seed) trial's raw samples."""

    scheme: str
    workload: str
    seed: int
    rates_bps: List[float] = field(default_factory=list)
    mice_fcts_ns: List[int] = field(default_factory=list)
    #: telemetry snapshot (omitted from serialized output when off)
    metrics: Optional[Dict] = field(
        default=None, metadata={"omit_if_none": True})


def _stride_for(n_hosts: int) -> int:
    """The paper's stride(8) on the 16-host testbed; scaled-down
    fabrics fall back to half the host count so the pattern still
    crosses racks."""
    return 8 if n_hosts > 8 else max(1, n_hosts // 2)


def _pairs_for(workload: str, n_hosts: int, hosts_per_pod: int, seed: int):
    rng = RandomStreams(seed).stream(f"workload-{workload}")
    if workload == "stride":
        return stride_pairs(n_hosts, _stride_for(n_hosts))
    if workload == "random":
        return random_pairs(n_hosts, hosts_per_pod, rng)
    if workload == "bijection":
        return random_bijection_pairs(n_hosts, hosts_per_pod, rng)
    raise ValueError(f"unknown workload {workload!r}")


def _check_workload(workload: str) -> None:
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")


def run_synthetic_seed(
    cfg: TestbedConfig,
    workload: str,
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_mice: bool = True,
    mice_interval_ns: int = msec(5),
    shuffle_transfer_bytes: int = 8 * MB,
    telemetry: Optional[TelemetryConfig] = None,
) -> SyntheticSeedRun:
    """One (scheme, workload, seed) trial — the picklable job unit."""
    _check_workload(workload)
    if workload == "shuffle":
        return _run_shuffle_seed(
            cfg, warm_ns, measure_ns, with_mice, mice_interval_ns,
            shuffle_transfer_bytes, telemetry=telemetry,
        )
    spec = cfg.topology_spec()
    pairs = _pairs_for(workload, spec.n_hosts(), spec.hosts_per_edge(),
                       cfg.seed)
    mice_pairs = pairs[::4] if with_mice else []
    run = run_elephant_workload(
        cfg, pairs, warm_ns, measure_ns,
        mice_pairs=mice_pairs, mice_interval_ns=mice_interval_ns,
        telemetry=telemetry,
    )
    return SyntheticSeedRun(
        scheme=cfg.scheme, workload=workload, seed=cfg.seed,
        rates_bps=list(run.per_pair_rates_bps),
        mice_fcts_ns=list(run.mice_fcts_ns),
        metrics=run.metrics,
    )


def _run_shuffle_seed(
    cfg: TestbedConfig,
    warm_ns: int,
    measure_ns: int,
    with_mice: bool,
    mice_interval_ns: int,
    transfer_bytes: int,
    telemetry: Optional[TelemetryConfig] = None,
) -> SyntheticSeedRun:
    """Shuffle is closed-loop (2 concurrent sized transfers per host), so
    it cannot reuse the open-loop elephant runner.  Throughput is the
    aggregate receive rate per host over the measurement window (the
    receiver NIC is the bottleneck, as the paper notes)."""
    tb = Testbed(cfg, telemetry=telemetry)
    rng = tb.streams.stream("shuffle")
    wl = shuffle_workload(tb, transfer_bytes, concurrent=2, rng=rng)
    wl.start()
    mice_apps = []
    if with_mice:
        n_hosts = cfg.topology_spec().n_hosts()
        for src, dst in stride_pairs(n_hosts, _stride_for(n_hosts))[::4]:
            mice_apps.append(
                tb.add_mice(src, dst, size_bytes=50 * KB,
                            interval_ns=mice_interval_ns,
                            start_ns=warm_ns // 2)
            )
    delivered_start: Dict[int, int] = {}
    tb.run(warm_ns)
    for h in tb.hosts:
        delivered_start[h.host_id] = sum(
            r.delivered_bytes for r in h.receivers.values()
        )
    rates: List[float] = []
    tb.run(warm_ns + measure_ns)
    for h in tb.hosts:
        end = sum(r.delivered_bytes for r in h.receivers.values())
        rates.append((end - delivered_start[h.host_id]) * 8 * SEC / measure_ns)
    snapshot = tb.telemetry.snapshot() if tb.telemetry.enabled else None
    tb.telemetry.export_trace()
    return SyntheticSeedRun(
        scheme=cfg.scheme, workload="shuffle", seed=cfg.seed,
        rates_bps=rates,
        mice_fcts_ns=[f for m in mice_apps for f in m.fcts_ns],
        metrics=snapshot,
    )


def _result_from_seed_runs(
    scheme: str, workload: str, seed_runs: Sequence[SyntheticSeedRun]
) -> SyntheticResult:
    rates = [r for run in seed_runs for r in run.rates_bps]
    fcts = [f for run in seed_runs for f in run.mice_fcts_ns]
    return SyntheticResult(scheme, workload, mean(rates), fcts)


def run_synthetic(
    scheme: str,
    workload: str,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_mice: bool = True,
    mice_interval_ns: int = msec(5),
) -> SyntheticResult:
    """One (scheme, workload) cell of Figs 15/16."""
    _check_workload(workload)
    seed_runs = [
        run_synthetic_seed(
            TestbedConfig(scheme=scheme, seed=seed), workload,
            warm_ns, measure_ns, with_mice, mice_interval_ns,
        )
        for seed in seeds
    ]
    return _result_from_seed_runs(scheme, workload, seed_runs)


def synthetic_specs(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = WORKLOADS,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    with_mice: bool = True,
    mice_interval_ns: int = msec(5),
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
) -> List[JobSpec]:
    """The full grid as runner jobs, ordered workload > scheme > seed.

    Per-cell telemetry joins a job's kwargs only when set (see
    :meth:`SweepOptions.cell_kwargs`), so default sweeps keep their
    historical content hashes (cache keys stay warm); ``fidelity``
    rides inside each cell's config."""
    for workload in workloads:
        _check_workload(workload)
    opts = SweepOptions(telemetry=telemetry, fidelity=fidelity)
    specs = []
    for workload in workloads:
        for scheme in schemes:
            for seed in seeds:
                label = f"synthetic/{workload}/{scheme}/seed{seed}"
                specs.append(JobSpec.make(
                    run_synthetic_seed,
                    cfg=TestbedConfig(scheme=scheme, seed=seed,
                                      fidelity=fidelity),
                    label=label,
                    workload=workload,
                    warm_ns=warm_ns,
                    measure_ns=measure_ns,
                    with_mice=with_mice,
                    mice_interval_ns=mice_interval_ns,
                    **opts.cell_kwargs(label),
                ))
    return specs


def run_figure15_16(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = WORKLOADS,
    seeds: Sequence[int] = (1, 2, 3),
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = None,
    service: Optional[str] = None,
) -> Dict[Tuple[str, str], SyntheticResult]:
    """The full Figs 15/16 grid, fanned out through the runner."""
    opts = SweepOptions(jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, retries=retries, log=log,
                        telemetry=telemetry, fidelity=fidelity,
                        service=service)
    specs = synthetic_specs(schemes, workloads, seeds, warm_ns, measure_ns,
                            telemetry=telemetry, fidelity=fidelity)
    runs = opts.execute(specs)
    grid: Dict[Tuple[str, str], SyntheticResult] = {}
    it = iter(runs)
    for workload in workloads:
        for scheme in schemes:
            seed_runs = [next(it) for _ in seeds]
            grid[(scheme, workload)] = _result_from_seed_runs(
                scheme, workload, seed_runs
            )
    return grid
