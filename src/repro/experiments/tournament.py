"""Standing tournament: every registered scheme, raced head-to-head.

The fabric sweep answers "how does Presto scale"; the tournament
answers "how does Presto place against the related-work field".  Every
registered scheme — the paper's eight plus the literature zoo
(DiffFlow, RepFlow, elephant isolation) — runs the same workload grid
(websearch / datamining traces + incast) over three fabrics (the
16-host Clos, an oversubscribed leaf-spine, a k=4 fat tree), at flow
fidelity so the full grid finishes in minutes.

Each (topology, workload, scheme, seed) trial is one
:func:`repro.experiments.fabric_sweep.run_fabric_cell` job submitted
through :mod:`repro.runner` — cached in the result store, fanned over
``--jobs`` workers or a ``--service`` coordinator, aggregated in-cell
by the bounded-memory P² collectors.  The driver then

* **ranks** schemes Borda-style: within each (topology, workload)
  cell, order by mean mice FCT (ascending, seed-averaged); a scheme's
  standing is its mean rank across all cells, wins broken by name;
* **checks** the paper's qualitative prediction — Presto's mice FCT at
  or below ECMP's in every trace-workload cell (incast is excluded:
  its fan-in bottleneck is the receiver access link, which no
  multipath scheme can widen);
* emits the whole thing as deterministic bytes: no timestamps, sorted
  keys, seed-order aggregation — so ``python -m
  repro.experiments.tournament --seeds 1,2,3`` reproduces the
  committed ``TOURNAMENT.json`` exactly, and nightly CI diffs the
  ranking against it.

RepFlow's "mice at or below ECMP" claim is checked by the
``tournament_ordering`` oracle (:mod:`repro.validate.oracles`) at
packet fidelity: the collision queueing RepFlow hedges against is
invisible to the fluid engine's smooth rate sharing, so the flow-level
grid here ranks it but does not gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import SweepOptions
from repro.experiments.fabric_sweep import (
    WORKLOADS,
    fabric_config,
    run_fabric_cell,
)
from repro.experiments.schemes import scheme_names
from repro.net.fabrics import as_spec
from repro.runner import JobSpec, ResultStore
from repro.runner.serialize import to_jsonable
from repro.telemetry import TelemetryConfig
from repro.units import msec

#: the three tournament fabrics: the paper's 16-host Clos shape, a
#: 2:1-oversubscribed leaf-spine (canonicalizes to clos-2x4x4), and
#: the smallest 3-tier fat tree
DEFAULT_TOPOLOGIES = (
    "clos:spines=4,leaves=4,hosts=4",
    "leaf-spine:spines=2,hosts=4,pods=4",
    "fat-tree:k=4",
)
DEFAULT_WORKLOADS = ("websearch", "datamining", "incast")
DEFAULT_SEEDS = (1, 2, 3)
DEFAULT_DURATION_NS = msec(5)
#: ``run_fabric_cell``'s incast fan-in default, mirrored here so small
#: fabrics can clamp it without touching full-size job hashes
DEFAULT_INCAST_FANIN = 8

#: workloads where the paper predicts multipath spraying improves mice
#: FCT; incast is excluded (receiver access link is the bottleneck)
ORDERED_WORKLOADS = ("websearch", "datamining")
#: per-cell Presto-vs-ECMP band: the committed grid holds at 1.0
#: (strictly at or below); the band absorbs seed-set changes when the
#: tournament is rerun with other seeds or durations
ORDERING_TOLERANCE = 1.05

TOURNAMENT_PATH = "TOURNAMENT.json"


@dataclass
class TournamentCell:
    """One (topology, workload, scheme) entry, seed-averaged."""

    topology: str
    workload: str
    scheme: str
    seeds: Tuple[int, ...]
    flows_started: int
    flows_completed: int
    #: mean over seeds of each seed's mean mice FCT (request FCT for
    #: incast); None when no flow completed in any seed
    mean_fct_ns: Optional[float]
    p50_fct_ns: Optional[float]
    p99_fct_ns: Optional[float]
    mean_elephant_fct_ns: Optional[float]


@dataclass
class SchemeStanding:
    """One scheme's final placement across the whole grid."""

    rank: int
    scheme: str
    #: Borda score: mean of per-cell ranks (lower is better)
    mean_rank: float
    #: cells where this scheme had the best mean mice FCT
    wins: int
    cells: int


@dataclass
class OrderingCheck:
    """One cell's paper-predicted ordering, machine-checked."""

    name: str
    topology: str
    workload: str
    scheme: str
    baseline: str
    ok: bool
    #: scheme mean FCT / baseline mean FCT (< 1 means faster)
    ratio: Optional[float]
    tolerance: float


@dataclass
class TournamentResult:
    """The whole tournament: grid spec, cells, standings, checks."""

    schemes: Tuple[str, ...]
    topologies: Tuple[str, ...]
    workloads: Tuple[str, ...]
    seeds: Tuple[int, ...]
    duration_ns: int
    load_scale: float
    fidelity: str
    cells: List[TournamentCell] = field(default_factory=list)
    standings: List[SchemeStanding] = field(default_factory=list)
    checks: List[OrderingCheck] = field(default_factory=list)
    checks_ok: bool = True


def tournament_specs(
    schemes: Sequence[str] = (),
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    duration_ns: int = DEFAULT_DURATION_NS,
    load_scale: float = 1.0,
    validate: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = "flow",
) -> List[JobSpec]:
    """The grid as runner jobs, ordered topology > workload > scheme >
    seed.  Inputs are validated up front so a typo fails before any
    job is queued."""
    schemes = tuple(schemes) or scheme_names()
    for scheme in schemes:
        if scheme not in scheme_names():
            raise ValueError(
                f"unknown scheme {scheme!r}; pick from {scheme_names()}")
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; pick from {WORKLOADS}")
    for topology in topologies:
        as_spec(topology)
    opts = SweepOptions(telemetry=telemetry, fidelity=fidelity)
    specs = []
    for topology in topologies:
        spec = as_spec(topology)
        slug = spec.slug()
        for workload in workloads:
            # incast needs out-of-rack workers; on fabrics smaller than
            # the default fan-in of 8, clamp to what exists rather than
            # crash the cell.  The kwarg is only added when it differs
            # from the default so full-size grids keep their job hashes.
            extra = {}
            if workload == "incast":
                pool = spec.n_hosts() - spec.hosts_per_edge()
                if pool < 1:
                    raise ValueError(
                        f"topology {topology!r} has no out-of-rack hosts "
                        f"for the incast workload")
                if pool < DEFAULT_INCAST_FANIN:
                    extra["fanin"] = pool
            for scheme in schemes:
                for seed in seeds:
                    label = (f"tournament/{slug}/{workload}/{scheme}"
                             f"/seed{seed}")
                    specs.append(JobSpec.make(
                        run_fabric_cell,
                        cfg=fabric_config(topology, scheme, seed, fidelity),
                        label=label,
                        workload=workload,
                        duration_ns=duration_ns,
                        load_scale=load_scale,
                        validate=validate,
                        **extra,
                        **opts.cell_kwargs(label),
                    ))
    return specs


def _mean(values: Sequence[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _aggregate_cell(
    topology: str,
    workload: str,
    scheme: str,
    seeds: Tuple[int, ...],
    per_seed: Sequence[Any],
) -> TournamentCell:
    def fct(key: str) -> Optional[float]:
        return _mean([c.fct_summary.get(key) for c in per_seed])

    return TournamentCell(
        topology=topology,
        workload=workload,
        scheme=scheme,
        seeds=seeds,
        flows_started=sum(c.flows_started for c in per_seed),
        flows_completed=sum(c.flows_completed for c in per_seed),
        mean_fct_ns=fct("mean"),
        p50_fct_ns=fct("p50"),
        p99_fct_ns=fct("p99"),
        mean_elephant_fct_ns=_mean(
            [c.elephant_summary.get("mean") for c in per_seed]),
    )


def rank_standings(cells: Sequence[TournamentCell],
                   schemes: Sequence[str]) -> List[SchemeStanding]:
    """Borda ranking: per (topology, workload) cell, schemes place by
    mean mice FCT ascending (no-result cells place last); the standing
    is the mean place across cells, ties broken by name."""
    by_cell: Dict[Tuple[str, str], List[TournamentCell]] = {}
    for cell in cells:
        by_cell.setdefault((cell.topology, cell.workload), []).append(cell)
    places: Dict[str, List[int]] = {s: [] for s in schemes}
    wins: Dict[str, int] = {s: 0 for s in schemes}
    for group in by_cell.values():
        ordered = sorted(
            group,
            key=lambda c: (c.mean_fct_ns if c.mean_fct_ns is not None
                           else float("inf"), c.scheme))
        for place, cell in enumerate(ordered, start=1):
            places[cell.scheme].append(place)
            if place == 1:
                wins[cell.scheme] += 1
    ranked = sorted(
        schemes,
        key=lambda s: (_mean(places[s]) if places[s] else float("inf"), s))
    return [
        SchemeStanding(
            rank=i,
            scheme=s,
            mean_rank=round(_mean(places[s]), 4) if places[s] else 0.0,
            wins=wins[s],
            cells=len(places[s]),
        )
        for i, s in enumerate(ranked, start=1)
    ]


def ordering_checks(
    cells: Sequence[TournamentCell],
    tolerance: float = ORDERING_TOLERANCE,
) -> List[OrderingCheck]:
    """Presto at or below ECMP (x ``tolerance``) on mean mice FCT, per
    trace-workload cell — the paper's headline prediction, as data."""
    by_key = {(c.topology, c.workload, c.scheme): c for c in cells}
    checks = []
    for (topology, workload, scheme), cell in sorted(by_key.items()):
        if scheme != "presto" or workload not in ORDERED_WORKLOADS:
            continue
        base = by_key.get((topology, workload, "ecmp"))
        if base is None:
            continue
        ratio = None
        ok = False
        if cell.mean_fct_ns is not None and base.mean_fct_ns:
            ratio = round(cell.mean_fct_ns / base.mean_fct_ns, 4)
            ok = ratio <= tolerance
        checks.append(OrderingCheck(
            name=f"presto_vs_ecmp/{as_spec(topology).slug()}/{workload}",
            topology=topology,
            workload=workload,
            scheme="presto",
            baseline="ecmp",
            ok=ok,
            ratio=ratio,
            tolerance=tolerance,
        ))
    return checks


def run_tournament(
    schemes: Sequence[str] = (),
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    duration_ns: int = DEFAULT_DURATION_NS,
    load_scale: float = 1.0,
    validate: bool = False,
    *,
    jobs: Optional[int] = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    telemetry: Optional[TelemetryConfig] = None,
    fidelity: Optional[str] = "flow",
    service: Optional[str] = None,
) -> TournamentResult:
    """Run the full grid through the runner and return the ranked,
    checked tournament."""
    schemes = tuple(schemes) or scheme_names()
    topologies = tuple(topologies)
    workloads = tuple(workloads)
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("seeds must name at least one seed")
    opts = SweepOptions(jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, retries=retries, log=log,
                        telemetry=telemetry, fidelity=fidelity,
                        service=service)
    specs = tournament_specs(schemes, topologies, workloads, seeds,
                             duration_ns, load_scale, validate,
                             telemetry=telemetry, fidelity=fidelity)
    runs = opts.execute(specs)
    it = iter(runs)
    cells = []
    for topology in topologies:
        key_topo = as_spec(topology).cli()
        for workload in workloads:
            for scheme in schemes:
                per_seed = [next(it) for _ in seeds]
                cells.append(_aggregate_cell(
                    key_topo, workload, scheme, seeds, per_seed))
    checks = ordering_checks(cells)
    return TournamentResult(
        schemes=schemes,
        topologies=tuple(as_spec(t).cli() for t in topologies),
        workloads=workloads,
        seeds=seeds,
        duration_ns=duration_ns,
        load_scale=load_scale,
        fidelity=fidelity or "packet",
        cells=cells,
        standings=rank_standings(cells, schemes),
        checks=checks,
        checks_ok=all(c.ok for c in checks),
    )


# --- reports -----------------------------------------------------------------


def tournament_json(result: TournamentResult) -> str:
    """The committed-artifact serialization: sorted keys, no
    timestamps, trailing newline — byte-reproducible by design."""
    return json.dumps(to_jsonable(result), indent=2, sort_keys=True) + "\n"


def _us(value: Optional[float]) -> str:
    return f"{value / 1e3:.1f}" if value is not None else "n/a"


def standings_rows(result: TournamentResult) -> List[List[object]]:
    return [
        [s.rank, s.scheme, f"{s.mean_rank:.2f}", s.wins, s.cells]
        for s in result.standings
    ]


def render_markdown(result: TournamentResult) -> str:
    """Human-readable tournament report (GitHub-flavored markdown)."""
    lines = [
        "# Scheme tournament",
        "",
        f"{len(result.schemes)} schemes x {len(result.workloads)} workloads "
        f"x {len(result.topologies)} topologies x {len(result.seeds)} seeds "
        f"at {result.fidelity} fidelity, "
        f"{result.duration_ns / 1e6:g} ms of offered load per cell.",
        "",
        "## Standings",
        "",
        "Borda ranking by mean mice FCT: a scheme's score is its mean",
        "place across every (topology, workload) cell; wins count the",
        "cells it placed first in.",
        "",
        "| rank | scheme | mean place | wins | cells |",
        "| ---: | --- | ---: | ---: | ---: |",
    ]
    for s in result.standings:
        lines.append(f"| {s.rank} | {s.scheme} | {s.mean_rank:.2f} "
                     f"| {s.wins} | {s.cells} |")
    lines += [
        "",
        "## Cell winners",
        "",
        "| topology | workload | winner | mean FCT (us) |",
        "| --- | --- | --- | ---: |",
    ]
    by_cell: Dict[Tuple[str, str], List[TournamentCell]] = {}
    for cell in result.cells:
        by_cell.setdefault((cell.topology, cell.workload), []).append(cell)
    for (topology, workload), group in sorted(by_cell.items()):
        best = min(group, key=lambda c: (
            c.mean_fct_ns if c.mean_fct_ns is not None else float("inf"),
            c.scheme))
        lines.append(f"| {topology} | {workload} | {best.scheme} "
                     f"| {_us(best.mean_fct_ns)} |")
    lines += [
        "",
        "## Ordering checks",
        "",
        "Presto's mean mice FCT vs ECMP's, per trace-workload cell",
        f"(must stay at or below {ORDERING_TOLERANCE}x; the paper's",
        "headline claim).",
        "",
        "| check | ratio | verdict |",
        "| --- | ---: | --- |",
    ]
    for check in result.checks:
        ratio = f"{check.ratio:.3f}" if check.ratio is not None else "n/a"
        lines.append(f"| {check.name} | {ratio} "
                     f"| {'ok' if check.ok else 'FAIL'} |")
    lines += [
        "",
        f"Overall: {'all checks passed' if result.checks_ok else 'CHECKS FAILED'}.",
        "",
    ]
    return "\n".join(lines)


# --- CLI ---------------------------------------------------------------------


def _csv_strs(text: Optional[str]) -> Tuple[str, ...]:
    return tuple(s for s in (text or "").split(",") if s)


def _csv_ints(text: Optional[str]) -> Tuple[int, ...]:
    return tuple(int(s) for s in (text or "").split(",") if s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tournament",
        description="Race every registered scheme over the workload x "
                    "topology grid and write the ranked TOURNAMENT.json.",
    )
    parser.add_argument(
        "--schemes", default=None,
        help="comma-separated subset (default: every registered scheme)")
    parser.add_argument(
        "--topology", action="append", default=None, metavar="SPEC",
        help="fabric spec, repeatable — e.g. 'fat-tree:k=4', "
             "'clos:spines=4,leaves=4,hosts=4' (default: the three "
             "tournament fabrics)")
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workloads "
             f"(default: {','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument(
        "--seeds", default=",".join(str(s) for s in DEFAULT_SEEDS),
        help="comma-separated seeds (default: 1,2,3)")
    parser.add_argument(
        "--duration-ms", type=float, default=DEFAULT_DURATION_NS / 1e6,
        help="offered-load window per cell, simulated ms (default: 5)")
    parser.add_argument(
        "--load-scale", type=float, default=1.0,
        help="trace arrival-rate multiplier (default: 1.0)")
    parser.add_argument(
        "--fidelity", choices=("packet", "flow"), default="flow",
        help="engine fidelity for every cell (default: flow)")
    parser.add_argument(
        "--validate", action="store_true",
        help="arm the spanning-tree oracle in every cell")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count())")
    parser.add_argument(
        "--force", action="store_true",
        help="invalidate cached cells and re-run")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout")
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-runs per failing cell (default: 1)")
    parser.add_argument(
        "--service", default=None, metavar="URL",
        help="run cells on a sweep coordinator "
             "(python -m repro.service coordinator) instead of a local "
             "pool, e.g. http://127.0.0.1:8642")
    parser.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="result-store root (default: $REPRO_RESULTS_DIR or "
             "benchmarks/results)")
    parser.add_argument(
        "--out", default=TOURNAMENT_PATH, metavar="FILE",
        help=f"ranked-artifact path (default: {TOURNAMENT_PATH})")
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed --out file instead of "
             "writing it; exit 1 on any drift")
    parser.add_argument(
        "--markdown", default=None, metavar="FILE",
        help="also write the markdown report to FILE")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines")
    return parser


def _ranking_diff(old: Dict, new: Dict) -> List[str]:
    """Human-readable standings drift between two tournament payloads."""
    def ladder(payload: Dict) -> List[str]:
        standings = payload.get("fields", payload).get("standings", [])
        return [s.get("fields", s).get("scheme", "?") for s in standings]

    old_ladder, new_ladder = ladder(old), ladder(new)
    if old_ladder == new_ladder:
        return []
    return [f"ranking drifted: committed {old_ladder} != new {new_ladder}"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    try:
        seeds = _csv_ints(ns.seeds)
    except ValueError as exc:
        print(f"--seeds must be comma-separated integers: {exc}",
              file=sys.stderr)
        return 2
    store = ResultStore(ns.results_dir)
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    try:
        result = run_tournament(
            schemes=_csv_strs(ns.schemes),
            topologies=tuple(ns.topology or DEFAULT_TOPOLOGIES),
            workloads=_csv_strs(ns.workloads) or DEFAULT_WORKLOADS,
            seeds=seeds,
            duration_ns=msec(ns.duration_ms),
            load_scale=ns.load_scale,
            validate=ns.validate,
            jobs=ns.jobs,
            store=store,
            force=ns.force,
            timeout_s=ns.timeout,
            retries=ns.retries,
            log=log,
            fidelity=ns.fidelity,
            service=ns.service,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    payload = tournament_json(result)
    report = render_markdown(result)
    print(report)
    if ns.markdown:
        with open(ns.markdown, "w") as fh:
            fh.write(report)
        print(f"saved {ns.markdown}", file=sys.stderr)

    if ns.check:
        try:
            with open(ns.out) as fh:
                committed = fh.read()
        except OSError as exc:
            print(f"--check: cannot read {ns.out}: {exc}", file=sys.stderr)
            return 1
        if committed == payload:
            print(f"--check: {ns.out} reproduced byte-for-byte",
                  file=sys.stderr)
            return 0 if result.checks_ok else 1
        for line in _ranking_diff(json.loads(committed),
                                  json.loads(payload)):
            print(f"--check: {line}", file=sys.stderr)
        print(f"--check: {ns.out} drifted from this run "
              f"(regenerate with the same flags and review the diff)",
              file=sys.stderr)
        return 1

    with open(ns.out, "w") as fh:
        fh.write(payload)
    print(f"saved {ns.out}", file=sys.stderr)
    if not result.checks_ok:
        print("ordering checks FAILED (see the report above)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
