"""Table 1: trace-driven workload (Kandula et al. distributions x10).

Mice (<100 KB) FCT percentiles, normalized to ECMP.  Paper: Presto cuts
p99 by 56% and p99.9 by 60% while matching ECMP at the median; its
elephant throughput tracks Optimal within 2% and beats ECMP by >10%.
MPTCP is omitted, as in the paper (unstable under many small flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.common import fct_percentiles, normalize_to
from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.stats import mean
from repro.units import SEC, msec
from repro.workloads.tracedriven import TraceWorkload

DEFAULT_SCHEMES = ("ecmp", "presto", "optimal")


@dataclass
class TraceResult:
    scheme: str
    mice_fcts_ns: List[int] = field(default_factory=list)
    elephant_tputs_bps: List[float] = field(default_factory=list)
    flows: int = 0

    def mice_percentiles_ms(self) -> Dict[str, float]:
        return fct_percentiles(self.mice_fcts_ns)

    @property
    def mean_elephant_tput_bps(self) -> float:
        return mean(self.elephant_tputs_bps)


def run_trace(
    scheme: str,
    seeds: Sequence[int] = (1, 2),
    duration_ns: int = msec(100),
    size_scale: float = 10.0,
    load_scale: float = 0.8,
    max_size: int = 30 * 1024 * 1024,
) -> TraceResult:
    """``load_scale``/``max_size`` are calibrated so fabric hotspots
    (where load balancing matters) rather than receiver-port sharing
    (identical across schemes) dominate the mice tail, mirroring the
    regime of the paper's testbed (see EXPERIMENTS.md)."""
    result = TraceResult(scheme)
    for seed in seeds:
        cfg = TestbedConfig(scheme=scheme, seed=seed)
        tb = Testbed(cfg)
        wl = TraceWorkload(
            tb, tb.streams.stream("trace"),
            size_scale=size_scale, load_scale=load_scale,
            stop_ns=duration_ns, max_size=max_size,
        )
        wl.start()
        tb.run(duration_ns)
        result.mice_fcts_ns.extend(wl.mice_fcts_ns)
        result.elephant_tputs_bps.extend(
            size * 8 * SEC / fct for size, fct in wl.elephant_records if fct > 0
        )
        result.flows += wl.flows_started
    return result


def run_table1(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    seeds: Sequence[int] = (1, 2),
    duration_ns: int = msec(80),
) -> Dict[str, TraceResult]:
    return {s: run_trace(s, seeds, duration_ns) for s in schemes}


def table1_normalized(results: Dict[str, TraceResult]) -> Dict[str, Dict[str, float]]:
    """FCT percentiles relative to ECMP, as printed in the paper."""
    base = results["ecmp"].mice_percentiles_ms()
    return {
        scheme: normalize_to(base, res.mice_percentiles_ms())
        for scheme, res in results.items()
        if scheme != "ecmp"
    }
