"""Dynamic fault injection: schedules, control plane, convergence, soak.

The robustness layer for the paper's S3.3 story and everything built on
it: declare *when* links die, flap, degrade or come back
(:mod:`repro.faults.schedule`), let the modeled controller notice and
react in simulated time (:mod:`repro.faults.controlplane`), measure how
fast throughput converges (:mod:`repro.faults.metrics`), and soak the
whole stack under random schedules with conservation-law checking
(:mod:`repro.faults.soak`, ``python -m repro.faults soak``).
"""

from repro.faults.controlplane import ControlPlane, LinkChange, Reaction
from repro.faults.invariants import InvariantReport, byte_ledger, check_invariants
from repro.faults.metrics import (
    BlackholeAccountant,
    ConvergenceReport,
    ThroughputTimeline,
    convergence_report,
    register_fault_metrics,
)
from repro.faults.schedule import (
    ArmedFaults,
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkFlap,
    LinkUp,
    SwitchDown,
    SwitchUp,
    classic_failure_schedule,
    random_schedule,
)
from repro.faults.soak import (
    SoakCase,
    SoakReport,
    SoakResult,
    random_case,
    run_soak,
    run_soak_case,
)

__all__ = [
    "ArmedFaults",
    "BlackholeAccountant",
    "ControlPlane",
    "ConvergenceReport",
    "FaultSchedule",
    "InvariantReport",
    "LinkChange",
    "LinkDegrade",
    "LinkDown",
    "LinkFlap",
    "LinkUp",
    "Reaction",
    "SoakCase",
    "SoakReport",
    "SoakResult",
    "SwitchDown",
    "SwitchUp",
    "ThroughputTimeline",
    "byte_ledger",
    "check_invariants",
    "classic_failure_schedule",
    "convergence_report",
    "random_case",
    "random_schedule",
    "register_fault_metrics",
    "run_soak",
    "run_soak_case",
]
