"""``python -m repro.faults`` — chaos soak + dynamic failure timelines.

Commands::

    python -m repro.faults soak --cases 20 --seed 0 --jobs 4
    python -m repro.faults soak --cases 1 --seed 7 --jobs 1 --no-store
    python -m repro.faults fig17 --workloads L1->L4 --seeds 1,2

``soak`` samples random self-restoring fault schedules, runs each
against a live testbed through :mod:`repro.runner` (cached in the
result store, so re-runs resume), and checks the conservation-law
invariants after every case.  Exit status is non-zero if any case
violates an invariant — CI-friendly.

``fig17`` runs the continuous symmetry -> failover -> weighted
timeline per workload and prints the per-phase means plus convergence
numbers from the single run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.runner.store import DEFAULT_RESULTS_DIR, RESULTS_DIR_ENV, ResultStore


def _csv_ints(text: Optional[str]) -> Sequence[int]:
    return tuple(int(s) for s in (text or "").split(",") if s)


def _csv_strs(text: Optional[str]) -> Sequence[str]:
    return tuple(s for s in (text or "").split(",") if s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fault injection: chaos soak and dynamic failure runs.",
    )
    sub = parser.add_subparsers(dest="command")

    soak = sub.add_parser(
        "soak", help="random fault schedules x seeds, invariants after each")
    soak.add_argument("--cases", type=int, default=20, metavar="N",
                      help="number of random (schedule, seed) cases")
    soak.add_argument("--seed", type=int, default=0,
                      help="base seed all cases derive from")
    soak.add_argument("--max-faults", type=int, default=2,
                      help="max composite faults per schedule")
    soak.add_argument("--topology", default=None, metavar="SPEC",
                      help="fabric under chaos, e.g. 'fat-tree:k=4' "
                           "(default: the paper's 16-host Clos)")
    soak.add_argument("--window-ms", type=float, default=40.0,
                      help="fault window (all faults restored inside it)")
    soak.add_argument("--deadline-ms", type=float, default=500.0,
                      help="horizon by which flows + control plane must "
                           "be done and the sim quiesced")
    soak.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: os.cpu_count())")
    soak.add_argument("--timeout", type=float, default=None,
                      metavar="SECONDS", help="per-case wall-clock timeout")
    soak.add_argument("--force", action="store_true",
                      help="ignore cached case results and re-run")
    soak.add_argument("--no-store", action="store_true",
                      help="skip the result store entirely")
    soak.add_argument("--service", default=None, metavar="URL",
                      help="run the soak cases on a sweep coordinator "
                           "(python -m repro.service coordinator) instead "
                           "of a local pool")
    soak.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help=f"results root (default: ${RESULTS_DIR_ENV} or "
             f"{DEFAULT_RESULTS_DIR})")
    soak.add_argument("--quiet", action="store_true",
                      help="suppress per-case progress lines")

    fig = sub.add_parser(
        "fig17", help="continuous symmetry->failover->weighted run(s)")
    fig.add_argument("--workloads", default=None,
                     help="comma-separated workload subset")
    fig.add_argument("--seeds", default="1,2", help="comma-separated seeds")
    fig.add_argument("--warm-ms", type=float, default=15.0)
    fig.add_argument("--measure-ms", type=float, default=30.0,
                     help="per-phase measurement window, in simulated ms")
    fig.add_argument(
        "--fidelity", choices=("packet", "flow"), default=None,
        help="simulation fidelity: packet (default) or the fluid "
             "flow-level engine")
    return parser


def _cmd_soak(ns: argparse.Namespace) -> int:
    from repro.faults.soak import run_soak
    from repro.experiments.harness import format_table
    from repro.units import msec

    if ns.jobs is not None and ns.jobs < 1:
        print(f"--jobs must be >= 1, got {ns.jobs}", file=sys.stderr)
        return 2
    if ns.timeout is not None and ns.timeout <= 0:
        print(f"--timeout must be positive, got {ns.timeout}", file=sys.stderr)
        return 2
    if ns.topology is not None:
        from repro.net.fabrics import as_spec

        try:
            as_spec(ns.topology)
        except ValueError as exc:
            print(f"bad --topology: {exc}", file=sys.stderr)
            return 2
    store = None if ns.no_store else ResultStore(ns.results_dir)
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    report = run_soak(
        n_cases=ns.cases,
        base_seed=ns.seed,
        fault_window_ns=msec(ns.window_ms),
        deadline_ns=msec(ns.deadline_ms),
        max_faults=ns.max_faults,
        topology=ns.topology,
        jobs=ns.jobs,
        store=store,
        force=ns.force,
        timeout_s=ns.timeout,
        log=log,
        service=ns.service,
    )
    headers = ["case", "schedule", "verdict", "flows", "faults",
               "reactions", "violations"]
    print(format_table(headers, report.rows()))
    print(f"\n{report.n_passed}/{len(report.results)} cases passed "
          f"(base seed {report.base_seed})")
    return 0 if report.ok else 1


def _cmd_fig17(ns: argparse.Namespace) -> int:
    from repro.experiments.failure import (
        FAILURE_WORKLOADS,
        STAGES,
        run_failure_timeline,
    )
    from repro.experiments.harness import TestbedConfig, format_table
    from repro.metrics.stats import mean
    from repro.units import msec

    workloads = _csv_strs(ns.workloads) or FAILURE_WORKLOADS
    unknown = [w for w in workloads if w not in FAILURE_WORKLOADS]
    if unknown:
        print(f"unknown workload(s) {', '.join(unknown)}; "
              f"pick from {', '.join(FAILURE_WORKLOADS)}", file=sys.stderr)
        return 2
    seeds = _csv_ints(ns.seeds) or (1,)
    rows = []
    for workload in workloads:
        timelines = [
            run_failure_timeline(
                workload, seed, warm_ns=msec(ns.warm_ms),
                measure_ns=msec(ns.measure_ms),
                cfg=(TestbedConfig(scheme="presto", seed=seed,
                                   fidelity=ns.fidelity)
                     if ns.fidelity else None))
            for seed in seeds
        ]
        per_stage = {
            stage: mean([tl.phases[stage].mean_flow_tput_bps
                         for tl in timelines])
            for stage in STAGES
        }
        rebalance = [tl.convergence.time_to_rebalance_ns for tl in timelines
                     if tl.convergence.time_to_rebalance_ns is not None]
        blackholed = mean([tl.blackholed_bytes.get("total", 0)
                           for tl in timelines])
        rows.append([
            workload,
            *(f"{per_stage[stage] / 1e9:.2f}" for stage in STAGES),
            f"{mean(rebalance) / 1e6:.1f}" if rebalance else "nan",
            f"{blackholed / 1024:.0f}",
        ])
    headers = ["workload", "symmetry Gbps", "failover Gbps",
               "weighted Gbps", "rebalance ms", "blackholed KB"]
    print(format_table(headers, rows))
    print("\none continuous run per (workload, seed): the fault and the "
          "controller's reweight\nboth happen mid-simulation "
          "(fast failover carries the failover window).")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    ns = parser.parse_args(argv)
    if ns.command == "soak":
        return _cmd_soak(ns)
    if ns.command == "fig17":
        return _cmd_fig17(ns)
    parser.print_help()
    return 2
