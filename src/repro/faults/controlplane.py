"""Modeled Presto control plane: subscribe, detect, react — in-sim.

The static experiments called :meth:`PrestoController.on_link_failure`
by hand, outside simulated time.  This module gives the controller the
reaction loop the paper describes (S3.3): it *subscribes* to every
link's ``on_state_change``, learns of a change ``detection_delay_ns``
later (LOS propagation, OpenFlow port-status, topology daemon), spends
``reaction_delay_ns`` recomputing weighted schedules, and only then
pushes updates to the vSwitches — all as ordinary simulator events, so
hardware fast failover visibly carries the traffic in the gap and the
failover->weighted transition happens *during* the run.

Reactions are coalesced: state changes whose reaction would land at the
same instant (e.g. the N link deaths of one ``SwitchDown``) trigger a
single recompute+push, like a real controller batching a burst of
port-status messages.

Recovery needs no special casing — ``push_all`` recomputes schedules
from the live topology, so a restored link simply yields the original
unweighted schedules again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.units import msec

#: defaults mirroring the paper's observation that end-to-end controller
#: reaction is "tens of milliseconds" while failover is microseconds
DEFAULT_DETECTION_DELAY_NS = msec(10)
DEFAULT_REACTION_DELAY_NS = msec(5)


@dataclass(frozen=True)
class LinkChange:
    """One observed link state/rate transition."""

    at_ns: int
    link: str
    up: bool
    rate_bps: float


@dataclass(frozen=True)
class Reaction:
    """One schedule recompute+push, with the changes that triggered it."""

    at_ns: int
    changes: Tuple[LinkChange, ...]


class ControlPlane:
    """Delayed, coalescing bridge from link events to ``push_all``.

    Purely reactive: it never mutates the topology and draws no
    randomness, so attaching it perturbs nothing until a link actually
    changes state.
    """

    def __init__(
        self,
        sim,
        controller,
        links,
        detection_delay_ns: int = DEFAULT_DETECTION_DELAY_NS,
        reaction_delay_ns: int = DEFAULT_REACTION_DELAY_NS,
        tracer=None,
    ):
        if detection_delay_ns < 0 or reaction_delay_ns < 0:
            raise ValueError("control plane delays must be >= 0")
        self.sim = sim
        self.controller = controller
        self.detection_delay_ns = int(detection_delay_ns)
        self.reaction_delay_ns = int(reaction_delay_ns)
        self.tracer = tracer
        #: every link change seen, in observation order
        self.observed: List[LinkChange] = []
        #: every recompute+push performed, in time order
        self.reactions: List[Reaction] = []
        self._pending: dict = {}  # reaction time -> [LinkChange, ...]
        for link in links:
            link.on_state_change.append(self._on_state_change)

    @property
    def total_delay_ns(self) -> int:
        return self.detection_delay_ns + self.reaction_delay_ns

    def _on_state_change(self, link) -> None:
        change = LinkChange(self.sim.now, link.name, link.up, link.rate_bps)
        self.observed.append(change)
        react_at = self.sim.now + self.total_delay_ns
        batch = self._pending.get(react_at)
        if batch is None:
            self._pending[react_at] = batch = []
            self.sim.schedule(self.total_delay_ns, self._react, react_at)
        batch.append(change)

    def _react(self, react_at: int) -> None:
        batch = self._pending.pop(react_at, [])
        self.controller.push_all()
        self.reactions.append(Reaction(self.sim.now, tuple(batch)))
        if self.tracer is not None:
            self.tracer.instant(
                "fault", "controller_reaction", "controller",
                {"changes": len(batch),
                 "links": sorted({c.link for c in batch})},
            )

    def last_reaction_ns(self) -> Optional[int]:
        return self.reactions[-1].at_ns if self.reactions else None

    def settled(self) -> bool:
        """True once every observed change has been reacted to."""
        return not self._pending
