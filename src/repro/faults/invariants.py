"""Post-run invariants the chaos soak asserts after every case.

These are whole-system conservation laws, not per-feature assertions —
the point is that *any* bug in the fault plumbing (a queue flushed
without counting, a forwarding loop, a schedule the controller forgot
to push, an event left ticking) shows up as a violated invariant even
when no test anticipated that specific bug.

1. **Quiesce** — once all bounded transfers are done and the topology
   restored, the event heap must drain: nothing may keep rescheduling
   itself forever.
2. **No stuck flows** — every bounded transfer completes (TCP's
   retransmit machinery must survive arbitrary restored fault
   schedules).
3. **Byte conservation** — every wire byte a host NIC transmitted is
   either received by a host NIC (delivered or ring-dropped) or shows
   up in exactly one drop counter along the path:

   ``nic_tx = nic_rx + nic_ring_drop + queue_drops + wire_drops
   + no_route_drops + ttl_drops``  (all in wire bytes)

4. **Schedule consistency** — after the control plane's last reaction,
   every vSwitch's label schedule equals what the controller would
   compute from the final topology (no stale weighted schedules, no
   missed recovery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class InvariantReport:
    """Outcome of :func:`check_invariants`: violations + the evidence."""

    violations: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _all_ports(tb):
    for sw in tb.topo.switches.values():
        for port in sw.ports:
            yield port
    for host in tb.hosts:
        if host.nic.port is not None:
            yield host.nic.port


def byte_ledger(tb) -> Dict[str, int]:
    """The conservation ledger, in wire bytes."""
    ledger = {
        "nic_tx": sum(h.nic.tx_bytes for h in tb.hosts),
        "nic_rx": sum(h.nic.rx_bytes for h in tb.hosts),
        "nic_ring_drop": sum(h.nic.ring_drop_bytes for h in tb.hosts),
        "queue_drop": 0,
        "wire_drop": 0,
        "no_route_drop": sum(
            sw.no_route_drop_bytes for sw in tb.topo.switches.values()),
        "ttl_drop": sum(
            sw.ttl_drop_bytes for sw in tb.topo.switches.values()),
    }
    for port in _all_ports(tb):
        ledger["queue_drop"] += port.queue.dropped_bytes
        ledger["wire_drop"] += port.wire_drop_bytes
    ledger["accounted"] = (
        ledger["nic_rx"] + ledger["nic_ring_drop"] + ledger["queue_drop"]
        + ledger["wire_drop"] + ledger["no_route_drop"] + ledger["ttl_drop"])
    return ledger


def check_invariants(
    tb,
    transfers,
    check_quiesced: bool = True,
    check_schedules: bool = True,
) -> InvariantReport:
    """Run all invariants against a finished testbed.

    ``transfers`` are the run's *bounded* transfers (objects with the
    :class:`~repro.host.transfer.Transfer` interface plus ``fct_ns``).
    ``check_schedules`` should be False when the control plane has a
    reaction still pending at the horizon (then schedules legitimately
    lag the topology).
    """
    report = InvariantReport()

    # 1. quiesce
    pending = tb.sim.peek_time()
    report.stats["quiesced"] = int(pending is None)
    if check_quiesced and pending is not None:
        report.violations.append(
            f"sim did not quiesce: event still pending at t={pending}")

    # 2. no stuck flows
    stuck = [t for t in transfers if getattr(t, "fct_ns", None) is None]
    report.stats["flows_total"] = len(list(transfers))
    report.stats["flows_stuck"] = len(stuck)
    for t in stuck:
        report.violations.append(
            f"stuck transfer: flows {t.flow_ids()} delivered "
            f"{t.delivered_bytes()} bytes, never completed")

    # 3. byte conservation
    ledger = byte_ledger(tb)
    report.stats.update(ledger)
    if ledger["nic_tx"] != ledger["accounted"]:
        report.violations.append(
            "byte conservation violated: "
            f"nic_tx={ledger['nic_tx']} != accounted={ledger['accounted']} "
            f"(delta={ledger['nic_tx'] - ledger['accounted']}, "
            f"ledger={ledger})")

    # 4. schedules consistent with the final topology
    if check_schedules:
        mismatches = 0
        for lb in tb.controller._vswitches:
            for dst_host in tb.topo.hosts:
                if dst_host == lb.host_id:
                    continue
                expected = tb.controller.schedule_for(lb.host_id, dst_host)
                if lb.labels_for(dst_host) != expected:
                    mismatches += 1
                    if mismatches <= 3:  # keep the report readable
                        report.violations.append(
                            f"stale schedule at host {lb.host_id} -> "
                            f"{dst_host}: {lb.labels_for(dst_host)} != "
                            f"{expected}")
        if mismatches > 3:
            report.violations.append(
                f"... and {mismatches - 3} more stale schedules")
        report.stats["schedule_mismatches"] = mismatches

    return report
