"""Compatibility shim: the invariants grew out of the chaos soak and
now live in :mod:`repro.validate.invariants`, where any ``Testbed`` run
can arm them (``TestbedConfig(validate=True)``) — the soak keeps its
historic import path.
"""

from __future__ import annotations

from repro.validate.invariants import (  # noqa: F401
    InvariantReport,
    InvariantViolation,
    ValidationProbe,
    byte_ledger,
    check_invariants,
)

__all__ = [
    "InvariantReport",
    "InvariantViolation",
    "ValidationProbe",
    "byte_ledger",
    "check_invariants",
]
