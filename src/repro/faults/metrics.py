"""Convergence metrics for fault runs.

Three views of "how fast did the network recover":

* :class:`ThroughputTimeline` — windowed aggregate goodput sampled *in
  simulation* (an event per window), the time series behind the dynamic
  Fig 17: full rate, cliff at the fault, partial recovery when hardware
  failover kicks in, full recovery after the controller reweights.
* :class:`BlackholeAccountant` — wire bytes destroyed *by failures*
  (dead-link queue flushes, frames lost mid-serialization, no-route and
  TTL drops), as opposed to ordinary congestion loss; the paper's
  blackhole window is ``failover_latency`` long and this is its
  integral.
* :func:`convergence_report` — folds a timeline plus the control
  plane's reaction log into the headline numbers: time-to-failover and
  time-to-rebalance.

All of it is observational: sampling draws no randomness and mutates
no component state, so a metered run and an unmetered run see
identical packet-level behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.units import SEC, msec

#: queue-drop causes attributable to failures rather than congestion
FAILURE_DROP_CAUSES = ("link_down",)


class ThroughputTimeline:
    """Aggregate delivered-byte deltas per fixed window, in-sim.

    Tracks :class:`~repro.host.transfer.Transfer` objects; each window
    boundary snapshots the sum of their receiver-side delivered bytes.
    ``stop_ns`` bounds the sampling so a finished run can still quiesce
    (the soak harness checks exactly that).
    """

    def __init__(self, sim, window_ns: int, stop_ns: int, start_ns: int = 0):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive: {window_ns}")
        if stop_ns <= start_ns:
            raise ValueError("stop_ns must be after start_ns")
        self.sim = sim
        self.window_ns = int(window_ns)
        self.stop_ns = int(stop_ns)
        self._transfers: List = []
        #: (window_end_ns, delivered_bytes_in_window)
        self.samples: List[Tuple[int, int]] = []
        self._last_total: Optional[int] = None
        self.sim.schedule(max(0, start_ns - sim.now), self._tick)

    def track(self, transfer) -> None:
        self._transfers.append(transfer)

    def _total(self) -> int:
        return sum(t.delivered_bytes() for t in self._transfers)

    def _tick(self) -> None:
        total = self._total()
        if self._last_total is not None:
            self.samples.append((self.sim.now, total - self._last_total))
        self._last_total = total
        if self.sim.now + self.window_ns <= self.stop_ns:
            self.sim.schedule(self.window_ns, self._tick)

    # --- reading ------------------------------------------------------------

    def rates_bps(self) -> List[Tuple[int, float]]:
        """(window_end_ns, aggregate_goodput_bps) per closed window."""
        return [(t, b * 8 * SEC / self.window_ns) for t, b in self.samples]

    def mean_bps_between(self, start_ns: int, end_ns: int) -> float:
        """Mean rate over windows closing in ``(start_ns, end_ns]``."""
        rates = [r for t, r in self.rates_bps() if start_ns < t <= end_ns]
        return sum(rates) / len(rates) if rates else 0.0

    def recovery_ns(
        self, after_ns: int, target_bps: float, fraction: float = 0.8
    ) -> Optional[int]:
        """Delay from ``after_ns`` until a window first sustains
        ``fraction * target_bps``; None if it never does."""
        threshold = fraction * target_bps
        for t, rate in self.rates_bps():
            if t > after_ns and rate >= threshold:
                return t - after_ns
        return None


class BlackholeAccountant:
    """Failure-destroyed wire bytes, from the simulator's own counters.

    ``mark()`` snapshots; :meth:`delta` reports what failures ate since
    the snapshot, split by mechanism:

    * ``queue_flush`` — packets flushed from a queue when its link died
      (plus anything sent at a dead link before TCP backs off);
    * ``wire`` — the frame mid-serialization when the cable was cut;
    * ``no_route`` — packets that reached a switch with no usable
      egress (the paper's spine blackhole, Fig 17 "failover" dip);
    * ``ttl`` — packets killed by the hop budget (failover loops).
    """

    def __init__(self, topo, hosts):
        self.topo = topo
        self.hosts = hosts
        self._base: Dict[str, int] = {}
        self.mark()

    def _ports(self):
        for sw in self.topo.switches.values():
            for port in sw.ports:
                yield port
        for host in self.hosts:
            if host.nic.port is not None:
                yield host.nic.port

    def totals(self) -> Dict[str, int]:
        queue_flush = wire = 0
        for port in self._ports():
            for cause in FAILURE_DROP_CAUSES:
                queue_flush += port.queue.drop_cause_bytes.get(cause, 0)
            wire += port.wire_drop_bytes
        no_route = sum(
            sw.no_route_drop_bytes for sw in self.topo.switches.values())
        ttl = sum(sw.ttl_drop_bytes for sw in self.topo.switches.values())
        return {
            "queue_flush": queue_flush,
            "wire": wire,
            "no_route": no_route,
            "ttl": ttl,
            "total": queue_flush + wire + no_route + ttl,
        }

    def mark(self) -> None:
        self._base = self.totals()

    def delta(self) -> Dict[str, int]:
        now = self.totals()
        return {k: now[k] - self._base.get(k, 0) for k in now}


@dataclass
class ConvergenceReport:
    """Headline recovery numbers for one fault run."""

    #: when the (first) fault hit
    fault_ns: int
    #: when the control plane (last) pushed reweighted schedules
    reaction_ns: Optional[int]
    #: fault -> first window back at >= ``fraction`` of baseline while
    #: only hardware failover has acted (None: never before reaction)
    time_to_failover_ns: Optional[int]
    #: fault -> first window at/after the reaction back at baseline
    time_to_rebalance_ns: Optional[int]
    #: pre-fault aggregate goodput
    baseline_bps: float
    #: failure-destroyed bytes since the accountant's mark, by mechanism
    blackholed_bytes: Dict[str, int] = field(default_factory=dict)
    #: recovery threshold as a fraction of baseline
    fraction: float = 0.8


def convergence_report(
    timeline: ThroughputTimeline,
    fault_ns: int,
    reaction_ns: Optional[int],
    accountant: Optional[BlackholeAccountant] = None,
    baseline_window_ns: int = msec(10),
    fraction: float = 0.8,
    failover_target_bps: Optional[float] = None,
    rebalance_target_bps: Optional[float] = None,
) -> ConvergenceReport:
    """Fold a timeline + reaction instant into a :class:`ConvergenceReport`.

    ``time_to_failover`` is fault -> first window at ``fraction`` of
    ``failover_target_bps`` *before* the controller reacted (recovery
    attributable to hardware failover alone); ``time_to_rebalance`` is
    fault -> first window at ``fraction`` of ``rebalance_target_bps``
    from the reaction onward.  Both targets default to the pre-fault
    baseline — callers that know the achievable plateau (e.g. 3 of 4
    trees after a prune) should pass it, since a fault permanently
    removes capacity and the baseline may be unreachable.
    """
    baseline = timeline.mean_bps_between(fault_ns - baseline_window_ns, fault_ns)
    if failover_target_bps is None:
        failover_target_bps = baseline
    if rebalance_target_bps is None:
        rebalance_target_bps = baseline
    failover_ns: Optional[int] = None
    rebalance_ns: Optional[int] = None
    for t, rate in timeline.rates_bps():
        if t <= fault_ns:
            continue
        if (failover_ns is None and rate >= fraction * failover_target_bps
                and (reaction_ns is None or t <= reaction_ns)):
            failover_ns = t - fault_ns
        if (rebalance_ns is None and rate >= fraction * rebalance_target_bps
                and reaction_ns is not None and t >= reaction_ns):
            rebalance_ns = t - fault_ns
        if failover_ns is not None and rebalance_ns is not None:
            break
    return ConvergenceReport(
        fault_ns=fault_ns,
        reaction_ns=reaction_ns,
        time_to_failover_ns=failover_ns,
        time_to_rebalance_ns=rebalance_ns,
        baseline_bps=baseline,
        blackholed_bytes=accountant.delta() if accountant is not None else {},
        fraction=fraction,
    )


def register_fault_metrics(telemetry, topo, hosts) -> None:
    """Mirror failure-loss counters into a telemetry registry.

    Adds a sampler producing ``faults.blackholed_bytes.<mechanism>``
    counters next to the existing switch/host metrics.
    """
    accountant = BlackholeAccountant(topo, hosts)

    def sample(reg) -> None:
        for mechanism, value in sorted(accountant.totals().items()):
            reg.counter(
                f"faults.blackholed_bytes.{mechanism}").record_total(value)

    telemetry.add_sampler(sample)
