"""Declarative fault schedules.

A :class:`FaultSchedule` is a seedable, serializable list of fault
events — link deaths, recoveries, flaps, rate degradations and whole
switch outages — expressed against component *names* so a schedule can
ride inside a :class:`~repro.runner.jobspec.JobSpec` (content-hashed,
pickled to worker processes) without dragging a live topology along.
:meth:`FaultSchedule.arm` compiles the schedule onto a running
simulator's event heap against a live :class:`~repro.net.topology.Topology`;
from there the ports, failover groups and the modeled control plane
(:mod:`repro.faults.controlplane`) react through the ordinary
``Link.on_state_change`` machinery, exactly as they would for a fault
nobody scripted.

Event times are absolute simulation nanoseconds.  Composite events
(``LinkFlap``, ``SwitchDown``) expand to primitive link actions at arm
time, so everything the simulator sees is a plain ``set_down`` /
``set_up`` / ``set_rate`` call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union

from repro.units import msec


class _Action(NamedTuple):
    """One primitive, timed mutation of a named component."""

    at_ns: int
    kind: str  # link_down | link_up | link_degrade | link_restore_rate
    #           | switch_down | switch_up
    target: str
    arg: Optional[float] = None


def _require_time(at_ns: int) -> None:
    if at_ns < 0:
        raise ValueError(f"event time must be >= 0, got {at_ns}")


@dataclass(frozen=True)
class LinkDown:
    """Fail ``link`` (both directions) at ``at_ns``."""

    at_ns: int
    link: str

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        return [_Action(self.at_ns, "link_down", self.link)]


@dataclass(frozen=True)
class LinkUp:
    """Restore ``link`` at ``at_ns``."""

    at_ns: int
    link: str

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        return [_Action(self.at_ns, "link_up", self.link)]


@dataclass(frozen=True)
class LinkFlap:
    """``count`` down/up cycles starting at ``at_ns``.

    Each cycle is ``period_ns`` long with the link down for the first
    half — the classic bouncing-optics pattern that stresses both the
    failover groups' re-arm path and the control plane's coalescing.
    """

    at_ns: int
    link: str
    period_ns: int
    count: int = 1

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        if self.period_ns < 2:
            raise ValueError(f"flap period must be >= 2 ns, got {self.period_ns}")
        if self.count < 1:
            raise ValueError(f"flap count must be >= 1, got {self.count}")
        out: List[_Action] = []
        for cycle in range(self.count):
            start = self.at_ns + cycle * self.period_ns
            out.append(_Action(start, "link_down", self.link))
            out.append(_Action(start + self.period_ns // 2, "link_up", self.link))
        return out


@dataclass(frozen=True)
class LinkDegrade:
    """Run ``link`` at ``rate_factor`` x its pre-fault rate.

    Models degraded optics / FEC fallback rather than outright death;
    the control plane reweights WCMP schedules around the slow leg.
    ``duration_ns=None`` leaves the link degraded for good (such a
    schedule is not self-restoring; see :meth:`FaultSchedule.restores_network`).
    """

    at_ns: int
    link: str
    rate_factor: float
    duration_ns: Optional[int] = None

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        if not 0 < self.rate_factor <= 1:
            raise ValueError(
                f"rate_factor must be in (0, 1], got {self.rate_factor}")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError(
                f"duration_ns must be positive, got {self.duration_ns}")
        out = [_Action(self.at_ns, "link_degrade", self.link, self.rate_factor)]
        if self.duration_ns is not None:
            out.append(_Action(
                self.at_ns + self.duration_ns, "link_restore_rate", self.link))
        return out


@dataclass(frozen=True)
class SwitchDown:
    """Kill every link attached to ``switch`` at ``at_ns``.

    The expansion to concrete links happens at arm time, so the same
    schedule works on any topology that has a switch by that name.
    """

    at_ns: int
    switch: str

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        return [_Action(self.at_ns, "switch_down", self.switch)]


@dataclass(frozen=True)
class SwitchUp:
    """Restore every link attached to ``switch`` at ``at_ns``."""

    at_ns: int
    switch: str

    def actions(self) -> List[_Action]:
        _require_time(self.at_ns)
        return [_Action(self.at_ns, "switch_up", self.switch)]


FaultEvent = Union[LinkDown, LinkUp, LinkFlap, LinkDegrade, SwitchDown, SwitchUp]


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable set of fault events.

    Being a frozen dataclass of frozen dataclasses, a schedule
    serializes through :mod:`repro.runner.serialize` and content-hashes
    stably — the soak harness relies on both.
    """

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultSchedule":
        return cls(tuple(events))

    def actions(self) -> List[_Action]:
        """All primitive actions, time-sorted (stable for ties)."""
        out: List[_Action] = []
        for event in self.events:
            out.extend(event.actions())
        out.sort(key=lambda a: a.at_ns)
        return out

    @property
    def end_ns(self) -> int:
        """Time of the last scripted action (0 for an empty schedule)."""
        actions = self.actions()
        return actions[-1].at_ns if actions else 0

    def link_names(self) -> Tuple[str, ...]:
        return tuple(sorted({a.target for a in self.actions()
                             if a.kind.startswith("link_")}))

    def switch_names(self) -> Tuple[str, ...]:
        return tuple(sorted({a.target for a in self.actions()
                             if a.kind.startswith("switch_")}))

    def restores_network(
        self, switch_links: Optional[Mapping[str, Sequence[str]]] = None
    ) -> bool:
        """True when replaying the schedule leaves every touched
        component up at its original rate.

        ``switch_links`` (switch name -> link names) lets the replay
        expand switch events; without it, switch and link events are
        tracked independently, which is exact as long as the schedule
        does not target a switch *and* one of its links.
        """
        up: Dict[str, bool] = {}
        degraded: Dict[str, bool] = {}
        for action in self.actions():
            if action.kind in ("switch_down", "switch_up"):
                targets = (list(switch_links[action.target])
                           if switch_links is not None else [action.target])
                for t in targets:
                    up[t] = action.kind == "switch_up"
            elif action.kind in ("link_down", "link_up"):
                up[action.target] = action.kind == "link_up"
            elif action.kind == "link_degrade":
                degraded[action.target] = True
            elif action.kind == "link_restore_rate":
                degraded[action.target] = False
        return all(up.values()) and not any(degraded.values())

    def arm(self, sim, topo, log=None) -> "ArmedFaults":
        """Compile onto ``sim``'s event heap against live ``topo``."""
        return ArmedFaults(self, sim, topo, log=log)


class ArmedFaults:
    """A schedule bound to a live simulator + topology.

    Keeps the applied-action log (for reports and the soak harness's
    consistency checks) and the pre-degrade rates needed to restore
    links exactly.
    """

    def __init__(self, schedule: FaultSchedule, sim, topo, log=None):
        self.schedule = schedule
        self.sim = sim
        self.topo = topo
        self._log_fn = log
        #: (at_ns, description) per applied primitive action
        self.applied: List[Tuple[int, str]] = []
        self._links = {link.name: link for link in topo.links}
        self._orig_rates: Dict[str, float] = {}
        for name in schedule.link_names():
            if name not in self._links:
                raise ValueError(f"schedule targets unknown link {name!r}")
        for name in schedule.switch_names():
            if name not in topo.switches:
                raise ValueError(f"schedule targets unknown switch {name!r}")
        for action in schedule.actions():
            if action.at_ns < sim.now:
                raise ValueError(
                    f"cannot arm: action at t={action.at_ns} is in the past "
                    f"(now={sim.now})")
            sim.schedule(action.at_ns - sim.now, self._apply, action)

    def _switch_link_set(self, name: str) -> List:
        seen: Dict[str, object] = {}
        for port in self.topo.switches[name].ports:
            seen.setdefault(port.link.name, port.link)
        return list(seen.values())

    def _apply(self, action: _Action) -> None:
        kind = action.kind
        if kind == "link_down":
            self._links[action.target].set_down()
        elif kind == "link_up":
            self._links[action.target].set_up()
        elif kind == "link_degrade":
            link = self._links[action.target]
            orig = self._orig_rates.setdefault(action.target, link.rate_bps)
            link.set_rate(orig * action.arg)
        elif kind == "link_restore_rate":
            orig = self._orig_rates.pop(action.target, None)
            if orig is not None:
                self._links[action.target].set_rate(orig)
        elif kind == "switch_down":
            for link in self._switch_link_set(action.target):
                link.set_down()
        elif kind == "switch_up":
            for link in self._switch_link_set(action.target):
                link.set_up()
        else:  # pragma: no cover - _Action kinds are produced above
            raise AssertionError(f"unknown action kind {kind!r}")
        desc = f"{kind} {action.target}"
        if action.arg is not None:
            desc += f" x{action.arg:g}"
        self.applied.append((self.sim.now, desc))
        if self._log_fn is not None:
            self._log_fn(f"[fault t={self.sim.now}] {desc}")


#: composite fault kinds :func:`random_schedule` draws from
RANDOM_FAULT_KINDS = ("down", "flap", "degrade", "switch")


def random_schedule(
    rng: random.Random,
    links: Sequence[str],
    *,
    window_ns: int,
    switches: Optional[Mapping[str, Sequence[str]]] = None,
    max_faults: int = 2,
    kinds: Sequence[str] = RANDOM_FAULT_KINDS,
) -> FaultSchedule:
    """Draw a self-restoring random schedule inside ``[0, window_ns)``.

    ``links`` are candidate link names; ``switches`` maps candidate
    switch names to their link names (needed both to pick switch faults
    and to keep a switch fault from overlapping a link fault on one of
    its own links).  Every fault injected is paired with its recovery
    well before ``window_ns`` so soak runs can demand full convergence.
    """
    if window_ns < 100:
        raise ValueError(f"window_ns too small to fit faults: {window_ns}")
    kinds = [k for k in kinds if k != "switch" or switches]
    if not kinds:
        raise ValueError("no fault kinds to draw from")
    free_links = list(links)
    free_switches = sorted(switches) if switches else []
    events: List[FaultEvent] = []
    latest = int(window_ns * 0.9)
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(kinds)
        start = rng.randrange(window_ns // 20, window_ns // 2)
        budget = latest - start
        if kind == "switch":
            if not free_switches:
                continue
            name = free_switches.pop(rng.randrange(len(free_switches)))
            # its links can no longer host an independent fault
            for link_name in switches[name]:
                if link_name in free_links:
                    free_links.remove(link_name)
            outage = rng.randrange(max(1, budget // 4), max(2, budget // 2))
            events.append(SwitchDown(start, name))
            events.append(SwitchUp(start + outage, name))
            continue
        if not free_links:
            continue
        name = free_links.pop(rng.randrange(len(free_links)))
        if kind == "down":
            outage = rng.randrange(max(1, budget // 4), max(2, budget // 2))
            events.append(LinkDown(start, name))
            events.append(LinkUp(start + outage, name))
        elif kind == "flap":
            count = rng.randint(1, 3)
            period = rng.randrange(max(2, budget // (count * 3)),
                                   max(4, budget // count))
            events.append(LinkFlap(start, name, period, count))
        elif kind == "degrade":
            factor = rng.choice((0.25, 0.5))
            duration = rng.randrange(max(1, budget // 4), max(2, budget // 2))
            events.append(LinkDegrade(start, name, factor, duration))
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    if not events:  # every draw collided; fall back to one clean outage
        name = rng.choice(list(links))
        start = window_ns // 4
        events = [LinkDown(start, name), LinkUp(start + window_ns // 4, name)]
    schedule = FaultSchedule(tuple(events))
    assert schedule.restores_network(switches), \
        "random_schedule drew a non-restoring schedule"
    return schedule


def classic_failure_schedule(at_ns: int = msec(20),
                             link: str = "L1--S1") -> FaultSchedule:
    """The paper's Fig 17/18 perturbation: one leaf uplink dies and
    stays dead — symmetry before, failover + weighted after."""
    return FaultSchedule.of(LinkDown(at_ns, link))
