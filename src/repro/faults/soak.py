"""Chaos soak: random fault schedules x seeds, invariants after each.

One *case* = a testbed config + a random self-restoring fault schedule
+ a handful of bounded cross-leaf elephants + a generous deadline.  The
case runs with hardware fast failover and the modeled control plane
both live, then :func:`repro.faults.invariants.check_invariants`
decides pass/fail.  Cases are plain frozen dataclasses, so they ride
through :mod:`repro.runner` (content-hashed caching, process pool,
resume) like any experiment job — ``python -m repro.faults soak``.

Random switch outages draw from the aggregation layers only (spines on
a 2-tier Clos; aggs and cores on a fat-tree): a dead leaf/edge switch
partitions its own hosts outright (nothing in the paper's design can
route around the only edge switch), so those outages are for targeted
tests, not background chaos.

``--topology`` picks any :class:`~repro.net.fabrics.TopologySpec`
fabric — the default remains the paper's 16-host Clos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import START_JITTER_NS
from repro.experiments.harness import Testbed, TestbedConfig
from repro.faults.invariants import check_invariants
from repro.faults.metrics import BlackholeAccountant
from repro.faults.schedule import FaultSchedule, random_schedule
from repro.net.fabrics import fabric_link_names
from repro.runner.jobspec import JobSpec
from repro.runner.pool import run_jobs
from repro.runner.store import ResultStore
from repro.sim.rand import RandomStreams
from repro.units import KB, MB, msec

#: window the random faults land in (all restored before it ends)
DEFAULT_FAULT_WINDOW_NS = msec(40)
#: hard horizon: flows + control plane must be done and quiet by then
DEFAULT_DEADLINE_NS = msec(500)
#: sized so flows are still in flight when the faults land (a 2 MB
#: flow sharing a 10 Gbps fabric runs for several ms; faults start at
#: ~1/20 of the fault window)
DEFAULT_SIZES = (2 * MB, 4 * MB, 8 * MB)


@dataclass(frozen=True)
class SoakCase:
    """Everything one chaos run needs, serializable and hashable."""

    cfg: TestbedConfig
    schedule: FaultSchedule
    pairs: Tuple[Tuple[int, int], ...]
    size_bytes: int
    deadline_ns: int = DEFAULT_DEADLINE_NS


@dataclass
class SoakResult:
    """One case's verdict plus the evidence behind it."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    blackholed_bytes: Dict[str, int] = field(default_factory=dict)
    faults_applied: int = 0
    reactions: int = 0
    end_ns: int = 0


def _fabric_names(cfg: TestbedConfig):
    """Fabric link names + killable-switch->links map for ``cfg``'s
    fabric, without building it.  Leaf/edge switches (``L*``/``E*``)
    are excluded from outage targets: a dead edge switch partitions its
    own hosts outright."""
    links, by_switch = fabric_link_names(cfg.topology_spec())
    switch_links = {
        name: sw_links for name, sw_links in by_switch.items()
        if not name.startswith(("L", "E"))
    }
    return links, switch_links


def random_case(
    base_seed: int,
    index: int,
    fault_window_ns: int = DEFAULT_FAULT_WINDOW_NS,
    deadline_ns: int = DEFAULT_DEADLINE_NS,
    max_faults: int = 2,
    topology: Optional[str] = None,
) -> SoakCase:
    """Deterministically derive case ``index`` of a soak at ``base_seed``."""
    rng = RandomStreams(base_seed).stream(f"soak-case-{index}")
    cfg = TestbedConfig(scheme="presto", seed=rng.randrange(1, 2**31),
                        topology=topology)
    links, switch_links = _fabric_names(cfg)
    schedule = random_schedule(
        rng, links,
        window_ns=fault_window_ns,
        switches=switch_links,
        max_faults=max_faults,
    )
    spec = cfg.topology_spec()
    n_hosts = spec.n_hosts()
    n_pairs = rng.randint(2, 4)
    srcs = rng.sample(range(n_hosts), n_pairs)
    pairs: List[Tuple[int, int]] = []
    used_dst = set(srcs)
    for src in srcs:
        choices = [
            h for h in range(n_hosts)
            if spec.edge_of(h) != spec.edge_of(src)
            and h not in used_dst
        ]
        dst = rng.choice(choices)
        used_dst.add(dst)
        pairs.append((src, dst))
    return SoakCase(
        cfg=cfg,
        schedule=schedule,
        pairs=tuple(pairs),
        size_bytes=rng.choice(DEFAULT_SIZES),
        deadline_ns=deadline_ns,
    )


def run_soak_case(case: SoakCase) -> SoakResult:
    """Run one chaos case end to end and check every invariant."""
    tb = Testbed(case.cfg)
    tb.controller.enable_fast_failover(case.cfg.failover_latency_ns)
    control = tb.enable_control_plane()
    armed = case.schedule.arm(tb.sim, tb.topo)
    rng = tb.streams.stream("soak-starts")
    apps = []
    for src, dst in case.pairs:
        apps.append(tb.add_elephant(
            src, dst, size_bytes=case.size_bytes,
            start_ns=rng.randrange(START_JITTER_NS)))
    accountant = BlackholeAccountant(tb.topo, tb.hosts)
    tb.run(case.deadline_ns)
    report = check_invariants(tb, apps)
    if not control.settled():
        report.violations.append(
            "control plane still had pending reactions at the deadline")
    return SoakResult(
        ok=report.ok and control.settled(),
        violations=report.violations,
        stats=report.stats,
        blackholed_bytes=accountant.delta(),
        faults_applied=len(armed.applied),
        reactions=len(control.reactions),
        end_ns=tb.sim.now,
    )


@dataclass
class SoakReport:
    """A whole soak: per-case outcomes, ready for a summary table."""

    base_seed: int
    cases: List[SoakCase]
    results: List[Optional[SoakResult]]  # None: the job itself failed
    errors: List[Optional[str]]

    @property
    def ok(self) -> bool:
        return all(r is not None and r.ok for r in self.results)

    @property
    def n_passed(self) -> int:
        return sum(1 for r in self.results if r is not None and r.ok)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for i, (case, result, error) in enumerate(
                zip(self.cases, self.results, self.errors)):
            kinds = ",".join(type(e).__name__ for e in case.schedule.events)
            if result is None:
                out.append([i, kinds, "JOB-FAILED", "-", "-", "-",
                            (error or "")[:60]])
                continue
            out.append([
                i,
                kinds,
                "ok" if result.ok else "FAIL",
                f"{result.stats.get('flows_total', 0) - result.stats.get('flows_stuck', 0)}"
                f"/{result.stats.get('flows_total', 0)}",
                result.faults_applied,
                result.reactions,
                "; ".join(result.violations)[:60],
            ])
        return out


def run_soak(
    n_cases: int = 20,
    base_seed: int = 0,
    *,
    fault_window_ns: int = DEFAULT_FAULT_WINDOW_NS,
    deadline_ns: int = DEFAULT_DEADLINE_NS,
    max_faults: int = 2,
    topology: Optional[str] = None,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    log=None,
    service: Optional[str] = None,
) -> SoakReport:
    """Sample ``n_cases`` random cases and run them through the runner."""
    cases = [
        random_case(base_seed, i, fault_window_ns=fault_window_ns,
                    deadline_ns=deadline_ns, max_faults=max_faults,
                    topology=topology)
        for i in range(n_cases)
    ]
    specs = [
        JobSpec.make(run_soak_case, cfg=case,
                     label=f"faults/soak/s{base_seed}/c{i}")
        for i, case in enumerate(cases)
    ]
    outcomes = run_jobs(specs, jobs=jobs, store=store, force=force,
                        timeout_s=timeout_s, log=log, service=service)
    results = [o.result if o.ok else None for o in outcomes]
    errors = [o.error if not o.ok else None for o in outcomes]
    return SoakReport(base_seed=base_seed, cases=cases,
                      results=results, errors=errors)
