"""Flow-level (fluid) fast-fidelity engine.

The packet engine reproduces Presto faithfully but tops out around
16-host Clos runs; this package trades per-packet queueing for
progressive-filling max-min bandwidth sharing (the RepFlow/psim
methodology) so the same experiments run orders of magnitude faster.

Selection is one knob — ``TestbedConfig(fidelity="flow")`` — and the
fluid testbed speaks the repo's existing contracts: real
:class:`~repro.net.topology.Topology` and switch tables, real
``repro.lb`` schemes slicing flows into 64 KB flowcells, the unified
``Transfer`` protocol toward every collector, ``repro.faults``
schedules and the modeled control plane, and per-link utilization
telemetry when armed.

``python -m repro.fluid compare`` runs the same experiment grid at
both fidelities and writes a per-metric divergence report.
"""

from repro.fluid.allocator import max_min_allocation
from repro.fluid.engine import FluidEngine

__all__ = ["max_min_allocation", "FluidEngine"]
