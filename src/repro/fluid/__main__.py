from repro.fluid.cli import main

raise SystemExit(main())
