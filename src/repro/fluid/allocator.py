"""Weighted max-min fair allocation by progressive filling.

The fluid engine's core primitive: given flows (each a set of directed
link resources, a weight and an optional demand cap) and per-link
capacities, raise every unfrozen flow's rate in lock-step — rate grows
as ``weight * t`` — until a link saturates or a flow meets its demand,
freeze the flows that caused it, and repeat.  The result is the
classic weighted max-min fair allocation (Bertsekas & Gallager §6.5),
which is what per-flow fair queueing plus TCP converges toward and
what flow-level simulators (RepFlow, psim) use in place of packet
queues.

The function is pure and deterministic, and — deliberately — exactly
permutation invariant: every floating-point reduction over a set of
flows or links is performed in a sorted order, so reordering the input
``flows`` list permutes the output rates without changing a single
bit.  The property tests in ``tests/test_fluid_allocator.py`` pin
capacity respect, work conservation, bottleneck fairness and that
permutation invariance.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

#: relative slack under which a link counts as saturated (floats only)
_REL_EPS = 1e-12

Flow = Tuple[Sequence[Hashable], float, Optional[float]]


def max_min_allocation(
    flows: Sequence[Flow],
    capacity: Dict[Hashable, float],
) -> List[float]:
    """Weighted max-min rates for ``flows`` over ``capacity``.

    ``flows``
        sequence of ``(links, weight, demand)`` triples: the directed
        link resources the flow crosses (hashable ids, each a key of
        ``capacity``), a positive weight, and an optional rate cap
        (``None`` = unbounded demand).  A flow crossing no links is
        limited only by its demand.
    ``capacity``
        per-link capacity, in the same rate unit the result uses.

    Returns one rate per flow, aligned with the input order.
    """
    n = len(flows)
    rates = [0.0] * n
    if n == 0:
        return rates

    link_flows: Dict[Hashable, List[int]] = {}
    demands: List[Optional[float]] = []
    weights: List[float] = []
    for i, (links, weight, demand) in enumerate(flows):
        if weight <= 0:
            raise ValueError(f"flow {i}: weight must be positive, got {weight}")
        if demand is not None and demand < 0:
            raise ValueError(f"flow {i}: demand must be >= 0, got {demand}")
        weights.append(float(weight))
        demands.append(None if demand is None else float(demand))
        for link in set(links):
            if link not in capacity:
                raise ValueError(f"flow {i}: unknown link {link!r}")
            link_flows.setdefault(link, []).append(i)

    remaining: Dict[Hashable, float] = {}
    for link in link_flows:
        cap = float(capacity[link])
        if cap < 0:
            raise ValueError(f"link {link!r}: capacity must be >= 0, got {cap}")
        remaining[link] = cap

    # Links iterated in a stable sorted order so every reduction below
    # is independent of dict insertion order (permutation invariance).
    ordered_links = sorted(link_flows, key=repr)

    active = [True] * n
    n_active = n
    while n_active:
        # Largest uniform time step `dt` such that raising every active
        # flow by weight*dt neither oversubscribes a link nor overshoots
        # a demand.  Weight sums are computed over *sorted* weight
        # values: addition is not associative in floats, and this keeps
        # the sum — hence the whole allocation — order independent.
        dt = None
        for link in ordered_links:
            wsum = _active_weight(link_flows[link], active, weights)
            if wsum <= 0.0:
                continue
            step = remaining[link] / wsum
            if dt is None or step < dt:
                dt = step
        for i in range(n):
            if not active[i] or demands[i] is None:
                continue
            step = (demands[i] - rates[i]) / weights[i]
            if dt is None or step < dt:
                dt = step
        if dt is None:
            # Only unbounded flows crossing no links remain: nothing
            # constrains them.  Freeze at infinity.
            for i in range(n):
                if active[i]:
                    rates[i] = float("inf")
                    active[i] = False
            break
        dt = max(dt, 0.0)

        if dt > 0.0:
            for i in range(n):
                if active[i]:
                    rates[i] += weights[i] * dt
            for link in ordered_links:
                wsum = _active_weight(link_flows[link], active, weights)
                if wsum > 0.0:
                    remaining[link] -= wsum * dt

        # Freeze: first flows that met their demand, then flows crossing
        # a saturated link.  At least one flow freezes per round (the
        # minimizing constraint is met with equality), so the loop
        # terminates after at most n rounds.
        froze = False
        for i in range(n):
            if (active[i] and demands[i] is not None
                    and rates[i] >= demands[i] - abs(demands[i]) * _REL_EPS):
                rates[i] = demands[i]
                active[i] = False
                froze = True
        for link in ordered_links:
            cap = float(capacity[link])
            if remaining[link] <= cap * _REL_EPS:
                remaining[link] = max(remaining[link], 0.0)
                for i in link_flows[link]:
                    if active[i]:
                        active[i] = False
                        froze = True
        if not froze:
            # Numerical corner: dt rounded to zero without meeting any
            # constraint exactly (e.g. a denormal demand gap whose step
            # underflows).  Freeze the tightest constraint outright —
            # a demand-capped flow whose gap underflowed, else the
            # tightest link.
            demand_gap, demand_idx = None, None
            for i in range(n):
                if not active[i] or demands[i] is None:
                    continue
                gap = (demands[i] - rates[i]) / weights[i]
                if demand_gap is None or gap < demand_gap:
                    demand_gap, demand_idx = gap, i
            tightest = min(
                (link for link in ordered_links
                 if _active_weight(link_flows[link], active, weights) > 0.0),
                key=lambda link: (remaining[link], repr(link)),
                default=None,
            )
            if demand_idx is not None and (
                    tightest is None or demand_gap <= remaining[tightest]):
                rates[demand_idx] = demands[demand_idx]
                active[demand_idx] = False
            elif tightest is not None:
                for i in link_flows[tightest]:
                    active[i] = False
            else:
                break
        n_active = sum(active)
    return rates


def _active_weight(indices: List[int], active: List[bool],
                   weights: List[float]) -> float:
    """Sum of active weights on a link, reduced in sorted value order so
    the float result does not depend on flow insertion order."""
    values = sorted(weights[i] for i in indices if active[i])
    total = 0.0
    for value in values:
        total += value
    return total
