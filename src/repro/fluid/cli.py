"""``python -m repro.fluid`` — cross-fidelity tooling.

``compare`` runs the same experiment grid at packet and flow fidelity
and writes the per-metric divergence report (see
:mod:`repro.fluid.compare`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.fluid.compare import (
    DEFAULT_SCHEMES,
    EXPERIMENTS,
    compare_report,
    write_report,
)


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _csv_ints(value: str) -> List[int]:
    try:
        return [int(item) for item in _csv(value)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {value!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fluid",
        description="fluid-engine tooling: packet-vs-flow divergence",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_p = sub.add_parser(
        "compare",
        help="run the grid at both fidelities; write divergence JSON")
    cmp_p.add_argument(
        "--experiments", type=_csv, default=list(EXPERIMENTS),
        metavar="A,B", help=f"families to compare (default: all of "
        f"{','.join(EXPERIMENTS)})")
    cmp_p.add_argument(
        "--schemes", type=_csv, default=list(DEFAULT_SCHEMES),
        metavar="S,S", help="schemes per cell (default: "
        + ",".join(DEFAULT_SCHEMES) + ")")
    cmp_p.add_argument(
        "--seeds", type=_csv_ints, default=[1, 2, 3], metavar="N,N")
    cmp_p.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink every warm/measure window (0.1 = ten times shorter)")
    cmp_p.add_argument("--out", default="FLUID_COMPARE.json",
                       help="report path (default: %(default)s)")
    cmp_p.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    ns = parser.parse_args(argv)
    if ns.command != "compare":  # pragma: no cover - argparse guards
        parser.error(f"unknown command {ns.command!r}")
    unknown = [e for e in ns.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"pick from {', '.join(EXPERIMENTS)}")
    log = (lambda msg: None) if ns.quiet else (
        lambda msg: print(msg, file=sys.stderr))
    report = compare_report(
        experiments=ns.experiments,
        seeds=ns.seeds,
        scale=ns.scale,
        schemes=ns.schemes,
        log=log,
    )
    write_report(report, ns.out)
    if not ns.quiet:
        for experiment, family in sorted(report["experiments"].items()):
            print(f"{experiment}:")
            print(json.dumps(family["summary"], indent=2, sort_keys=True))
        print(f"wrote {ns.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
