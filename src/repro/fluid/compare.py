"""Cross-fidelity divergence report: packet engine vs fluid engine.

``python -m repro.fluid compare`` runs the same experiment cells at
both fidelities — only ``cfg.fidelity`` differs — and reports, per
cell and per metric, how far the fluid approximation strays from
packet-level truth: mice FCT percentiles, per-link utilization over
the measurement window, and aggregate goodput.  The report is fully
deterministic (no wall-clock anywhere in the payload), so the tier-2
cross-fidelity gate can diff it byte for byte.

Two experiment families, chosen because the paper's headline claims
live there:

* ``scalability`` — stride elephants plus a mice stream across a
  2-leaf Clos (Figs 9/11 territory): FCT percentiles + utilization.
* ``failover`` — the Fig 17 timeline: a spine link dies mid-run;
  per-phase goodput, time-to-failover/rebalance and link utilization.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import fct_percentiles
from repro.experiments.harness import Testbed, TestbedConfig
from repro.experiments.scalability import scalability_config
from repro.faults.schedule import FaultSchedule, LinkDown
from repro.metrics.collectors import ThroughputMeter
from repro.units import KB, SEC, msec, usec

SCHEMA = "repro.fluid.compare/1"

EXPERIMENTS = ("scalability", "failover")

#: default schemes compared per cell (the paper's protagonist and its
#: baseline; both must agree across fidelities for the oracles to hold)
DEFAULT_SCHEMES = ("presto", "ecmp")


def _scaled_ns(base_ns: int, scale: float) -> int:
    return max(int(base_ns * scale), usec(100))


def _link_bytes_packet(tb) -> Dict[str, int]:
    """Per-directional-port tx bytes, switch and host sides."""
    out: Dict[str, int] = {}
    for name in sorted(tb.topo.switches):
        for port in tb.topo.switches[name].ports:
            out[port.name] = port.tx_bytes
    for host in tb.hosts:
        port = host.nic.port
        if port is not None:
            out[port.name] = port.tx_bytes
    return out


def _link_bytes(tb) -> Dict[str, int]:
    if hasattr(tb, "engine"):
        return tb.engine.link_bytes()
    return _link_bytes_packet(tb)


def _utilization(delta: Dict[str, int], tb, window_ns: int) -> Dict[str, float]:
    """bytes -> fraction of line rate over the window, keyed by port."""
    rates: Dict[str, float] = {}
    for link in tb.topo.links:
        for port in link.ports:
            rates[port.name] = link.rate_bps
    out = {}
    for name in sorted(delta):
        rate = rates.get(name)
        if rate is None or window_ns <= 0:
            continue
        out[name] = round(delta[name] * 8 * SEC / (rate * window_ns), 6)
    return out


# --- cell runners ------------------------------------------------------------


def _scalability_cell(cfg: TestbedConfig, warm_ns: int,
                      measure_ns: int) -> Dict:
    """Stride elephants + a mice stream on the scalability topology;
    FCTs, utilization over the measure window, aggregate goodput."""
    n_paths = cfg.n_spines
    tb = Testbed(cfg)
    apps = [tb.add_elephant(i, n_paths + i) for i in range(n_paths)]
    mice = tb.add_mice(0, n_paths, size_bytes=50 * KB,
                       interval_ns=_scaled_ns(msec(2), 1.0),
                       stop_ns=warm_ns + measure_ns)
    meter = ThroughputMeter()
    for app in apps:
        meter.track(app)
    marks: Dict[str, Dict[str, int]] = {}
    tb.sim.schedule(warm_ns, lambda: (meter.mark_start(tb.sim.now),
                                      marks.update(warm=_link_bytes(tb))))
    tb.run(warm_ns + measure_ns)
    meter.mark_end(tb.sim.now)
    end = _link_bytes(tb)
    delta = {k: end.get(k, 0) - marks.get("warm", {}).get(k, 0)
             for k in sorted(end)}
    rates = meter.flow_rates_bps()
    return {
        "agg_gbps": round(sum(rates.values()) / 1e9, 4),
        "fct_percentiles_ms": {k: round(v, 6) for k, v in
                               fct_percentiles(mice.fcts_ns).items()},
        "mice_count": len(mice.fcts_ns),
        "link_utilization": _utilization(delta, tb, measure_ns),
    }


def _failover_cell(cfg: TestbedConfig, warm_ns: int,
                   measure_ns: int) -> Dict:
    """Fig 17 shape: 4 L1→L4 elephants, spine link L1--S1 dies after
    the symmetric phase; per-phase goodput and whole-run utilization."""
    tb = Testbed(cfg)
    tb.controller.enable_fast_failover(cfg.failover_latency_ns)
    tb.enable_control_plane()
    apps = [tb.add_elephant(i, 12 + i) for i in range(4)]
    t_fault = warm_ns + measure_ns
    t_end = t_fault + 2 * measure_ns
    FaultSchedule.of(LinkDown(t_fault, "L1--S1")).arm(tb.sim, tb.topo)

    phases = {}
    meter = ThroughputMeter()
    for app in apps:
        meter.track(app)

    def mark(name, start, end):
        tb.sim.schedule(start, lambda: meter.mark_start(tb.sim.now))

        def close():
            meter.mark_end(tb.sim.now)
            phases[name] = round(
                sum(meter.flow_rates_bps().values()) / 1e9, 4)
        tb.sim.schedule(end, close)

    mark("before", warm_ns, t_fault)
    mark("after", t_fault + cfg.failover_latency_ns + msec(1), t_end)
    base = {}
    tb.sim.schedule(warm_ns, lambda: base.update(_link_bytes(tb)))
    tb.run(t_end)
    end_bytes = _link_bytes(tb)
    delta = {k: end_bytes.get(k, 0) - base.get(k, 0)
             for k in sorted(end_bytes)}
    return {
        "phase_agg_gbps": phases,
        "link_utilization": _utilization(delta, tb, t_end - warm_ns),
    }


# --- divergence --------------------------------------------------------------


def _rel(packet: float, flow: float) -> Optional[float]:
    if packet == 0:
        return None
    return round((flow - packet) / packet, 6)


def _divergence(packet: Dict, flow: Dict) -> Dict:
    out: Dict[str, object] = {}
    fct_p = packet.get("fct_percentiles_ms") or {}
    fct_f = flow.get("fct_percentiles_ms") or {}
    for key in sorted(set(fct_p) & set(fct_f)):
        out[f"fct_{key}_rel"] = _rel(fct_p[key], fct_f[key])
    if "agg_gbps" in packet and "agg_gbps" in flow:
        out["agg_rel"] = _rel(packet["agg_gbps"], flow["agg_gbps"])
    for name, agg_p in (packet.get("phase_agg_gbps") or {}).items():
        agg_f = (flow.get("phase_agg_gbps") or {}).get(name)
        if agg_f is not None:
            out[f"phase_{name}_rel"] = _rel(agg_p, agg_f)
    util_p = packet.get("link_utilization") or {}
    util_f = flow.get("link_utilization") or {}
    shared = sorted(set(util_p) & set(util_f))
    if shared:
        gaps = [abs(util_f[k] - util_p[k]) for k in shared]
        out["link_util_mean_abs"] = round(sum(gaps) / len(gaps), 6)
        out["link_util_max_abs"] = round(max(gaps), 6)
        out["link_util_links"] = len(shared)
    return out


# --- driver ------------------------------------------------------------------


def _cell_config(experiment: str, scheme: str, seed: int) -> TestbedConfig:
    if experiment == "scalability":
        return scalability_config(scheme, n_paths=4, seed=seed)
    if experiment == "failover":
        return TestbedConfig(scheme=scheme, seed=seed)
    raise ValueError(
        f"unknown experiment {experiment!r}; pick from {EXPERIMENTS}")


def _run_cell(experiment: str, cfg: TestbedConfig, scale: float) -> Dict:
    if experiment == "scalability":
        return _scalability_cell(cfg, _scaled_ns(msec(10), scale),
                                 _scaled_ns(msec(20), scale))
    return _failover_cell(cfg, _scaled_ns(msec(10), scale),
                          _scaled_ns(msec(20), scale))


def compare_report(
    experiments: Sequence[str] = EXPERIMENTS,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 1.0,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    log=None,
) -> Dict:
    """Run every (experiment, scheme, seed) cell at both fidelities and
    fold per-metric divergence into one JSON-able report."""
    for experiment in experiments:
        if experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {experiment!r}; pick from "
                f"{EXPERIMENTS}")
    report: Dict = {
        "schema": SCHEMA,
        "scale": scale,
        "seeds": list(seeds),
        "schemes": list(schemes),
        "experiments": {},
    }
    for experiment in experiments:
        cells: Dict[str, Dict] = {}
        for scheme in schemes:
            for seed in seeds:
                label = f"{scheme}/seed{seed}"
                if log:
                    log(f"compare: {experiment}/{label}")
                base = _cell_config(experiment, scheme, seed)
                packet = _run_cell(experiment, base, scale)
                flow = _run_cell(
                    experiment, replace(base, fidelity="flow"), scale)
                cells[label] = {
                    "packet": packet,
                    "flow": flow,
                    "divergence": _divergence(packet, flow),
                }
        report["experiments"][experiment] = {
            "cells": cells,
            "summary": _summarize(cells),
        }
    return report


def _summarize(cells: Dict[str, Dict]) -> Dict:
    """Worst-case per-metric divergence across a family's cells."""
    worst: Dict[str, float] = {}
    for cell in cells.values():
        for key, value in cell["divergence"].items():
            if key == "link_util_links" or value is None:
                continue
            magnitude = abs(value)
            if magnitude > abs(worst.get(key, 0.0)):
                worst[key] = value
    return {key: worst[key] for key in sorted(worst)}


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
