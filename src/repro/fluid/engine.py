"""The fluid engine: transfers as max-min fluid demands over real paths.

Instead of queueing packets, the engine keeps every active transfer as
a set of *pipes* — (wire flow id, LB label, resolved port path, byte
fraction) — and recomputes a weighted max-min fair allocation
(:func:`repro.fluid.allocator.max_min_allocation`) whenever the flow
population or the topology changes: transfer arrival, transfer
completion, link up/down/rate events, and controller schedule pushes.
Between reallocations rates are constant, so delivered bytes are exact
integrals and the next completion time is a single division — one sim
event per transition instead of one per packet.

Fidelity anchors (what stays *identical* to the packet engine):

* **Path selection.**  Flows are sliced into the same 64 KB flowcells
  and pushed through the real ``repro.lb`` scheme objects
  (``select()`` / ``packet_labeler()``), so Presto's Algorithm-1
  rotation, ECMP's per-flow hash memo, flowlet gaps and per-packet
  spraying all draw from the same RNG streams and produce the same
  label sequences.
* **Forwarding.**  Each pipe's path is found by walking the real
  switch state — ``l2_table``, ECMP groups (including per-(flow, cell)
  leaf hashing) and ``FailoverGroup.reroute`` with its hardware
  latency — so shadow-MAC trees, backup paths and blackhole windows
  behave exactly as a packet would see them.
* **Fairness.**  Pipe weights are byte *fractions* of their transfer
  (they sum to 1 per transfer), so a Presto elephant sprayed over four
  trees competes at a shared access link as one flow, not four — the
  invariant that keeps mice-vs-elephant FCT ordering truthful.

What is approximated away: queueing delay, slow start, retransmission
and reordering.  ``python -m repro.fluid compare`` quantifies the
resulting divergence per metric.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fluid.allocator import max_min_allocation
from repro.net.packet import DATA
from repro.net.switch import Switch
from repro.units import SEC

#: residual bytes under which a bounded transfer counts as finished
#: (floats only; delivered ints are forced exact at completion)
_DONE_EPS = 1e-6

#: cap on LB probe cells per slicing pass; transfers larger than
#: ``cap * flowcell_bytes`` are sampled at coarser equal-size cells
#: (label *shares* converge with ~hundreds of samples; exact per-cell
#: boundaries only matter for small transfers, which stay exact)
MAX_SLICE_CELLS = 512

#: probe cells per label for unbounded (run-length) transfers
UNBOUNDED_CELLS_PER_LABEL = 8


class _Probe:
    """Stand-in packet/segment fed to LB ``select()`` / packet labelers
    and to switch ECMP groups during path walks.  Carries exactly the
    attributes those code paths read or write."""

    __slots__ = ("flow_id", "flowcell_id", "dst_mac", "src_host",
                 "dst_host", "payload_len", "kind", "seq", "end_seq",
                 "hops", "wire_size")

    def __init__(self, flow_id: int, src_host: int, dst_host: int,
                 payload_len: int):
        self.flow_id = flow_id
        self.flowcell_id = 0
        self.dst_mac = 0
        self.src_host = src_host
        self.dst_host = dst_host
        self.payload_len = payload_len
        self.kind = DATA
        self.seq = 0
        self.end_seq = payload_len
        self.hops = 0
        self.wire_size = payload_len


class _Pipe:
    """One (wire flow, label, path) strand of a transfer's fluid."""

    __slots__ = ("flow_id", "dst_mac", "flowcell_id", "frac", "path",
                 "rate", "delivered")

    def __init__(self, flow_id: int, dst_mac: int, flowcell_id: int,
                 frac: float):
        self.flow_id = flow_id
        self.dst_mac = dst_mac          # label as originally selected
        self.flowcell_id = flowcell_id  # representative cell (ECMP hash)
        self.frac = frac                # byte fraction of the transfer
        self.path: Optional[Tuple[str, ...]] = None  # port names, or None
        self.rate = 0.0                 # bytes/ns, set by realloc
        self.delivered = 0.0            # bytes carried by this pipe


class FluidTransfer:
    """A transfer modeled as fluid; speaks the ``Transfer`` protocol
    (``flow_ids`` / ``delivered_by_flow`` / ``delivered_bytes`` /
    ``fcts_ns``) so every collector works unchanged."""

    def __init__(self, engine: "FluidEngine", src: int, dst: int, lb,
                 wire_flow_ids: Sequence[int],
                 size_bytes: Optional[int], start_ns: int,
                 on_complete: Optional[Callable]):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.lb = lb
        self._flow_ids = tuple(wire_flow_ids)
        self.size_bytes = size_bytes
        self.start_ns = start_ns
        self.on_complete = on_complete
        self.pipes: List[_Pipe] = []
        #: bytes drained from retired pipe generations, per wire flow
        self._retired: Dict[int, float] = {}
        self.remaining: Optional[float] = (
            None if size_bytes is None else float(size_bytes))
        self.done = False
        self.fct_ns: Optional[int] = None
        self._final_by_flow: Optional[Dict[int, int]] = None
        self._completion_event = None

    # --- Transfer protocol ------------------------------------------------

    def flow_ids(self) -> Tuple[int, ...]:
        return self._flow_ids

    def delivered_by_flow(self) -> Dict[int, int]:
        if self._final_by_flow is not None:
            return dict(self._final_by_flow)
        self.engine.sync()
        out = {f: self._retired.get(f, 0.0) for f in self._flow_ids}
        for pipe in self.pipes:
            out[pipe.flow_id] = out.get(pipe.flow_id, 0.0) + pipe.delivered
        return {f: int(v) for f, v in out.items()}

    def delivered_bytes(self) -> int:
        return sum(self.delivered_by_flow().values())

    @property
    def fcts_ns(self) -> Tuple[int, ...]:
        return (self.fct_ns,) if self.fct_ns is not None else ()

    # --- internals --------------------------------------------------------

    def _total_rate(self) -> float:
        total = 0.0
        for pipe in self.pipes:
            total += pipe.rate
        return total

    def _retire_pipes(self) -> None:
        """Fold current pipes' delivered bytes into the retired ledger
        (before re-slicing onto a new schedule)."""
        for pipe in self.pipes:
            self._retired[pipe.flow_id] = (
                self._retired.get(pipe.flow_id, 0.0) + pipe.delivered)
        self.pipes = []

    def _finalize(self) -> None:
        """Force integer delivered counts to sum exactly to the size:
        floor each flow's float, then hand out the leftover bytes in
        sorted flow-id order (deterministic)."""
        assert self.size_bytes is not None
        self._retire_pipes()
        floors = {f: int(self._retired.get(f, 0.0)) for f in self._flow_ids}
        deficit = self.size_bytes - sum(floors.values())
        for flow_id in sorted(floors):
            if deficit <= 0:
                break
            give = min(deficit, self.size_bytes - floors[flow_id])
            floors[flow_id] += give
            deficit -= give
        self._final_by_flow = floors


class FluidEngine:
    """Event-driven fluid allocator over a built topology.

    One engine per :class:`~repro.fluid.testbed.FluidTestbed`.  The
    testbed opens transfers; the engine owns advancement, reallocation
    and completion.  All port bookkeeping is keyed by *port name*
    (strings), never Port objects, so every reduction in the allocator
    sorts deterministically across processes.
    """

    def __init__(self, sim, topo, flowcell_bytes: int,
                 failover_latency_ns: int = 0, validate: bool = False):
        self.sim = sim
        self.topo = topo
        self.flowcell_bytes = int(flowcell_bytes)
        self.failover_latency_ns = int(failover_latency_ns)
        self.validate = validate
        self.transfers: List[FluidTransfer] = []
        self._active: List[FluidTransfer] = []
        self._last_ns = 0
        self._ports: Dict[str, object] = {}  # port name -> Port
        self._leg_bytes: Dict[str, float] = {}
        self._realloc_times: set = set()
        self._reslice_pending = False
        self._watching = False
        #: counters surfaced via telemetry and the compare report
        self.reallocs = 0
        self.slices = 0
        self.violations: List[str] = []

    # --- wiring -----------------------------------------------------------

    def watch_links(self) -> None:
        """Subscribe to every link's state changes (call after all hosts
        are attached).  A change reallocates immediately — dead pipes go
        to zero — and again once the hardware failover latency elapses,
        when :class:`FailoverGroup` starts rerouting."""
        if self._watching:
            return
        self._watching = True
        for link in self.topo.links:
            link.on_state_change.append(self._on_link_change)

    def _on_link_change(self, link) -> None:
        self.request_realloc(0)
        if self.failover_latency_ns > 0:
            self.request_realloc(self.failover_latency_ns)

    def schedules_changed(self) -> None:
        """A controller pushed new LB schedules: re-slice every active
        transfer's remaining bytes over the new labels at the next
        reallocation."""
        self._reslice_pending = True
        self.request_realloc(0)

    def request_realloc(self, delay_ns: int = 0) -> None:
        """Schedule a reallocation ``delay_ns`` from now (coalesced per
        target timestamp)."""
        at = self.sim.now + delay_ns
        if at in self._realloc_times:
            return
        self._realloc_times.add(at)
        self.sim.schedule(delay_ns, self._run_realloc, at)

    # --- transfers --------------------------------------------------------

    def open_transfer(self, src: int, dst: int, lb,
                      wire_flow_ids: Sequence[int],
                      size_bytes: Optional[int] = None,
                      start_ns: int = 0,
                      on_complete: Optional[Callable] = None) -> FluidTransfer:
        """Register a transfer; it becomes fluid at ``start_ns``."""
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive: {size_bytes}")
        transfer = FluidTransfer(self, src, dst, lb, wire_flow_ids,
                                 size_bytes, start_ns, on_complete)
        self.transfers.append(transfer)
        self.sim.schedule(max(0, start_ns - self.sim.now),
                          self._start_transfer, transfer)
        return transfer

    def _start_transfer(self, transfer: FluidTransfer) -> None:
        transfer.start_ns = self.sim.now
        self._slice_transfer(transfer)
        self._active.append(transfer)
        self.request_realloc(0)

    # --- slicing (LB-driven) ----------------------------------------------

    def _slice_transfer(self, transfer: FluidTransfer) -> None:
        """Cut the transfer's (remaining) bytes into flowcells, push each
        through the source host's real LB, resolve each cell's path, and
        group cells into pipes by (wire flow, label, path)."""
        self.slices += 1
        transfer._retire_pipes()
        total = (transfer.remaining if transfer.remaining is not None
                 else None)
        per_flow: List[Tuple[int, Optional[float]]] = [
            (f, None if total is None else total / len(transfer._flow_ids))
            for f in transfer._flow_ids]

        cells: List[Tuple[int, int, int, float]] = []  # flow,mac,cell,bytes
        for flow_id, budget in per_flow:
            cells.extend(self._slice_flow(
                transfer.lb, flow_id, transfer.src, transfer.dst, budget))

        grand = 0.0
        for value in sorted(c[3] for c in cells):
            grand += value
        if grand <= 0.0:
            return
        now = self.sim.now
        pipes: Dict[Tuple[int, int, Optional[Tuple[str, ...]]], _Pipe] = {}
        order: List[Tuple[int, int, Optional[Tuple[str, ...]]]] = []
        for flow_id, dst_mac, cell_id, nbytes in cells:
            path = self.resolve_path(transfer.src, transfer.dst,
                                     flow_id, dst_mac, cell_id, now)
            key = (flow_id, dst_mac, path)
            pipe = pipes.get(key)
            if pipe is None:
                pipe = _Pipe(flow_id, dst_mac, cell_id, 0.0)
                pipe.path = path
                pipes[key] = pipe
                order.append(key)
            pipe.frac += nbytes / grand
        transfer.pipes = [pipes[k] for k in order]

    def _slice_flow(self, lb, flow_id: int, src: int, dst: int,
                    budget: Optional[float]):
        """Yield (flow_id, dst_mac, flowcell_id, bytes) cells for one
        wire flow, drawing labels from the real LB object."""
        cell = self.flowcell_bytes
        if budget is None:
            n_labels = max(1, len(lb.labels_for(dst)))
            n_cells = n_labels * UNBOUNDED_CELLS_PER_LABEL
            sizes = [float(cell)] * n_cells
        else:
            n_cells = max(1, int(math.ceil(budget / cell)))
            if n_cells > MAX_SLICE_CELLS:
                n_cells = MAX_SLICE_CELLS
                sizes = [budget / n_cells] * n_cells
            else:
                sizes = [float(cell)] * (n_cells - 1)
                sizes.append(budget - cell * (n_cells - 1))
        labeler = lb.packet_labeler()
        probe = _Probe(flow_id, src, dst, cell)
        out = []
        for nbytes in sizes:
            probe.payload_len = int(nbytes) or 1
            probe.end_seq = probe.seq + probe.payload_len
            lb.select(probe)
            if labeler is not None:
                labeler(probe)
            out.append((flow_id, probe.dst_mac, probe.flowcell_id,
                        float(nbytes)))
            probe.seq = probe.end_seq
        return out

    # --- forwarding (real switch state) -----------------------------------

    def resolve_path(self, src: int, dst: int, flow_id: int, dst_mac: int,
                     flowcell_id: int, now: int
                     ) -> Optional[Tuple[str, ...]]:
        """Walk the switch tables exactly as ``Switch.receive`` would
        forward a packet carrying this label.  Returns the directional
        port-name path host→…→host, or None if the packet would
        blackhole (down link with no engaged backup, no route, or a
        forwarding loop)."""
        leaf_port = self.topo.host_port.get(src)
        if leaf_port is None:
            return None
        egress = leaf_port.peer_port  # host -> leaf
        if egress is None or not egress.link.up:
            return None
        probe = _Probe(flow_id, src, dst, self.flowcell_bytes)
        probe.dst_mac = dst_mac
        probe.flowcell_id = flowcell_id
        legs = [egress.name]
        node = self.topo.host_leaf.get(src)
        hops = 0
        while node is not None:
            out = node.l2_table.get(probe.dst_mac)
            if out is None:
                group = node.ecmp_by_mac.get(probe.dst_mac)
                if group is None:
                    group = node.ecmp_default
                if group is not None:
                    out = group.select(probe)
            if out is not None and not out.link.up and node.failover is not None:
                # reroute() applies the backup's label rewrite in place,
                # so the next hop resolves the relabeled probe
                out = node.failover.reroute(out, now, probe)
            if out is None or not out.link.up:
                return None
            legs.append(out.name)
            self._ports.setdefault(out.name, out)
            peer = out.peer
            if not isinstance(peer, Switch):
                if getattr(peer, "host_id", None) != dst:
                    return None  # mislabeled: a packet would be ignored
                self._ports.setdefault(egress.name, egress)
                return tuple(legs)
            node = peer
            hops += 1
            if hops > Switch.MAX_HOPS:
                return None
        return None

    # --- advancement ------------------------------------------------------

    def sync(self) -> None:
        """Integrate delivered bytes up to the current sim time (rates
        are piecewise constant, so this is exact)."""
        self._advance(self.sim.now)

    def _advance(self, now: int) -> None:
        dt = now - self._last_ns
        if dt <= 0:
            return
        leg_bytes = self._leg_bytes
        for transfer in self._active:
            total = transfer._total_rate()
            if total <= 0.0:
                continue
            eff = float(dt)
            if transfer.remaining is not None:
                eff = min(eff, transfer.remaining / total)
            if eff <= 0.0:
                continue
            for pipe in transfer.pipes:
                if pipe.rate <= 0.0:
                    continue
                moved = pipe.rate * eff
                pipe.delivered += moved
                if pipe.path is not None:
                    for leg in pipe.path:
                        leg_bytes[leg] = leg_bytes.get(leg, 0.0) + moved
            if transfer.remaining is not None:
                transfer.remaining = max(0.0, transfer.remaining - total * eff)
        self._last_ns = now

    # --- reallocation -----------------------------------------------------

    def _run_realloc(self, at: int) -> None:
        self._realloc_times.discard(at)
        self._realloc()

    def _realloc(self) -> None:
        now = self.sim.now
        self._advance(now)
        self._complete_drained(now)
        if self._reslice_pending:
            self._reslice_pending = False
            for transfer in self._active:
                self._slice_transfer(transfer)
        else:
            for transfer in self._active:
                for pipe in transfer.pipes:
                    pipe.path = self.resolve_path(
                        transfer.src, transfer.dst, pipe.flow_id,
                        pipe.dst_mac, pipe.flowcell_id, now)

        entries = []   # allocator input
        routed = []    # pipes aligned with entries
        for transfer in self._active:
            for pipe in transfer.pipes:
                pipe.rate = 0.0
                if pipe.path is not None and pipe.frac > 0.0:
                    entries.append((pipe.path, pipe.frac, None))
                    routed.append(pipe)
        if entries:
            capacity = {name: self._ports[name].link.rate_bps / (8.0 * SEC)
                        for name in self._ports}
            rates = max_min_allocation(entries, capacity)
            for pipe, rate in zip(routed, rates):
                pipe.rate = rate
            if self.validate:
                self._check_allocation(entries, rates, capacity)

        for transfer in self._active:
            self._schedule_completion(transfer, now)
        self.reallocs += 1

    def _check_allocation(self, entries, rates, capacity) -> None:
        used: Dict[str, float] = {}
        for (links, _w, _d), rate in zip(entries, rates):
            for leg in links:
                used[leg] = used.get(leg, 0.0) + rate
        for leg in sorted(used):
            cap = capacity[leg]
            if used[leg] > cap * (1.0 + 1e-9) + 1e-15:
                self.violations.append(
                    f"t={self.sim.now}: allocation exceeds capacity on "
                    f"{leg}: {used[leg]:.6g} > {cap:.6g} bytes/ns")

    def _schedule_completion(self, transfer: FluidTransfer, now: int) -> None:
        if transfer._completion_event is not None:
            transfer._completion_event.cancel()
            transfer._completion_event = None
        if transfer.remaining is None:
            return
        total = transfer._total_rate()
        if total <= 0.0:
            return  # stalled (e.g. blackholed); a later realloc revives it
        delay = int(math.ceil(transfer.remaining / total))
        transfer._completion_event = self.sim.schedule(
            max(1, delay), self._run_realloc, None)

    def _complete_drained(self, now: int) -> None:
        drained = [t for t in self._active
                   if t.remaining is not None and t.remaining <= _DONE_EPS]
        for transfer in drained:
            self._active.remove(transfer)
            transfer.done = True
            transfer.remaining = 0.0
            transfer.fct_ns = now - transfer.start_ns
            if transfer._completion_event is not None:
                transfer._completion_event.cancel()
                transfer._completion_event = None
            transfer._finalize()
            if transfer.on_complete is not None:
                transfer.on_complete(transfer)

    # --- readouts ---------------------------------------------------------

    def link_bytes(self) -> Dict[str, int]:
        """Bytes carried per directional port (sorted by name), the
        fluid counterpart of the packet engine's ``port.tx_bytes``."""
        self.sync()
        return {name: int(self._leg_bytes[name])
                for name in sorted(self._leg_bytes)}

    def path_latency_ns(self, path: Sequence[str], payload_bytes: int) -> int:
        """One-way propagation + per-hop serialization along a resolved
        path (no queueing — fluid RTT probes report the floor)."""
        total = 0.0
        for name in path:
            link = self._ports[name].link
            total += link.prop_delay_ns
            total += payload_bytes * 8 * SEC / link.rate_bps
        return int(total)
