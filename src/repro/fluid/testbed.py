"""Fluid-fidelity testbed: same wiring as :class:`Testbed`, fluid data
plane.

``Testbed(cfg)`` with ``cfg.fidelity == "flow"`` constructs one of
these (dispatch lives in ``Testbed.__new__``), so every experiment,
sweep and oracle selects fidelity purely through the config knob.  The
control surface is identical — real topology, real LB objects
registered with the real :class:`PrestoController`, the modeled
control plane, fault schedules — only hosts and transport are
replaced: a :class:`FluidHost` has no TCP stack or GRO, and
``add_elephant``/``add_mice``/``add_probe`` open
:class:`~repro.fluid.engine.FluidTransfer` fluids instead of
packet-level apps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.harness import Testbed, TestbedConfig
from repro.fluid.engine import FluidEngine, FluidTransfer, _Probe
from repro.host.app import FlowIdAllocator
from repro.presto.controller import PrestoController
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryConfig
from repro.units import KB, msec


class _FluidNic:
    """Counter-compatible NIC stub: accountants read these fields."""

    def __init__(self):
        self.port = None       # set to the real egress Port on attach
        self.tx_pkts = 0
        self.tx_segments = 0
        self.rx_pkts = 0
        self.ring_drops = 0


class _FluidRx:
    """Receiver-side mirror of one wire flow, so closed-loop workloads
    (``shuffle_workload``) can read ``receivers[f].delivered_bytes``
    exactly as on a packet host."""

    __slots__ = ("_transfer", "_flow_id")

    def __init__(self, transfer: FluidTransfer, flow_id: int):
        self._transfer = transfer
        self._flow_id = flow_id

    @property
    def delivered_bytes(self) -> int:
        return self._transfer.delivered_by_flow().get(self._flow_id, 0)


class FluidHost:
    """Duck-typed host: enough surface for Topology, the controller and
    the metric accountants; no packet machinery."""

    def __init__(self, host_id: int, lb):
        self.host_id = host_id
        self.lb = lb
        self.nic = _FluidNic()
        self.receivers: Dict[int, _FluidRx] = {}
        self.senders: Dict[int, object] = {}
        self.tx_pkts = 0
        self.rx_ring_drops = 0

    def attach(self, egress_port, topo) -> None:
        self.nic.port = egress_port

    def receive(self, pkt, in_port=None) -> None:
        pass  # nothing packet-shaped ever arrives at fluid fidelity


class RepFlowFluidApp:
    """Fluid-fidelity RepFlow transfer: two full-size fluid copies
    raced over disjoint trees (mirrors :class:`repro.host.app.RepFlowApp`).

    Each copy is an ordinary bounded :class:`FluidTransfer`, so the
    engine's conservation invariants hold per copy; the wrapper does
    the first-finisher-wins FCT accounting and suppresses the
    duplicate's bytes from the application-level ledger."""

    def __init__(self, tb: "FluidTestbed", src: int, dst: int,
                 size_bytes: int, start_ns: int = 0, on_complete=None):
        if size_bytes is None or size_bytes <= 0:
            raise ValueError(
                f"RepFlow replicates bounded transfers only, "
                f"got size_bytes={size_bytes}")
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.winner = None
        lb = tb.hosts[src].lb
        primary = tb.flow_ids.next()
        replica = tb.flow_ids.next()
        pair = getattr(lb, "pair", None)
        if pair is not None:
            pair(primary, replica)
        self.copies = tuple(
            tb.engine.open_transfer(
                src, dst, lb, [flow_id], size_bytes=size_bytes,
                start_ns=start_ns, on_complete=self._copy_done)
            for flow_id in (primary, replica)
        )
        receivers = tb.hosts[dst].receivers
        for copy in self.copies:
            for flow_id in copy.flow_ids():
                receivers[flow_id] = _FluidRx(copy, flow_id)

    def _copy_done(self, copy: FluidTransfer) -> None:
        if self.winner is None:
            self.winner = copy
            if self.on_complete is not None:
                self.on_complete(self)

    def _leader(self) -> FluidTransfer:
        if self.winner is not None:
            return self.winner
        return max(self.copies, key=lambda c: (c.delivered_bytes(),
                                               -c.flow_ids()[0]))

    @property
    def dup_suppressed_bytes(self) -> int:
        """Payload bytes the receiver discarded as duplicates."""
        leader = self._leader()
        return sum(c.delivered_bytes() for c in self.copies
                   if c is not leader)

    # --- Transfer protocol ------------------------------------------------

    def flow_ids(self) -> tuple:
        return tuple(f for c in self.copies for f in c.flow_ids())

    def delivered_by_flow(self) -> dict:
        leader = self._leader()
        out: dict = {}
        for copy in self.copies:
            for flow_id in copy.flow_ids():
                out[flow_id] = (copy.delivered_by_flow()[flow_id]
                                if copy is leader else 0)
        return out

    def delivered_bytes(self) -> int:
        return self._leader().delivered_bytes()

    @property
    def fct_ns(self):
        return self.winner.fct_ns if self.winner is not None else None

    @property
    def fcts_ns(self) -> tuple:
        fct = self.fct_ns
        return (fct,) if fct is not None else ()


class FluidMiceApp:
    """Periodic mice at fluid fidelity; mirrors ``MiceApp``'s shape
    (``fcts_ns``, ``sent``, Transfer protocol over spawned flows)."""

    def __init__(self, tb: "FluidTestbed", src: int, dst: int,
                 size_bytes: int, interval_ns: int, start_ns: int = 0,
                 stop_ns: Optional[int] = None):
        self.tb = tb
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.fcts_ns: List[int] = []
        self.sent = 0
        self._transfers: List[FluidTransfer] = []
        tb.sim.schedule(start_ns, self._tick)

    def _tick(self) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        transfer = self.tb._open(self.src, self.dst,
                                 size_bytes=self.size_bytes,
                                 on_complete=self._done)
        self._transfers.append(transfer)
        self.sent += 1
        self.tb.sim.schedule(self.interval_ns, self._tick)

    def _done(self, transfer: FluidTransfer) -> None:
        if transfer.fct_ns is not None:
            self.fcts_ns.append(transfer.fct_ns)

    @property
    def dup_suppressed_bytes(self) -> int:
        """RepFlow duplicate suppression, rolled up over spawned mice
        (0 for single-copy transports)."""
        return sum(getattr(t, "dup_suppressed_bytes", 0)
                   for t in self._transfers)

    # --- Transfer protocol ------------------------------------------------

    def flow_ids(self) -> tuple:
        return tuple(f for t in self._transfers for f in t.flow_ids())

    def delivered_by_flow(self) -> dict:
        out: dict = {}
        for transfer in self._transfers:
            out.update(transfer.delivered_by_flow())
        return out

    def delivered_bytes(self) -> int:
        return sum(t.delivered_bytes() for t in self._transfers)


class FluidProbeApp:
    """RTT probe at fluid fidelity: resolves the probe's path through
    the real LB + switch state and reports the queueless floor —
    propagation plus per-hop serialization, doubled for the echo."""

    PROBE_BYTES = 64

    def __init__(self, tb: "FluidTestbed", src: int, dst: int,
                 interval_ns: int = msec(1), start_ns: int = 0,
                 stop_ns: Optional[int] = None):
        self.tb = tb
        self.src = src
        self.dst = dst
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        # two ids, like the packet probe's request/reply pair
        self.flow_id = tb.flow_ids.next()
        self.reply_flow_id = tb.flow_ids.next()
        self.rtts_ns: List[int] = []
        tb.sim.schedule(start_ns, self._tick)

    def _tick(self) -> None:
        sim = self.tb.sim
        if self.stop_ns is not None and sim.now >= self.stop_ns:
            return
        lb = self.tb.hosts[self.src].lb
        probe = _Probe(self.flow_id, self.src, self.dst, self.PROBE_BYTES)
        lb.select(probe)
        labeler = lb.packet_labeler()
        if labeler is not None:
            labeler(probe)
        path = self.tb.engine.resolve_path(
            self.src, self.dst, self.flow_id, probe.dst_mac,
            probe.flowcell_id, sim.now)
        if path is not None:
            one_way = self.tb.engine.path_latency_ns(path, self.PROBE_BYTES)
            self.rtts_ns.append(2 * one_way)
        sim.schedule(self.interval_ns, self._tick)

    # --- Transfer protocol (probes carry no payload) ----------------------

    def flow_ids(self) -> tuple:
        return (self.flow_id, self.reply_flow_id)

    def delivered_by_flow(self) -> dict:
        return {self.flow_id: 0, self.reply_flow_id: 0}

    def delivered_bytes(self) -> int:
        return 0


class FluidTestbed(Testbed):
    """Flow-level counterpart of :class:`Testbed` (one per run)."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, cfg: TestbedConfig,
                 telemetry: Optional[TelemetryConfig] = None):
        # Mirrors Testbed.__init__ step for step; divergences are the
        # fluid engine, FluidHost construction and telemetry sampling.
        from repro.experiments.schemes import get_scheme

        self.cfg = cfg
        self.scheme_def = get_scheme(cfg.scheme)
        self.sim = Simulator()
        self.telemetry = (
            Telemetry(self.sim, telemetry)
            if telemetry is not None else NULL_TELEMETRY
        )
        self.streams = RandomStreams(cfg.seed)
        self.flow_ids = FlowIdAllocator()
        self.topo = self._build_topology()
        self.hosts: List[FluidHost] = []
        self._build_hosts()
        self.engine = FluidEngine(
            self.sim, self.topo, cfg.flowcell_bytes,
            failover_latency_ns=cfg.failover_latency_ns,
            validate=bool(cfg.validate))
        self.controller = PrestoController(self.topo)
        for host in self.hosts:
            self.controller.register_vswitch(host.lb)
        self.topo.install_underlay(
            leaf_hash_mode=self.scheme_def.leaf_hash_mode)
        self._wrap_schedules()
        self.engine.watch_links()
        self.apps: List[object] = []
        self.control_plane = None
        if self.telemetry.enabled:
            self.telemetry.add_sampler(self._fluid_sampler)
        self.validation = None
        self.last_invariant_report = None

    # --- construction -----------------------------------------------------

    def _build_hosts(self) -> None:
        cfg = self.cfg
        spec = cfg.topology_spec()
        for host_id in range(self._n_hosts()):
            host = FluidHost(host_id, lb=self._make_lb(host_id))
            if self.scheme_def.single_switch:
                leaf = self.topo.leaves[0]
            else:
                leaf = self.topo.leaves[spec.edge_of(host_id)]
            self.topo.attach_host(
                host,
                leaf,
                rate_bps=cfg.link_rate_bps,
                prop_delay_ns=cfg.prop_delay_ns,
                buffer_bytes=cfg.switch_buffer_bytes,
                host_buffer_bytes=cfg.host_buffer_bytes,
            )
            self.hosts.append(host)

    def _wrap_schedules(self) -> None:
        """Intercept every LB's ``set_schedule`` so controller pushes
        (initial install, control-plane reweights) re-slice active
        fluids over the new labels."""
        engine = self.engine
        for host in self.hosts:
            original = host.lb.set_schedule

            def wrapped(dst_host, labels, _orig=original):
                _orig(dst_host, labels)
                engine.schedules_changed()

            host.lb.set_schedule = wrapped

    def pod_of(self, host_id: int) -> int:
        """Rack (edge switch) index a host logically belongs to, for any
        fabric shape (mirrors :meth:`Testbed.pod_of`)."""
        return self.cfg.topology_spec().edge_of(host_id)

    # --- traffic ----------------------------------------------------------

    def _open(self, src: int, dst: int, size_bytes: Optional[int],
              start_ns: int = 0, on_complete=None):
        if self._replicates(size_bytes):
            return RepFlowFluidApp(self, src, dst, size_bytes,
                                   start_ns=start_ns,
                                   on_complete=on_complete)
        n_flows = self.cfg.mptcp_subflows if self.is_mptcp else 1
        ids = [self.flow_ids.next() for _ in range(n_flows)]
        transfer = self.engine.open_transfer(
            src, dst, self.hosts[src].lb, ids,
            size_bytes=size_bytes, start_ns=start_ns,
            on_complete=on_complete)
        receivers = self.hosts[dst].receivers
        for flow_id in ids:
            receivers[flow_id] = _FluidRx(transfer, flow_id)
        return transfer

    def add_elephant(self, src: int, dst: int,
                     size_bytes: Optional[int] = None, start_ns: int = 0,
                     on_complete=None):
        transfer = self._open(src, dst, size_bytes, start_ns, on_complete)
        self.apps.append(transfer)
        return transfer

    def add_mice(self, src: int, dst: int, size_bytes: int = 50 * KB,
                 interval_ns: int = msec(100), start_ns: int = 0,
                 stop_ns: Optional[int] = None):
        app = FluidMiceApp(self, src, dst, size_bytes=size_bytes,
                           interval_ns=interval_ns, start_ns=start_ns,
                           stop_ns=stop_ns)
        self.apps.append(app)
        return app

    def add_probe(self, src: int, dst: int, interval_ns: int = msec(1),
                  start_ns: int = 0,
                  stop_ns: Optional[int] = None) -> FluidProbeApp:
        app = FluidProbeApp(self, src, dst, interval_ns=interval_ns,
                            start_ns=start_ns, stop_ns=stop_ns)
        self.apps.append(app)
        return app

    # --- running ----------------------------------------------------------

    def run(self, until_ns: int) -> None:
        self.sim.run(until=until_ns)
        self.engine.sync()
        if self.cfg.validate:
            from repro.validate.invariants import InvariantViolation

            report = self._fluid_check()
            self.last_invariant_report = report
            if not report.ok:
                raise InvariantViolation(
                    f"{len(report.violations)} invariant violation(s) "
                    f"after fluid run to t={until_ns}: "
                    + "; ".join(report.violations))

    def _fluid_check(self):
        """Fluid conservation laws: allocations never exceeded any link
        capacity (checked at every realloc) and completed transfers
        delivered exactly their size."""
        from repro.validate.invariants import InvariantReport

        violations = list(self.engine.violations)
        for transfer in self.engine.transfers:
            delivered = transfer.delivered_bytes()
            size = transfer.size_bytes
            if size is None:
                continue
            if transfer.done and delivered != size:
                violations.append(
                    f"transfer {transfer.flow_ids()} completed with "
                    f"{delivered} of {size} bytes")
            elif delivered > size:
                violations.append(
                    f"transfer {transfer.flow_ids()} delivered {delivered} "
                    f"> size {size}")
        return InvariantReport(
            violations=violations,
            stats={
                "fluid_transfers": len(self.engine.transfers),
                "fluid_reallocs": self.engine.reallocs,
                "fluid_slices": self.engine.slices,
            },
        )

    # --- telemetry --------------------------------------------------------

    def _fluid_sampler(self, reg) -> None:
        reg.counter("fluid.reallocs").record_total(self.engine.reallocs)
        reg.counter("fluid.slices").record_total(self.engine.slices)
        reg.counter("fluid.transfers").record_total(
            len(self.engine.transfers))
        for name, nbytes in self.engine.link_bytes().items():
            reg.counter(f"fluid.port.{name}.tx_bytes").record_total(nbytes)
