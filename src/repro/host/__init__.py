"""End-host stack: NIC offloads, GRO, CPU model, TCP, applications."""

from repro.host.cpu import CpuCosts, ReceiverCpu
from repro.host.gro import GroBase, OfficialGro, PrestoGro
from repro.host.nic import Nic
from repro.host.tcp import TcpReceiver, TcpSender
from repro.host.host import Host

__all__ = [
    "CpuCosts",
    "ReceiverCpu",
    "GroBase",
    "OfficialGro",
    "PrestoGro",
    "Nic",
    "TcpSender",
    "TcpReceiver",
    "Host",
]
