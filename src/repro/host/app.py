"""Traffic applications used by the paper's measurements.

* :class:`BulkApp` — nuttcp/scp-style elephant: a fixed-size or endless
  transfer; throughput is measured at the receiver.
* :class:`MiceApp` — 50 KB request every 100 ms; the flow completion
  time (request start until the payload is fully acknowledged) is the
  paper's mice FCT metric.
* :class:`RttProbeApp` — sockperf-style ping-pong: a tiny message is
  echoed by the peer; the round trip time is recorded at the client.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.host.host import Host
from repro.host.transfer import delivered_for
from repro.sim.engine import Simulator
from repro.units import KB, msec


class FlowIdAllocator:
    """Monotonic flow-id source shared by an experiment."""

    def __init__(self, start: int = 1):
        self._next = start

    def next(self) -> int:
        flow_id = self._next
        self._next += 1
        return flow_id


class BulkApp:
    """One elephant transfer from ``src`` to ``dst``."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flow_id: int,
        size_bytes: Optional[int] = None,
        start_ns: int = 0,
        on_complete=None,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.sender = None
        sim.schedule(start_ns, self._start)

    def _start(self) -> None:
        self.sender = self.src.open_sender(
            self.flow_id, self.dst.host_id, on_complete=self._done
        )
        if self.size_bytes is None:
            self.sender.set_unbounded()
        else:
            self.sender.write(self.size_bytes)

    def _done(self, sender) -> None:
        if self.on_complete is not None:
            self.on_complete(self)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> Tuple[int, ...]:
        return (self.flow_id,)

    def delivered_by_flow(self) -> Dict[int, int]:
        return {self.flow_id: delivered_for(self.dst, self.flow_id)}

    def delivered_bytes(self) -> int:
        return delivered_for(self.dst, self.flow_id)

    @property
    def fct_ns(self):
        """Flow completion time (None while incomplete or unbounded)."""
        return self.sender.fct_ns if self.sender is not None else None

    @property
    def fcts_ns(self) -> Tuple[int, ...]:
        fct = self.fct_ns
        return (fct,) if fct is not None else ()


class RepFlowApp:
    """One RepFlow transfer: the payload raced as two full copies over
    disjoint paths (see :class:`repro.lb.repflow.RepFlowLb`).

    The first copy to finish sets the transfer's FCT and is the one
    whose bytes count as delivered; the duplicate's payload is
    *suppressed* at the receiver — tracked in ``dup_suppressed_bytes``,
    never in ``delivered_bytes()``, so byte conservation holds at the
    application layer (received payload == flow size) while the wire
    carries both copies.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flow_ids: FlowIdAllocator,
        size_bytes: int,
        start_ns: int = 0,
        on_complete=None,
    ):
        if size_bytes is None or size_bytes <= 0:
            raise ValueError(
                f"RepFlow replicates bounded transfers only, "
                f"got size_bytes={size_bytes}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.winner = None
        primary = flow_ids.next()
        replica = flow_ids.next()
        pair = getattr(src.lb, "pair", None)
        if pair is not None:
            pair(primary, replica)
        self.copies = tuple(
            BulkApp(sim, src, dst, flow_id, size_bytes=size_bytes,
                    start_ns=start_ns, on_complete=self._copy_done)
            for flow_id in (primary, replica)
        )

    def _copy_done(self, copy: BulkApp) -> None:
        if self.winner is None:
            self.winner = copy
            if self.on_complete is not None:
                self.on_complete(self)

    def _leader(self) -> BulkApp:
        """The copy whose bytes count: the winner once decided, else
        whichever copy is ahead (ties go to the primary)."""
        if self.winner is not None:
            return self.winner
        return max(self.copies, key=lambda c: (c.delivered_bytes(),
                                               -c.flow_id))

    @property
    def dup_suppressed_bytes(self) -> int:
        """Payload bytes the receiver discarded as duplicates."""
        leader = self._leader()
        return sum(c.delivered_bytes() for c in self.copies
                   if c is not leader)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> Tuple[int, ...]:
        return tuple(c.flow_id for c in self.copies)

    def delivered_by_flow(self) -> Dict[int, int]:
        leader = self._leader()
        return {c.flow_id: (c.delivered_bytes() if c is leader else 0)
                for c in self.copies}

    def delivered_bytes(self) -> int:
        return self._leader().delivered_bytes()

    @property
    def fct_ns(self):
        """First-finisher-wins completion time."""
        return self.winner.fct_ns if self.winner is not None else None

    @property
    def fcts_ns(self) -> Tuple[int, ...]:
        fct = self.fct_ns
        return (fct,) if fct is not None else ()


class MiceApp:
    """Periodic 50 KB mice flows from ``src`` to ``dst``.

    Each request is a fresh flow; its FCT (write -> fully acked) is
    appended to ``fcts_ns``.  Requests overlap if the previous one has
    not finished (open-loop, as in the paper's 100 ms cadence).
    """

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flow_ids: FlowIdAllocator,
        size_bytes: int = 50 * KB,
        interval_ns: int = msec(100),
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self._allocator = flow_ids
        self.size_bytes = size_bytes
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.fcts_ns: List[int] = []
        self.sent = 0
        self._spawned: List[int] = []
        sim.schedule(start_ns, self._tick)

    def _tick(self) -> None:
        if self.stop_ns is not None and self.sim.now >= self.stop_ns:
            return
        flow_id = self._allocator.next()
        sender = self.src.open_sender(flow_id, self.dst.host_id, on_complete=self._done)
        sender.write(self.size_bytes)
        self.sent += 1
        self._spawned.append(flow_id)
        self.sim.schedule(self.interval_ns, self._tick)

    def _done(self, sender) -> None:
        if sender.fct_ns is not None:
            self.fcts_ns.append(sender.fct_ns)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> Tuple[int, ...]:
        return tuple(self._spawned)

    def delivered_by_flow(self) -> Dict[int, int]:
        return {f: delivered_for(self.dst, f) for f in self._spawned}

    def delivered_bytes(self) -> int:
        return sum(delivered_for(self.dst, f) for f in self._spawned)


class RttProbeApp:
    """sockperf-style RTT probe: single-packet ping-pong over TCP."""

    PROBE_BYTES = 64

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        flow_ids: FlowIdAllocator,
        interval_ns: int = msec(1),
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
    ):
        self.sim = sim
        self.client = client
        self.server = server
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.rtts_ns: List[int] = []
        self._c2s = flow_ids.next()
        self._s2c = flow_ids.next()
        self._sent_at: Optional[int] = None
        self._client_sender = None
        self._server_sender = None
        self._echoed = 0
        self._received = 0
        sim.schedule(start_ns, self._start)

    def _start(self) -> None:
        self._client_sender = self.client.open_sender(self._c2s, self.server.host_id)
        self._server_sender = self.server.open_sender(self._s2c, self.client.host_id)
        self.server.expect_flow(self._c2s, self._on_server_data)
        self.client.expect_flow(self._s2c, self._on_client_data)
        self._send_probe()

    def _send_probe(self) -> None:
        if self.stop_ns is not None and self.sim.now >= self.stop_ns:
            return
        self._sent_at = self.sim.now
        self._client_sender.write(self.PROBE_BYTES)

    def _on_server_data(self, total: int) -> None:
        # echo every fully received probe back to the client
        while total - self._echoed >= self.PROBE_BYTES:
            self._echoed += self.PROBE_BYTES
            self._server_sender.write(self.PROBE_BYTES)

    def _on_client_data(self, total: int) -> None:
        while total - self._received >= self.PROBE_BYTES:
            self._received += self.PROBE_BYTES
            if self._sent_at is not None:
                self.rtts_ns.append(self.sim.now - self._sent_at)
                self._sent_at = None
                delay = max(0, self.interval_ns)
                self.sim.schedule(delay, self._send_probe)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> Tuple[int, ...]:
        return (self._c2s, self._s2c)

    def delivered_by_flow(self) -> Dict[int, int]:
        return {
            self._c2s: delivered_for(self.server, self._c2s),
            self._s2c: delivered_for(self.client, self._s2c),
        }

    def delivered_bytes(self) -> int:
        return sum(self.delivered_by_flow().values())

    @property
    def fcts_ns(self) -> Tuple[int, ...]:
        """Probes are open-ended; they record RTTs, not completions."""
        return ()
