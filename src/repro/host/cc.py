"""Congestion control: Reno and CUBIC (the paper's testbed default).

Windows are in **bytes**.  The controller object owns ``cwnd`` and
``ssthresh``; the :class:`~repro.host.tcp.TcpSender` drives it with ACK
/ loss / timeout notifications.  CUBIC follows Ha, Rhee & Xu (2008)
with standard beta=0.7 and C=0.4 and TCP-friendly region checks.
"""

from __future__ import annotations

from repro.units import SEC

INF = float("inf")


class RenoCc:
    """NewReno: slow start + AIMD congestion avoidance."""

    name = "reno"

    def __init__(self, mss: int, init_cwnd_pkts: int = 10):
        self.mss = mss
        self.cwnd = float(mss * init_cwnd_pkts)
        self.ssthresh = INF
        self._ca_accum = 0.0

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, now_ns: int, rtt_ns: int) -> None:
        if self.in_slow_start():
            self.cwnd += acked_bytes
        else:
            # Appropriate byte counting: +MSS per cwnd of acked bytes.
            self._ca_accum += acked_bytes
            if self._ca_accum >= self.cwnd:
                self._ca_accum -= self.cwnd
                self.cwnd += self.mss

    def on_enter_recovery(self, flight_bytes: int, now_ns: int) -> None:
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def on_exit_recovery(self, now_ns: int) -> None:
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_bytes: int, now_ns: int) -> None:
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self._ca_accum = 0.0


class CubicCc(RenoCc):
    """CUBIC window growth with the standard cubic function
    W(t) = C*(t-K)^3 + W_max and a TCP-friendly lower envelope."""

    name = "cubic"

    C = 0.4          # scaling constant (units: MSS/s^3)
    BETA = 0.7       # multiplicative decrease

    def __init__(self, mss: int, init_cwnd_pkts: int = 10):
        super().__init__(mss, init_cwnd_pkts)
        self._w_max = 0.0          # cwnd before the last reduction (MSS units)
        self._epoch_start = None   # ns
        self._k = 0.0              # seconds
        self._tcp_cwnd = 0.0       # TCP-friendly estimate (MSS units)

    def on_ack(self, acked_bytes: int, now_ns: int, rtt_ns: int) -> None:
        if self.in_slow_start():
            self.cwnd += acked_bytes
            return
        mss = self.mss
        if self._epoch_start is None:
            self._epoch_start = now_ns
            w = self.cwnd / mss
            if w < self._w_max:
                self._k = ((self._w_max - w) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
            self._tcp_cwnd = w
        t = (now_ns - self._epoch_start) / SEC
        target = self.C * (t - self._k) ** 3 + self._w_max  # in MSS
        # TCP-friendly region (standard Reno-equivalent growth estimate)
        rtt_s = max(rtt_ns / SEC, 1e-6)
        self._tcp_cwnd += 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * (
            acked_bytes / self.cwnd
        )
        target = max(target, self._tcp_cwnd)
        w_now = self.cwnd / mss
        if target > w_now:
            # Close the gap to the cubic target over roughly one RTT of ACKs.
            self.cwnd += (target - w_now) * mss * (acked_bytes / self.cwnd)
        else:
            # plateau: tiny growth to keep probing
            self.cwnd += mss * (acked_bytes / (100.0 * self.cwnd))

    def _reduce(self) -> None:
        self._w_max = self.cwnd / self.mss
        self._epoch_start = None
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)

    def on_enter_recovery(self, flight_bytes: int, now_ns: int) -> None:
        self._reduce()
        self.cwnd = self.ssthresh

    def on_exit_recovery(self, now_ns: int) -> None:
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_bytes: int, now_ns: int) -> None:
        self._reduce()
        self.cwnd = float(self.mss)
        self._ca_accum = 0.0


def make_cc(name: str, mss: int, init_cwnd_pkts: int = 10):
    """Factory: 'reno' or 'cubic'."""
    if name == "reno":
        return RenoCc(mss, init_cwnd_pkts)
    if name == "cubic":
        return CubicCc(mss, init_cwnd_pkts)
    raise ValueError(f"unknown congestion control: {name!r}")
