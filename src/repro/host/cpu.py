"""Receiver CPU cost model.

The paper's central systems observation is *computational*: at 10+ Gbps
the receive path is dominated by per-segment (not per-byte) costs, so
when reordering defeats GRO and MTU-sized segments flood the stack, one
core saturates and throughput collapses ("small segment flooding",
S2.2; Menon & Zwaenepoel).  We model one receive core as a busy-until
server: every GRO merge, every segment pushed up the stack and every
pure ACK consumes service time, and the NIC can only poll the ring when
the core is free — so an overloaded core backs the ring up and drops
packets, exactly the collapse mode the paper measures.

Default constants are calibrated (see DESIGN.md S2) so that, at 10 Gbps:

* official GRO without reordering runs at ~65 % utilization (paper: 69 %),
* per-MTU-segment processing caps goodput near 5 Gbps at 100 % CPU
  (paper: 4.6-5.7 Gbps),
* Presto's segment-list bookkeeping adds ~5 % (paper: 6 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.engine import Simulator


@dataclass
class CpuCosts:
    """Service-time constants, all in nanoseconds (per unit noted)."""

    #: per segment pushed up to TCP/IP (skb alloc, protocol processing)
    per_segment_ns: float = 1500.0
    #: per packet handled by the GRO merge loop
    per_merge_pkt_ns: float = 150.0
    #: per payload byte (copies, checksum touch)
    per_byte_ns: float = 0.45
    #: per pure ACK processed by the sender-side stack
    per_ack_ns: float = 500.0
    #: Presto extra per packet (multi-segment list management + shadow-MAC
    #: restore memcpy)
    presto_per_pkt_ns: float = 30.0
    #: Presto insertion sort: fixed + per held segment, per flush
    presto_flush_ns: float = 100.0
    presto_per_held_segment_ns: float = 50.0

    def segment_push_cost(self, payload_len: int) -> float:
        return self.per_segment_ns + self.per_byte_ns * payload_len


class ReceiverCpu:
    """One receive core as a non-preemptive busy-until server."""

    def __init__(self, sim: Simulator, costs: CpuCosts = None):
        self.sim = sim
        self.costs = costs if costs is not None else CpuCosts()
        self._busy_until = 0
        self.busy_ns_total = 0
        #: (time, cumulative_busy_ns) checkpoints for utilization sampling
        self._samples: List[Tuple[int, int]] = [(0, 0)]

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def free_at(self) -> int:
        """Earliest time the core can take new work."""
        return max(self.sim.now, self._busy_until)

    def consume(self, cost_ns: float) -> int:
        """Account ``cost_ns`` of work starting when the core is free;
        returns the completion time."""
        cost = int(round(cost_ns))
        if cost <= 0:
            return self.free_at()
        start = self.free_at()
        self._busy_until = start + cost
        self.busy_ns_total += cost
        return self._busy_until

    # --- utilization sampling -------------------------------------------------

    def checkpoint(self) -> None:
        """Record a (now, busy_total) point for later utilization math."""
        busy = self.busy_ns_total
        # Work scheduled into the future should not count as already done.
        if self._busy_until > self.sim.now:
            busy -= self._busy_until - self.sim.now
        self._samples.append((self.sim.now, max(0, busy)))

    def utilization(self, since_ns: int = 0, until_ns: int = None) -> float:
        """Fraction of [since, until] the core was busy (0..1)."""
        until = until_ns if until_ns is not None else self.sim.now
        if until <= since_ns:
            return 0.0
        busy_at_start = self._interp(since_ns)
        busy_at_end = self._interp(until)
        return min(1.0, max(0.0, (busy_at_end - busy_at_start) / (until - since_ns)))

    def utilization_series(self, interval_ns: int) -> List[Tuple[int, float]]:
        """(window_end_time, utilization) per fixed window — Fig 6's
        time series."""
        if not self._samples:
            return []
        end = self._samples[-1][0]
        series = []
        t = interval_ns
        while t <= end:
            series.append((t, self.utilization(t - interval_ns, t)))
            t += interval_ns
        return series

    def _interp(self, t: int) -> float:
        """Cumulative busy ns at time ``t``, linearly interpolated."""
        samples = self._samples
        lo, hi = 0, len(samples) - 1
        if t >= samples[hi][0]:
            return samples[hi][1] + 0.0
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if samples[mid][0] <= t:
                lo = mid
            else:
                hi = mid - 1
        t0, b0 = samples[lo]
        if lo + 1 < len(samples):
            t1, b1 = samples[lo + 1]
            if t1 > t0:
                return b0 + (b1 - b0) * (t - t0) / (t1 - t0)
        return float(b0)
