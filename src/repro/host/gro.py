"""Generic Receive Offload: the stock Linux algorithm and Presto's.

Official GRO (S2.2, Fig 2): one segment per flow; a packet that cannot
be merged ejects the current segment up the stack and starts a new one.
Under reordering this degenerates to pushing MTU-sized segments — the
*small segment flooding* problem — and exposes TCP to out-of-order
delivery.

Presto GRO (S3.2, Algorithm 2): keeps a *list* of segments per flow,
merges only within flowcell boundaries, and at flush time decides
per-segment whether to push or hold:

* same flowcell as the last in-order one  -> push (an intra-flowcell
  sequence gap means loss, never reordering, because one flowcell rides
  one path);
* next flowcell, contiguous sequence      -> push, advance state;
* next flowcell, overlapping sequence     -> push (retransmission);
* next flowcell, gap at the boundary      -> hold until the gap fills or
  an adaptive timeout (alpha * EWMA of observed reordering durations,
  extended while merges are still landing within EWMA/beta) fires;
* stale flowcell                          -> push immediately.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.net.packet import Packet, Segment
from repro.units import MAX_TSO_BYTES, usec

#: Paper sets both empirical constants to 2 (S3.2).
DEFAULT_ALPHA = 2.0
DEFAULT_BETA = 2.0
#: EWMA starting point before any reordering has been observed.  Sized to
#: the worst-case one-queue serialization skew between two paths (a
#: ~300 KB switch buffer at 10 Gbps drains in ~240 us), so early timeouts
#: do not leak reordering before the EWMA has learned the fabric.
DEFAULT_INITIAL_EWMA_NS = usec(150)
#: EWMA gain (new sample weight), a conventional 1/8.
EWMA_GAIN = 0.125


class GroBase:
    """Interface the NIC drives: merge() per packet, flush() per poll."""

    #: name used in experiment tables
    name = "gro"
    #: optional telemetry probe (repro.telemetry); None = disabled
    probe = None

    def merge(self, pkt: Packet, now: int) -> None:
        raise NotImplementedError

    def flush(self, now: int) -> List[Segment]:
        raise NotImplementedError

    def earliest_deadline(self) -> Optional[int]:
        """Absolute time of the next hold-timeout, or None."""
        return None

    def held_segment_count(self) -> int:
        return 0

    def held_packet_count(self) -> int:
        """Wire packets merged into segments not yet pushed up the stack.

        Together with ``merged_pkts`` and a count of pushed packets this
        closes the GRO conservation law checked by ``repro.validate``:
        ``merged_pkts == pushed + held`` at any event boundary.
        """
        return 0


class OfficialGro(GroBase):
    """Stock Linux GRO: at most one in-flight segment per flow."""

    name = "official"

    def __init__(self, max_segment_bytes: int = MAX_TSO_BYTES):
        self.max_segment_bytes = max_segment_bytes
        self._current: Dict[int, Segment] = {}
        self._ready: List[Segment] = []
        self.merged_pkts = 0
        self.evicted_segments = 0

    def merge(self, pkt: Packet, now: int) -> None:
        self.merged_pkts += 1
        seg = self._current.get(pkt.flow_id)
        if seg is not None:
            if (
                seg.payload_len + pkt.payload_len <= self.max_segment_bytes
                and seg.try_merge(pkt, require_same_flowcell=False)
            ):
                seg.last_merge_at = now
                return
            # Cannot merge: eject the existing segment (this is the small
            # segment flooding path under reordering).
            self._ready.append(seg)
            self.evicted_segments += 1
            if self.probe is not None:
                self.probe.on_evict(pkt.flow_id, seg, now)
        seg = Segment.from_packet(pkt)
        seg.created_at = now
        seg.last_merge_at = now
        self._current[pkt.flow_id] = seg

    def flush(self, now: int) -> List[Segment]:
        out = self._ready
        out.extend(self._current.values())
        self._ready = []
        self._current.clear()
        return out

    def held_segment_count(self) -> int:
        return len(self._ready) + len(self._current)

    def held_packet_count(self) -> int:
        return (sum(s.pkt_count for s in self._ready)
                + sum(s.pkt_count for s in self._current.values()))


class _PrestoFlow:
    """Per-flow receive state of Algorithm 2."""

    __slots__ = ("segments", "exp_seq", "last_flowcell", "ewma_ns")

    def __init__(self, initial_ewma_ns: float):
        self.segments: List[Segment] = []
        self.exp_seq = 0
        self.last_flowcell = 0
        self.ewma_ns = initial_ewma_ns


class PrestoGro(GroBase):
    """Presto's GRO: multi-segment lists + flowcell-aware flush."""

    name = "presto"

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        initial_ewma_ns: int = DEFAULT_INITIAL_EWMA_NS,
        max_segment_bytes: int = MAX_TSO_BYTES,
        loss_detection: bool = True,
        adaptive: bool = True,
        ewma_gain: float = EWMA_GAIN,
    ):
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0.0 < ewma_gain <= 1.0:
            raise ValueError(
                f"ewma_gain must be in (0, 1], got {ewma_gain}")
        self.alpha = alpha
        self.beta = beta
        self.ewma_gain = ewma_gain
        self.initial_ewma_ns = initial_ewma_ns
        self.max_segment_bytes = max_segment_bytes
        #: ablation knob: adaptive=False freezes the EWMA, making the hold
        #: timeout the *static* alpha * initial_ewma the paper argues
        #: against (e.g. DRB's fixed 10 ms)
        self.adaptive = adaptive
        #: ablation knob: with loss_detection=False intra-flowcell gaps are
        #: held like boundary gaps (showing why the discrimination matters)
        self.loss_detection = loss_detection
        self._flows: Dict[int, _PrestoFlow] = {}
        self._ready: List[Segment] = []
        self.merged_pkts = 0
        self.reorder_samples = 0
        self.timeout_fires = 0

    # --- merge path -----------------------------------------------------------

    def merge(self, pkt: Packet, now: int) -> None:
        """Retransmissions flow through the same merge/flush machinery:
        Algorithm 2's flowcell-ID cases (lines 7, 11-13, 20) guarantee
        they are pushed at the next flush rather than held, while still
        advancing ``expSeq``/``lastFlowcell`` so post-loss streams do not
        get stuck behind a never-filling gap."""
        self.merged_pkts += 1
        flow = self._flows.get(pkt.flow_id)
        if flow is None:
            flow = _PrestoFlow(self.initial_ewma_ns)
            self._flows[pkt.flow_id] = flow
        # New segments sit at the head, so in the common case (packets of
        # the newest flowcell arriving back-to-back) merge is O(1).
        for seg in flow.segments:
            if (
                seg.payload_len + pkt.payload_len <= self.max_segment_bytes
                and seg.try_merge(pkt, require_same_flowcell=True)
            ):
                seg.last_merge_at = now
                return
        seg = Segment.from_packet(pkt)
        seg.created_at = now
        seg.last_merge_at = now
        flow.segments.insert(0, seg)

    # --- flush path (Algorithm 2) ----------------------------------------------

    def flush(self, now: int) -> List[Segment]:
        out = self._ready
        self._ready = []
        probe = self.probe
        for flow_id, flow in self._flows.items():
            if not flow.segments:
                continue
            flow.segments.sort(key=lambda s: s.seq)
            held: List[Segment] = []
            pushed_from = len(out)
            for seg in flow.segments:
                cell = seg.flowcell_id
                if cell == flow.last_flowcell:
                    # Same path as the in-order stream: any gap is loss;
                    # push regardless (lines 3-5).
                    if self.loss_detection or flow.exp_seq >= seg.seq:
                        if probe is not None and flow.exp_seq < seg.seq:
                            probe.on_loss_detected(flow_id, seg, now)
                        flow.exp_seq = max(flow.exp_seq, seg.end_seq)
                        out.append(seg)
                    elif self._timed_out(seg, flow, now):
                        self.timeout_fires += 1
                        if probe is not None:
                            probe.on_timeout(flow_id, seg, now)
                        flow.exp_seq = max(flow.exp_seq, seg.end_seq)
                        out.append(seg)
                    else:
                        held.append(seg)
                elif cell > flow.last_flowcell:
                    if flow.exp_seq == seg.seq:
                        # Boundary gap resolved in order: if this segment
                        # had been held, its wait is a reordering sample.
                        if seg.created_at < now:
                            self._sample_reorder(
                                flow_id, flow, now - seg.created_at)
                        flow.last_flowcell = cell
                        flow.exp_seq = seg.end_seq
                        out.append(seg)
                    elif flow.exp_seq > seg.seq:
                        # Overlap: a retransmitted first packet of a new
                        # flowcell (lines 11-13).
                        flow.last_flowcell = cell
                        flow.exp_seq = max(flow.exp_seq, seg.end_seq)
                        out.append(seg)
                    elif seg.is_retx:
                        # Never hold a retransmission: TCP must see it at
                        # once.  State untouched — the hole below it is
                        # still outstanding.
                        out.append(seg)
                    elif self._timed_out(seg, flow, now):
                        self.timeout_fires += 1
                        if probe is not None:
                            probe.on_timeout(flow_id, seg, now)
                        # Feed the wait into the EWMA as well: if real
                        # reordering routinely outlives the timeout, the
                        # timeout must grow, else it would keep leaking
                        # reordering while never observing a long sample.
                        self._sample_reorder(flow_id, flow, now - seg.created_at)
                        flow.last_flowcell = cell
                        flow.exp_seq = seg.end_seq
                        out.append(seg)
                    else:
                        held.append(seg)
                else:
                    # Stale flowcell (late retransmission): push (line 20).
                    out.append(seg)
            flow.segments = held
            if probe is not None:
                for seg in out[pushed_from:]:
                    probe.on_push(flow_id, seg, now)
        return out

    def _timed_out(self, seg: Segment, flow: _PrestoFlow, now: int) -> bool:
        if now - seg.created_at < self.alpha * flow.ewma_ns:
            return False
        # beta optimization: merges still landing recently suggest the gap
        # is reordering in flight — keep holding.
        if now - seg.last_merge_at < flow.ewma_ns / self.beta:
            return False
        return True

    def _sample_reorder(self, flow_id: int, flow: _PrestoFlow, wait_ns: int) -> None:
        if wait_ns <= 0:
            return
        self.reorder_samples += 1
        if self.probe is not None:
            self.probe.on_reorder_sample(flow_id, wait_ns)
        if self.adaptive:
            gain = self.ewma_gain
            flow.ewma_ns = (1 - gain) * flow.ewma_ns + gain * wait_ns

    # --- timers ----------------------------------------------------------------

    def earliest_deadline(self) -> Optional[int]:
        deadline = None
        for flow in self._flows.values():
            for seg in flow.segments:
                # ceil: firing a timer 1 ns before _timed_out holds would
                # flush nothing and re-arm at the same instant, forever.
                d = max(
                    seg.created_at + math.ceil(self.alpha * flow.ewma_ns),
                    seg.last_merge_at + math.ceil(flow.ewma_ns / self.beta),
                )
                if deadline is None or d < deadline:
                    deadline = d
        return deadline

    def held_segment_count(self) -> int:
        return len(self._ready) + sum(len(f.segments) for f in self._flows.values())

    def held_packet_count(self) -> int:
        return (sum(s.pkt_count for s in self._ready)
                + sum(s.pkt_count
                      for f in self._flows.values() for s in f.segments))
