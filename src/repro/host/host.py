"""Host: glues application, TCP, vSwitch (load balancer), NIC, GRO and
the CPU model into one endpoint attachable to a topology."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.host.cpu import CpuCosts, ReceiverCpu
from repro.host.gro import GroBase, OfficialGro
from repro.host.nic import Nic
from repro.host.tcp import TcpConfig, TcpReceiver, TcpSender
from repro.lb.base import LoadBalancer
from repro.net.packet import ACK, DATA, Packet, Segment
from repro.sim.engine import Simulator


class Host:
    """One server: single NIC, one receive core, a vSwitch datapath."""

    #: optional telemetry probe for this host's TCP stack (repro.telemetry)
    tcp_probe = None

    def __init__(
        self,
        sim: Simulator,
        host_id: int,
        lb: Optional[LoadBalancer] = None,
        gro: Optional[GroBase] = None,
        cpu_costs: Optional[CpuCosts] = None,
        tcp_cfg: Optional[TcpConfig] = None,
        model_cpu: bool = True,
        **nic_kwargs,
    ):
        self.sim = sim
        self.host_id = host_id
        self.lb = lb if lb is not None else LoadBalancer(host_id)
        self.gro = gro if gro is not None else OfficialGro()
        self.cpu = ReceiverCpu(sim, cpu_costs)
        if not model_cpu:
            # Zero costs: the stack is never the bottleneck (useful for
            # pure network-effect experiments and fast unit tests).
            self.cpu.costs = CpuCosts(0, 0, 0, 0, 0, 0, 0)
        self.tcp_cfg = tcp_cfg if tcp_cfg is not None else TcpConfig()
        self.nic = Nic(sim, self.gro, self.cpu, **nic_kwargs)
        self.nic.on_segment = self._on_segment
        self.nic.on_ack_packet = self._on_ack_packet
        self.nic.on_tx_space = self._wake_blocked_sender
        self._tsq_blocked: Dict[int, object] = {}
        labeler = self.lb.packet_labeler()
        if labeler is not None:
            self.nic.packet_labeler = labeler

        self.senders: Dict[int, TcpSender] = {}
        self.receivers: Dict[int, TcpReceiver] = {}
        self._data_callbacks: Dict[int, Callable[[int], None]] = {}
        #: observation hook fired for every data segment pushed up by GRO
        #: (used by reordering metrics); receives the Segment.
        self.segment_tap: Optional[Callable[[Segment], None]] = None
        #: observation hook fired for every outgoing segment after the
        #: vSwitch labelled it (used by the flowlet-size analysis).
        self.tx_tap: Optional[Callable[[Segment], None]] = None
        self.topo = None

    # --- counters ---------------------------------------------------------------

    @property
    def tx_pkts(self) -> int:
        """Wire packets this host has queued for transmission."""
        return self.nic.tx_pkts

    @property
    def rx_ring_drops(self) -> int:
        """Packets lost to NIC ring overflow (receive-side livelock)."""
        return self.nic.ring_drops

    # --- topology wiring --------------------------------------------------------

    def attach(self, egress_port, topo) -> None:
        """Called by Topology.attach_host with this host's uplink port."""
        self.nic.attach_port(egress_port)
        self.topo = topo
        # Shadow the receive() method with the NIC's bound rx: the leaf
        # port then lands packets in the ring without an extra frame.
        self.receive = self.nic.rx

    def receive(self, pkt: Packet, in_port) -> None:
        """Packets arriving from the leaf switch land in the NIC ring."""
        self.nic.rx(pkt)

    # --- send path -----------------------------------------------------------------

    def send_segment(self, seg: Segment) -> None:
        """vSwitch datapath: label the segment, then hand it to TSO."""
        self.lb.select(seg)
        if self.tx_tap is not None:
            self.tx_tap(seg)
            self.nic.tx_segment(seg)
        else:
            # TSO replicated every header field onto the wire packets and
            # no tap holds a reference: recycle the segment.
            self.nic.tx_segment(seg)
            seg.release()

    def tx_ok(self, flow_id: int) -> bool:
        """Per-socket TSQ gate (head retransmissions and ACKs bypass it)."""
        return self.nic.tx_ok(flow_id)

    def tsq_block(self, sender) -> None:
        """Park a sender until its bytes drain below the TSQ mark."""
        self._tsq_blocked[sender.flow_id] = sender

    def _wake_blocked_sender(self, flow_id: int) -> None:
        blocked = self._tsq_blocked
        if not blocked:  # common case: fires per dequeued packet
            return
        sender = blocked.get(flow_id)
        if sender is not None and self.nic.tx_ok(flow_id):
            del blocked[flow_id]
            sender.on_tx_space()

    def open_sender(
        self,
        flow_id: int,
        dst_host: int,
        on_complete: Optional[Callable[[TcpSender], None]] = None,
        cc=None,
        cfg: Optional[TcpConfig] = None,
    ) -> TcpSender:
        if flow_id in self.senders:
            raise ValueError(f"flow {flow_id} already open on host {self.host_id}")
        sender = TcpSender(
            self.sim, self, flow_id, dst_host,
            cfg if cfg is not None else self.tcp_cfg,
            on_complete, cc=cc,
        )
        self.senders[flow_id] = sender
        return sender

    def expect_flow(self, flow_id: int, on_data: Callable[[int], None]) -> None:
        """Register an application callback for a flow that will arrive.

        ``on_data(total_delivered_bytes)`` fires on every in-order
        delivery advance.
        """
        self._data_callbacks[flow_id] = on_data
        receiver = self.receivers.get(flow_id)
        if receiver is not None:
            receiver.on_data = on_data

    # --- receive path ----------------------------------------------------------------

    def _on_segment(self, seg: Segment) -> None:
        if seg.kind != DATA:
            return
        if self.segment_tap is not None:
            self.segment_tap(seg)
        receiver = self.receivers.get(seg.flow_id)
        if receiver is None:
            receiver = TcpReceiver(
                self.sim,
                self,
                seg.flow_id,
                seg.src_host,
                self.tcp_cfg,
                on_data=self._data_callbacks.get(seg.flow_id),
            )
            self.receivers[seg.flow_id] = receiver
        receiver.on_segment(seg)
        if self.segment_tap is None:
            # TCP copied the byte ranges it needs; without an observation
            # tap holding the segment, its life ends here.
            seg.release()

    def _on_ack_packet(self, pkt: Packet) -> None:
        sender = self.senders.get(pkt.flow_id)
        if sender is not None:
            sender.on_ack_packet(pkt)
        pkt.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.host_id} lb={self.lb.name}>"
