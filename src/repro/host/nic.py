"""NIC model: TSO on transmit, ring + interrupt coalescing + GRO on receive.

Transmit: TCP hands the vSwitch/NIC segments of up to 64 KB; TSO splits
them into MSS-sized packets, *replicating the destination (shadow) MAC
and the flowcell ID onto every derived packet* exactly as the paper
relies on (S3.1).

Receive: packets land in a fixed-size ring.  An interrupt fires after a
coalescing delay (or immediately once a frame threshold is queued), and
the driver then polls the ring NAPI-style in budgeted batches — but only
when the receive core is free.  Every poll runs the GRO merge loop and
flush, charges the :class:`~repro.host.cpu.ReceiverCpu` for the work,
and delivers the flushed segments up the stack.  When the core cannot
keep up, the ring overflows and packets drop: this is the mechanism by
which small segment flooding caps throughput.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.host.cpu import ReceiverCpu
from repro.host.gro import GroBase
from repro.net.packet import ACK, DATA, Packet, Segment
from repro.net.port import Port
from repro.sim.engine import Event, Simulator
from repro.units import usec

DEFAULT_MSS = 1448
DEFAULT_RING_SLOTS = 512
DEFAULT_COALESCE_NS = usec(15)
DEFAULT_COALESCE_FRAMES = 32
DEFAULT_POLL_BUDGET = 64
#: TSQ: at most ~2 TSO segments of any host's traffic may sit in its
#: egress queue; TCP defers further sends until the queue drains.  This
#: is what keeps real senders' bursts reaching the switch (where drops
#: belong) instead of smoothing into a gapless stream behind a deep
#: local queue.
DEFAULT_TSQ_BYTES = 128 * 1024


class Nic:
    """One host's NIC; owns the rx ring and drives GRO + the CPU model."""

    def __init__(
        self,
        sim: Simulator,
        gro: GroBase,
        cpu: ReceiverCpu,
        mss: int = DEFAULT_MSS,
        ring_slots: int = DEFAULT_RING_SLOTS,
        coalesce_ns: int = DEFAULT_COALESCE_NS,
        coalesce_frames: int = DEFAULT_COALESCE_FRAMES,
        poll_budget: int = DEFAULT_POLL_BUDGET,
        tsq_bytes: int = DEFAULT_TSQ_BYTES,
    ):
        self.sim = sim
        self.gro = gro
        self.cpu = cpu
        self.mss = mss
        self.ring_slots = ring_slots
        self.coalesce_ns = coalesce_ns
        self.coalesce_frames = coalesce_frames
        self.poll_budget = poll_budget
        self.tsq_bytes = tsq_bytes
        self.port: Optional[Port] = None  # egress toward the leaf switch
        #: fired with a flow_id as that flow's packets leave the egress
        #: queue; Host uses it to wake TSQ-blocked TCP senders
        self.on_tx_space: Callable[[int], None] = lambda flow_id: None
        #: per-derived-packet labeler for per-packet spraying schemes
        self.packet_labeler: Optional[Callable[[Packet], None]] = None
        #: upcalls, wired by Host
        self.on_segment: Callable[[Segment], None] = lambda seg: None
        self.on_ack_packet: Callable[[Packet], None] = lambda pkt: None

        self._ring: deque = deque()
        self._interrupt_event: Optional[Event] = None
        self._poll_pending = False
        self._gro_timer: Optional[Event] = None

        self.ring_drops = 0
        self.ring_drop_bytes = 0
        self.rx_pkts = 0
        self.rx_bytes = 0
        self.tx_pkts = 0
        self.tx_bytes = 0
        self.tx_segments = 0
        #: optional telemetry probe (repro.telemetry); None = disabled
        self.probe = None

    # --- transmit ---------------------------------------------------------------

    def attach_port(self, port: Port) -> None:
        self.port = port
        port.queue.track_flows = True
        port.on_dequeue = self._on_dequeue

    def _on_dequeue(self, pkt: Packet) -> None:
        self.on_tx_space(pkt.flow_id)

    def tx_ok(self, flow_id: int) -> bool:
        """Per-socket TSQ check: may this flow queue another segment?"""
        if self.port is None:
            return True
        return self.port.queue.flow_bytes.get(flow_id, 0) < self.tsq_bytes

    def tx_segment(self, seg: Segment) -> None:
        """TSO: fan the segment out into MSS packets and queue them."""
        if self.port is None:
            raise RuntimeError("NIC not attached to a port")
        self.tx_segments += 1
        if seg.kind == ACK or seg.payload_len == 0:
            pkt = Packet.alloc(
                flow_id=seg.flow_id,
                src_host=seg.src_host,
                dst_host=seg.dst_host,
                dst_mac=seg.dst_mac,
                kind=seg.kind,
                seq=seg.seq,
                payload_len=0,
                flowcell_id=seg.flowcell_id,
                is_retx=seg.is_retx,
                ack_seq=seg.ack_seq,
                sack=seg.sack,
                ts=seg.ts,
                ts_echo=seg.ts_echo,
            )
            self._tx_packet(pkt)
            return
        offset = seg.seq
        end_seq = seg.end_seq
        mss = self.mss
        alloc = Packet.alloc
        while offset < end_seq:
            payload = end_seq - offset
            if payload > mss:
                payload = mss
            pkt = alloc(
                seg.flow_id,
                seg.src_host,
                seg.dst_host,
                seg.dst_mac,
                DATA,
                offset,
                payload,
                seg.flowcell_id,
                seg.is_retx,
                0,
                (),
                seg.ts,
            )
            self._tx_packet(pkt)
            offset += payload

    def _tx_packet(self, pkt: Packet) -> None:
        if self.packet_labeler is not None:
            self.packet_labeler(pkt)
        self.tx_pkts += 1
        self.tx_bytes += pkt.wire_size
        self.port.send(pkt)

    # --- receive ----------------------------------------------------------------

    def rx(self, pkt: Packet, in_port=None) -> None:
        """Accepts the Port.receive ``(pkt, in_port)`` calling convention
        so a Host can wire its delivery port straight to the ring and
        skip a per-packet indirection; ``in_port`` is unused."""
        if len(self._ring) >= self.ring_slots:
            self.ring_drops += 1
            self.ring_drop_bytes += pkt.wire_size
            if self.probe is not None:
                self.probe.on_ring_drop(pkt)
            return
        self.rx_pkts += 1
        self.rx_bytes += pkt.wire_size
        self._ring.append(pkt)
        if self._poll_pending:
            return
        if len(self._ring) >= self.coalesce_frames:
            if self._interrupt_event is not None:
                self._interrupt_event.cancel()
                self._interrupt_event = None
            self._schedule_poll()
        elif self._interrupt_event is None:
            self._interrupt_event = self.sim.schedule(self.coalesce_ns, self._interrupt)

    def _interrupt(self) -> None:
        self._interrupt_event = None
        if not self._poll_pending and self._ring:
            self._schedule_poll()

    def _schedule_poll(self) -> None:
        self._poll_pending = True
        delay = max(0, self.cpu.free_at() - self.sim.now)
        self.sim.schedule(delay, self._poll)

    def _poll(self) -> None:
        now = self.sim.now
        costs = self.cpu.costs
        cost = 0.0
        budget = self.poll_budget
        presto = self.gro.name == "presto"
        acks: List[Packet] = []
        ring = self._ring
        merge = self.gro.merge
        while ring and budget > 0:
            pkt = ring.popleft()
            budget -= 1
            if pkt.kind == ACK:
                acks.append(pkt)
                cost += costs.per_ack_ns
            else:
                merge(pkt, now)
                # GRO copied every field it needs (Segment.from_packet /
                # try_merge); the wire packet's life ends here.
                pkt.release()
                cost += costs.per_merge_pkt_ns
                if presto:
                    cost += costs.presto_per_pkt_ns
        if presto:
            cost += costs.presto_flush_ns
            cost += costs.presto_per_held_segment_ns * self.gro.held_segment_count()
        segments = self.gro.flush(now)
        for seg in segments:
            cost += costs.segment_push_cost(seg.payload_len)
        self.cpu.consume(cost)
        self.cpu.checkpoint()
        if self.probe is not None:
            self.probe.on_poll(
                now, cost, self.poll_budget - budget, len(segments))
        for pkt in acks:
            self.on_ack_packet(pkt)
        for seg in segments:
            self.on_segment(seg)
        if self._ring:
            # Stay in polling mode: next batch as soon as the core is free.
            delay = max(0, self.cpu.free_at() - self.sim.now)
            self.sim.schedule(delay, self._poll)
        else:
            self._poll_pending = False
            self._arm_gro_timer()

    def _arm_gro_timer(self) -> None:
        if self._gro_timer is not None:
            self._gro_timer.cancel()
            self._gro_timer = None
        deadline = self.gro.earliest_deadline()
        if deadline is None:
            return
        # The 1 us floor guards against zero-delay rescheduling storms when
        # a deadline computed in the past cannot fire yet (beta extension).
        delay = max(usec(1), deadline - self.sim.now)
        self._gro_timer = self.sim.schedule(delay, self._gro_timer_fire)

    def _gro_timer_fire(self) -> None:
        self._gro_timer = None
        if self._poll_pending:
            return  # a poll will flush anyway
        now = self.sim.now
        segments = self.gro.flush(now)
        if segments:
            cost = sum(self.cpu.costs.segment_push_cost(s.payload_len) for s in segments)
            self.cpu.consume(cost)
            self.cpu.checkpoint()
            for seg in segments:
                self.on_segment(seg)
        self._arm_gro_timer()
