"""Disjoint byte-range set, used for SACK scoreboards and receiver
reassembly.  Ranges are half-open ``[start, end)`` and kept sorted and
coalesced; operations are O(n) in the number of disjoint ranges, which
stays tiny (a handful of holes) in practice.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Tuple


class RangeSet:
    """Sorted set of disjoint half-open integer ranges."""

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()):
        self._ranges: List[Tuple[int, int]] = []
        for start, end in ranges:
            self.add(start, end)

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self):
        return iter(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangeSet({self._ranges})"

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging overlaps and adjacency."""
        if end <= start:
            return
        ranges = self._ranges
        starts = [r[0] for r in ranges]
        i = bisect_left(starts, start)
        # merge with predecessor if it touches
        if i > 0 and ranges[i - 1][1] >= start:
            i -= 1
            start = min(start, ranges[i][0])
            end = max(end, ranges[i][1])
            del ranges[i]
        # swallow successors
        while i < len(ranges) and ranges[i][0] <= end:
            end = max(end, ranges[i][1])
            del ranges[i]
        ranges.insert(i, (start, end))

    def prune_below(self, cutoff: int) -> None:
        """Drop all bytes below ``cutoff``."""
        ranges = self._ranges
        while ranges and ranges[0][1] <= cutoff:
            del ranges[0]
        if ranges and ranges[0][0] < cutoff:
            ranges[0] = (cutoff, ranges[0][1])

    def total_bytes(self) -> int:
        return sum(end - start for start, end in self._ranges)

    def contains(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` is fully covered."""
        for s, e in self._ranges:
            if s <= start and end <= e:
                return True
            if s > start:
                break
        return False

    def covered_point(self, point: int) -> bool:
        for s, e in self._ranges:
            if s <= point < e:
                return True
            if s > point:
                break
        return False

    def first_gap(self, floor: int, limit: Optional[int] = None) -> Optional[Tuple[int, int]]:
        """First uncovered ``[gap_start, gap_end)`` at or above ``floor``.

        ``gap_end`` is the start of the next covered range (or ``limit``).
        Returns None when everything from floor to limit is covered or
        there is nothing above floor.
        """
        gap_start = floor
        for s, e in self._ranges:
            if e <= gap_start:
                continue
            if s > gap_start:
                return (gap_start, s if limit is None else min(s, limit))
            gap_start = e
        if limit is not None and gap_start < limit:
            return (gap_start, limit)
        if limit is None:
            return (gap_start, gap_start)  # open-ended gap marker
        return None

    def covered_bytes(self, start: int, end: int) -> int:
        """How many bytes of ``[start, end)`` are covered."""
        total = 0
        for s, e in self._ranges:
            if e <= start:
                continue
            if s >= end:
                break
            total += min(e, end) - max(s, start)
        return total

    def max_end(self) -> int:
        return self._ranges[-1][1] if self._ranges else 0

    def as_tuples(self, limit: Optional[int] = None) -> Tuple[Tuple[int, int], ...]:
        if limit is None:
            return tuple(self._ranges)
        return tuple(self._ranges[:limit])

    def clear(self) -> None:
        self._ranges.clear()
