"""Byte-stream TCP with SACK, fast retransmit/recovery and RTO.

The model matches the behaviours the paper depends on rather than the
full RFC state machine:

* the sender passes up-to-64 KB TSO segments down the stack;
* duplicate ACKs (three, or FACK-style "3 MSS SACKed above una") move
  the sender into fast recovery and halve the window — so reordering
  that leaks past GRO *hurts*, exactly as in S2.2;
* SACK scoreboards drive hole retransmission;
* a 200 ms-floored RTO with exponential backoff reproduces the mice
  timeout pathologies the paper observes for MPTCP (Table 2);
* RTT sampling (timestamp echo, Karn-excluded retransmits) feeds both
  the RTO and CUBIC.

Connections are unidirectional data + reverse pure-ACKs; applications
build RPCs out of two flows (see :mod:`repro.host.app`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.host.cc import make_cc
from repro.host.ranges import RangeSet
from repro.net.packet import ACK, DATA, Segment, make_ack
from repro.sim.engine import Event, Simulator
from repro.units import MAX_TSO_BYTES, MB, msec, seconds

OPEN = "open"
RECOVERY = "recovery"
LOSS = "loss"


@dataclass
class TcpConfig:
    """Knobs shared by all connections of an experiment."""

    mss: int = 1448
    init_cwnd_pkts: int = 10
    rcv_wnd: int = 1 * MB
    max_tso: int = MAX_TSO_BYTES
    cc_name: str = "cubic"
    dupack_thresh: int = 3
    min_rto_ns: int = msec(200)
    max_rto_ns: int = seconds(2)
    initial_rto_ns: int = msec(200)
    #: FACK-style early trigger: enter recovery when this many MSS are
    #: SACKed above snd_una (tcp_fack=1 in the paper's settings)
    fack_bytes_thresh_mss: int = 3


class TcpSender:
    """Send half of one flow, living on the source host."""

    def __init__(
        self,
        sim: Simulator,
        host,
        flow_id: int,
        dst_host: int,
        cfg: TcpConfig,
        on_complete: Optional[Callable[["TcpSender"], None]] = None,
        cc=None,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst_host = dst_host
        self.cfg = cfg
        self.on_complete = on_complete
        self.cc = cc if cc is not None else make_cc(cfg.cc_name, cfg.mss, cfg.init_cwnd_pkts)

        self.snd_una = 0
        self.snd_nxt = 0
        self.app_limit = 0
        self.unbounded = False
        self.state = OPEN
        self.dup_acks = 0
        self.recover_seq = 0
        self.retx_high = 0
        self.sacked = RangeSet()

        self.srtt_ns: Optional[float] = None
        self.rttvar_ns = 0.0
        self.rto_ns = cfg.initial_rto_ns
        self._rto_event: Optional[Event] = None
        self._backoff = 1

        #: PRR (RFC 6937) send budget during fast recovery: grows with
        #: delivered bytes, so retransmissions are paced by the ACK clock
        #: instead of bursting a whole presumed-lost window at line rate.
        self._prr_quota = 0.0
        #: FACK point when we last emitted a retransmission: if SACKs later
        #: advance well beyond it while snd_una is still stuck, the
        #: retransmission itself died (Linux tcp_mark_lost_retrans) and we
        #: may re-send it without waiting for the RTO.
        self._fack_at_last_retx = 0
        self._recovery_started = 0

        self.start_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        self.completed = False
        self.bytes_retx = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # --- application interface ----------------------------------------------

    def write(self, nbytes: int) -> None:
        """Append ``nbytes`` to the stream and try to send."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive: {nbytes}")
        if self.start_time is None:
            self.start_time = self.sim.now
        self.app_limit += nbytes
        self.completed = False
        self._send_window()

    def set_unbounded(self) -> None:
        """Endless data source (nuttcp-style elephant)."""
        if self.start_time is None:
            self.start_time = self.sim.now
        self.unbounded = True
        self._send_window()

    @property
    def fct_ns(self) -> Optional[int]:
        if self.start_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.start_time

    # --- sending ---------------------------------------------------------------

    def _pipe(self) -> int:
        """Bytes believed to be in flight.

        Outside recovery this is flight minus SACKed bytes.  During
        recovery, un-SACKed bytes below the loss boundary are marked
        *lost* and leave the pipe (FACK semantics — the paper runs with
        ``tcp_fack=1``; RFC 6675 pipe) or the window wedges shut after a
        multi-packet loss and progress waits on timeouts:

        * LOSS (post-RTO): the boundary is ``recover_seq`` — everything
          outstanding at the timeout is presumed lost;
        * RECOVERY (fast retransmit): the boundary is the highest SACKed
          byte (the FACK point).

        Bytes we have retransmitted this episode ([una, retx_high)) are
        back in flight unless SACKed.
        """
        if self.state == OPEN:
            return (self.snd_nxt - self.snd_una) - self.sacked.total_bytes()
        if self.state == LOSS:
            boundary = self.recover_seq
        else:
            boundary = max(self.snd_una, self.sacked.max_end())
        resent_out = (self.retx_high - self.snd_una) - self.sacked.covered_bytes(
            self.snd_una, self.retx_high
        )
        above = (self.snd_nxt - boundary) - self.sacked.covered_bytes(
            boundary, self.snd_nxt
        )
        return max(0, resent_out) + max(0, above)

    def _emit(self, seq: int, size: int, is_retx: bool) -> None:
        seg = Segment.alloc(
            flow_id=self.flow_id,
            src_host=self.host.host_id,
            dst_host=self.dst_host,
            kind=DATA,
            seq=seq,
            end_seq=seq + size,
            pkt_count=(size + self.cfg.mss - 1) // self.cfg.mss,
            is_retx=is_retx,
            ts=0 if is_retx else self.sim.now,
        )
        if is_retx:
            self.bytes_retx += size
        self.host.send_segment(seg)

    def _send_window(self) -> None:
        cfg = self.cfg
        cwnd = min(self.cc.cwnd, cfg.rcv_wnd)
        if self.state != OPEN:
            self._send_retransmissions(cwnd)
        # new data
        while True:
            if self.unbounded:
                avail = cfg.max_tso
            else:
                avail = self.app_limit - self.snd_nxt
            if avail <= 0:
                break
            space = int(cwnd) - self._pipe()
            if space <= 0:
                break
            if space < cfg.mss and avail > space:
                break  # avoid silly-window tinygrams
            if not self.host.tx_ok(self.flow_id):
                # TSQ: the egress queue already holds our share; resume
                # from on_tx_space() when it drains.
                self.host.tsq_block(self)
                break
            size = min(cfg.max_tso, avail, space)
            if self.state == RECOVERY:
                size = min(size, int(self._prr_quota))
                if size <= 0:
                    break
                self._prr_quota -= size
            self._emit(self.snd_nxt, size, is_retx=False)
            self.snd_nxt += size
        self._arm_rto()

    def on_tx_space(self) -> None:
        """NIC egress drained below the TSQ mark: try to send again."""
        self._send_window()

    def _send_retransmissions(self, cwnd: float) -> None:
        """Fill presumed-lost holes we have not resent this episode.

        After a timeout everything up to ``recover_seq`` is fair game; in
        fast recovery only holes below the FACK point are presumed lost
        (data between the FACK point and ``recover_seq`` is still in
        flight and must not be retransmitted speculatively).
        """
        if self.state == LOSS:
            limit = self.recover_seq
        else:
            limit = min(self.recover_seq, max(self.snd_una, self.sacked.max_end()))
        first = True
        while self._pipe() < cwnd:
            floor = max(self.snd_una, self.retx_high)
            if floor >= limit:
                break
            gap = self.sacked.first_gap(floor, limit)
            if gap is None or gap[0] >= limit:
                break
            if not first and not self.host.tx_ok(self.flow_id):
                # Retransmissions traverse the qdisc too (TSQ): blasting a
                # whole window of presumed-lost bytes at line rate just
                # re-drops them.  The head retransmission always goes out
                # so recovery cannot deadlock.
                self.host.tsq_block(self)
                break
            start, end = gap
            size = min(end - start, self.cfg.max_tso)
            if self.state == RECOVERY and not first:
                size = min(size, int(self._prr_quota))
            if size <= 0:
                break
            self._emit(start, size, is_retx=True)
            if self.state == RECOVERY:
                self._prr_quota = max(0.0, self._prr_quota - size)
            self.retx_high = start + size
            self._fack_at_last_retx = max(self.snd_una, self.sacked.max_end())
            first = False

    # --- ACK processing ----------------------------------------------------------

    def on_ack_packet(self, pkt) -> None:
        now = self.sim.now
        delivered_before = self.snd_una + self.sacked.total_bytes()
        new_sack = False
        for s, e in pkt.sack:
            if e > self.snd_una and not self.sacked.contains(max(s, self.snd_una), e):
                new_sack = True
            self.sacked.add(s, e)
        if pkt.ts_echo:
            self._sample_rtt(now - pkt.ts_echo)
        ack = pkt.ack_seq
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self.sacked.prune_below(ack)
            self.dup_acks = 0
            self._backoff = 1
            rtt = int(self.srtt_ns) if self.srtt_ns else self.rto_ns
            if self.state == OPEN:
                self.cc.on_ack(acked, now, rtt)
            elif self.state == LOSS:
                # Slow-start restart after a timeout: the window must
                # regrow per ACK or recovery trickles one MSS per RTT.
                self.cc.on_ack(acked, now, rtt)
                if ack >= self.recover_seq:
                    self.state = OPEN
                else:
                    self.retx_high = max(self.retx_high, self.snd_una)
            else:  # RECOVERY
                if ack >= self.recover_seq:
                    self.state = OPEN
                    self.cc.on_exit_recovery(now)
                    probe = self.host.tcp_probe
                    if probe is not None:
                        probe.on_recovery_end(
                            self.flow_id, self._recovery_started, now)
                else:
                    # partial ACK: keep retransmitting holes
                    self.retx_high = max(self.retx_high, self.snd_una)
            # clamp: nothing beyond the receive window is ever usable
            self.cc.cwnd = min(self.cc.cwnd, float(self.cfg.rcv_wnd))
            self._check_complete()
            self._arm_rto(restart=True)
        elif self.snd_nxt > self.snd_una:
            self.dup_acks += 1
            if self.state == OPEN:
                fack_trigger = (
                    self.sacked.total_bytes()
                    >= self.cfg.fack_bytes_thresh_mss * self.cfg.mss
                )
                # Early Retransmit (RFC 5827 / tcp_early_retrans): small
                # windows cannot raise three dupacks; two suffice when
                # fewer than four segments are outstanding.
                flight = self.snd_nxt - self.snd_una
                early = (
                    self.dup_acks >= 2
                    and new_sack
                    and flight <= 4 * self.cfg.mss
                )
                if (
                    self.dup_acks >= self.cfg.dupack_thresh
                    or (new_sack and fack_trigger)
                    or early
                ):
                    self._enter_recovery()
        if self.state == RECOVERY:
            delivered_now = self.snd_una + self.sacked.total_bytes()
            self._prr_quota += 0.7 * max(0, delivered_now - delivered_before)
            # PRR-SSRB: when the pipe has collapsed below ssthresh, every
            # arriving ACK is evidence of drainage and grants one MSS.
            if self._pipe() < self.cc.ssthresh:
                self._prr_quota += self.cfg.mss
            # Lost-retransmission detection: SACK progress well past the
            # FACK point at our last retransmission, with snd_una stuck,
            # proves the retransmission died — walk back and re-send.
            fack = self.sacked.max_end()
            if (
                self.retx_high > self.snd_una
                and fack >= self._fack_at_last_retx + 3 * self.cfg.mss
            ):
                self.retx_high = self.snd_una
                self._fack_at_last_retx = fack
        self._send_window()

    def _enter_recovery(self) -> None:
        self.state = RECOVERY
        self.fast_retransmits += 1
        self.recover_seq = self.snd_nxt
        self.retx_high = self.snd_una
        self._prr_quota = float(self.cfg.mss)  # head retransmission
        self._recovery_started = self.sim.now
        flight = self.snd_nxt - self.snd_una
        self.cc.on_enter_recovery(flight, self.sim.now)
        probe = self.host.tcp_probe
        if probe is not None:
            probe.on_fast_retransmit(self.flow_id, self.snd_una, self.snd_nxt)

    # --- RTO ----------------------------------------------------------------------

    def _sample_rtt(self, sample_ns: int) -> None:
        if sample_ns <= 0:
            return
        if self.srtt_ns is None:
            self.srtt_ns = float(sample_ns)
            self.rttvar_ns = sample_ns / 2.0
        else:
            err = abs(self.srtt_ns - sample_ns)
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * err
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * sample_ns
        rto = self.srtt_ns + 4.0 * self.rttvar_ns
        self.rto_ns = int(min(max(rto, self.cfg.min_rto_ns), self.cfg.max_rto_ns))

    def _rto_jitter(self) -> float:
        """Deterministic per-flow jitter factor in [1.0, 1.1).

        Identical flows arming identical timers phase-lock on drop-tail
        queues (global synchronization); real kernels decorrelate via
        timer-wheel granularity.  A cheap hash of (flow, timeout count)
        keeps runs reproducible while breaking lockstep.
        """
        x = (self.flow_id * 0x9E3779B1 + self.timeouts * 0x85EBCA77) & 0xFFFFFFFF
        x ^= x >> 16
        x = (x * 0x45D9F3B) & 0xFFFFFFFF
        x ^= x >> 16
        return 1.0 + (x & 0xFFFF) / 0xFFFF * 0.1

    def _arm_rto(self, restart: bool = False) -> None:
        outstanding = self.snd_nxt > self.snd_una
        if not outstanding:
            self._cancel_rto()
            return
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        delay = min(self.rto_ns * self._backoff, self.cfg.max_rto_ns)
        delay = int(delay * self._rto_jitter())
        self._rto_event = self.sim.schedule(delay, self._rto_fire)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.snd_una >= self.snd_nxt:
            return
        self.timeouts += 1
        self._backoff = min(self._backoff * 2, 64)
        probe = self.host.tcp_probe
        if probe is not None:
            probe.on_rto(self.flow_id, self.snd_una, self.snd_nxt, self.rto_ns)
        self.state = LOSS
        self.recover_seq = self.snd_nxt
        self.retx_high = self.snd_una
        flight = self.snd_nxt - self.snd_una
        self.cc.on_timeout(flight, self.sim.now)
        self.dup_acks = 0
        # retransmit the first hole (one MSS, slow-start restart)
        gap = self.sacked.first_gap(self.snd_una, self.recover_seq)
        if gap is not None and gap[1] > gap[0]:
            size = min(gap[1] - gap[0], self.cfg.mss)
            self._emit(gap[0], size, is_retx=True)
            self.retx_high = gap[0] + size
        self._arm_rto()

    def _check_complete(self) -> None:
        if (
            not self.completed
            and not self.unbounded
            and self.app_limit > 0
            and self.snd_una >= self.app_limit
        ):
            self.completed = True
            self.complete_time = self.sim.now
            self._cancel_rto()
            if self.on_complete is not None:
                self.on_complete(self)


class TcpReceiver:
    """Receive half of one flow, living on the destination host."""

    def __init__(
        self,
        sim: Simulator,
        host,
        flow_id: int,
        peer_host: int,
        cfg: TcpConfig,
        on_data: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer_host = peer_host
        self.cfg = cfg
        self.on_data = on_data
        self.rcv_nxt = 0
        self.ooo = RangeSet()
        self.delivered_bytes = 0
        self.segments_received = 0
        self.dup_segments = 0
        self.acks_sent = 0

    def on_segment(self, seg: Segment) -> None:
        self.segments_received += 1
        advanced = 0
        if seg.end_seq <= self.rcv_nxt:
            self.dup_segments += 1
        else:
            self.ooo.add(max(seg.seq, self.rcv_nxt), seg.end_seq)
            first = next(iter(self.ooo), None)
            if first is not None and first[0] <= self.rcv_nxt:
                advanced = first[1] - self.rcv_nxt
                self.rcv_nxt = first[1]
                self.ooo.prune_below(self.rcv_nxt)
        if advanced:
            self.delivered_bytes += advanced
            if self.on_data is not None:
                self.on_data(self.delivered_bytes)
        self._send_ack(seg.ts)

    def _send_ack(self, ts_echo: int) -> None:
        self.acks_sent += 1
        ack = make_ack(
            flow_id=self.flow_id,
            src_host=self.host.host_id,
            dst_host=self.peer_host,
            ack_seq=self.rcv_nxt,
            sack=self.ooo.as_tuples(3),
            ts_echo=ts_echo,
        )
        self.host.send_segment(ack)
