"""The unified transfer interface every traffic application satisfies.

``add_elephant``/``add_mice``/``add_probe`` historically returned
objects with inconsistent shapes (``delivered_bytes()`` vs ``fcts_ns``
vs ``fct_ns``), forcing measurement code to branch on transport and
reach into ``host.receivers`` internals.  :class:`Transfer` is the
contract the collectors consume instead:

* ``flow_ids()`` — the wire flows this transfer occupies, in a stable
  order (an MPTCP connection returns its subflows);
* ``delivered_by_flow()`` — per-flow in-order bytes delivered at the
  receiver so far;
* ``delivered_bytes()`` — the sum, i.e. transfer goodput so far;
* ``fcts_ns`` — completion times recorded so far (empty for unbounded
  or unfinished transfers; one entry per completed request for mice).

Implemented by :class:`~repro.host.app.BulkApp`,
:class:`~repro.host.app.MiceApp`, :class:`~repro.host.app.RttProbeApp`,
:class:`~repro.mptcp.mptcp.MptcpConnection` and
:class:`~repro.experiments.harness.MptcpMiceApp`.
"""

from __future__ import annotations

from typing import Dict, Protocol, Sequence, Tuple, runtime_checkable


@runtime_checkable
class Transfer(Protocol):
    """What the measurement layer may assume about any transfer."""

    def flow_ids(self) -> Tuple[int, ...]:
        """Wire flow ids in use, in a stable order."""
        ...

    def delivered_by_flow(self) -> Dict[int, int]:
        """In-order bytes delivered at the receiver, per flow."""
        ...

    def delivered_bytes(self) -> int:
        """Total in-order bytes delivered across all flows."""
        ...

    @property
    def fcts_ns(self) -> Sequence[int]:
        """Completion times recorded so far (ns)."""
        ...


def delivered_for(host, flow_id: int) -> int:
    """Receiver-side delivered byte count for one flow (0 before any
    data arrives) — the single place measurement code touches
    ``host.receivers``."""
    receiver = host.receivers.get(flow_id)
    return receiver.delivered_bytes if receiver is not None else 0
