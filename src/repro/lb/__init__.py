"""Edge load-balancing schemes (the vSwitch datapath of each host).

Every scheme implements :class:`repro.lb.base.LoadBalancer`: given an
outgoing segment, pick the destination MAC (a shadow-MAC path label or
the real MAC) and stamp the flowcell ID.  The Presto scheme itself
lives in :mod:`repro.presto.vswitch`.
"""

from repro.lb.base import LoadBalancer
from repro.lb.ecmp import EcmpLb
from repro.lb.flowlet import FlowletLb
from repro.lb.perpacket import PerPacketLb
from repro.lb.presto_ecmp import PrestoEcmpLb

__all__ = ["LoadBalancer", "EcmpLb", "FlowletLb", "PerPacketLb", "PrestoEcmpLb"]
