"""Load-balancer interface shared by every scheme."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.net.addresses import host_mac
from repro.net.packet import Packet, Segment


class LoadBalancer:
    """Per-host path selection at the soft edge.

    The controller pushes a *schedule* per destination: an ordered list
    of forwarding labels (shadow MACs), possibly with duplicates to
    realize WCMP-style weights (paper S3.3).  ``select`` mutates the
    outgoing segment's ``dst_mac`` and ``flowcell_id`` before TSO
    replicates them onto the wire packets.
    """

    name = "base"
    #: optional telemetry probe (repro.telemetry); None = disabled
    probe = None

    def __init__(self, host_id: int, rng: Optional[random.Random] = None):
        self.host_id = host_id
        self.rng = rng if rng is not None else random.Random(host_id)
        self._schedules: Dict[int, List[int]] = {}

    def set_schedule(self, dst_host: int, labels: List[int]) -> None:
        """Install/replace the label schedule toward ``dst_host``."""
        if not labels:
            raise ValueError("schedule must contain at least one label")
        self._schedules[dst_host] = list(labels)

    def labels_for(self, dst_host: int) -> List[int]:
        """Schedule for a destination; defaults to its real MAC (direct)."""
        labels = self._schedules.get(dst_host)
        if labels is None:
            return [host_mac(dst_host)]
        return labels

    def select(self, seg: Segment) -> None:
        """Assign ``seg.dst_mac`` (and possibly ``flowcell_id``).

        The base behaviour is single-path: always the first label.
        """
        seg.dst_mac = self.labels_for(seg.dst_host)[0]
        if seg.flowcell_id == 0:
            seg.flowcell_id = 1

    def packet_labeler(self) -> Optional[Callable[[Packet], None]]:
        """Per-derived-packet hook for packet-spraying schemes."""
        return None
