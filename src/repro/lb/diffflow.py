"""DiffFlow: size-differentiated routing at the vSwitch.

Carpio, Engelmann & Jukan, "DiffFlow: Differentiating Short and Long
Flows for Load Balancing in Data Center Networks" (GLOBECOM 2016).
Short flows (the overwhelming majority by count) are sprayed per
packet — they finish within an RTT or two, so reordering cannot hurt
them — while long flows are pinned to one ECMP path so their packet
trains stay in order for TSO/GRO.

The edge cannot know a flow's total size when its first segment
arrives, so classification is *cumulative and monotonic*: every flow
starts as a mouse and is promoted to elephant the moment its sent
bytes **exceed** ``threshold``; the promotion latches for the flow's
lifetime (a flow is classified once, never reclassified back).  A flow
of exactly ``threshold`` bytes therefore lives and dies a mouse.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.lb.base import LoadBalancer
from repro.net.packet import Packet, Segment
from repro.units import KB

#: mice/elephant cutoff on cumulative sent bytes (matches the trace
#: workloads' 100 KB mice limit)
DIFFFLOW_THRESHOLD = 100 * KB


class _SprayState:
    __slots__ = ("idx", "cell")

    def __init__(self, idx: int):
        self.idx = idx
        self.cell = 1


class DiffFlowLb(LoadBalancer):
    name = "diffflow"

    def __init__(self, host_id: int, rng=None,
                 threshold: int = DIFFFLOW_THRESHOLD):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        super().__init__(host_id, rng)
        self.threshold = threshold
        #: flows promoted to elephant (latched; never removed)
        self._elephants: Dict[int, int] = {}  # flow_id -> pinned label idx
        #: per-flow high-water mark of sent bytes (end_seq)
        self._sent: Dict[int, int] = {}
        self._spray: Dict[int, _SprayState] = {}

    def is_elephant(self, flow_id: int) -> bool:
        return flow_id in self._elephants

    def _note_sent(self, flow_id: int, end_seq: int) -> bool:
        """Advance the flow's byte high-water mark; returns True when the
        flow is (now) an elephant.  Promotion is strict-greater-than, so
        a flow of exactly ``threshold`` bytes stays a mouse."""
        if flow_id in self._elephants:
            return True
        hi = self._sent.get(flow_id, 0)
        if end_seq > hi:
            self._sent[flow_id] = hi = end_seq
        if hi > self.threshold:
            self._elephants[flow_id] = self.rng.randrange(1 << 16)
            return True
        return False

    def select(self, seg: Segment) -> None:
        labels = self.labels_for(seg.dst_host)
        if self._note_sent(seg.flow_id, seg.end_seq):
            seg.dst_mac = labels[self._elephants[seg.flow_id] % len(labels)]
            seg.flowcell_id = 1
        else:
            # mice: real spraying happens per packet in the labeler
            seg.dst_mac = labels[0]

    def packet_labeler(self) -> Optional[Callable[[Packet], None]]:
        def label(pkt: Packet) -> None:
            flow_id = pkt.flow_id
            if flow_id in self._elephants:
                return  # pinned: keep the segment's ECMP label
            labels = self.labels_for(pkt.dst_host)
            st = self._spray.get(flow_id)
            if st is None:
                st = _SprayState(self.rng.randrange(len(labels)))
                self._spray[flow_id] = st
            st.idx = (st.idx + 1) % len(labels)
            st.cell += 1
            pkt.dst_mac = labels[st.idx]
            pkt.flowcell_id = st.cell

        return label
