"""Per-flow ECMP, the paper's primary baseline.

The paper implements ECMP "by enumerating all possible end-to-end paths
and randomly selecting a path for each flow"; here each flow draws one
label from the destination's schedule via a deterministic seeded hash,
so collisions happen with exactly the birthday statistics that make
ECMP hurt elephants.
"""

from __future__ import annotations

from typing import Dict

from repro.lb.base import LoadBalancer
from repro.net.packet import Segment


class EcmpLb(LoadBalancer):
    name = "ecmp"

    def __init__(self, host_id: int, rng=None):
        super().__init__(host_id, rng)
        self._choice: Dict[int, int] = {}

    def select(self, seg: Segment) -> None:
        labels = self.labels_for(seg.dst_host)
        idx = self._choice.get(seg.flow_id)
        if idx is None:
            idx = self.rng.randrange(len(labels))
            self._choice[seg.flow_id] = idx
        seg.dst_mac = labels[idx % len(labels)]
        seg.flowcell_id = 1
