"""RDNA-style elephant isolation: detected elephants get their own
source-routed paths, mice share the rest.

Following the residual-capacity / elephant-detection designs in the
RDNA lineage (e.g. Liberato et al., "RDNA: Residue-Defined Networking
Architecture Enabling Ultra-Reliable Low-Latency Datacenters", and the
Hedera/Mahout edge-detection tradition): the edge watches per-flow
byte counts, and the moment a flow crosses the elephant threshold it
is moved off the shared multipath fabric onto a *dedicated* label — a
shadow-MAC spanning tree reserved for elephants, which in this fabric
is exactly a source route (the label fully determines the path).  Mice
keep Presto-style flowcell spraying, but only over the shared subset
of trees, so an elephant's standing queue never sits in front of a
mouse.

The label partition is positional over the schedule's distinct labels:
the first ``ceil(n/2)`` trees are shared (mice), the rest are the
elephant reservation.  With one usable tree everything shares it —
isolation is best-effort under degraded fabrics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lb.base import LoadBalancer
from repro.net.packet import Segment
from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger
from repro.units import MB

#: cumulative-byte threshold past which a flow is a detected elephant
#: (matches the trace workloads' 1 MB elephant limit)
ELEPHANT_THRESHOLD = 1 * MB


def split_labels(labels: List[int]) -> Tuple[List[int], List[int]]:
    """Partition a schedule into (shared mice labels, dedicated
    elephant labels).  Duplicates (WCMP weights) are collapsed first so
    the split is over distinct trees; with fewer than two distinct
    labels both classes share everything."""
    distinct = list(dict.fromkeys(labels))
    if len(distinct) < 2:
        return distinct, distinct
    n_shared = (len(distinct) + 1) // 2
    return distinct[:n_shared], distinct[n_shared:]


class ElephantIsoLb(LoadBalancer):
    name = "elephant_iso"

    def __init__(self, host_id: int, rng=None,
                 threshold: int = ELEPHANT_THRESHOLD,
                 flowcell_bytes: int = FLOWCELL_BYTES):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        super().__init__(host_id, rng)
        self.threshold = threshold
        self.tagger = FlowcellTagger(flowcell_bytes)
        self.tagger.set_initial_index_fn(
            lambda flow_id: self.rng.randrange(1 << 16))
        #: detected elephants (latched): flow_id -> dedicated-label slot
        self._elephants: Dict[int, int] = {}
        #: per-flow high-water mark of sent bytes
        self._sent: Dict[int, int] = {}
        #: round-robin cursor over the dedicated labels
        self._next_slot = 0

    def is_elephant(self, flow_id: int) -> bool:
        return flow_id in self._elephants

    def _detect(self, flow_id: int, end_seq: int) -> bool:
        if flow_id in self._elephants:
            return True
        hi = self._sent.get(flow_id, 0)
        if end_seq > hi:
            self._sent[flow_id] = hi = end_seq
        if hi > self.threshold:
            # assign dedicated paths round-robin so concurrent
            # elephants land on different reserved trees
            self._elephants[flow_id] = self._next_slot
            self._next_slot += 1
            return True
        return False

    def select(self, seg: Segment) -> None:
        shared, dedicated = split_labels(self.labels_for(seg.dst_host))
        # Algorithm-1 cell tagging either way: flowcell IDs must stay
        # monotone per flow across the mouse->elephant transition
        if self._detect(seg.flow_id, seg.end_seq):
            _, cell = self.tagger.tag(
                seg.flow_id, seg.payload_len, len(dedicated))
            slot = self._elephants[seg.flow_id]
            seg.dst_mac = dedicated[slot % len(dedicated)]
        else:
            idx, cell = self.tagger.tag(
                seg.flow_id, seg.payload_len, len(shared))
            seg.dst_mac = shared[idx % len(shared)]
        seg.flowcell_id = cell
