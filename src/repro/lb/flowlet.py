"""Flowlet switching (Sinha et al.; as deployed by CONGA/Juniper VCF).

A new flowlet starts when the gap between consecutive segments of a
flow exceeds an inactivity timer; each flowlet is placed on the next
path round-robin.  The paper evaluates 100 us and 500 us timers
(Fig 1, Fig 13): small timers cause reordering, large timers create
huge head flowlets that collide like whole flows.  Like the paper's
OVS implementation, gaps are observed at segment granularity (that is
what the vSwitch sees).
"""

from __future__ import annotations

from typing import Dict

from repro.lb.base import LoadBalancer
from repro.net.packet import Segment
from repro.units import usec


class _FlowletState:
    __slots__ = ("last_ns", "idx", "flowlet_id")

    def __init__(self, idx: int):
        self.last_ns = -1
        self.idx = idx
        self.flowlet_id = 1


class FlowletLb(LoadBalancer):
    name = "flowlet"

    def __init__(self, host_id: int, sim, gap_ns: int = usec(500), rng=None):
        super().__init__(host_id, rng)
        if gap_ns <= 0:
            raise ValueError(f"inactivity gap must be positive: {gap_ns}")
        self.sim = sim
        self.gap_ns = gap_ns
        self._flows: Dict[int, _FlowletState] = {}

    def select(self, seg: Segment) -> None:
        labels = self.labels_for(seg.dst_host)
        st = self._flows.get(seg.flow_id)
        if st is None:
            st = _FlowletState(self.rng.randrange(len(labels)))
            self._flows[seg.flow_id] = st
        now = self.sim.now
        if st.last_ns >= 0 and now - st.last_ns > self.gap_ns:
            st.idx = (st.idx + 1) % len(labels)
            st.flowlet_id += 1
        st.last_ns = now
        seg.dst_mac = labels[st.idx % len(labels)]
        seg.flowcell_id = st.flowlet_id
