"""Per-packet spraying (RPS / DRB style).

Every MTU packet takes the next path round-robin.  The paper argues
this cannot work at 10+ Gbps on hosts because it defeats TSO/GRO; we
implement it via the NIC's per-derived-packet labeler so the ablation
can be measured (massive reordering + small segment flooding at the
receiver).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.lb.base import LoadBalancer
from repro.net.packet import Packet, Segment


class _SprayState:
    __slots__ = ("idx", "cell")

    def __init__(self, idx: int):
        self.idx = idx
        self.cell = 1


class PerPacketLb(LoadBalancer):
    name = "perpacket"

    def __init__(self, host_id: int, rng=None):
        super().__init__(host_id, rng)
        self._flows: Dict[int, _SprayState] = {}

    def select(self, seg: Segment) -> None:
        # The real decision happens per packet in the labeler; give the
        # segment a placeholder so non-TSO paths still route.
        seg.dst_mac = self.labels_for(seg.dst_host)[0]

    def packet_labeler(self) -> Optional[Callable[[Packet], None]]:
        def label(pkt: Packet) -> None:
            labels = self.labels_for(pkt.dst_host)
            st = self._flows.get(pkt.flow_id)
            if st is None:
                st = _SprayState(self.rng.randrange(len(labels)))
                self._flows[pkt.flow_id] = st
            st.idx = (st.idx + 1) % len(labels)
            st.cell += 1
            pkt.dst_mac = labels[st.idx]
            pkt.flowcell_id = st.cell

        return label
