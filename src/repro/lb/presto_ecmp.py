"""Presto + per-hop ECMP (Fig 14's comparison point).

Flowcells are created exactly as in Presto, but instead of pinning each
flowcell to an end-to-end spanning tree via a shadow MAC, packets keep
the real destination MAC and the *switches* hash on (flow, flowcell) —
per-hop multipathing.  Requires the topology's leaf ECMP groups to be
installed with ``HASH_FLOWCELL`` mode.
"""

from __future__ import annotations

from repro.lb.base import LoadBalancer
from repro.net.addresses import host_mac
from repro.net.packet import Segment
from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger


class PrestoEcmpLb(LoadBalancer):
    name = "presto_ecmp"

    def __init__(self, host_id: int, rng=None, threshold: int = FLOWCELL_BYTES):
        super().__init__(host_id, rng)
        self.tagger = FlowcellTagger(threshold)
        self.tagger.set_initial_index_fn(lambda flow_id: self.rng.randrange(1 << 16))

    def select(self, seg: Segment) -> None:
        # One "label" slot per available path so the tagger's round robin
        # advances the flowcell ID at the same cadence as Presto.
        n_paths = max(1, len(self.labels_for(seg.dst_host)))
        _, cell = self.tagger.tag(seg.flow_id, seg.payload_len, n_paths)
        seg.dst_mac = host_mac(seg.dst_host)
        seg.flowcell_id = cell
        if self.probe is not None:
            self.probe.on_flowcell(seg, -1, cell)
