"""RepFlow: replicate mice, race the copies, first finisher wins.

Xu & Li, "RepFlow: Minimizing Flow Completion Times with Replicated
Flows in Data Centers" (INFOCOM 2014).  Every short flow is sent
twice, as two independent transport flows routed over *different*
paths; the receiver takes whichever copy completes first and discards
the duplicate's payload.  Long flows are plain single-path ECMP — the
elephant's bandwidth cost would double for no tail benefit.

The transport half (opening the paired copies, first-finisher-wins FCT
accounting, duplicate-byte suppression) lives in
:class:`repro.host.app.RepFlowApp` (packet fidelity) and
:class:`repro.fluid.testbed.RepFlowFluidApp` (flow fidelity); this LB
supplies the path half: a replica flow registered via :meth:`pair` is
pinned to a spanning-tree label a deterministic offset away from its
primary's, so the copies ride link-disjoint trees instead of hoping
two ECMP hashes diverge.
"""

from __future__ import annotations

from typing import Dict

from repro.lb.base import LoadBalancer
from repro.net.packet import Segment
from repro.units import KB

#: flows at or under this size are replicated (RepFlow's "short flow"
#: cutoff; matches the trace workloads' 100 KB mice limit)
REPFLOW_MICE_BYTES = 100 * KB


class RepFlowLb(LoadBalancer):
    name = "repflow"

    def __init__(self, host_id: int, rng=None):
        super().__init__(host_id, rng)
        self._choice: Dict[int, int] = {}
        #: replica flow id -> its primary's flow id
        self._replica_of: Dict[int, int] = {}

    def pair(self, primary_flow_id: int, replica_flow_id: int) -> None:
        """Declare ``replica_flow_id`` the duplicate of
        ``primary_flow_id``: it will be pinned to a disjoint tree."""
        self._replica_of[replica_flow_id] = primary_flow_id

    def _index_for(self, flow_id: int, n_labels: int) -> int:
        idx = self._choice.get(flow_id)
        if idx is not None:
            return idx
        primary = self._replica_of.get(flow_id)
        if primary is not None:
            # second spanning tree, half the schedule away from the
            # primary's pick: trees are link-disjoint across the trunk,
            # so a different label IS a disjoint path
            base = self._index_for(primary, n_labels)
            idx = base + max(1, n_labels // 2)
        else:
            idx = self.rng.randrange(n_labels)
        self._choice[flow_id] = idx
        return idx

    def select(self, seg: Segment) -> None:
        labels = self.labels_for(seg.dst_host)
        idx = self._index_for(seg.flow_id, len(labels))
        seg.dst_mac = labels[idx % len(labels)]
        seg.flowcell_id = 1
