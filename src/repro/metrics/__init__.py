"""Measurement utilities: statistics, run collectors, reordering metrics."""

from repro.metrics.stats import cdf_points, ewma, jain_fairness, mean, percentile
from repro.metrics.collectors import LossAccountant, ThroughputMeter
from repro.metrics.reordering import ReorderTracker
from repro.metrics.streaming import P2Quantile, StreamingQuantiles, TopK

__all__ = [
    "percentile",
    "mean",
    "cdf_points",
    "jain_fairness",
    "ewma",
    "ThroughputMeter",
    "LossAccountant",
    "ReorderTracker",
    "P2Quantile",
    "StreamingQuantiles",
    "TopK",
]
