"""Run-time collectors: throughput windows and loss accounting.

Both collectors consume the :class:`~repro.host.transfer.Transfer`
interface (and Host-level counter properties) instead of reaching into
``host.receivers`` / ``host.nic`` internals, so any new application
type that satisfies the protocol is measurable without touching this
module.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.host.host import Host
from repro.host.transfer import Transfer
from repro.net.topology import Topology
from repro.units import SEC


class ThroughputMeter:
    """Per-flow goodput measured at the receiver over a window.

    ``mark_start``/``mark_end`` snapshot each tracked transfer's
    per-flow in-order delivered byte counts; throughput is the delta
    over the wall window, matching how nuttcp reports.  Rates stay
    keyed by wire flow id (an MPTCP transfer contributes one entry per
    subflow); :meth:`transfer_rate_bps` aggregates them back per
    transfer.
    """

    def __init__(self):
        self._transfers: List[Transfer] = []
        self._start_bytes: Dict[int, int] = {}
        self._start_ns: Optional[int] = None
        self._end_bytes: Dict[int, int] = {}
        self._end_ns: Optional[int] = None

    def track(self, transfer: Transfer) -> None:
        self._transfers.append(transfer)

    def _snapshot(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for transfer in self._transfers:
            delivered = transfer.delivered_by_flow()
            for flow_id in transfer.flow_ids():
                out[flow_id] = delivered.get(flow_id, 0)
        return out

    def mark_start(self, now_ns: int) -> None:
        self._start_ns = now_ns
        self._start_bytes = self._snapshot()

    def mark_end(self, now_ns: int) -> None:
        self._end_ns = now_ns
        self._end_bytes = self._snapshot()

    def flow_rates_bps(self) -> Dict[int, float]:
        if self._start_ns is None or self._end_ns is None:
            raise RuntimeError("mark_start/mark_end not called")
        window = self._end_ns - self._start_ns
        if window <= 0:
            return {flow_id: 0.0 for flow_id in self._end_bytes}
        return {
            flow_id: (end - self._start_bytes.get(flow_id, 0)) * 8 * SEC / window
            for flow_id, end in self._end_bytes.items()
        }

    def transfer_rate_bps(
        self, transfer: Transfer, rates: Optional[Dict[int, float]] = None
    ) -> float:
        """One tracked transfer's rate: the sum over its wire flows."""
        if rates is None:
            rates = self.flow_rates_bps()
        return sum(rates[f] for f in transfer.flow_ids())

    def mean_rate_bps(self) -> float:
        rates = self.flow_rates_bps()
        if not rates:
            return 0.0
        return sum(rates.values()) / len(rates)


class LossAccountant:
    """Switch-counter loss rate, as the paper measures (Figs 9a, 12a)."""

    def __init__(self, topo: Topology, hosts: List[Host]):
        self.topo = topo
        self.hosts = hosts
        self._start_drops = 0
        self._start_tx = 0

    def mark_start(self) -> None:
        self._start_drops = self._total_drops()
        self._start_tx = self._total_tx()

    def _total_drops(self) -> int:
        drops = self.topo.total_switch_drops()
        drops += sum(h.rx_ring_drops for h in self.hosts)
        return drops

    def _total_tx(self) -> int:
        return sum(h.tx_pkts for h in self.hosts)

    def loss_rate(self) -> float:
        """Dropped / transmitted packets over the marked window."""
        sent = self._total_tx() - self._start_tx
        if sent <= 0:
            return 0.0
        dropped = self._total_drops() - self._start_drops
        return dropped / sent
