"""Run-time collectors: throughput windows and loss accounting."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.host.host import Host
from repro.net.topology import Topology
from repro.units import SEC


class ThroughputMeter:
    """Per-flow goodput measured at the receiver over a window.

    ``mark_start``/``mark_end`` snapshot each tracked flow's in-order
    delivered byte count; throughput is the delta over the wall window,
    matching how nuttcp reports.
    """

    def __init__(self):
        self._flows: List[Tuple[int, Host]] = []
        self._start_bytes: Dict[int, int] = {}
        self._start_ns: Optional[int] = None
        self._end_bytes: Dict[int, int] = {}
        self._end_ns: Optional[int] = None

    def track(self, flow_id: int, receiver_host: Host) -> None:
        self._flows.append((flow_id, receiver_host))

    def _delivered(self, flow_id: int, host: Host) -> int:
        receiver = host.receivers.get(flow_id)
        return receiver.delivered_bytes if receiver is not None else 0

    def mark_start(self, now_ns: int) -> None:
        self._start_ns = now_ns
        for flow_id, host in self._flows:
            self._start_bytes[flow_id] = self._delivered(flow_id, host)

    def mark_end(self, now_ns: int) -> None:
        self._end_ns = now_ns
        for flow_id, host in self._flows:
            self._end_bytes[flow_id] = self._delivered(flow_id, host)

    def flow_rates_bps(self) -> Dict[int, float]:
        if self._start_ns is None or self._end_ns is None:
            raise RuntimeError("mark_start/mark_end not called")
        window = self._end_ns - self._start_ns
        if window <= 0:
            return {flow_id: 0.0 for flow_id, _ in self._flows}
        return {
            flow_id: (self._end_bytes[flow_id] - self._start_bytes.get(flow_id, 0))
            * 8
            * SEC
            / window
            for flow_id, _ in self._flows
        }

    def mean_rate_bps(self) -> float:
        rates = self.flow_rates_bps()
        if not rates:
            return 0.0
        return sum(rates.values()) / len(rates)


class LossAccountant:
    """Switch-counter loss rate, as the paper measures (Figs 9a, 12a)."""

    def __init__(self, topo: Topology, hosts: List[Host]):
        self.topo = topo
        self.hosts = hosts
        self._start_drops = 0
        self._start_tx = 0

    def mark_start(self) -> None:
        self._start_drops = self._total_drops()
        self._start_tx = self._total_tx()

    def _total_drops(self) -> int:
        drops = self.topo.total_switch_drops()
        drops += sum(h.nic.ring_drops for h in self.hosts)
        return drops

    def _total_tx(self) -> int:
        return sum(h.nic.tx_pkts for h in self.hosts)

    def loss_rate(self) -> float:
        """Dropped / transmitted packets over the marked window."""
        sent = self._total_tx() - self._start_tx
        if sent <= 0:
            return 0.0
        dropped = self._total_drops() - self._start_drops
        return dropped / sent
