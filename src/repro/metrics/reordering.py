"""Reordering metrics for Fig 5.

Attach a :class:`ReorderTracker` to a host's ``segment_tap`` and it
records, per flow, the order in which GRO pushed segments up and their
sizes.  Afterwards:

* :meth:`out_of_order_counts` — the paper's Fig 5a metric: for each
  flowcell, the number of segments *from other flowcells* pushed
  between that flowcell's first and last segment (0 = no reordering
  exposed to TCP);
* :meth:`segment_sizes` — Fig 5b's pushed-segment size distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.packet import Segment


class ReorderTracker:
    def __init__(self, max_samples: int = 500_000):
        self.max_samples = max_samples
        #: flow -> ordered list of (flowcell_id, payload_len)
        self._pushes: Dict[int, List[Tuple[int, int]]] = {}
        self.truncated = False

    def observe(self, seg: Segment) -> None:
        pushes = self._pushes.setdefault(seg.flow_id, [])
        if len(pushes) >= self.max_samples:
            self.truncated = True
            return
        pushes.append((seg.flowcell_id, seg.payload_len))

    def segment_sizes(self, flow_id: Optional[int] = None) -> List[int]:
        sizes = []
        for fid, pushes in self._pushes.items():
            if flow_id is not None and fid != flow_id:
                continue
            sizes.extend(size for _, size in pushes)
        return sizes

    def out_of_order_counts(self, flow_id: Optional[int] = None) -> List[int]:
        """Per-flowcell interleaving counts (Fig 5a)."""
        counts: List[int] = []
        for fid, pushes in self._pushes.items():
            if flow_id is not None and fid != flow_id:
                continue
            counts.extend(self._counts_for(pushes))
        return counts

    @staticmethod
    def _counts_for(pushes: List[Tuple[int, int]]) -> List[int]:
        first: Dict[int, int] = {}
        last: Dict[int, int] = {}
        for idx, (cell, _) in enumerate(pushes):
            if cell not in first:
                first[cell] = idx
            last[cell] = idx
        counts = []
        for cell, start in first.items():
            end = last[cell]
            if end == start:
                counts.append(0)
                continue
            interleaved = sum(
                1 for idx in range(start + 1, end) if pushes[idx][0] != cell
            )
            counts.append(interleaved)
        return counts
