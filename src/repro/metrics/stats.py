"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not 0 <= pct <= 100:
        raise ValueError(f"pct must be within [0, 100]: {pct}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = pct / 100 * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1 - frac) + data[hi] * frac


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting/printing a CDF."""
    data = sorted(values)
    n = len(data)
    return [(v, (i + 1) / n) for i, v in enumerate(data)]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over per-flow throughputs: 1 is perfect."""
    values = [v for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def ewma(samples: Iterable[float], gain: float) -> float:
    """Exponentially weighted moving average of a sample stream."""
    if not 0 < gain <= 1:
        raise ValueError(f"gain must be in (0, 1]: {gain}")
    avg = None
    for sample in samples:
        avg = sample if avg is None else (1 - gain) * avg + gain * sample
    if avg is None:
        raise ValueError("ewma of empty sequence")
    return avg
