"""Bounded-memory run collectors for datacenter-scale sweeps.

A 128-host trace-driven run produces hundreds of thousands of mice
FCTs; keeping every sample (as the 16-host experiments do) makes the
per-cell result grow with simulated time.  These collectors keep O(1)
state instead:

- :class:`P2Quantile` — the P-square algorithm (Jain & Chlamtac 1985):
  one quantile tracked with five markers, no stored samples.
- :class:`StreamingQuantiles` — a fixed battery of P² estimators plus
  count/mean/min/max, summarizing a stream as the paper-style
  p50/p90/p99/p99.9 report.
- :class:`TopK` — the k largest samples via a min-heap (e.g. worst
  FCTs with their flow labels for post-mortem).

Estimates converge on the exact percentile as the stream grows; tests
bound the error against :func:`repro.metrics.stats.percentile` on
reference streams.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Sequence, Tuple

DEFAULT_QUANTILES = (0.50, 0.90, 0.99, 0.999)


class P2Quantile:
    """Single-quantile estimator using the P-square algorithm.

    Tracks quantile ``q`` (0 < q < 1) of a stream with five markers
    whose heights are adjusted by piecewise-parabolic interpolation.
    Exact for the first five observations, then O(1) per update.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: List[float] = []
        # marker positions (1-based, as in the paper)
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._want = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._dwant = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        # locate the cell containing x, clamping the extremes
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1
        for i in range(5):
            self._want[i] += self._dwant[i]
        # nudge interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self._want[i] - self._pos[i]
            if (d >= 1 and self._pos[i + 1] - self._pos[i] > 1) or (
                d <= -1 and self._pos[i - 1] - self._pos[i] < -1
            ):
                step = 1.0 if d >= 1 else -1.0
                cand = self._parabolic(i, step)
                if h[i - 1] < cand < h[i + 1]:
                    h[i] = cand
                else:
                    h[i] = self._linear(i, step)
                self._pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate, or None before any samples.  With fewer
        than five samples, falls back to the exact small-sample
        percentile (nearest-rank interpolation)."""
        h = self._heights
        if not h:
            return None
        if len(h) < 5 or self.count < 5:
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (rank - lo) * (h[hi] - h[lo])
        return h[2]


class StreamingQuantiles:
    """A battery of P² estimators plus count/mean/min/max.

    ``summary()`` reports the same keys as
    :func:`repro.experiments.common.fct_percentiles` — plus
    count/mean/min/max — without holding the samples.
    """

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.quantiles = tuple(quantiles)
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        self.count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, x: float) -> None:
        self.count += 1
        self._sum += x
        self._min = x if self._min is None else min(self._min, x)
        self._max = x if self._max is None else max(self._max, x)
        for est in self._estimators:
            est.add(x)

    def extend(self, xs: Sequence[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        for est in self._estimators:
            if est.q == q:
                return est.value()
        raise KeyError(f"quantile {q} not tracked (have {self.quantiles})")

    def summary(self) -> Dict[str, Any]:
        """Plain-dict summary (JSON-ready) of the stream so far."""
        out: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
        }
        for est in self._estimators:
            # 0.999 -> "p99.9", 0.5 -> "p50"
            label = f"p{est.q * 100:g}"
            out[label] = est.value()
        return out


class TopK:
    """The k largest (value, item) samples seen, via a min-heap.

    Ties are broken by insertion order (earlier samples win), so the
    result is deterministic for deterministic streams.
    """

    def __init__(self, k: int = 16) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: List[Tuple[float, int, Any]] = []
        self._n = 0

    def add(self, value: float, item: Any = None) -> None:
        # negate the sequence number so earlier entries sort *larger*
        # at equal value and survive the pushpop
        entry = (value, -self._n, item)
        self._n += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def items(self) -> List[Tuple[float, Any]]:
        """(value, item) pairs, largest first (ties: earliest first)."""
        return [(v, item) for v, _, item in
                sorted(self._heap, key=lambda e: (-e[0], -e[1]))]
