"""Multipath TCP baseline: subflows over ECMP paths with coupled
congestion control (LIA / OLIA-style)."""

from repro.mptcp.coupled import CoupledCc, CoupledGroup
from repro.mptcp.mptcp import MptcpConnection

__all__ = ["CoupledGroup", "CoupledCc", "MptcpConnection"]
