"""Coupled congestion control for MPTCP subflows.

Implements the *Linked Increases Algorithm* (LIA, RFC 6356) with an
OLIA-flavoured best-path numerator — the configuration the paper runs
(MPTCP v0.88 + OLIA).  Key property the paper leans on: a loss on one
subflow only halves *that* subflow, so MPTCP is more aggressive under
loss than single-path TCP (S5, Fig 9a discussion).

Windows are bytes; increases are computed per ACK:

    alpha = cwnd_total * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2
    inc_i = min(alpha * acked * mss / cwnd_total, acked * mss / w_i)
"""

from __future__ import annotations

from typing import List

from repro.host.cc import INF


class CoupledGroup:
    """Shared state across one MPTCP connection's subflow controllers."""

    def __init__(self):
        self.members: List["CoupledCc"] = []

    def alpha(self) -> float:
        """LIA aggressiveness factor over current member windows/RTTs."""
        total = sum(m.cwnd for m in self.members)
        if total <= 0:
            return 1.0
        best = 0.0
        denom = 0.0
        for m in self.members:
            rtt = max(m.last_rtt_ns, 1.0)
            best = max(best, m.cwnd / (rtt * rtt))
            denom += m.cwnd / rtt
        if denom <= 0:
            return 1.0
        return total * best / (denom * denom)


class CoupledCc:
    """Per-subflow controller participating in a :class:`CoupledGroup`."""

    name = "coupled"

    def __init__(self, group: CoupledGroup, mss: int, init_cwnd_pkts: int = 10):
        self.group = group
        self.mss = mss
        self.cwnd = float(mss * init_cwnd_pkts)
        self.ssthresh = INF
        self.last_rtt_ns = 1.0
        group.members.append(self)

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes: int, now_ns: int, rtt_ns: int) -> None:
        if rtt_ns > 0:
            self.last_rtt_ns = float(rtt_ns)
        if self.in_slow_start():
            self.cwnd += acked_bytes
            return
        total = sum(m.cwnd for m in self.group.members)
        alpha = self.group.alpha()
        coupled_inc = alpha * acked_bytes * self.mss / max(total, 1.0)
        reno_inc = acked_bytes * self.mss / max(self.cwnd, 1.0)
        self.cwnd += min(coupled_inc, reno_inc)

    def on_enter_recovery(self, flight_bytes: int, now_ns: int) -> None:
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def on_exit_recovery(self, now_ns: int) -> None:
        self.cwnd = self.ssthresh

    def on_timeout(self, flight_bytes: int, now_ns: int) -> None:
        self.ssthresh = max(flight_bytes / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
