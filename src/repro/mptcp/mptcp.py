"""MPTCP connection: N subflows, each an independent TCP flow whose
path is chosen by the host's ECMP label hash (as real MPTCP subflows
are ECMP-hashed by their distinct 5-tuples).

Scheduling simplification (documented in DESIGN.md): a sized transfer
is partitioned evenly across subflows up front, and an unbounded
(elephant) transfer makes every subflow unbounded.  This preserves the
properties the paper exercises — path diversity, coupled-increase
fairness, one-subflow-halves-on-loss aggression, and the tiny
per-subflow windows that make small MPTCP flows timeout-prone
(Table 2) — without modelling data-level reassembly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.host.app import FlowIdAllocator
from repro.host.host import Host
from repro.host.transfer import delivered_for
from repro.mptcp.coupled import CoupledCc, CoupledGroup
from repro.sim.engine import Simulator

DEFAULT_SUBFLOWS = 8


class MptcpConnection:
    """One MPTCP transfer from ``src`` to ``dst``."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        flow_ids: FlowIdAllocator,
        n_subflows: int = DEFAULT_SUBFLOWS,
        size_bytes: Optional[int] = None,
        start_ns: int = 0,
        on_complete: Optional[Callable[["MptcpConnection"], None]] = None,
    ):
        if n_subflows <= 0:
            raise ValueError(f"need at least one subflow: {n_subflows}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.n_subflows = n_subflows
        self.size_bytes = size_bytes
        self.on_complete = on_complete
        self.subflow_ids: List[int] = [flow_ids.next() for _ in range(n_subflows)]
        self.group = CoupledGroup()
        self.senders: List = []
        self._completed_subflows = 0
        self.start_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        sim.schedule(start_ns, self._start)

    def _start(self) -> None:
        self.start_time = self.sim.now
        host_cfg = self.src.tcp_cfg
        # The connection's receive buffer is shared across subflows (real
        # MPTCP couples them through one meta-socket); giving every
        # subflow the whole window would octuple the offered load.
        cfg = replace(
            host_cfg,
            rcv_wnd=max(4 * host_cfg.mss, host_cfg.rcv_wnd // self.n_subflows),
        )
        for i, flow_id in enumerate(self.subflow_ids):
            cc = CoupledCc(self.group, cfg.mss, cfg.init_cwnd_pkts)
            sender = self.src.open_sender(
                flow_id, self.dst.host_id, on_complete=self._subflow_done,
                cc=cc, cfg=cfg,
            )
            self.senders.append(sender)
            if self.size_bytes is None:
                sender.set_unbounded()
            else:
                share = self.size_bytes // self.n_subflows
                if i == 0:
                    share += self.size_bytes % self.n_subflows
                if share > 0:
                    sender.write(share)
                else:
                    self._completed_subflows += 1
        if self.size_bytes is not None and self._completed_subflows == self.n_subflows:
            self._finish()

    def _subflow_done(self, sender) -> None:
        self._completed_subflows += 1
        if self._completed_subflows >= len(
            [s for s in self.senders if not s.unbounded]
        ) and self.size_bytes is not None:
            self._finish()

    def _finish(self) -> None:
        if self.complete_time is None:
            self.complete_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self)

    @property
    def fct_ns(self) -> Optional[int]:
        if self.start_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.start_time

    def timeouts(self) -> int:
        return sum(s.timeouts for s in self.senders)

    # --- Transfer interface ---------------------------------------------------

    def flow_ids(self) -> tuple:
        return tuple(self.subflow_ids)

    def delivered_by_flow(self) -> dict:
        return {f: delivered_for(self.dst, f) for f in self.subflow_ids}

    def delivered_bytes(self) -> int:
        total = 0
        for flow_id in self.subflow_ids:
            total += delivered_for(self.dst, flow_id)
        return total

    @property
    def fcts_ns(self) -> tuple:
        fct = self.fct_ns
        return (fct,) if fct is not None else ()
