"""Network substrate: packets, links, switches, topologies, routing."""

from repro.net.addresses import (
    MacAddress,
    host_mac,
    is_shadow_mac,
    mac_str,
    shadow_mac,
    shadow_mac_host,
    shadow_mac_tree,
)
from repro.net.packet import Packet, Segment
from repro.net.queues import DropTailQueue
from repro.net.link import Link
from repro.net.port import Port
from repro.net.switch import EcmpGroup, FailoverGroup, Switch
from repro.net.topology import (
    Topology,
    build_clos,
    build_oversub,
    build_scalability,
    build_single_switch,
)
from repro.net.fabrics import (
    TopologySpec,
    build_fabric,
    build_fat_tree,
    build_leaf_spine,
    fabric_link_names,
)
from repro.net.routing import (
    SpanningTree,
    TopologyShapeError,
    TreeValidationError,
    allocate_spanning_trees,
    enumerate_paths,
    install_tree_routes,
    tree_legs,
    validate_trees,
)

__all__ = [
    "MacAddress",
    "host_mac",
    "shadow_mac",
    "shadow_mac_tree",
    "shadow_mac_host",
    "is_shadow_mac",
    "mac_str",
    "Packet",
    "Segment",
    "DropTailQueue",
    "Link",
    "Port",
    "Switch",
    "EcmpGroup",
    "FailoverGroup",
    "Topology",
    "build_clos",
    "build_single_switch",
    "build_scalability",
    "build_oversub",
    "TopologySpec",
    "build_fabric",
    "build_fat_tree",
    "build_leaf_spine",
    "fabric_link_names",
    "SpanningTree",
    "TopologyShapeError",
    "TreeValidationError",
    "allocate_spanning_trees",
    "enumerate_paths",
    "install_tree_routes",
    "tree_legs",
    "validate_trees",
]
