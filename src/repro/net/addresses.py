"""MAC addressing, including Presto's shadow-MAC forwarding labels.

Shadow MACs (Agarwal et al., HotSDN'14) turn the destination MAC into an
opaque label: one label per (spanning tree, destination host) pair.  We
encode MACs as integers for speed; the layout is:

* real host MAC:     ``host_id``                      (tree field = 0)
* shadow MAC:        ``(tree_id + 1) << 32 | host_id``

so a shadow MAC is distinguishable from a real MAC, the tree and the
destination host recover with shifts, and dictionary forwarding lookups
stay integer-keyed.
"""

from __future__ import annotations

MacAddress = int

_TREE_SHIFT = 32
_HOST_MASK = (1 << _TREE_SHIFT) - 1


def host_mac(host_id: int) -> MacAddress:
    """The *real* MAC address of host ``host_id``."""
    if host_id < 0 or host_id > _HOST_MASK:
        raise ValueError(f"host_id out of range: {host_id}")
    return host_id


def shadow_mac(tree_id: int, host_id: int) -> MacAddress:
    """The shadow MAC that routes to ``host_id`` along spanning tree
    ``tree_id``."""
    if tree_id < 0:
        raise ValueError(f"tree_id must be >= 0: {tree_id}")
    if host_id < 0 or host_id > _HOST_MASK:
        raise ValueError(f"host_id out of range: {host_id}")
    return ((tree_id + 1) << _TREE_SHIFT) | host_id


def is_shadow_mac(mac: MacAddress) -> bool:
    """True when ``mac`` is a forwarding label rather than a real MAC."""
    return mac > _HOST_MASK


def shadow_mac_tree(mac: MacAddress) -> int:
    """Spanning-tree id encoded in a shadow MAC."""
    if not is_shadow_mac(mac):
        raise ValueError(f"{mac} is not a shadow MAC")
    return (mac >> _TREE_SHIFT) - 1


def shadow_mac_host(mac: MacAddress) -> int:
    """Destination host id encoded in any MAC (real or shadow)."""
    return mac & _HOST_MASK


def mac_str(mac: MacAddress) -> str:
    """Human-readable rendering, e.g. ``t3:h00:00:05`` or ``h00:00:02``."""
    host = mac & _HOST_MASK
    if is_shadow_mac(mac):
        return f"t{(mac >> _TREE_SHIFT) - 1}:h{host:08x}"
    return f"h{host:08x}"
