"""First-class topology specification and datacenter-scale fabric
builders (ROADMAP item 1).

:class:`TopologySpec` is the single serializable, hashable description
of an experiment's fabric shape.  ``TestbedConfig`` carries one (the
legacy ``n_spines/n_leaves/hosts_per_leaf`` trio is a deprecated alias
that normalizes onto it), the CLIs parse one from strings like
``fat-tree:k=8``, and :func:`build_fabric` turns one into a wired
:class:`~repro.net.topology.Topology`:

* ``clos`` — the paper's 2-tier Clos testbed (Fig 3); what a
  ``leaf-spine`` spec canonicalizes to, so equivalent shapes hash (and
  hit the result store) identically;
* ``fat-tree`` — the k-ary 3-tier fat tree the shadow-MAC spanning
  trees must generalize to (paper S3.1): k pods of k/2 edge + k/2 agg
  switches, (k/2)^2 cores, k^3/4 hosts.

Fat-tree wiring, k=4 (C = core, A = agg, E = edge)::

    class j=1: C1.1 C1.2        class j=2: C2.1 C2.2
                 \\   \\______________________/   /
                  \\______________________      /
      pod 1        |        |     pod 4  \\    |
               A1.1      A1.2         A4.1    A4.2
                 |   ><   |             |  ><  |
               E1.1      E1.2         E4.1    E4.2
               /  \\      /  \\         /  \\    /  \\
              h0  h1    h2  h3      h12 h13  h14 h15

Agg ``Ap.j`` (uplink class ``j``) connects to cores ``Cj.1 .. Cj.{k/2}``;
every edge connects to every agg in its own pod; hosts attach k/2 per
edge in pod-major order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.net.topology import Topology, build_clos
from repro.sim.engine import Simulator
from repro.units import gbps, usec

#: spec kinds after canonicalization (leaf-spine parses into "clos")
KINDS = ("clos", "fat-tree")

#: k^3/4 hosts at k=64 is 65536 — far past anything the simulator can
#: usefully run; treat bigger k as a typo rather than an aspiration.
MAX_FAT_TREE_K = 64


@dataclass(frozen=True)
class TopologySpec:
    """Shape of an experiment fabric — hashable, store-serializable.

    Exactly one family of fields is set, by kind:

    * ``clos``: ``n_spines``, ``n_leaves``, ``hosts_per_leaf``
    * ``fat-tree``: ``k`` (even; k pods, k^3/4 hosts)

    Unused fields stay ``None`` and are omitted from serialization
    (``omit_if_none``), so adding a kind never perturbs existing
    hashes.  Construct via :meth:`clos`, :meth:`fat_tree`,
    :meth:`leaf_spine` or :meth:`parse`.
    """

    kind: str = "clos"
    n_spines: Optional[int] = field(
        default=None, metadata={"omit_if_none": True})
    n_leaves: Optional[int] = field(
        default=None, metadata={"omit_if_none": True})
    hosts_per_leaf: Optional[int] = field(
        default=None, metadata={"omit_if_none": True})
    k: Optional[int] = field(default=None, metadata={"omit_if_none": True})

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.kind == "clos":
            if self.k is not None:
                raise ValueError("clos spec does not take k")
            for name in ("n_spines", "n_leaves", "hosts_per_leaf"):
                value = getattr(self, name)
                if value is None or value < 1:
                    raise ValueError(
                        f"clos spec needs {name} >= 1, got {value}")
        elif self.kind == "fat-tree":
            if (self.n_spines, self.n_leaves, self.hosts_per_leaf) \
                    != (None, None, None):
                raise ValueError(
                    "fat-tree is fully defined by k; do not set the "
                    "clos fields")
            if self.k is None or self.k < 2 or self.k % 2:
                raise ValueError(
                    f"fat-tree k must be an even integer >= 2, got {self.k}")
            if self.k > MAX_FAT_TREE_K:
                raise ValueError(
                    f"fat-tree k capped at {MAX_FAT_TREE_K} "
                    f"(k={self.k} would be {self.k ** 3 // 4} hosts)")
        else:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; pick from {KINDS}")

    # --- constructors -----------------------------------------------------

    @classmethod
    def clos(cls, n_spines: int = 4, n_leaves: int = 4,
             hosts_per_leaf: int = 4) -> "TopologySpec":
        """The paper's 2-tier Clos (Fig 3 defaults: 4x4x4 = 16 hosts)."""
        return cls("clos", n_spines, n_leaves, hosts_per_leaf)

    @classmethod
    def fat_tree(cls, k: int) -> "TopologySpec":
        """k-ary 3-tier fat tree: k=4 -> 16 hosts, k=8 -> 128 hosts."""
        return cls("fat-tree", k=k)

    @classmethod
    def leaf_spine(cls, *, pods: int = 4, radix: Optional[int] = None,
                   oversub: float = 1.0, n_spines: Optional[int] = None,
                   hosts_per_leaf: Optional[int] = None) -> "TopologySpec":
        """Leaf-spine == 2-tier Clos, parameterized the way operators
        speak: ``radix`` ToR ports split between host ports and uplinks
        by the ``oversub`` ratio (host ports : uplinks), ``pods`` racks.
        Canonicalizes to a ``clos`` spec so equivalent shapes hash
        identically."""
        if radix is not None:
            if n_spines is not None or hosts_per_leaf is not None:
                raise ValueError(
                    "give radix (+oversub) or explicit spines/hosts, "
                    "not both")
            if oversub <= 0:
                raise ValueError(f"oversub must be positive, got {oversub}")
            spines = radix / (1.0 + oversub)
            hosts = radix - spines
            if (spines != int(spines) or hosts != int(hosts)
                    or int(spines) < 1 or int(hosts) < 1):
                raise ValueError(
                    f"radix={radix} does not split into whole uplink/host "
                    f"port counts at oversub={oversub}")
            n_spines, hosts_per_leaf = int(spines), int(hosts)
        if n_spines is None or hosts_per_leaf is None:
            raise ValueError(
                "leaf-spine needs radix (+oversub) or n_spines + "
                "hosts_per_leaf")
        return cls.clos(n_spines, pods, hosts_per_leaf)

    @classmethod
    def parse(cls, text: str) -> "TopologySpec":
        """Parse the CLI grammar ``kind[:key=value,...]``:

        * ``clos[:spines=4,leaves=4,hosts=4]``
        * ``fat-tree:k=8``
        * ``leaf-spine:radix=8,oversub=1,pods=4`` (or explicit
          ``spines=``/``hosts=`` instead of ``radix=``)
        """
        head, _, tail = text.strip().partition(":")
        kind = head.strip().lower().replace("_", "-")
        kind = {"fattree": "fat-tree", "leafspine": "leaf-spine"}.get(
            kind, kind)
        params: Dict[str, float] = {}
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key.strip() or not value.strip():
                    raise ValueError(
                        f"bad topology parameter {item!r} in {text!r} "
                        f"(want key=value)")
                try:
                    params[key.strip().lower()] = float(value)
                except ValueError:
                    raise ValueError(
                        f"non-numeric topology parameter {item!r} in "
                        f"{text!r}") from None

        def pop_int(key: str, default: Optional[int] = None) -> Optional[int]:
            value = params.pop(key, None)
            if value is None:
                return default
            if value != int(value):
                raise ValueError(f"{key} must be an integer in {text!r}")
            return int(value)

        if kind == "fat-tree":
            k = pop_int("k")
            if k is None:
                raise ValueError(
                    f"fat-tree needs k (e.g. fat-tree:k=8), got {text!r}")
            spec = cls.fat_tree(k)
        elif kind == "clos":
            spec = cls.clos(pop_int("spines", 4), pop_int("leaves", 4),
                            pop_int("hosts", 4))
        elif kind == "leaf-spine":
            spec = cls.leaf_spine(
                pods=pop_int("pods", 4), radix=pop_int("radix"),
                oversub=params.pop("oversub", 1.0),
                n_spines=pop_int("spines"),
                hosts_per_leaf=pop_int("hosts"))
        else:
            raise ValueError(
                f"unknown topology kind {kind!r} in {text!r} "
                f"(want clos | fat-tree | leaf-spine)")
        if params:
            raise ValueError(
                f"unknown topology parameter(s) {sorted(params)} in {text!r}")
        return spec

    # --- shape queries ----------------------------------------------------

    @property
    def n_tiers(self) -> int:
        return 3 if self.kind == "fat-tree" else 2

    def n_hosts(self) -> int:
        if self.kind == "fat-tree":
            return self.k ** 3 // 4
        return self.n_leaves * self.hosts_per_leaf

    def n_edges(self) -> int:
        """Host-facing (edge/ToR) switch count."""
        if self.kind == "fat-tree":
            return self.k * self.k // 2
        return self.n_leaves

    def hosts_per_edge(self) -> int:
        if self.kind == "fat-tree":
            return self.k // 2
        return self.hosts_per_leaf

    def edge_of(self, host_id: int) -> int:
        """Rack (edge switch) index of a host; hosts attach pod-major."""
        if not 0 <= host_id < self.n_hosts():
            raise ValueError(
                f"host {host_id} outside fabric ({self.n_hosts()} hosts)")
        return host_id // self.hosts_per_edge()

    def legacy_fields(self) -> Tuple[int, int, int]:
        """``(n_spines, n_leaves, hosts_per_leaf)`` mirror kept in sync
        on ``TestbedConfig`` for legacy readers: uplinks per edge, edge
        count, hosts per edge."""
        if self.kind == "fat-tree":
            return self.k // 2, self.n_edges(), self.k // 2
        return self.n_spines, self.n_leaves, self.hosts_per_leaf

    def cli(self) -> str:
        """The :meth:`parse` round-trip string."""
        if self.kind == "fat-tree":
            return f"fat-tree:k={self.k}"
        return (f"clos:spines={self.n_spines},leaves={self.n_leaves},"
                f"hosts={self.hosts_per_leaf}")

    def slug(self) -> str:
        """Label/filename-safe name (used in sweep job labels)."""
        if self.kind == "fat-tree":
            return f"fat-tree-k{self.k}"
        return f"clos-{self.n_spines}x{self.n_leaves}x{self.hosts_per_leaf}"


SpecLike = Union[TopologySpec, str]


def as_spec(spec: SpecLike) -> TopologySpec:
    """Accept a :class:`TopologySpec` or its CLI string form."""
    if isinstance(spec, str):
        return TopologySpec.parse(spec)
    spec.validate()
    return spec


def build_fat_tree(
    sim: Simulator,
    k: int = 4,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
    pool_bytes: int = Topology.DEFAULT_POOL_BYTES,
    pool_alpha: float = Topology.DEFAULT_POOL_ALPHA,
) -> Topology:
    """k-ary 3-tier fat tree (see the module docstring for the wiring).

    ``topo.leaves`` holds the edge switches and ``topo.spines`` the
    aggs (both pod-major), so every 2-tier consumer of those lists —
    ``uplinks()``, the ECMP underlay, leaf failover groups — keeps
    working; the third tier lives in ``topo.cores`` plus the pod
    metadata (``pod_edges``/``pod_aggs``/``switch_pod``).
    """
    TopologySpec.fat_tree(k)  # validates k
    half = k // 2
    topo = Topology(sim, f"fat-tree-k{k}", pool_bytes, pool_alpha)
    # creation order fixes switch salts: cores, then per pod aggs+edges
    topo.cores = [
        topo.add_switch(f"C{j + 1}.{m + 1}")
        for j in range(half) for m in range(half)
    ]
    for p in range(k):
        aggs = [topo.add_switch(f"A{p + 1}.{j + 1}") for j in range(half)]
        edges = [topo.add_switch(f"E{p + 1}.{i + 1}") for i in range(half)]
        topo.pod_aggs.append(aggs)
        topo.pod_edges.append(edges)
        for sw in aggs + edges:
            topo.switch_pod[sw.name] = p
        topo.spines.extend(aggs)
        topo.leaves.extend(edges)
        for edge in edges:
            for agg in aggs:
                topo.connect(edge, agg, rate_bps, prop_delay_ns, buffer_bytes)
        for j, agg in enumerate(aggs):
            for m in range(half):
                topo.connect(agg, topo.cores[j * half + m],
                             rate_bps, prop_delay_ns, buffer_bytes)
    return topo


def build_leaf_spine(
    sim: Simulator,
    pods: int = 4,
    radix: Optional[int] = None,
    oversub: float = 1.0,
    n_spines: Optional[int] = None,
    hosts_per_leaf: Optional[int] = None,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
    pool_bytes: int = Topology.DEFAULT_POOL_BYTES,
    pool_alpha: float = Topology.DEFAULT_POOL_ALPHA,
) -> Topology:
    """Leaf-spine generator in operator vocabulary (radix/oversub/pods);
    structurally a 2-tier Clos — see :meth:`TopologySpec.leaf_spine`."""
    spec = TopologySpec.leaf_spine(
        pods=pods, radix=radix, oversub=oversub,
        n_spines=n_spines, hosts_per_leaf=hosts_per_leaf)
    return build_clos(
        sim, n_spines=spec.n_spines, n_leaves=spec.n_leaves,
        rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
        buffer_bytes=buffer_bytes, pool_bytes=pool_bytes,
        pool_alpha=pool_alpha)


def build_fabric(
    sim: Simulator,
    spec: SpecLike,
    *,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
    pool_bytes: int = Topology.DEFAULT_POOL_BYTES,
    pool_alpha: float = Topology.DEFAULT_POOL_ALPHA,
) -> Topology:
    """The one topology-construction entry point: spec -> wired fabric.
    Hosts are attached afterwards (``spec.hosts_per_edge()`` per edge,
    pod-major), exactly as the 2-tier builders always worked."""
    spec = as_spec(spec)
    if spec.kind == "fat-tree":
        return build_fat_tree(
            sim, spec.k, rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
            buffer_bytes=buffer_bytes, pool_bytes=pool_bytes,
            pool_alpha=pool_alpha)
    return build_clos(
        sim, n_spines=spec.n_spines, n_leaves=spec.n_leaves,
        rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
        buffer_bytes=buffer_bytes, pool_bytes=pool_bytes,
        pool_alpha=pool_alpha)


def fabric_link_names(
    spec: SpecLike,
) -> Tuple[List[str], Dict[str, List[str]]]:
    """``(fabric link names, switch name -> its fabric link names)``
    reconstructed from the builders' naming conventions *without*
    building a topology — the faults subsystem draws fault targets from
    these before any testbed exists.  Host access links are excluded
    (killing one isolates a host rather than exercising rerouting)."""
    spec = as_spec(spec)
    links: List[str] = []
    by_switch: Dict[str, List[str]] = {}

    def add(a: str, b: str) -> None:
        name = f"{a}--{b}"
        links.append(name)
        by_switch.setdefault(a, []).append(name)
        by_switch.setdefault(b, []).append(name)

    if spec.kind == "fat-tree":
        half = spec.k // 2
        for p in range(spec.k):
            for i in range(half):
                for j in range(half):
                    add(f"E{p + 1}.{i + 1}", f"A{p + 1}.{j + 1}")
            for j in range(half):
                for m in range(half):
                    add(f"A{p + 1}.{j + 1}", f"C{j + 1}.{m + 1}")
    else:
        for li in range(spec.n_leaves):
            for si in range(spec.n_spines):
                add(f"L{li + 1}", f"S{si + 1}")
    return links, by_switch
