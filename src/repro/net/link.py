"""Full-duplex links.

A :class:`Link` is the physical cable: a rate, a propagation delay, and
an up/down state shared by both directions.  The per-direction transmit
machinery (queue + serializer) lives in :class:`repro.net.port.Port`;
the link wires the two ports together so a failure takes both
directions down at once, which is how the paper's fast-failover
experiment (Fig 17) perturbs the network.
"""

from __future__ import annotations

from typing import Callable, List

from repro.units import gbps, usec


class Link:
    """Shared state of a full-duplex cable between two nodes."""

    def __init__(
        self,
        name: str,
        rate_bps: float = gbps(10),
        prop_delay_ns: int = usec(1),
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive: {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0: {prop_delay_ns}")
        self.name = name
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self._up = True
        self.ports: List = []  # the two directional Ports using this cable
        self.on_state_change: List[Callable[["Link"], None]] = []
        #: wire_size -> serialization ns at the current rate.  Traffic
        #: uses a handful of distinct packet sizes, so ports answer the
        #: per-packet float math with one dict hit; invalidated by
        #: :meth:`set_rate`.
        self._ser_cache: dict = {}

    @property
    def up(self) -> bool:
        return self._up

    def set_down(self) -> None:
        """Fail the link: queued packets on both directions are dropped and
        state-change observers (e.g. failover groups) are notified."""
        if not self._up:
            return
        self._up = False
        for port in self.ports:
            port.on_link_down()
        for callback in list(self.on_state_change):
            callback(self)

    def set_up(self) -> None:
        """Restore the link: ports resume transmitting and observers
        (failover groups, the control plane) are notified, symmetric to
        :meth:`set_down`."""
        if self._up:
            return
        self._up = True
        for port in self.ports:
            port.on_link_up()
        for callback in list(self.on_state_change):
            callback(self)

    def set_rate(self, rate_bps: float) -> None:
        """Change the link rate in place (degraded optics / FEC fallback).

        Packets already serializing finish at the old rate; observers are
        notified so the control plane can reweight schedules.
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive: {rate_bps}")
        if rate_bps == self.rate_bps:
            return
        self.rate_bps = rate_bps
        self._ser_cache.clear()
        for callback in list(self.on_state_change):
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate_bps / 1e9:.1f}Gbps {'up' if self._up else 'DOWN'}>"
