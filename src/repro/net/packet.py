"""Wire and host-stack data units.

Two granularities, mirroring a real TSO/GRO stack:

* :class:`Segment` — what TCP hands to the NIC (up to 64 KB, the flowcell
  size) and what GRO pushes back up to TCP.  Pure ACKs are zero-payload
  segments.
* :class:`Packet` — the MTU-sized unit that actually crosses links.  TSO
  fans a segment out into packets (replicating the shadow MAC and
  flowcell ID exactly like a real NIC replicates header fields); GRO
  merges packets back into segments.

Byte sequence numbers are absolute offsets in the flow's byte stream,
``seq`` inclusive / ``end_seq`` exclusive.

Both classes are pooled: a long run creates and drops millions of
packets, and ``__init__`` + allocation is a measurable slice of the hot
path.  ``alloc()`` hands out a recycled instance with *every* field
reset (so reuse can never leak state between flows) and ``release()``
returns one to the pool.  Releasing is an ownership statement — only
the component that knows no one else holds the object may call it (the
NIC after GRO copied a packet's fields, the host after TCP consumed a
segment).  Code that constructs via ``Packet(...)``/``Segment(...)``
directly, as tests do, simply bypasses the pool.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.units import HEADER_BYTES

DATA = "data"
ACK = "ack"

#: cap on pooled instances; beyond this, released objects go to the GC
_POOL_MAX = 8192


class Packet:
    """An MTU-sized packet on the wire.

    ``end_seq`` and ``wire_size`` are plain attributes computed at
    construction (they used to be properties): ``seq``/``payload_len``
    are never mutated after a packet is built, and the two derived
    values are read for every enqueue, dequeue and serialization.
    """

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "dst_mac",
        "kind",
        "seq",
        "payload_len",
        "flowcell_id",
        "is_retx",
        "ack_seq",
        "sack",
        "ts",
        "ts_echo",
        "hops",
        "end_seq",
        "wire_size",
    )

    _pool: List["Packet"] = []

    def __init__(
        self,
        flow_id: int,
        src_host: int,
        dst_host: int,
        dst_mac: int,
        kind: str,
        seq: int,
        payload_len: int,
        flowcell_id: int,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
    ):
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_mac = dst_mac
        self.kind = kind
        self.seq = seq
        self.payload_len = payload_len
        self.flowcell_id = flowcell_id
        self.is_retx = is_retx
        self.ack_seq = ack_seq
        self.sack = sack
        self.ts = ts
        self.ts_echo = ts_echo
        self.hops = 0
        self.end_seq = seq + payload_len
        self.wire_size = payload_len + HEADER_BYTES

    @classmethod
    def alloc(
        cls,
        flow_id: int,
        src_host: int,
        dst_host: int,
        dst_mac: int,
        kind: str,
        seq: int,
        payload_len: int,
        flowcell_id: int,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
    ) -> "Packet":
        """A packet from the pool (or a fresh one), every field set."""
        pool = cls._pool
        if pool:
            pkt = pool.pop()
            pkt.flow_id = flow_id
            pkt.src_host = src_host
            pkt.dst_host = dst_host
            pkt.dst_mac = dst_mac
            pkt.kind = kind
            pkt.seq = seq
            pkt.payload_len = payload_len
            pkt.flowcell_id = flowcell_id
            pkt.is_retx = is_retx
            pkt.ack_seq = ack_seq
            pkt.sack = sack
            pkt.ts = ts
            pkt.ts_echo = ts_echo
            pkt.hops = 0
            pkt.end_seq = seq + payload_len
            pkt.wire_size = payload_len + HEADER_BYTES
            return pkt
        return cls(
            flow_id, src_host, dst_host, dst_mac, kind, seq, payload_len,
            flowcell_id, is_retx, ack_seq, sack, ts, ts_echo,
        )

    def release(self) -> None:
        """Return this packet to the pool.  The caller must be the last
        owner: after release the object may be recycled at any time."""
        pool = Packet._pool
        if len(pool) < _POOL_MAX:
            pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet f{self.flow_id} {self.kind} seq={self.seq}+{self.payload_len}"
            f" cell={self.flowcell_id}{' retx' if self.is_retx else ''}>"
        )


class Segment:
    """A TSO/GRO mega-segment: contiguous bytes of one flow.

    On the send side a segment is the unit TCP passes to the vSwitch/NIC
    (Algorithm 1 operates per segment).  On the receive side GRO builds
    segments from packets and pushes them up to TCP.
    """

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "dst_mac",
        "kind",
        "seq",
        "end_seq",
        "pkt_count",
        "flowcell_id",
        "is_retx",
        "ack_seq",
        "sack",
        "ts",
        "ts_echo",
        "created_at",
        "last_merge_at",
    )

    _pool: List["Segment"] = []

    def __init__(
        self,
        flow_id: int,
        src_host: int,
        dst_host: int,
        kind: str = DATA,
        seq: int = 0,
        end_seq: int = 0,
        pkt_count: int = 0,
        flowcell_id: int = 0,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
        dst_mac: int = 0,
    ):
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_mac = dst_mac
        self.kind = kind
        self.seq = seq
        self.end_seq = end_seq
        self.pkt_count = pkt_count
        self.flowcell_id = flowcell_id
        self.is_retx = is_retx
        self.ack_seq = ack_seq
        self.sack = sack
        self.ts = ts
        self.ts_echo = ts_echo
        self.created_at = 0
        self.last_merge_at = 0

    @classmethod
    def alloc(
        cls,
        flow_id: int,
        src_host: int,
        dst_host: int,
        kind: str = DATA,
        seq: int = 0,
        end_seq: int = 0,
        pkt_count: int = 0,
        flowcell_id: int = 0,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
        dst_mac: int = 0,
    ) -> "Segment":
        """A segment from the pool (or a fresh one), every field set."""
        pool = cls._pool
        if pool:
            seg = pool.pop()
            seg.flow_id = flow_id
            seg.src_host = src_host
            seg.dst_host = dst_host
            seg.dst_mac = dst_mac
            seg.kind = kind
            seg.seq = seq
            seg.end_seq = end_seq
            seg.pkt_count = pkt_count
            seg.flowcell_id = flowcell_id
            seg.is_retx = is_retx
            seg.ack_seq = ack_seq
            seg.sack = sack
            seg.ts = ts
            seg.ts_echo = ts_echo
            seg.created_at = 0
            seg.last_merge_at = 0
            return seg
        return cls(
            flow_id, src_host, dst_host, kind, seq, end_seq, pkt_count,
            flowcell_id, is_retx, ack_seq, sack, ts, ts_echo, dst_mac,
        )

    def release(self) -> None:
        """Return this segment to the pool (see :meth:`Packet.release`)."""
        pool = Segment._pool
        if len(pool) < _POOL_MAX:
            pool.append(self)

    @property
    def payload_len(self) -> int:
        return self.end_seq - self.seq

    @classmethod
    def from_packet(cls, pkt: Packet) -> "Segment":
        """Start a new GRO segment from a single received packet."""
        return cls.alloc(
            flow_id=pkt.flow_id,
            src_host=pkt.src_host,
            dst_host=pkt.dst_host,
            kind=pkt.kind,
            seq=pkt.seq,
            end_seq=pkt.end_seq,
            pkt_count=1,
            flowcell_id=pkt.flowcell_id,
            is_retx=pkt.is_retx,
            ack_seq=pkt.ack_seq,
            sack=pkt.sack,
            ts=pkt.ts,
            ts_echo=pkt.ts_echo,
            dst_mac=pkt.dst_mac,
        )

    def try_merge(self, pkt: Packet, require_same_flowcell: bool) -> bool:
        """Append/prepend ``pkt`` if it is contiguous with this segment.

        Real GRO only appends at the tail; we also allow a head-merge of
        the immediately preceding packet, which real GRO achieves through
        segment adjacency — the simplification does not change which
        bytes get pushed in-order.  Returns True when merged.
        """
        if pkt.flow_id != self.flow_id or pkt.kind != self.kind:
            return False
        if require_same_flowcell and pkt.flowcell_id != self.flowcell_id:
            return False
        if pkt.is_retx != self.is_retx:
            return False
        if pkt.seq == self.end_seq:
            self.end_seq = pkt.end_seq
        elif pkt.end_seq == self.seq:
            self.seq = pkt.seq
        else:
            return False
        self.pkt_count += 1
        if pkt.ts:
            self.ts = self.ts or pkt.ts
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Segment f{self.flow_id} {self.kind} [{self.seq},{self.end_seq})"
            f" cell={self.flowcell_id} n={self.pkt_count}>"
        )


def make_ack(
    flow_id: int,
    src_host: int,
    dst_host: int,
    ack_seq: int,
    sack: Tuple[Tuple[int, int], ...] = (),
    ts_echo: int = 0,
) -> Segment:
    """A pure-ACK segment (zero payload, one wire packet)."""
    return Segment.alloc(
        flow_id=flow_id,
        src_host=src_host,
        dst_host=dst_host,
        kind=ACK,
        ack_seq=ack_seq,
        sack=sack,
        ts_echo=ts_echo,
    )
