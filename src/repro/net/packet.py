"""Wire and host-stack data units.

Two granularities, mirroring a real TSO/GRO stack:

* :class:`Segment` — what TCP hands to the NIC (up to 64 KB, the flowcell
  size) and what GRO pushes back up to TCP.  Pure ACKs are zero-payload
  segments.
* :class:`Packet` — the MTU-sized unit that actually crosses links.  TSO
  fans a segment out into packets (replicating the shadow MAC and
  flowcell ID exactly like a real NIC replicates header fields); GRO
  merges packets back into segments.

Byte sequence numbers are absolute offsets in the flow's byte stream,
``seq`` inclusive / ``end_seq`` exclusive.
"""

from __future__ import annotations

from typing import Tuple

from repro.units import HEADER_BYTES

DATA = "data"
ACK = "ack"


class Packet:
    """An MTU-sized packet on the wire."""

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "dst_mac",
        "kind",
        "seq",
        "payload_len",
        "flowcell_id",
        "is_retx",
        "ack_seq",
        "sack",
        "ts",
        "ts_echo",
        "hops",
    )

    def __init__(
        self,
        flow_id: int,
        src_host: int,
        dst_host: int,
        dst_mac: int,
        kind: str,
        seq: int,
        payload_len: int,
        flowcell_id: int,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
    ):
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_mac = dst_mac
        self.kind = kind
        self.seq = seq
        self.payload_len = payload_len
        self.flowcell_id = flowcell_id
        self.is_retx = is_retx
        self.ack_seq = ack_seq
        self.sack = sack
        self.ts = ts
        self.ts_echo = ts_echo
        self.hops = 0

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_len

    @property
    def wire_size(self) -> int:
        """Bytes occupied on the wire (payload + per-packet framing)."""
        return self.payload_len + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet f{self.flow_id} {self.kind} seq={self.seq}+{self.payload_len}"
            f" cell={self.flowcell_id}{' retx' if self.is_retx else ''}>"
        )


class Segment:
    """A TSO/GRO mega-segment: contiguous bytes of one flow.

    On the send side a segment is the unit TCP passes to the vSwitch/NIC
    (Algorithm 1 operates per segment).  On the receive side GRO builds
    segments from packets and pushes them up to TCP.
    """

    __slots__ = (
        "flow_id",
        "src_host",
        "dst_host",
        "dst_mac",
        "kind",
        "seq",
        "end_seq",
        "pkt_count",
        "flowcell_id",
        "is_retx",
        "ack_seq",
        "sack",
        "ts",
        "ts_echo",
        "created_at",
        "last_merge_at",
    )

    def __init__(
        self,
        flow_id: int,
        src_host: int,
        dst_host: int,
        kind: str = DATA,
        seq: int = 0,
        end_seq: int = 0,
        pkt_count: int = 0,
        flowcell_id: int = 0,
        is_retx: bool = False,
        ack_seq: int = 0,
        sack: Tuple[Tuple[int, int], ...] = (),
        ts: int = 0,
        ts_echo: int = 0,
        dst_mac: int = 0,
    ):
        self.flow_id = flow_id
        self.src_host = src_host
        self.dst_host = dst_host
        self.dst_mac = dst_mac
        self.kind = kind
        self.seq = seq
        self.end_seq = end_seq
        self.pkt_count = pkt_count
        self.flowcell_id = flowcell_id
        self.is_retx = is_retx
        self.ack_seq = ack_seq
        self.sack = sack
        self.ts = ts
        self.ts_echo = ts_echo
        self.created_at = 0
        self.last_merge_at = 0

    @property
    def payload_len(self) -> int:
        return self.end_seq - self.seq

    @classmethod
    def from_packet(cls, pkt: Packet) -> "Segment":
        """Start a new GRO segment from a single received packet."""
        seg = cls(
            flow_id=pkt.flow_id,
            src_host=pkt.src_host,
            dst_host=pkt.dst_host,
            kind=pkt.kind,
            seq=pkt.seq,
            end_seq=pkt.end_seq,
            pkt_count=1,
            flowcell_id=pkt.flowcell_id,
            is_retx=pkt.is_retx,
            ack_seq=pkt.ack_seq,
            sack=pkt.sack,
            ts=pkt.ts,
            ts_echo=pkt.ts_echo,
            dst_mac=pkt.dst_mac,
        )
        return seg

    def try_merge(self, pkt: Packet, require_same_flowcell: bool) -> bool:
        """Append/prepend ``pkt`` if it is contiguous with this segment.

        Real GRO only appends at the tail; we also allow a head-merge of
        the immediately preceding packet, which real GRO achieves through
        segment adjacency — the simplification does not change which
        bytes get pushed in-order.  Returns True when merged.
        """
        if pkt.flow_id != self.flow_id or pkt.kind != self.kind:
            return False
        if require_same_flowcell and pkt.flowcell_id != self.flowcell_id:
            return False
        if pkt.is_retx != self.is_retx:
            return False
        if pkt.seq == self.end_seq:
            self.end_seq = pkt.end_seq
        elif pkt.end_seq == self.seq:
            self.seq = pkt.seq
        else:
            return False
        self.pkt_count += 1
        if pkt.ts:
            self.ts = self.ts or pkt.ts
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Segment f{self.flow_id} {self.kind} [{self.seq},{self.end_seq})"
            f" cell={self.flowcell_id} n={self.pkt_count}>"
        )


def make_ack(
    flow_id: int,
    src_host: int,
    dst_host: int,
    ack_seq: int,
    sack: Tuple[Tuple[int, int], ...] = (),
    ts_echo: int = 0,
) -> Segment:
    """A pure-ACK segment (zero payload, one wire packet)."""
    return Segment(
        flow_id=flow_id,
        src_host=src_host,
        dst_host=dst_host,
        kind=ACK,
        ack_seq=ack_seq,
        sack=sack,
        ts_echo=ts_echo,
    )
