"""Directional output port: drop-tail queue + store-and-forward serializer.

Each port belongs to one node and delivers to a fixed peer node after
``serialization + propagation`` delay, mirroring a real switch ASIC's
output-queued model.  Per-port counters feed the loss-rate and
utilization figures.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import SEC, serialization_time_ns


#: Default per-port buffering.  The G8264 shares ~4 MB among 64 ports;
#: a few hundred KB per port reproduces the shallow-buffer loss behaviour.
DEFAULT_BUFFER_BYTES = 300 * 1024


class Port:
    """One direction of a link: ``owner`` transmits to ``peer``."""

    __slots__ = (
        "sim",
        "_schedule",
        "name",
        "link",
        "queue",
        "peer",
        "peer_port",
        "_busy",
        "_tx_event",
        "_tx_pkt",
        "tx_pkts",
        "tx_bytes",
        "wire_drop_pkts",
        "wire_drop_bytes",
        "tx_jitter_ns",
        "_jstate",
        "space_threshold",
        "on_space",
        "_space_armed",
        "on_dequeue",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        link: Link,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ):
        self.sim = sim
        # bound once: the transmit machinery schedules 2+ events per
        # packet and the attribute/descriptor chain shows up in profiles
        self._schedule = sim.schedule
        self.name = name
        self.link = link
        self.queue = DropTailQueue(buffer_bytes)
        self.peer = None  # node with .receive(pkt, port); set by Topology
        self.peer_port: Optional["Port"] = None  # reverse direction
        self._busy = False
        self._tx_event = None  # pending _tx_done for the serializing packet
        self._tx_pkt: Optional[Packet] = None
        self.tx_pkts = 0
        self.tx_bytes = 0
        #: frames lost on the wire itself: the packet being serialized
        #: when the cable died (never reaches any queue counter)
        self.wire_drop_pkts = 0
        self.wire_drop_bytes = 0
        #: per-packet serialization jitter ceiling (ns).  Host NICs get a
        #: few tens of ns of timing noise (IFG variance, PCIe batching):
        #: without it, constant-MTU flows phase-lock with switch queue
        #: departures and a pinned-full queue starves competitors forever
        #: — an artifact real hardware never exhibits.
        self.tx_jitter_ns = 0
        # zlib.crc32 (not hash()) so runs are stable under hash randomization
        self._jstate = (zlib.crc32(name.encode()) | 1) & 0xFFFFFFFF
        #: optional low-watermark callback: fired once each time the queue
        #: drains below the threshold (used for TSQ-style backpressure)
        self.space_threshold: Optional[int] = None
        self.on_space = None
        self._space_armed = True
        #: optional per-dequeue callback (pkt) — fired as each packet
        #: starts serialization; the NIC uses it for per-flow TSQ wakeups
        self.on_dequeue = None
        link.ports.append(self)

    def _jitter(self) -> int:
        if not self.tx_jitter_ns:
            return 0
        # xorshift32: cheap, deterministic per port
        x = self._jstate
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._jstate = x
        return x % (self.tx_jitter_ns + 1)

    @property
    def up(self) -> bool:
        return self.link.up

    def send(self, pkt: Packet) -> bool:
        """Queue ``pkt`` for transmission.  Returns False on drop."""
        if not self.link._up:
            self.queue.record_drop(pkt, "link_down")
            return False
        if not self.queue.enqueue(pkt):
            return False
        if not self._busy:
            self._start_tx()
        return True

    def _start_tx(self) -> None:
        pkt = self.queue.dequeue()
        if self.space_threshold is not None:
            if self.queue.bytes_queued >= self.space_threshold:
                self._space_armed = True
            elif self._space_armed and self.on_space is not None:
                self._space_armed = False
                # deferred so the callback's sends cannot re-enter _start_tx
                self.sim.schedule(0, self.on_space)
        if pkt is None:
            self._busy = False
            return
        self._busy = True
        if self.on_dequeue is not None:
            # _busy is already True, so sends triggered by the wakeup only
            # enqueue — they cannot re-enter the transmit machinery.
            self.on_dequeue(pkt)
        # Serialization time answered from the link's size->ns cache;
        # misses compute serialization_time_ns's exact expression (same
        # rounding), so cached and uncached runs are bit-identical.
        link = self.link
        ws = pkt.wire_size
        ser = link._ser_cache.get(ws)
        if ser is None:
            ser = max(1, int(round(ws * 8 * SEC / link.rate_bps)))
            link._ser_cache[ws] = ser
        jitter_ns = self.tx_jitter_ns
        if jitter_ns:
            # xorshift32: cheap, deterministic per port
            x = self._jstate
            x ^= (x << 13) & 0xFFFFFFFF
            x ^= x >> 17
            x ^= (x << 5) & 0xFFFFFFFF
            self._jstate = x
            ser += x % (jitter_ns + 1)
        self._tx_pkt = pkt
        self._tx_event = self._schedule(ser, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self._tx_event = None
        self._tx_pkt = None
        self.tx_pkts += 1
        self.tx_bytes += pkt.wire_size
        if self.link._up:
            # Packet leaves the wire prop_delay later; the transmitter is
            # free to start the next packet immediately (pipelining).
            self._schedule(self.link.prop_delay_ns, self._deliver, pkt)
        else:
            self.wire_drop_pkts += 1
            self.wire_drop_bytes += pkt.wire_size
        self._start_tx()

    def _deliver(self, pkt: Packet) -> None:
        pkt.hops += 1
        self.peer.receive(pkt, self)

    def on_link_down(self) -> None:
        """Flush queued packets when the cable dies; the frame in the
        serializer is lost on the wire."""
        while True:
            pkt = self.queue.dequeue()
            if pkt is None:
                break
            self.queue.record_drop(pkt, "link_down")
        if self._tx_event is not None:
            self._tx_event.cancel()
            self._tx_event = None
        if self._tx_pkt is not None:
            self.wire_drop_pkts += 1
            self.wire_drop_bytes += self._tx_pkt.wire_size
            self._tx_pkt = None
        self._busy = False

    def on_link_up(self) -> None:
        """Cable restored: resume transmission of anything queued."""
        if not self._busy and len(self.queue):
            self._start_tx()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Port {self.name}>"
