"""Drop-tail FIFOs with optional shared-buffer admission.

The paper's RackSwitch G8264 (Broadcom Scorpion/Trident class) keeps a
~4 MB packet buffer *shared* across ports with dynamic per-port
thresholds: a lone hot port may absorb megabytes of burst, but when the
pool is contended every port's share shrinks.  :class:`SharedBuffer`
models the classic dynamic-threshold rule (port limit = alpha x free
pool); loss under collision is what makes ECMP hurt, and the counters
mirror the switch counters the paper reads for its loss-rate figures.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Packet


class SharedBuffer:
    """A switch's packet-memory pool with dynamic thresholding.

    A port may enqueue while its own occupancy stays below
    ``alpha * (total - used)`` — the standard Broadcom DT rule.  With
    alpha=2 a single congested port can take up to 2/3 of the pool.
    """

    __slots__ = ("total_bytes", "alpha", "used_bytes")

    def __init__(self, total_bytes: int, alpha: float = 2.0):
        if total_bytes <= 0:
            raise ValueError(f"pool must be positive: {total_bytes}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive: {alpha}")
        self.total_bytes = total_bytes
        self.alpha = alpha
        self.used_bytes = 0

    def admits(self, size: int, port_occupancy: int) -> bool:
        if self.used_bytes + size > self.total_bytes:
            return False
        free = self.total_bytes - self.used_bytes
        return port_occupancy + size <= self.alpha * free

    def take(self, size: int) -> None:
        self.used_bytes += size

    def release(self, size: int) -> None:
        self.used_bytes -= size
        assert self.used_bytes >= 0, "shared buffer accounting underflow"


class DropTailQueue:
    """FIFO with a byte capacity; enqueue beyond capacity drops the packet."""

    __slots__ = (
        "capacity_bytes",
        "shared",
        "_queue",
        "bytes_queued",
        "track_flows",
        "flow_bytes",
        "enqueued_pkts",
        "enqueued_bytes",
        "dropped_pkts",
        "dropped_bytes",
        "drop_causes",
        "drop_cause_bytes",
        "probe",
    )

    def __init__(
        self,
        capacity_bytes: int,
        track_flows: bool = False,
        shared: Optional[SharedBuffer] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.shared = shared
        self._queue: deque = deque()
        self.bytes_queued = 0
        #: per-flow occupancy (enabled on host egress queues for TSQ)
        self.track_flows = track_flows
        self.flow_bytes: dict = {}
        # counters (cumulative)
        self.enqueued_pkts = 0
        self.enqueued_bytes = 0
        self.dropped_pkts = 0
        self.dropped_bytes = 0
        #: drops split by cause: "cap" (per-port hard cap), "pool"
        #: (shared-buffer DT admission), "link_down"
        self.drop_causes: dict = {}
        #: same split in wire bytes (fault accounting separates
        #: failure-induced losses from congestion losses by cause)
        self.drop_cause_bytes: dict = {}
        #: optional telemetry probe (repro.telemetry); None = disabled
        self.probe = None

    def __len__(self) -> int:
        return len(self._queue)

    def record_drop(self, pkt: Packet, cause: str) -> None:
        """Count a dropped packet against ``cause``."""
        self.dropped_pkts += 1
        self.dropped_bytes += pkt.wire_size
        self.drop_causes[cause] = self.drop_causes.get(cause, 0) + 1
        self.drop_cause_bytes[cause] = (
            self.drop_cause_bytes.get(cause, 0) + pkt.wire_size)
        if self.probe is not None:
            self.probe.on_drop(pkt, cause, self.bytes_queued)

    def enqueue(self, pkt: Packet) -> bool:
        """Add ``pkt``; returns False (and counts a drop) when full."""
        size = pkt.wire_size
        if self.bytes_queued + size > self.capacity_bytes:
            self.record_drop(pkt, "cap")
            return False
        shared = self.shared
        if shared is not None:
            # admits() + take() inlined (same comparisons, same float
            # expressions): two method calls per switch-queue enqueue
            used = shared.used_bytes
            if used + size > shared.total_bytes or (
                self.bytes_queued + size > shared.alpha * (shared.total_bytes - used)
            ):
                self.record_drop(pkt, "pool")
                return False
            shared.used_bytes = used + size
        self._queue.append(pkt)
        self.bytes_queued += size
        self.enqueued_pkts += 1
        self.enqueued_bytes += size
        if self.track_flows:
            self.flow_bytes[pkt.flow_id] = self.flow_bytes.get(pkt.flow_id, 0) + size
        if self.probe is not None:
            self.probe.on_enqueue(pkt, self.bytes_queued)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or None when empty."""
        if not self._queue:
            return None
        pkt = self._queue.popleft()
        size = pkt.wire_size
        self.bytes_queued -= size
        shared = self.shared
        if shared is not None:
            shared.used_bytes -= size
        if self.track_flows:
            left = self.flow_bytes.get(pkt.flow_id, 0) - size
            if left > 0:
                self.flow_bytes[pkt.flow_id] = left
            else:
                self.flow_bytes.pop(pkt.flow_id, None)
        return pkt

    def clear(self) -> int:
        """Drop everything queued (used when a link dies); returns count."""
        n = len(self._queue)
        if self.shared is not None:
            self.shared.release(self.bytes_queued)
        self._queue.clear()
        self.bytes_queued = 0
        self.flow_bytes.clear()
        return n
