"""Path enumeration and disjoint spanning-tree allocation, multi-tier.

2-tier Clos (paper S3.1 / Fig 3): with ``v`` spines and one link per
(leaf, spine) pair, the controller allocates ``v`` disjoint spanning
trees, one routed through each spine.

3-tier k-ary fat tree: one tree per **core** switch.  A core sits in
uplink class ``j`` (it connects to agg ``Ap.{j}`` in every pod ``p``)
at offset ``m`` within that class, so tree ``(j, m)``:

* edge -> the class-``j`` agg of its own pod,
* agg ``Ap.j`` -> core ``Cj.m`` (its ``m``-th core uplink),
* core -> the destination pod's class-``j`` agg -> destination edge.

Trees in different classes share **no** links; trees within a class
share only the edge<->agg access links and own their agg<->core trunk
links exclusively — the natural fat-tree generalization of "one
disjoint tree per spine".  :func:`validate_trees` checks exactly this,
plus full (tree x host) shadow-MAC reachability, by walking the real
L2 tables.

Each tree gets a shadow-MAC label per destination host;
:func:`install_tree_routes` programs the L2 tables so labelled packets
ride exactly that tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.addresses import shadow_mac
from repro.net.port import Port
from repro.net.switch import Switch
from repro.net.topology import Topology


class TopologyShapeError(ValueError):
    """The fabric's shape is outside what a helper supports — raised
    instead of silently returning a 2-tier-shaped wrong answer."""


class TreeValidationError(ValueError):
    """Spanning-tree invariants (disjointness / reachability) violated."""


@dataclass
class SpanningTree:
    """One spanning tree of the fabric, identified by its root switch
    (a spine in 2-tier fabrics, a core in 3-tier ones)."""

    tree_id: int
    spine: Switch
    #: parallel-link index for topologies with gamma > 1 links per
    #: (leaf, spine); 0 in all paper topologies.
    link_index: int = 0
    #: 3-tier only: which agg (by in-pod index) edges use for this tree
    uplink_class: int = 0
    #: 3-tier only: the root core's offset within its uplink class
    core_offset: int = 0

    @property
    def root(self) -> Switch:
        return self.spine

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpanningTree {self.tree_id} via {self.spine.name}>"


def allocate_spanning_trees(topo: Topology) -> List[SpanningTree]:
    """Disjoint trees: one per (spine, parallel-link) in a 2-tier Clos,
    one per core in a 3-tier fat tree (class-major, matching the cores'
    creation order).

    For the single-switch topology (no spines) there is one degenerate
    tree: all traffic crosses the one switch.
    """
    if not topo.spines:
        return [SpanningTree(0, topo.leaves[0])]
    if topo.cores:
        _require_pod_metadata(topo)
        half = len(topo.pod_aggs[0])
        return [
            SpanningTree(c, core, uplink_class=c // half,
                         core_offset=c % half)
            for c, core in enumerate(topo.cores)
        ]
    trees: List[SpanningTree] = []
    tree_id = 0
    gamma = _parallel_link_count(topo)
    for link_index in range(gamma):
        for spine in topo.spines:
            trees.append(SpanningTree(tree_id, spine, link_index))
            tree_id += 1
    return trees


def _parallel_link_count(topo: Topology) -> int:
    """gamma: parallel links between each leaf and spine (assumed uniform)."""
    if not topo.leaves or not topo.spines:
        return 1
    return max(1, len(topo.ports_between(topo.leaves[0], topo.spines[0])))


def _require_pod_metadata(topo: Topology) -> None:
    if not topo.pod_aggs or not topo.switch_pod:
        raise TopologyShapeError(
            f"topology {topo.name!r} has core switches but no pod "
            f"metadata; 3-tier fabrics must be built via "
            f"repro.net.fabrics.build_fat_tree")


def install_tree_routes(topo: Topology, trees: List[SpanningTree]) -> None:
    """Program shadow-MAC forwarding for every (tree, destination host).

    2-tier Clos:

    Source leaf: label -> uplink to the tree's spine (the spine choice IS
                 the path in a 2-tier Clos).
    Every spine: label -> downlink to the destination's leaf.  Installing
                 the downlink entry on all spines (not just the tree's)
                 is what lets hardware fast failover redirect a labelled
                 packet through a backup spine without controller help.
    Dest leaf:   label -> host port (the host vSwitch rewrites the real
                 MAC back, paper S3.2).

    3-tier fat tree (tree = class ``j``, core offset ``m``): edges send
    the label up to their pod's class-``j`` agg; aggs outside the
    destination pod send it to their own class's offset-``m`` core;
    **all** cores and **all** of the destination pod's aggs carry the
    down routes (the fast-failover analogue of programming every
    spine), and the destination edge delivers to the host port.
    """
    if topo.cores:
        _require_pod_metadata(topo)
        _install_fat_tree_trees(topo, trees)
        return
    for tree in trees:
        for host_id, leaf in topo.host_leaf.items():
            label = shadow_mac(tree.tree_id, host_id)
            host_port = topo.host_port[host_id]
            leaf.install_route(label, host_port)
            if not topo.spines:
                continue
            for spine in topo.spines:
                downs = topo.ports_between(spine, leaf)
                if downs:
                    spine.install_route(
                        label, downs[min(tree.link_index, len(downs) - 1)]
                    )
            for other_leaf in topo.leaves:
                if other_leaf is leaf:
                    continue
                ups = topo.ports_between(other_leaf, tree.spine)
                if ups:
                    other_leaf.install_route(
                        label, ups[min(tree.link_index, len(ups) - 1)]
                    )


def _install_fat_tree_trees(topo: Topology, trees: List[SpanningTree]) -> None:
    half = len(topo.pod_aggs[0])
    for tree in trees:
        j, m = tree.uplink_class, tree.core_offset
        for host_id, dst_edge in topo.host_leaf.items():
            label = shadow_mac(tree.tree_id, host_id)
            dst_pod = topo.switch_pod[dst_edge.name]
            dst_edge.install_route(label, topo.host_port[host_id])
            for pod, aggs in enumerate(topo.pod_aggs):
                for ja, agg in enumerate(aggs):
                    if pod == dst_pod:
                        down = topo.port_between(agg, dst_edge)
                    else:
                        # up to the agg's own class's offset-m core, so
                        # a detoured (failover) packet still resolves
                        down = topo.port_between(
                            agg, topo.cores[ja * half + m])
                    if down is not None:
                        agg.install_route(label, down)
            for c, core in enumerate(topo.cores):
                down = topo.port_between(
                    core, topo.pod_aggs[dst_pod][c // half])
                if down is not None:
                    core.install_route(label, down)
            for pod, edges in enumerate(topo.pod_edges):
                for edge in edges:
                    if edge is dst_edge:
                        continue
                    up = topo.port_between(edge, topo.pod_aggs[pod][j])
                    if up is not None:
                        edge.install_route(label, up)


def tree_legs(
    topo: Topology,
    tree: SpanningTree,
    src_leaf: Switch,
    dst_leaf: Switch,
) -> Optional[List[Port]]:
    """The ordered fabric ports a labelled flowcell crosses from
    ``src_leaf`` to ``dst_leaf`` along ``tree``: ``[]`` when both hosts
    share an edge, 2 legs through a spine (2-tier) or an intra-pod agg,
    4 legs through the tree's core inter-pod, or ``None`` when a leg's
    link does not exist.  The controller weighs trees by these legs."""
    if src_leaf is dst_leaf:
        return []
    if not topo.cores:
        ups = topo.ports_between(src_leaf, tree.spine)
        downs = topo.ports_between(tree.spine, dst_leaf)
        if not ups or not downs:
            return None
        return [ups[min(tree.link_index, len(ups) - 1)],
                downs[min(tree.link_index, len(downs) - 1)]]
    _require_pod_metadata(topo)
    j = tree.uplink_class
    src_pod = topo.switch_pod[src_leaf.name]
    dst_pod = topo.switch_pod[dst_leaf.name]
    src_agg = topo.pod_aggs[src_pod][j]
    legs = [topo.port_between(src_leaf, src_agg)]
    if src_pod == dst_pod:
        legs.append(topo.port_between(src_agg, dst_leaf))
    else:
        dst_agg = topo.pod_aggs[dst_pod][j]
        core = tree.spine
        legs.extend([
            topo.port_between(src_agg, core),
            topo.port_between(core, dst_agg),
            topo.port_between(dst_agg, dst_leaf),
        ])
    if any(p is None for p in legs):
        return None
    return legs


def validate_trees(topo: Topology, trees: List[SpanningTree]) -> None:
    """Check the two spanning-tree invariants against the *programmed*
    switch state, raising :class:`TreeValidationError` on a breach:

    * **reachability** — for every (tree, destination host), the shadow
      MAC walks the installed L2 tables from every edge switch to the
      destination's host port without looping;
    * **disjointness** — trunk links (leaf<->spine in 2-tier,
      agg<->core in 3-tier) are used by exactly one tree; 3-tier
      edge<->agg access links are shared only among trees of the same
      uplink class.
    """
    if not topo.spines:
        return  # single switch: one degenerate tree, nothing to check
    problems: List[str] = []
    max_hops = 2 * topo.n_tiers + 1
    for tree in trees:
        for host_id in topo.host_leaf:
            label = shadow_mac(tree.tree_id, host_id)
            target = topo.host_port[host_id]
            for start in topo.leaves:
                node, hops = start, 0
                while True:
                    out = node.l2_table.get(label)
                    if out is None:
                        problems.append(
                            f"tree {tree.tree_id}: no route for host "
                            f"{host_id}'s label at {node.name}")
                        break
                    if out is target:
                        break
                    peer = out.peer
                    if not isinstance(peer, Switch):
                        problems.append(
                            f"tree {tree.tree_id}: host {host_id}'s label "
                            f"delivered to the wrong host via {out.name}")
                        break
                    node, hops = peer, hops + 1
                    if hops > max_hops:
                        problems.append(
                            f"tree {tree.tree_id}: forwarding loop for "
                            f"host {host_id}'s label starting at "
                            f"{start.name}")
                        break
                if len(problems) > 20:
                    raise TreeValidationError(
                        "; ".join(problems[:20]) + "; ...")
    trunks = {}
    access = {}
    for tree in trees:
        trunk_links, access_links = set(), set()
        for src_leaf in topo.leaves:
            for dst_leaf in topo.leaves:
                if src_leaf is dst_leaf:
                    continue
                legs = tree_legs(topo, tree, src_leaf, dst_leaf)
                if legs is None:
                    problems.append(
                        f"tree {tree.tree_id}: missing leg between "
                        f"{src_leaf.name} and {dst_leaf.name}")
                    continue
                for i, port in enumerate(legs):
                    if topo.cores and not (len(legs) == 4 and i in (1, 2)):
                        access_links.add(port.link.name)
                    else:
                        trunk_links.add(port.link.name)
        trunks[tree.tree_id] = trunk_links
        access[tree.tree_id] = access_links
    by_class = {t.tree_id: t.uplink_class for t in trees}
    ids = sorted(trunks)
    for a_i, a in enumerate(ids):
        for b in ids[a_i + 1:]:
            shared = trunks[a] & trunks[b]
            if shared:
                problems.append(
                    f"trees {a} and {b} share trunk link(s) "
                    f"{sorted(shared)[:3]}")
            if topo.cores and by_class[a] != by_class[b]:
                shared_access = access[a] & access[b]
                if shared_access:
                    problems.append(
                        f"trees {a} and {b} (different uplink classes) "
                        f"share access link(s) {sorted(shared_access)[:3]}")
    if problems:
        raise TreeValidationError("; ".join(problems[:20]))


def enumerate_paths(topo: Topology, src_host: int, dst_host: int) -> List[List[str]]:
    """All end-to-end switch paths between two hosts (by switch name).

    Used by the ECMP baseline, which the paper implements by enumerating
    end-to-end paths and picking one per flow at random.  Tier-agnostic:
    2-tier paths are ``[leaf, spine, leaf]``; 3-tier paths are
    ``[edge, agg, edge]`` intra-pod and ``[edge, agg, core, agg, edge]``
    across pods.  Unsupported shapes raise :class:`TopologyShapeError`
    rather than returning a wrong answer.
    """
    src_leaf = topo.host_leaf[src_host]
    dst_leaf = topo.host_leaf[dst_host]
    if src_leaf is dst_leaf:
        return [[src_leaf.name]]
    paths: List[List[str]] = []
    if topo.cores:
        _require_pod_metadata(topo)
        core_set = set(topo.cores)
        src_pod = topo.switch_pod[src_leaf.name]
        dst_pod = topo.switch_pod[dst_leaf.name]
        if src_pod == dst_pod:
            for agg in topo.pod_aggs[src_pod]:
                if topo.port_between(src_leaf, agg) and \
                        topo.port_between(agg, dst_leaf):
                    paths.append([src_leaf.name, agg.name, dst_leaf.name])
        else:
            for a1 in topo.pod_aggs[src_pod]:
                if not topo.port_between(src_leaf, a1):
                    continue
                for port in a1.ports:
                    core = port.peer
                    if core not in core_set:
                        continue
                    for a2 in topo.pod_aggs[dst_pod]:
                        if topo.port_between(core, a2) and \
                                topo.port_between(a2, dst_leaf):
                            paths.append([src_leaf.name, a1.name, core.name,
                                          a2.name, dst_leaf.name])
    else:
        for spine in topo.spines:
            if topo.port_between(src_leaf, spine) and topo.port_between(spine, dst_leaf):
                paths.append([src_leaf.name, spine.name, dst_leaf.name])
    if not paths:
        raise TopologyShapeError(
            f"no fabric path between hosts {src_host} and {dst_host} on "
            f"{topo.name!r}: the hosts sit on different switches but the "
            f"topology has no interconnecting tier this helper "
            f"understands")
    return paths
