"""Path enumeration and disjoint spanning-tree allocation.

In a 2-tier Clos with ``v`` spines and one link per (leaf, spine) pair,
the controller allocates ``v`` disjoint spanning trees, one routed
through each spine (paper S3.1 / Fig 3).  Each tree gets a shadow-MAC
label per destination host; :func:`install_tree_routes` programs the
L2 tables so labelled packets ride exactly that tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.addresses import shadow_mac
from repro.net.switch import Switch
from repro.net.topology import Topology


@dataclass
class SpanningTree:
    """One spanning tree of the Clos fabric, identified by its spine."""

    tree_id: int
    spine: Switch
    #: parallel-link index for topologies with gamma > 1 links per
    #: (leaf, spine); 0 in all paper topologies.
    link_index: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpanningTree {self.tree_id} via {self.spine.name}>"


def allocate_spanning_trees(topo: Topology) -> List[SpanningTree]:
    """Disjoint trees: one per (spine, parallel-link) as in the paper.

    For the single-switch topology (no spines) there is one degenerate
    tree: all traffic crosses the one switch.
    """
    if not topo.spines:
        return [SpanningTree(0, topo.leaves[0])]
    trees: List[SpanningTree] = []
    tree_id = 0
    gamma = _parallel_link_count(topo)
    for link_index in range(gamma):
        for spine in topo.spines:
            trees.append(SpanningTree(tree_id, spine, link_index))
            tree_id += 1
    return trees


def _parallel_link_count(topo: Topology) -> int:
    """gamma: parallel links between each leaf and spine (assumed uniform)."""
    if not topo.leaves or not topo.spines:
        return 1
    return max(1, len(topo.ports_between(topo.leaves[0], topo.spines[0])))


def install_tree_routes(topo: Topology, trees: List[SpanningTree]) -> None:
    """Program shadow-MAC forwarding for every (tree, destination host).

    Source leaf: label -> uplink to the tree's spine (the spine choice IS
                 the path in a 2-tier Clos).
    Every spine: label -> downlink to the destination's leaf.  Installing
                 the downlink entry on all spines (not just the tree's)
                 is what lets hardware fast failover redirect a labelled
                 packet through a backup spine without controller help.
    Dest leaf:   label -> host port (the host vSwitch rewrites the real
                 MAC back, paper S3.2).
    """
    for tree in trees:
        for host_id, leaf in topo.host_leaf.items():
            label = shadow_mac(tree.tree_id, host_id)
            host_port = topo.host_port[host_id]
            leaf.install_route(label, host_port)
            if not topo.spines:
                continue
            for spine in topo.spines:
                downs = topo.ports_between(spine, leaf)
                if downs:
                    spine.install_route(
                        label, downs[min(tree.link_index, len(downs) - 1)]
                    )
            for other_leaf in topo.leaves:
                if other_leaf is leaf:
                    continue
                ups = topo.ports_between(other_leaf, tree.spine)
                if ups:
                    other_leaf.install_route(
                        label, ups[min(tree.link_index, len(ups) - 1)]
                    )


def enumerate_paths(topo: Topology, src_host: int, dst_host: int) -> List[List[str]]:
    """All end-to-end switch paths between two hosts (by switch name).

    Used by the ECMP baseline, which the paper implements by enumerating
    end-to-end paths and picking one per flow at random.
    """
    src_leaf = topo.host_leaf[src_host]
    dst_leaf = topo.host_leaf[dst_host]
    if src_leaf is dst_leaf:
        return [[src_leaf.name]]
    paths = []
    for spine in topo.spines:
        if topo.port_between(src_leaf, spine) and topo.port_between(spine, dst_leaf):
            paths.append([src_leaf.name, spine.name, dst_leaf.name])
    return paths
