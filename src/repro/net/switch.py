"""Output-queued L2 switch with exact-match tables, ECMP groups and
OpenFlow-style fast-failover groups.

Forwarding pipeline (matches how the paper's testbed is programmed):

1. exact match on destination MAC (real host MACs and shadow-MAC labels
   installed by the controller);
2. otherwise the port's default ECMP group, hashing either per-flow
   (classic ECMP) or per-(flow, flowcell) (the paper's "Presto + ECMP"
   per-hop variant, Fig 14);
3. a failover group can redirect a packet whose chosen egress link is
   down to a preconfigured backup port (Fig 17 "failover" stage).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.net.port import Port


def _mix(key: int, salt: int) -> int:
    """Cheap deterministic integer hash (Knuth multiplicative + xor-shift).

    CPython's ``hash(int)`` is the identity, which would make "random"
    ECMP placement suspiciously uniform; this mixes properly and is
    stable across runs and interpreters.
    """
    x = (key * 0x9E3779B97F4A7C15 + salt) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 32
    return x


HASH_FLOW = "flow"
HASH_FLOWCELL = "flowcell"


class EcmpGroup:
    """Equal-cost multipath group over a set of ports."""

    def __init__(self, ports: List[Port], salt: int = 0, mode: str = HASH_FLOW):
        if not ports:
            raise ValueError("ECMP group needs at least one port")
        if mode not in (HASH_FLOW, HASH_FLOWCELL):
            raise ValueError(f"unknown hash mode: {mode}")
        self.ports = list(ports)
        self.salt = salt
        self.mode = mode

    def select(self, pkt: Packet) -> Port:
        if self.mode == HASH_FLOW:
            key = pkt.flow_id
        else:
            key = pkt.flow_id * 1_000_003 + pkt.flowcell_id
        # _mix inlined (identical arithmetic): select runs once per
        # packet per ECMP hop
        x = (key * 0x9E3779B97F4A7C15 + self.salt) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 29
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 32
        return self.ports[x % len(self.ports)]


class FailoverGroup:
    """Maps a primary egress port to a backup used while its link is down.

    Models hardware fast failover (BGP external failover / OpenFlow
    fast-failover groups): redirect happens in the datapath with no
    controller involvement, ``latency_ns`` after the failure is detected.
    OpenFlow failover buckets may carry header-rewrite actions, which is
    how a spine detours around a dead leaf link: relabel the packet onto
    another spanning tree and bounce it through a neighbouring leaf.
    """

    def __init__(self, latency_ns: int = 0):
        self._backup: Dict[Port, tuple] = {}  # primary -> (backup, rewrite?)
        self.latency_ns = latency_ns
        self._failed_at: Dict[Port, int] = {}

    def set_backup(self, primary: Port, backup: Port, rewrite=None) -> None:
        """``rewrite`` is an optional callable(pkt) applied on redirect
        (an OpenFlow set-field action in the failover bucket)."""
        self._backup[primary] = (backup, rewrite)

    def note_failure(self, port: Port, now: int) -> None:
        self._failed_at.setdefault(port, now)

    def note_recovery(self, port: Port) -> None:
        """Primary link restored: forget the failure so the group reverts
        to the primary port and a *new* failure pays detection latency
        again (rather than reusing the stale first-failure timestamp)."""
        self._failed_at.pop(port, None)

    def reroute(self, port: Port, now: int, pkt: Packet) -> Optional[Port]:
        """Backup port for ``port`` if configured and detection latency has
        elapsed; None otherwise (packet is dropped, as in hardware).
        Applies the bucket's rewrite action to ``pkt``."""
        entry = self._backup.get(port)
        if entry is None:
            return None
        backup, rewrite = entry
        if not backup.up:
            return None
        failed_at = self._failed_at.get(port)
        if failed_at is not None and now - failed_at < self.latency_ns:
            return None
        if rewrite is not None:
            rewrite(pkt)
        return backup


class Switch:
    """A named switch: forwarding state + attached ports."""

    def __init__(self, name: str, salt: int = 0, shared_buffer=None):
        self.name = name
        self.salt = salt
        #: optional SharedBuffer pool backing all of this switch's ports
        self.shared_buffer = shared_buffer
        self.ports: List[Port] = []
        self.l2_table: Dict[int, Port] = {}
        self.ecmp_default: Optional[EcmpGroup] = None
        #: per-destination ECMP groups (checked before ecmp_default)
        self.ecmp_by_mac: Dict[int, EcmpGroup] = {}
        self.failover: Optional[FailoverGroup] = None
        self.rx_pkts = 0
        self.no_route_drops = 0
        self.no_route_drop_bytes = 0
        self.ttl_drops = 0
        self.ttl_drop_bytes = 0

    def add_port(self, port: Port) -> None:
        self.ports.append(port)
        if self.failover is not None:
            self._watch_link(port)

    def enable_failover(self, latency_ns: int = 0) -> FailoverGroup:
        """Turn on fast failover; returns the group to configure backups."""
        self.failover = FailoverGroup(latency_ns)
        for port in self.ports:
            self._watch_link(port)
        return self.failover

    def _watch_link(self, port: Port) -> None:
        def on_change(link, port=port):
            if self.failover is None:
                return
            if not link.up:
                self.failover.note_failure(port, _now_of(port))
            else:
                self.failover.note_recovery(port)
        port.link.on_state_change.append(on_change)

    def install_route(self, mac: int, port: Port) -> None:
        """Exact-match L2 entry: ``mac`` forwards out ``port``."""
        self.l2_table[mac] = port

    def remove_route(self, mac: int) -> None:
        self.l2_table.pop(mac, None)

    def lookup(self, pkt: Packet) -> Optional[Port]:
        port = self.l2_table.get(pkt.dst_mac)
        if port is None:
            group = self.ecmp_by_mac.get(pkt.dst_mac) or self.ecmp_default
            if group is not None:
                port = group.select(pkt)
        return port

    #: hop budget: a forwarding loop (e.g. mis-configured failover
    #: bounces) kills the packet instead of the simulator
    MAX_HOPS = 32

    def receive(self, pkt: Packet, in_port: Optional[Port]) -> None:
        self.rx_pkts += 1
        if pkt.hops > self.MAX_HOPS:
            self.ttl_drops += 1
            self.ttl_drop_bytes += pkt.wire_size
            return
        # lookup() inlined: the exact-match hit is the per-packet path
        out = self.l2_table.get(pkt.dst_mac)
        if out is None:
            group = self.ecmp_by_mac.get(pkt.dst_mac) or self.ecmp_default
            if group is not None:
                out = group.select(pkt)
        if out is not None and not out.link._up and self.failover is not None:
            # Hardware semantics: the bucket applies its rewrite and
            # forwards out its explicit backup port — no second lookup
            # here; the next hop resolves the (possibly new) label.
            out = self.failover.reroute(out, _now_of(out), pkt)
        if out is None:
            self.no_route_drops += 1
            self.no_route_drop_bytes += pkt.wire_size
            return
        out.send(pkt)

    # --- counters -----------------------------------------------------------

    def dropped_pkts(self) -> int:
        """Total packets dropped at this switch's output queues."""
        return (
            sum(p.queue.dropped_pkts for p in self.ports)
            + self.no_route_drops
            + self.ttl_drops
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Switch {self.name} ports={len(self.ports)}>"


def _now_of(port: Port) -> int:
    return port.sim.now
