"""Topology container and builders for the paper's testbeds.

* :func:`build_clos` — Fig 3: the 2-tier Clos evaluation testbed
  (default 4 spines x 4 leaves x 4 hosts/leaf = 16 hosts).
* :func:`build_single_switch` — the paper's "Optimal" baseline: every
  host on one non-blocking switch.
* :func:`build_scalability` — Fig 4a: two leaves joined by a variable
  number of single-link spines (path count 2-8).
* :func:`build_oversub` — Fig 4b: two leaves, two spines, a variable
  number of host pairs (oversubscription 1-4x).

A topology owns the simulator wiring: switches, links, host attachment
and the *underlay* routing needed regardless of load-balancing scheme
(exact-match routes for real host MACs, plus per-leaf ECMP groups over
the uplinks used by classic ECMP-on-real-MAC forwarding).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from repro.net.addresses import host_mac
from repro.net.link import Link
from repro.net.port import Port
from repro.net.queues import SharedBuffer
from repro.net.switch import HASH_FLOW, EcmpGroup, Switch
from repro.sim.engine import Simulator
from repro.units import gbps, usec


class Topology:
    """Switches + host attachment points + links of one experiment."""

    #: default switch packet-memory pool (G8264-class: ~4 MB shared)
    DEFAULT_POOL_BYTES = 4 * 1024 * 1024
    DEFAULT_POOL_ALPHA = 2.0

    def __init__(
        self,
        sim: Simulator,
        name: str = "topology",
        pool_bytes: int = DEFAULT_POOL_BYTES,
        pool_alpha: float = DEFAULT_POOL_ALPHA,
    ):
        self.sim = sim
        self.name = name
        self.pool_bytes = pool_bytes
        self.pool_alpha = pool_alpha
        self.switches: Dict[str, Switch] = {}
        self.links: List[Link] = []
        self.hosts: Dict[int, object] = {}  # host_id -> Host (duck-typed)
        self.host_leaf: Dict[int, Switch] = {}
        self.host_port: Dict[int, Port] = {}  # leaf-side port toward the host
        self.spines: List[Switch] = []
        self.leaves: List[Switch] = []
        #: third tier (k-ary fat tree): core switches; empty in 2-tier
        #: fabrics.  In a fat tree ``leaves`` holds the edge switches
        #: and ``spines`` the aggs, so 2-tier consumers keep working.
        self.cores: List[Switch] = []
        #: pod metadata, populated by build_fat_tree (pod-major)
        self.pod_edges: List[List[Switch]] = []
        self.pod_aggs: List[List[Switch]] = []
        self.switch_pod: Dict[str, int] = {}
        self._salt_counter = 0
        # positive port_between() results; the controller re-resolves
        # spine legs for every schedule recomputation and the linear
        # port scan dominated control-plane reaction time
        self._port_memo: Dict[tuple, Port] = {}

    # --- construction --------------------------------------------------------

    def add_switch(self, name: str) -> Switch:
        if name in self.switches:
            raise ValueError(f"duplicate switch name: {name}")
        self._salt_counter += 1
        sw = Switch(
            name,
            salt=self._salt_counter * 0x51ED2701,
            shared_buffer=SharedBuffer(self.pool_bytes, self.pool_alpha),
        )
        self.switches[name] = sw
        return sw

    def connect(
        self,
        a: Switch,
        b: Switch,
        rate_bps: float = gbps(10),
        prop_delay_ns: int = usec(1),
        buffer_bytes: Optional[int] = None,
    ) -> Link:
        """Full-duplex link between two switches.

        ``buffer_bytes`` is a per-port *hard cap*; by default ports are
        limited only by their switch's shared pool (dynamic threshold).
        """
        link = Link(f"{a.name}--{b.name}", rate_bps, prop_delay_ns)
        cap_a = buffer_bytes if buffer_bytes is not None else self.pool_bytes
        cap_b = buffer_bytes if buffer_bytes is not None else self.pool_bytes
        port_ab = Port(self.sim, f"{a.name}->{b.name}", link, cap_a)
        port_ba = Port(self.sim, f"{b.name}->{a.name}", link, cap_b)
        port_ab.queue.shared = a.shared_buffer
        port_ba.queue.shared = b.shared_buffer
        port_ab.peer, port_ba.peer = b, a
        port_ab.peer_port, port_ba.peer_port = port_ba, port_ab
        a.add_port(port_ab)
        b.add_port(port_ba)
        self.links.append(link)
        return link

    def attach_host(
        self,
        host,
        leaf: Switch,
        rate_bps: float = gbps(10),
        prop_delay_ns: int = usec(1),
        buffer_bytes: Optional[int] = None,
        host_buffer_bytes: int = 4 * 1024 * 1024,
        host_tx_jitter_ns: int = 32,
    ) -> Link:
        """Wire ``host`` (anything with ``.host_id`` and ``.receive``) to a
        leaf switch and install its real-MAC route on that leaf.

        The leaf-side port gets switch-class (shallow) buffering; the
        host-side egress gets qdisc-class (deep) buffering so hosts do
        not drop their own TSO bursts.
        """
        host_id = host.host_id
        if host_id in self.hosts:
            raise ValueError(f"host {host_id} already attached")
        link = Link(f"{leaf.name}--h{host_id}", rate_bps, prop_delay_ns)
        cap = buffer_bytes if buffer_bytes is not None else self.pool_bytes
        to_host = Port(self.sim, f"{leaf.name}->h{host_id}", link, cap)
        to_host.queue.shared = leaf.shared_buffer
        to_leaf = Port(self.sim, f"h{host_id}->{leaf.name}", link, host_buffer_bytes)
        to_leaf.tx_jitter_ns = host_tx_jitter_ns
        to_host.peer, to_leaf.peer = host, leaf
        to_host.peer_port, to_leaf.peer_port = to_leaf, to_host
        leaf.add_port(to_host)
        leaf.install_route(host_mac(host_id), to_host)
        self.hosts[host_id] = host
        self.host_leaf[host_id] = leaf
        self.host_port[host_id] = to_host
        self.links.append(link)
        host.attach(to_leaf, self)
        return link

    # --- shape ---------------------------------------------------------------

    @property
    def n_tiers(self) -> int:
        """1 (single switch), 2 (leaf-spine/Clos) or 3 (fat tree)."""
        if self.cores:
            return 3
        return 2 if self.spines else 1

    def pod_of_switch(self, sw: Switch) -> int:
        """Pod index of an edge/agg switch (3-tier fabrics only)."""
        try:
            return self.switch_pod[sw.name]
        except KeyError:
            raise ValueError(
                f"switch {sw.name} has no pod assignment; only 3-tier "
                f"fabrics built by repro.net.fabrics carry pod metadata"
            ) from None

    # --- underlay routing ----------------------------------------------------

    def port_between(self, a: Switch, b: Switch) -> Optional[Port]:
        """The egress port on ``a`` whose peer is ``b`` (first match).

        Memoized: appending ports never changes an existing first
        match, and misses are not cached, so the memo stays correct
        while the topology is still being built.
        """
        key = (a.name, b.name)
        port = self._port_memo.get(key)
        if port is None:
            for candidate in a.ports:
                if candidate.peer is b:
                    self._port_memo[key] = candidate
                    return candidate
            return None
        return port

    def ports_between(self, a: Switch, b: Switch) -> List[Port]:
        return [p for p in a.ports if p.peer is b]

    def uplinks(self, leaf: Switch) -> List[Port]:
        """Leaf ports whose peer is a spine switch."""
        spine_set = set(self.spines)
        return [p for p in leaf.ports if p.peer in spine_set]

    def install_underlay(self, leaf_hash_mode: str = HASH_FLOW) -> None:
        """Install real-MAC routing: exact entries where the path is forced
        (downhill toward the host) and ECMP over uplinks elsewhere.

        2-tier: spines get exact per-host down routes, leaves ECMP over
        their spine uplinks.  3-tier (fat tree): aggs additionally get
        exact down routes for their own pod's hosts plus ECMP over
        their core uplinks, and every core gets an exact down route per
        host (through the destination pod's agg it connects to)."""
        if self.cores:
            self._install_fat_tree_underlay(leaf_hash_mode)
            return
        for host_id, leaf in self.host_leaf.items():
            mac = host_mac(host_id)
            for spine in self.spines:
                down = self.port_between(spine, leaf)
                if down is not None:
                    spine.install_route(mac, down)
        for leaf in self.leaves:
            ups = self.uplinks(leaf)
            if ups:
                leaf.ecmp_default = EcmpGroup(ups, salt=leaf.salt, mode=leaf_hash_mode)

    def _install_fat_tree_underlay(self, leaf_hash_mode: str) -> None:
        core_set = set(self.cores)
        for host_id, edge in self.host_leaf.items():
            mac = host_mac(host_id)
            pod = self.switch_pod[edge.name]
            for agg in self.pod_aggs[pod]:
                down = self.port_between(agg, edge)
                if down is not None:
                    agg.install_route(mac, down)
            for core in self.cores:
                # each core reaches a pod through exactly one of its aggs
                for agg in self.pod_aggs[pod]:
                    down = self.port_between(core, agg)
                    if down is not None:
                        core.install_route(mac, down)
                        break
        for edge in self.leaves:
            ups = self.uplinks(edge)
            if ups:
                edge.ecmp_default = EcmpGroup(
                    ups, salt=edge.salt, mode=leaf_hash_mode)
        for agg in self.spines:
            ups = [p for p in agg.ports if p.peer in core_set]
            if ups:
                agg.ecmp_default = EcmpGroup(
                    ups, salt=agg.salt, mode=leaf_hash_mode)

    # --- counters -------------------------------------------------------------

    def total_switch_drops(self) -> int:
        return sum(sw.dropped_pkts() for sw in self.switches.values())

    def total_switch_tx_pkts(self) -> int:
        return sum(p.tx_pkts for sw in self.switches.values() for p in sw.ports)


def build_clos(
    sim: Simulator,
    n_spines: int = 4,
    n_leaves: int = 4,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
    pool_bytes: int = Topology.DEFAULT_POOL_BYTES,
    pool_alpha: float = Topology.DEFAULT_POOL_ALPHA,
) -> Topology:
    """Fig 3: 2-tier Clos.  Hosts are attached afterwards (4 per leaf in
    the paper); every leaf connects to every spine with one link."""
    topo = Topology(sim, f"clos{n_spines}x{n_leaves}", pool_bytes, pool_alpha)
    topo.spines = [topo.add_switch(f"S{i + 1}") for i in range(n_spines)]
    topo.leaves = [topo.add_switch(f"L{i + 1}") for i in range(n_leaves)]
    for leaf in topo.leaves:
        for spine in topo.spines:
            topo.connect(leaf, spine, rate_bps, prop_delay_ns, buffer_bytes)
    return topo


def build_single_switch(sim: Simulator) -> Topology:
    """The paper's "Optimal": a single non-blocking switch."""
    topo = Topology(sim, "single-switch")
    sw = topo.add_switch("SW")
    topo.leaves = [sw]
    topo.spines = []
    return topo


def build_scalability(
    sim: Simulator,
    n_paths: int,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
) -> Topology:
    """Fig 4a: two leaves joined through ``n_paths`` spine switches, so
    there are exactly ``n_paths`` disjoint L1->L2 paths.

    .. deprecated:: PR 7
        Build through the spec instead:
        ``build_fabric(sim, TopologySpec.clos(n_paths, 2, ...))``.
    """
    warnings.warn(
        "build_scalability is deprecated; use repro.net.fabrics."
        "build_fabric(sim, TopologySpec.clos(n_paths, 2, hosts_per_leaf))",
        DeprecationWarning, stacklevel=2)
    return build_clos(sim, n_spines=n_paths, n_leaves=2,
                      rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
                      buffer_bytes=buffer_bytes)


def build_oversub(
    sim: Simulator,
    rate_bps: float = gbps(10),
    prop_delay_ns: int = usec(1),
    buffer_bytes: Optional[int] = None,
) -> Topology:
    """Fig 4b: two leaves, two spines; attaching 2-8 host pairs yields
    oversubscription ratios of 1-4x.

    .. deprecated:: PR 7
        Build through the spec instead:
        ``build_fabric(sim, TopologySpec.clos(2, 2, n_pairs))``.
    """
    warnings.warn(
        "build_oversub is deprecated; use repro.net.fabrics."
        "build_fabric(sim, TopologySpec.clos(2, 2, n_pairs))",
        DeprecationWarning, stacklevel=2)
    return build_clos(sim, n_spines=2, n_leaves=2,
                      rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
                      buffer_bytes=buffer_bytes)
