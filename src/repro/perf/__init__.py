"""Performance benchmark suite (see PERFORMANCE.md).

Fixed-seed micro benchmarks (event-loop churn, TSO fan-out, GRO merge)
and macro benchmarks (an 8-host scalability point, a chaos-soak slice)
that report wall time, events/sec and peak RSS, machine-readable as
``BENCH_perf.json``.  Run them with ``python -m repro.runner perf`` or
through pytest via ``benchmarks/perf/``.
"""

from repro.perf.report import (
    load_baseline,
    render_table,
    results_payload,
    write_bench_json,
)
from repro.perf.suite import BENCHES, BenchResult, run_bench, run_suite

__all__ = [
    "BENCHES",
    "BenchResult",
    "run_bench",
    "run_suite",
    "load_baseline",
    "render_table",
    "results_payload",
    "write_bench_json",
]
