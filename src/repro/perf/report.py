"""Render, persist and baseline-compare perf results.

``BENCH_perf.json`` is the machine-readable artifact: per-bench wall
time, events/sec and peak RSS, plus — when a committed baseline is
available (``benchmarks/perf/baseline.json``) — the events/sec ratio
against it.  CI fails a run whose micro benches drop more than 20%
below baseline; the ≥25% macro improvement target of the optimization
pass is read from the same ratios.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Dict, List, Optional

from repro.perf.suite import MACRO, BenchResult

SCHEMA = "repro.perf/1"

#: committed baseline, relative to the repository root
DEFAULT_BASELINE_RELPATH = os.path.join("benchmarks", "perf", "baseline.json")


def load_baseline(path: str) -> Optional[Dict]:
    """The committed baseline numbers, or None when absent/invalid."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) and "benches" in data else None


def results_payload(
    results: List[BenchResult],
    baseline: Optional[Dict] = None,
) -> Dict:
    """The ``BENCH_perf.json`` document for ``results``."""
    benches = {
        r.name: {
            "kind": r.kind,
            "wall_s": r.wall_s,
            "events": r.events,
            "events_per_sec": r.events_per_sec,
            "peak_rss_bytes": r.peak_rss_bytes,
            "rounds": r.rounds,
            "scale": r.scale,
        }
        for r in results
    }
    payload: Dict = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benches": benches,
    }
    # Both engines simulate the identical Fig 7-9 cell, so the wall
    # ratio is the fluid engine's speedup on the same simulated work.
    packet = benches.get("scalability_8host")
    fluid = benches.get("fluid_scalability")
    if (packet and fluid and fluid["wall_s"] > 0
            and packet["scale"] == fluid["scale"]):
        payload["fluid_speedup_vs_packet"] = (
            packet["wall_s"] / fluid["wall_s"])
    if baseline is not None:
        base_benches = baseline.get("benches", {})
        speedup = {}
        for name, entry in benches.items():
            base_entry = base_benches.get(name, {})
            base = base_entry.get("events_per_sec")
            # a ratio only means something for the identical workload:
            # scaled-down smoke runs must not compare against a
            # full-scale baseline
            if base and base_entry.get("scale") == entry["scale"]:
                speedup[name] = entry["events_per_sec"] / base
        if speedup:
            payload["baseline_python"] = baseline.get("python")
            payload["speedup_vs_baseline"] = speedup
            macro = [
                v for name, v in speedup.items()
                if benches[name]["kind"] == MACRO
            ]
            if macro:
                payload["macro_speedup_min"] = min(macro)
    return payload


def render_table(payload: Dict) -> str:
    """Human-readable table of a :func:`results_payload` document."""
    from repro.experiments.harness import format_table

    speedup = payload.get("speedup_vs_baseline", {})
    rows = []
    for name, e in payload["benches"].items():
        rows.append([
            name,
            e["kind"],
            f"{e['wall_s']:.3f}",
            f"{e['events']}",
            f"{e['events_per_sec'] / 1e3:.0f}k",
            f"{e['peak_rss_bytes'] / (1024 * 1024):.0f}",
            f"{speedup[name]:.2f}x" if name in speedup else "-",
        ])
    table = format_table(
        ["bench", "kind", "wall s", "events", "events/s", "rss MB",
         "vs baseline"],
        rows,
    )
    if "macro_speedup_min" in payload:
        table += (
            f"\n\nmacro events/sec vs baseline: "
            f"{payload['macro_speedup_min']:.2f}x (min across macros)"
        )
    if "fluid_speedup_vs_packet" in payload:
        table += (
            f"\nfluid vs packet wall time (same Fig 7-9 cell): "
            f"{payload['fluid_speedup_vs_packet']:.1f}x faster"
        )
    return table


def write_bench_json(payload: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(
    payload: Dict, max_drop: float = 0.20, kinds: tuple = ("micro",)
) -> List[str]:
    """Benches whose events/sec fell more than ``max_drop`` below the
    baseline; empty when everything holds (or no baseline was given)."""
    failures = []
    speedup = payload.get("speedup_vs_baseline", {})
    for name, ratio in speedup.items():
        if payload["benches"][name]["kind"] not in kinds:
            continue
        if ratio < 1.0 - max_drop:
            failures.append(
                f"{name}: events/sec at {ratio:.2f}x of baseline "
                f"(allowed >= {1.0 - max_drop:.2f}x)")
    return failures
