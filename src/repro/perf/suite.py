"""The benchmark definitions: what each perf number actually measures.

Every bench is a plain function ``fn(scale) -> (wall_s, events)`` that
builds its own fixture (excluded from timing), runs a fixed-seed
workload through public APIs only, and reports the wall time of the hot
section plus the natural work-unit count (simulator events for the
event loop and macros, wire packets for TSO, merged packets for GRO).
Fixed seeds make the *work* identical run to run, so events/sec is
comparable across commits; ``scale`` shrinks the workload for CI smoke
runs without changing its shape.

Micro benches isolate one hot path each; macro benches run a real
experiment slice end to end:

* ``event_churn``     — schedule/cancel churn à la TCP RTO re-arming,
  the pattern that used to bloat the event heap with cancelled entries;
* ``tso_fanout``      — 64 KB segments fanned into MTU packets through
  the host egress port/queue/serializer cycle;
* ``gro_merge``       — Presto GRO merge+flush over a deterministic
  cross-flowcell reordered arrival stream;
* ``scalability_8host`` — the Fig 7-9 presto cell at 4 paths (8 hosts),
  warm + measure windows included;
* ``fluid_scalability`` — the same cell on the fluid flow-level engine
  (``fidelity="flow"``), pinning its speed advantage over the packet
  engine;
* ``soak_slice``      — one chaos-soak case (faults + failover + control
  plane) end to end.
"""

from __future__ import annotations

import random
import resource
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.units import gbps, msec, usec

MICRO = "micro"
MACRO = "macro"


@dataclass
class BenchResult:
    """One bench's numbers: best-of-``rounds`` wall time and rate."""

    name: str
    kind: str  # "micro" | "macro"
    wall_s: float
    events: int
    events_per_sec: float
    peak_rss_bytes: int
    rounds: int
    scale: float


def _peak_rss_bytes() -> int:
    """Process high-water RSS.  ru_maxrss is KB on Linux, bytes on mac."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    return rss if sys.platform == "darwin" else rss * 1024


def _noop() -> None:
    pass


# --- micro: event loop churn -------------------------------------------------


def bench_event_churn(scale: float = 1.0) -> Tuple[float, int]:
    """Schedule/cancel churn: long-dated timers re-armed per "ACK".

    Mirrors what TCP does to the heap: every ACK cancels the pending
    RTO event and schedules a fresh one ~20 ms out, so cancelled
    entries pile up far beyond the run horizon.  Work units are the
    reschedule operations plus the events that actually fire.
    """
    from repro.sim.engine import Simulator

    n_timers = 256
    ops = max(1000, int(150_000 * scale))
    sim = Simulator()
    timers = [sim.schedule(msec(20) + i, _noop) for i in range(n_timers)]
    t0 = time.perf_counter()
    for i in range(ops):
        idx = i & (n_timers - 1)
        timers[idx].cancel()
        timers[idx] = sim.schedule(msec(20) + i, _noop)
        if not (i & 3):
            # near-term work events keep the loop actually firing
            sim.schedule(i & 63, _noop)
    fired = sim.run(until=msec(19))
    wall = time.perf_counter() - t0
    return wall, ops + fired


# --- micro: TSO fan-out ------------------------------------------------------


class _PacketSink:
    """Counts delivered packets; stands in for the far-end switch."""

    __slots__ = ("rx_pkts",)

    def __init__(self) -> None:
        self.rx_pkts = 0

    def receive(self, pkt, port) -> None:
        self.rx_pkts += 1


def bench_tso_fanout(scale: float = 1.0) -> Tuple[float, int]:
    """64 KB segments through TSO -> egress queue -> serializer -> wire.

    Each segment fans into 46 MTU packets, every one of which costs a
    queue enqueue/dequeue and two simulator events (tx-done, deliver).
    Work units are wire packets delivered.
    """
    from repro.host.cpu import ReceiverCpu
    from repro.host.gro import OfficialGro
    from repro.host.nic import Nic
    from repro.net.link import Link
    from repro.net.packet import DATA, Segment
    from repro.net.port import Port
    from repro.sim.engine import Simulator

    n_segments = max(50, int(2_000 * scale))
    sim = Simulator()
    link = Link("bench", rate_bps=gbps(40), prop_delay_ns=usec(1))
    port = Port(sim, "bench-tx", link)
    sink = _PacketSink()
    port.peer = sink
    nic = Nic(sim, OfficialGro(), ReceiverCpu(sim))
    nic.attach_port(port)
    seg_bytes = 64 * 1024
    t0 = time.perf_counter()
    for i in range(n_segments):
        seq = i * seg_bytes
        seg = Segment(
            flow_id=i & 7, src_host=0, dst_host=1, kind=DATA,
            seq=seq, end_seq=seq + seg_bytes, dst_mac=1,
        )
        nic.tx_segment(seg)
        sim.run()  # drain: the queue holds ~4 segments of backlog
    wall = time.perf_counter() - t0
    return wall, sink.rx_pkts


# --- micro: GRO merge --------------------------------------------------------


def _riffled_arrivals(
    rng: random.Random, n_flows: int, n_cells: int, per_cell: int
) -> List[Tuple[int, int, int]]:
    """(flow, seq, cell) arrival order: FIFO within a flowcell, riffled
    across cells with a bias toward older cells (gaps resolve quickly),
    flows interleaved round-robin — the shape a spraying fabric hands
    the receiver."""
    mss = 1448
    per_flow: List[List[Tuple[int, int, int]]] = []
    for flow in range(n_flows):
        queues = []
        seq = 0
        for cell in range(1, n_cells + 1):
            cell_pkts = []
            for _ in range(per_cell):
                cell_pkts.append((flow, seq, cell))
                seq += mss
            queues.append(cell_pkts)
        order = []
        while queues:
            # 2:1 bias toward the oldest live cell
            idx = 0 if rng.random() < 0.66 else rng.randrange(len(queues))
            order.append(queues[idx].pop(0))
            if not queues[idx]:
                queues.pop(idx)
        per_flow.append(order)
    merged: List[Tuple[int, int, int]] = []
    cursors = [0] * n_flows
    live = list(range(n_flows))
    while live:
        flow = live[len(merged) % len(live)]
        merged.append(per_flow[flow][cursors[flow]])
        cursors[flow] += 1
        if cursors[flow] == len(per_flow[flow]):
            live.remove(flow)
    return merged


def bench_gro_merge(scale: float = 1.0) -> Tuple[float, int]:
    """Presto GRO merge + flush over a reordered multi-flow stream.

    Work units are packets merged; flushes run every 64 arrivals, as a
    NAPI poll would.
    """
    from repro.host.gro import PrestoGro
    from repro.net.packet import Packet

    rng = random.Random(0xBEEF)
    repeats = max(1, int(12 * scale))
    arrivals = _riffled_arrivals(rng, n_flows=8, n_cells=8, per_cell=45)
    t0 = time.perf_counter()
    merged = 0
    for rep in range(repeats):
        gro = PrestoGro(initial_ewma_ns=usec(50))
        now = 0
        for i, (flow, seq, cell) in enumerate(arrivals):
            gro.merge(
                Packet(
                    flow_id=flow, src_host=0, dst_host=1, dst_mac=1,
                    kind="data", seq=seq, payload_len=1448,
                    flowcell_id=cell,
                ),
                now,
            )
            merged += 1
            if i % 64 == 63:
                gro.flush(now)
                now += usec(15)
        for _ in range(200):
            if gro.held_segment_count() == 0:
                break
            now += usec(100)
            gro.flush(now)
    wall = time.perf_counter() - t0
    return wall, merged


# --- macro: 8-host scalability point ----------------------------------------


def bench_scalability_8host(scale: float = 1.0) -> Tuple[float, int]:
    """The Figs 7-9 presto cell at 4 paths: 2 leaves x 4 hosts, four
    elephants + one RTT probe, warm + measure windows.  Work units are
    simulator events fired."""
    from repro.experiments.common import START_JITTER_NS
    from repro.experiments.harness import Testbed
    from repro.experiments.scalability import scalability_config

    n_paths = 4
    warm_ns = msec(5)
    measure_ns = msec(max(1.0, 15.0 * scale))
    tb = Testbed(scalability_config("presto", n_paths, seed=1))
    rng = tb.streams.stream("starts")
    for i in range(n_paths):
        tb.add_elephant(i, n_paths + i, start_ns=rng.randrange(START_JITTER_NS))
    tb.add_probe(0, n_paths, interval_ns=msec(1), start_ns=warm_ns // 2)
    t0 = time.perf_counter()
    tb.run(warm_ns + measure_ns)
    wall = time.perf_counter() - t0
    return wall, tb.sim.events_executed


# --- macro: fluid engine, same scalability cell ------------------------------


def bench_fluid_scalability(scale: float = 1.0) -> Tuple[float, int]:
    """The same Figs 7-9 presto cell as ``scalability_8host``, run on
    the fluid flow-level engine (``fidelity="flow"``).  Work units are
    simulator events fired — far fewer per simulated second than the
    packet engine, which is the point: the committed baseline pins the
    fluid engine's speed so a regression in its lazy advancement or
    reallocation coalescing shows up as a wall-time jump."""
    from repro.experiments.common import START_JITTER_NS
    from repro.experiments.harness import Testbed
    from repro.experiments.scalability import scalability_config

    n_paths = 4
    warm_ns = msec(5)
    measure_ns = msec(max(1.0, 15.0 * scale))
    tb = Testbed(scalability_config("presto", n_paths, seed=1,
                                    fidelity="flow"))
    rng = tb.streams.stream("starts")
    for i in range(n_paths):
        tb.add_elephant(i, n_paths + i, start_ns=rng.randrange(START_JITTER_NS))
    tb.add_probe(0, n_paths, interval_ns=msec(1), start_ns=warm_ns // 2)
    t0 = time.perf_counter()
    tb.run(warm_ns + measure_ns)
    wall = time.perf_counter() - t0
    return wall, tb.sim.events_executed


# --- macro: chaos-soak slice -------------------------------------------------


def bench_soak_slice(scale: float = 1.0) -> Tuple[float, int]:
    """One chaos-soak case end to end: random link/switch faults, fast
    failover, the modeled control plane, bounded elephants, full
    invariant horizon.  Work units are simulator events fired."""
    from repro.experiments.common import START_JITTER_NS
    from repro.experiments.harness import Testbed
    from repro.faults.soak import random_case

    cases = max(1, int(round(4 * scale)))
    t0 = time.perf_counter()
    events = 0
    for index in range(cases):
        case = random_case(1, index)
        tb = Testbed(case.cfg)
        tb.controller.enable_fast_failover(case.cfg.failover_latency_ns)
        tb.enable_control_plane()
        case.schedule.arm(tb.sim, tb.topo)
        rng = tb.streams.stream("soak-starts")
        for src, dst in case.pairs:
            tb.add_elephant(
                src, dst, size_bytes=case.size_bytes,
                start_ns=rng.randrange(START_JITTER_NS))
        tb.run(case.deadline_ns)
        events += tb.sim.events_executed
    wall = time.perf_counter() - t0
    return wall, events


# --- registry + driver -------------------------------------------------------

BenchFn = Callable[[float], Tuple[float, int]]

BENCHES: Dict[str, Tuple[str, BenchFn]] = {
    "event_churn": (MICRO, bench_event_churn),
    "tso_fanout": (MICRO, bench_tso_fanout),
    "gro_merge": (MICRO, bench_gro_merge),
    "scalability_8host": (MACRO, bench_scalability_8host),
    "fluid_scalability": (MACRO, bench_fluid_scalability),
    "soak_slice": (MACRO, bench_soak_slice),
}

MICRO_BENCHES = tuple(n for n, (k, _) in BENCHES.items() if k == MICRO)
MACRO_BENCHES = tuple(n for n, (k, _) in BENCHES.items() if k == MACRO)


def run_bench(name: str, rounds: int = 3, scale: float = 1.0) -> BenchResult:
    """Run one bench ``rounds`` times and keep the fastest round (wall
    time is noisy downward-only: the best round is the least-perturbed
    measurement of the same fixed workload)."""
    kind, fn = BENCHES[name]
    best_wall = float("inf")
    events = 0
    for _ in range(max(1, rounds)):
        wall, n = fn(scale)
        if wall < best_wall:
            best_wall = wall
            events = n
    return BenchResult(
        name=name,
        kind=kind,
        wall_s=best_wall,
        events=events,
        events_per_sec=events / best_wall if best_wall > 0 else 0.0,
        peak_rss_bytes=_peak_rss_bytes(),
        rounds=max(1, rounds),
        scale=scale,
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    rounds: int = 3,
    scale: float = 1.0,
    log: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run the named benches (default: all) and return their results."""
    selected = list(names) if names else list(BENCHES)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise ValueError(
            f"unknown bench(es) {', '.join(unknown)}; "
            f"available: {', '.join(BENCHES)}")
    results = []
    for name in selected:
        if log is not None:
            log(f"perf: running {name} (rounds={rounds}, scale={scale:g})")
        results.append(run_bench(name, rounds=rounds, scale=scale))
    return results
