"""Presto: flowcell creation (Algorithm 1), the vSwitch datapath, and
the centralized controller (spanning trees, shadow MACs, failure
handling and weighted multipathing)."""

from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger
from repro.presto.vswitch import PrestoLb
from repro.presto.controller import PrestoController

__all__ = ["FLOWCELL_BYTES", "FlowcellTagger", "PrestoLb", "PrestoController"]
