"""Presto's centralized controller.

Responsibilities (paper S3.1 and S3.3):

* partition the Clos fabric into disjoint spanning trees (one per spine
  x parallel link) and install shadow-MAC forwarding rules;
* push, to every vSwitch, the per-destination label schedule (the list
  of shadow MACs iterated round-robin by Algorithm 1);
* on failure, recompute *weighted* schedules — WCMP-style weights are
  realized by duplicating labels in the schedule — and push the update
  to the edge (no switch firmware involvement);
* optionally configure hardware fast failover backups at the leaves so
  the datapath survives the controller's reaction time.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from repro.net.addresses import (
    host_mac,
    is_shadow_mac,
    shadow_mac,
    shadow_mac_host,
)
from repro.net.link import Link
from repro.net.routing import (
    SpanningTree,
    allocate_spanning_trees,
    install_tree_routes,
    tree_legs,
)
from repro.net.switch import Switch
from repro.net.topology import Topology


class PrestoController:
    """Builds trees, programs the fabric, and manages vSwitch schedules."""

    def __init__(self, topo: Topology, trees: Optional[List[SpanningTree]] = None):
        self.topo = topo
        self.trees = trees if trees is not None else allocate_spanning_trees(topo)
        install_tree_routes(topo, self.trees)
        self._vswitches: List = []  # LoadBalancer instances we push updates to

    # --- schedule computation -------------------------------------------------

    def tree_usable(self, tree: SpanningTree, src_leaf: Switch, dst_leaf: Switch) -> bool:
        """A tree works for a leaf pair iff every leg of its path —
        2 through a spine (or intra-pod agg), 4 through a fat-tree
        core — is up."""
        legs = tree_legs(self.topo, tree, src_leaf, dst_leaf)
        return legs is not None and all(leg.up for leg in legs)

    def tree_weight(self, tree: SpanningTree, src_leaf: Switch, dst_leaf: Switch) -> float:
        """Usable capacity of a tree for a leaf pair: the min of its leg
        rates (0 when any leg is down) — the WCMP weighting input."""
        legs = tree_legs(self.topo, tree, src_leaf, dst_leaf)
        if legs is None or not all(leg.up for leg in legs):
            return 0.0
        if not legs:  # same edge switch
            return 1.0
        return min(leg.link.rate_bps for leg in legs)

    def schedule_for(self, src_host: int, dst_host: int) -> List[int]:
        """Ordered label list ``src_host`` should round-robin toward
        ``dst_host``, with duplicates expressing weights."""
        src_leaf = self.topo.host_leaf[src_host]
        dst_leaf = self.topo.host_leaf[dst_host]
        if src_leaf is dst_leaf or not self.topo.spines:
            return [host_mac(dst_host)]
        weights = [(t, self.tree_weight(t, src_leaf, dst_leaf)) for t in self.trees]
        usable = [(t, w) for t, w in weights if w > 0]
        if not usable:
            # Disconnected pair: fall back to all trees; packets will drop
            # in the fabric, which is what a real blackhole looks like.
            usable = [(t, 1.0) for t in self.trees]
        min_w = min(w for _, w in usable)
        schedule: List[int] = []
        for tree, w in usable:
            copies = max(1, int(round(w / min_w)))
            schedule.extend([shadow_mac(tree.tree_id, dst_host)] * copies)
        return _interleave_schedule(schedule)

    # --- vSwitch management ------------------------------------------------------

    def register_vswitch(self, lb) -> None:
        """Track a host's LoadBalancer and push current schedules to it."""
        self._vswitches.append(lb)
        self.push_schedules(lb)

    def push_schedules(self, lb) -> None:
        for dst_host in self.topo.hosts:
            if dst_host == lb.host_id:
                continue
            lb.set_schedule(dst_host, self.schedule_for(lb.host_id, dst_host))

    def push_all(self) -> None:
        """Recompute and push schedules to every registered vSwitch —
        the controller's reaction to topology change (weighted stage)."""
        for lb in self._vswitches:
            self.push_schedules(lb)

    # --- failure handling ----------------------------------------------------------

    def enable_fast_failover(self, latency_ns: int = 0) -> None:
        """Configure hardware fast-failover groups.

        * Leaves: each uplink's backup is the next spine's uplink
          (cyclic) — labels route at any spine, so no rewrite is needed.
        * Spines: a dead downlink to leaf X cannot be detoured locally
          (2-tier Clos), so the backup bucket *relabels* the packet onto
          the next spine's tree and bounces it through a neighbouring
          leaf, which forwards it up the healthy spine (OpenFlow
          fast-failover bucket with a set-field action).
        * Fat-tree aggs: each core uplink's backup is the next core
          uplink (cyclic).  No rewrite is needed — every core carries
          down routes for every label — so a labelled packet detours
          through a sibling core inside the same uplink class.  Dead
          *downlinks* (agg->edge, core->agg) are left to the
          controller's weighted reschedule: the affected class's trees
          lose the destination, and other classes take the weight.
        """
        for leaf in self.topo.leaves:
            ups = self.topo.uplinks(leaf)
            if len(ups) < 2:
                continue
            group = leaf.enable_failover(latency_ns)
            for i, port in enumerate(ups):
                group.set_backup(port, ups[(i + 1) % len(ups)])
        if self.topo.cores:
            core_set = set(self.topo.cores)
            for agg in self.topo.spines:
                ups = [p for p in agg.ports if p.peer in core_set]
                if len(ups) < 2:
                    continue
                group = agg.enable_failover(latency_ns)
                for i, port in enumerate(ups):
                    group.set_backup(port, ups[(i + 1) % len(ups)])
            return
        if len(self.topo.spines) < 2 or len(self.topo.leaves) < 2:
            return
        next_tree = {
            t.spine.name: self.trees[(i + 1) % len(self.trees)].tree_id
            for i, t in enumerate(self.trees)
        }
        for spine in self.topo.spines:
            downs = [p for p in spine.ports if p.peer in set(self.topo.leaves)]
            if len(downs) < 2:
                continue
            group = spine.enable_failover(latency_ns)
            relabel_tree = next_tree[spine.name]
            for i, port in enumerate(downs):
                backup = downs[(i + 1) % len(downs)]
                group.set_backup(
                    port, backup, rewrite=_relabel_to_tree(relabel_tree)
                )

    def on_link_failure(self, link: Optional[Link] = None) -> None:
        """Deprecated alias of :meth:`push_all`.

        Experiments used to call this by hand after flipping a link;
        the modeled control plane (:mod:`repro.faults.controlplane`)
        now subscribes to ``Link.on_state_change`` and reacts in
        simulated time, so nothing needs to remember to call anything.
        ``link`` was always ignored (schedules are recomputed from the
        whole live topology) and is kept only for call compatibility.
        """
        self.push_all()


def _relabel_to_tree(tree_id: int):
    """Failover-bucket set-field action: move the packet onto ``tree_id``."""

    def rewrite(pkt) -> None:
        if is_shadow_mac(pkt.dst_mac):
            pkt.dst_mac = shadow_mac(tree_id, shadow_mac_host(pkt.dst_mac))

    return rewrite


def _interleave_schedule(labels: List[int]) -> List[int]:
    """Spread duplicate labels apart so weighted round robin does not
    send consecutive flowcells down the same tree (p1,p2,p3,p2 rather
    than p1,p2,p2,p3)."""
    counts = Counter(labels)
    if not counts:
        return labels
    total = sum(counts.values())
    # Largest-remainder style interleave: place each copy of a label at
    # evenly spaced fractional positions, then sort by position.
    placed = []
    for label, count in counts.items():
        for k in range(count):
            placed.append(((k + 0.5) / count, label))
    placed.sort(key=lambda item: (item[0], item[1]))
    return [label for _, label in placed][:total]
