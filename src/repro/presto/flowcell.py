"""Flowcell creation — the paper's Algorithm 1, verbatim.

Per flow, the vSwitch keeps a byte counter, the current label index and
the flowcell ID.  When the counter would exceed the 64 KB threshold the
flow rotates to the next label (round-robin over the controller-pushed
schedule) and increments the flowcell ID.  Retransmitted TCP segments
run through the same code, as the paper notes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.units import MAX_TSO_BYTES

#: Flowcell granularity = maximum TSO segment (paper S2.1).
FLOWCELL_BYTES = MAX_TSO_BYTES


class _FlowState:
    __slots__ = ("bytecount", "idx", "cell")

    def __init__(self, idx: int):
        self.bytecount = 0
        self.idx = idx
        self.cell = 1


class FlowcellTagger:
    """Algorithm 1: map a stream of segment lengths to (label index,
    flowcell ID) pairs."""

    def __init__(self, threshold: int = FLOWCELL_BYTES, initial_idx: int = 0):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        self.threshold = threshold
        self._flows: Dict[int, _FlowState] = {}
        self._initial_idx = initial_idx
        self._idx_fn = None  # optional callable(flow_id) -> initial index

    def set_initial_index_fn(self, fn) -> None:
        """Randomize each flow's starting label (decorrelates senders)."""
        self._idx_fn = fn

    def tag(self, flow_id: int, seg_len: int, n_labels: int) -> Tuple[int, int]:
        """Account ``seg_len`` bytes for ``flow_id``; returns
        ``(label_index, flowcell_id)`` for this segment."""
        if n_labels <= 0:
            raise ValueError("need at least one label")
        st = self._flows.get(flow_id)
        if st is None:
            idx = self._idx_fn(flow_id) if self._idx_fn else self._initial_idx
            st = _FlowState(idx % n_labels)
            self._flows[flow_id] = st
        if st.bytecount + seg_len > self.threshold:
            st.bytecount = seg_len
            st.idx = (st.idx + 1) % n_labels
            st.cell += 1
        else:
            st.bytecount += seg_len
        return st.idx % n_labels, st.cell

    def flow_state(self, flow_id: int) -> Optional[Tuple[int, int, int]]:
        """(bytecount, label index, flowcell id) for tests/inspection."""
        st = self._flows.get(flow_id)
        if st is None:
            return None
        return st.bytecount, st.idx, st.cell
