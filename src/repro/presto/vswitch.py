"""Presto's sender-side vSwitch datapath.

Rewrites each outgoing segment's destination MAC with the shadow MAC of
the next spanning tree (round-robin per 64 KB flowcell) and stamps the
flowcell ID, which TSO then replicates onto every MTU packet.  The
receive-side rewrite (shadow MAC back to real MAC) is a constant-time
cost accounted in :class:`repro.host.cpu.CpuCosts`.
"""

from __future__ import annotations

from repro.lb.base import LoadBalancer
from repro.net.packet import Segment
from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger


class PrestoLb(LoadBalancer):
    name = "presto"

    def __init__(
        self,
        host_id: int,
        rng=None,
        threshold: int = FLOWCELL_BYTES,
        mode: str = "rr",
    ):
        """``mode``: "rr" (the paper's round robin) or "random" — the
        ablation showing why deterministic iteration beats randomized
        flowcell placement (S2.1 "assigned over multiple paths very
        evenly by iterating over paths in a round-robin, rather than
        randomized, fashion")."""
        if mode not in ("rr", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(host_id, rng)
        self.mode = mode
        self.tagger = FlowcellTagger(threshold)
        self.tagger.set_initial_index_fn(lambda flow_id: self.rng.randrange(1 << 16))
        self._random_idx = {}

    def select(self, seg: Segment) -> None:
        labels = self.labels_for(seg.dst_host)
        idx, cell = self.tagger.tag(seg.flow_id, seg.payload_len, len(labels))
        if self.mode == "random":
            key = (seg.flow_id, cell)
            idx = self._random_idx.get(key)
            if idx is None:
                idx = self.rng.randrange(len(labels))
                self._random_idx[key] = idx
                # keep the memo bounded: old flowcells never come back
                if len(self._random_idx) > 65536:
                    self._random_idx.clear()
        seg.dst_mac = labels[idx % len(labels)]
        seg.flowcell_id = cell
        if self.probe is not None:
            self.probe.on_flowcell(seg, idx % len(labels), cell)
