"""repro.runner — a parallel sweep runner with a persistent result store.

Every paper figure is a sweep over (scheme x seed x sweep-point), and
the simulator is fully deterministic, so sweep cells are embarrassingly
parallel and cacheable.  This package provides the three layers:

``JobSpec``
    One unit of work: a picklable (experiment fn, TestbedConfig,
    kwargs) triple with a stable content hash.

``run_jobs`` (:mod:`repro.runner.pool`)
    A ``concurrent.futures`` process-pool executor with per-job
    wall-clock timeouts, bounded retry with reseeded-worker backoff on
    crashed/hung workers, and graceful degradation to in-process serial
    execution when ``jobs=1`` or fork is unavailable.

``ResultStore``
    Persists each job's structured result as JSON under
    ``benchmarks/results/store/`` keyed by spec hash, so re-running a
    sweep skips completed jobs (resume) and ``--force`` invalidates.

The CLI entrypoint is ``python -m repro.runner`` (see
:mod:`repro.runner.cli`); experiment modules submit through
:func:`run_jobs` directly (``run_scalability(..., jobs=4)``).
"""

from repro.runner.jobspec import JobSpec
from repro.runner.pool import JobOutcome, run_jobs, collect_results
from repro.runner.serialize import (
    canonical_json,
    from_jsonable,
    ref_of,
    resolve_ref,
    to_jsonable,
)
from repro.runner.store import ResultStore

__all__ = [
    "JobSpec",
    "JobOutcome",
    "ResultStore",
    "run_jobs",
    "collect_results",
    "to_jsonable",
    "from_jsonable",
    "canonical_json",
    "ref_of",
    "resolve_ref",
]
