"""``python -m repro.runner`` — list, run and summarize paper sweeps.

Commands::

    python -m repro.runner list
    python -m repro.runner run scalability --jobs 4
    python -m repro.runner run oversub --points 2,4 --seeds 1,2 --force
    python -m repro.runner run fabric --service http://127.0.0.1:8642
    python -m repro.runner summary
    python -m repro.runner store gc

``run`` writes the rendered table to ``<results-dir>/runner_<sweep>.txt``
and a machine-readable ``runner_<sweep>.json``; per-job results land in
``<results-dir>/store/<hash>.json``, which is what makes a re-run
resume instead of re-simulate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.runner.serialize import to_jsonable
from repro.runner.store import DEFAULT_RESULTS_DIR, RESULTS_DIR_ENV, ResultStore


def _csv_strs(text: Optional[str]) -> Sequence[str]:
    return tuple(s for s in (text or "").split(",") if s) or ()


def _csv_ints(text: Optional[str]) -> Sequence[int]:
    return tuple(int(s) for s in (text or "").split(",") if s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel sweep runner with a persistent, resumable "
                    "result store.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the available sweeps")

    run = sub.add_parser("run", help="run one sweep through the job pool")
    run.add_argument(
        "sweep", nargs="?", default=None,
        help="sweep name (see `list`); defaults to 'fabric' when "
             "--topology is given",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count(); 1 = in-process "
             "serial)",
    )
    run.add_argument(
        "--force", action="store_true",
        help="invalidate cached results for this sweep's jobs and re-run",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout; a hung job is killed, retried "
             "once, then reported failed",
    )
    run.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="how many times a job that raises (or times out) is re-run "
             "before it reports failed (default: 1; see EXPERIMENTS.md "
             "'Retries, restarts and backoff')",
    )
    run.add_argument(
        "--service", default=None, metavar="URL",
        help="run the sweep's jobs on a sweep coordinator "
             "(python -m repro.service coordinator) instead of a local "
             "pool, e.g. http://127.0.0.1:8642",
    )
    run.add_argument(
        "--schemes", default=None,
        help="comma-separated scheme subset (default: the figure's four)",
    )
    run.add_argument(
        "--points", default=None,
        help="comma-separated sweep points (path counts / pair counts)",
    )
    run.add_argument("--seeds", default="1,2", help="comma-separated seeds")
    run.add_argument(
        "--fidelity", choices=("packet", "flow"), default=None,
        help="engine fidelity for every cell: 'packet' (default) queues "
             "frames, 'flow' runs the fluid engine (repro.fluid)",
    )
    run.add_argument(
        "--topology", action="append", default=None, metavar="SPEC",
        help="fabric spec, repeatable — e.g. 'fat-tree:k=8', "
             "'leaf-spine:pods=8,oversub=2', "
             "'clos:spines=4,leaves=4,hosts=4' (fabric sweep only; "
             "implies `run fabric` when the sweep name is omitted)",
    )
    run.add_argument(
        "--validate", action="store_true",
        help="arm the spanning-tree oracle in every cell: trees must "
             "reach every host and stay link-disjoint (fabric sweep only)",
    )
    run.add_argument(
        "--warm-ms", type=float, default=15.0,
        help="warmup window before measurement, in simulated ms",
    )
    run.add_argument(
        "--measure-ms", type=float, default=25.0,
        help="measurement window, in simulated ms",
    )
    run.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help=f"results root (default: ${RESULTS_DIR_ENV} or "
             f"{DEFAULT_RESULTS_DIR})",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="record per-cell event traces; Chrome/Perfetto-loadable "
             "JSON lands in <results-dir>/traces/ (implies metric "
             "snapshots in each stored result)",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="collect per-cell metric snapshots (counters/gauges/"
             "histograms) and write them to FILE as JSON",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )

    summary = sub.add_parser(
        "summary", help="show what the result store already holds"
    )
    summary.add_argument("--results-dir", default=None, metavar="DIR")

    store = sub.add_parser(
        "store", help="result-store maintenance (currently: gc)"
    )
    store.add_argument(
        "action", choices=("gc",),
        help="gc: remove orphaned *.tmp files left by killed writers "
             "and structurally-corrupt records",
    )
    store.add_argument("--results-dir", default=None, metavar="DIR")

    perf = sub.add_parser(
        "perf",
        help="run the perf benchmark suite and write BENCH_perf.json",
    )
    perf.add_argument(
        "--benches", default=None,
        help="comma-separated bench subset (default: all; 'micro' and "
             "'macro' select those groups)",
    )
    perf.add_argument(
        "--rounds", type=int, default=3, metavar="N",
        help="timing rounds per bench; the fastest round is kept",
    )
    perf.add_argument(
        "--scale", type=float, default=1.0, metavar="F",
        help="workload scale factor (CI smoke uses e.g. 0.25)",
    )
    perf.add_argument(
        "--out", default="BENCH_perf.json", metavar="FILE",
        help="machine-readable output path (default: ./BENCH_perf.json)",
    )
    perf.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON to compare events/sec against (default: "
             "benchmarks/perf/baseline.json when it exists)",
    )
    perf.add_argument(
        "--update-baseline", action="store_true",
        help="also overwrite the baseline file with this run's numbers",
    )
    perf.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any micro bench drops >20%% below baseline",
    )
    perf.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="also copy BENCH_perf.json into this results root",
    )
    perf.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def _cmd_list() -> int:
    from repro.runner.sweeps import SWEEPS

    width = max(len(name) for name in SWEEPS)
    for name, sweep in SWEEPS.items():
        print(f"{name.ljust(width)}  {sweep.description}")
    return 0


def _cmd_run(ns: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table
    from repro.runner.sweeps import SWEEPS
    from repro.units import msec

    sweep_name = ns.sweep
    if sweep_name is None:
        if not ns.topology:
            print("a sweep name is required (or pass --topology to imply "
                  f"'fabric'); available: {', '.join(SWEEPS)}",
                  file=sys.stderr)
            return 2
        sweep_name = "fabric"
    sweep = SWEEPS.get(sweep_name)
    if sweep is None:
        print(f"unknown sweep {sweep_name!r}; available: {', '.join(SWEEPS)}",
              file=sys.stderr)
        return 2
    if (ns.topology or ns.validate) and not sweep.accepts_topology:
        print(f"--topology/--validate only apply to sweeps over fabrics "
              f"(e.g. 'fabric'), not {sweep_name!r}", file=sys.stderr)
        return 2
    if ns.topology:
        from repro.net.fabrics import as_spec

        try:
            for spec in ns.topology:
                as_spec(spec)
        except ValueError as exc:
            print(f"bad --topology: {exc}", file=sys.stderr)
            return 2
    if ns.jobs is not None and ns.jobs < 1:
        print(f"--jobs must be >= 1, got {ns.jobs}", file=sys.stderr)
        return 2
    if ns.timeout is not None and ns.timeout <= 0:
        print(f"--timeout must be positive, got {ns.timeout}", file=sys.stderr)
        return 2
    if ns.retries < 0:
        print(f"--retries must be >= 0, got {ns.retries}", file=sys.stderr)
        return 2
    try:
        points = _csv_ints(ns.points) or tuple(sweep.default_points)
        seeds = _csv_ints(ns.seeds)
    except ValueError as exc:
        print(f"--points/--seeds must be comma-separated integers: {exc}",
              file=sys.stderr)
        return 2
    if not seeds:
        print("--seeds must name at least one seed", file=sys.stderr)
        return 2
    schemes = _csv_strs(ns.schemes)
    if sweep.scheme_vocab is not None:
        vocab = list(sweep.scheme_vocab())
        unknown = [s for s in schemes if s not in vocab]
        if unknown:
            print(f"unknown preset(s) {', '.join(unknown)}; "
                  f"pick from {', '.join(vocab)}", file=sys.stderr)
            return 2
    else:
        from repro.experiments.harness import SCHEMES

        unknown = [s for s in schemes if s not in SCHEMES]
        if unknown:
            print(f"unknown scheme(s) {', '.join(unknown)}; "
                  f"pick from {', '.join(SCHEMES)}", file=sys.stderr)
            return 2

    store = ResultStore(ns.results_dir)
    telemetry = None
    if ns.trace or ns.metrics_out:
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(
            metrics=True,
            trace=bool(ns.trace),
            trace_dir=os.path.join(store.root, "traces") if ns.trace else None,
        )
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    extra = {}
    if sweep.accepts_topology:
        extra = {"topologies": tuple(ns.topology or ()),
                 "validate": ns.validate}
    report = sweep.run(
        schemes,
        points,
        seeds,
        msec(ns.warm_ms),
        msec(ns.measure_ms),
        jobs=ns.jobs,
        store=store,
        force=ns.force,
        timeout_s=ns.timeout,
        retries=ns.retries,
        log=log,
        telemetry=telemetry,
        fidelity=ns.fidelity,
        service=ns.service,
        **extra,
    )
    table = format_table(report.headers, report.rows)
    print(table)

    os.makedirs(store.root, exist_ok=True)
    txt_path = os.path.join(store.root, f"runner_{report.name}.txt")
    with open(txt_path, "w") as fh:
        fh.write(table + "\n")
    json_path = os.path.join(store.root, f"runner_{report.name}.json")
    with open(json_path, "w") as fh:
        json.dump(
            {"name": report.name, "table": table,
             "data": to_jsonable(report.payload)},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    print(f"saved {txt_path} and {json_path}", file=sys.stderr)

    if ns.metrics_out:
        _write_metrics_out(store, report.name, ns.metrics_out)
    if telemetry is not None and telemetry.trace:
        print(f"traces in {os.path.join(store.root, 'traces')} "
              "(load a .trace.json at https://ui.perfetto.dev)",
              file=sys.stderr)
    return 0


def _write_metrics_out(store: ResultStore, sweep_name: str, path: str) -> None:
    """Collect each stored cell's metric snapshot into one JSON file.

    Scans the result store for this sweep's labels; cells recorded
    without telemetry carry no snapshot and are skipped.
    """
    cells = {}
    for record in store.records():
        label = record.get("label", "")
        if not label.startswith(f"{sweep_name}/"):
            continue
        metrics = record.get("result", {}).get("fields", {}).get("metrics")
        if metrics is not None:
            cells[label] = metrics
    with open(path, "w") as fh:
        json.dump({"sweep": sweep_name, "cells": cells},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"saved metric snapshots for {len(cells)} cell(s) to {path}",
          file=sys.stderr)


def _cmd_perf(ns: argparse.Namespace) -> int:
    from repro.perf import (
        load_baseline,
        render_table,
        results_payload,
        run_suite,
        write_bench_json,
    )
    from repro.perf.report import DEFAULT_BASELINE_RELPATH, check_regression
    from repro.perf.suite import MACRO_BENCHES, MICRO_BENCHES

    names = []
    for token in _csv_strs(ns.benches):
        if token == "micro":
            names.extend(MICRO_BENCHES)
        elif token == "macro":
            names.extend(MACRO_BENCHES)
        else:
            names.append(token)
    if ns.rounds < 1:
        print(f"--rounds must be >= 1, got {ns.rounds}", file=sys.stderr)
        return 2
    if ns.scale <= 0:
        print(f"--scale must be positive, got {ns.scale}", file=sys.stderr)
        return 2
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    try:
        results = run_suite(
            names or None, rounds=ns.rounds, scale=ns.scale, log=log)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    baseline_path = ns.baseline or DEFAULT_BASELINE_RELPATH
    baseline = load_baseline(baseline_path)
    if ns.baseline and baseline is None:
        print(f"baseline {ns.baseline!r} missing or invalid", file=sys.stderr)
        return 2
    payload = results_payload(results, baseline)
    print(render_table(payload))
    write_bench_json(payload, ns.out)
    print(f"saved {ns.out}", file=sys.stderr)
    if ns.results_dir:
        os.makedirs(ns.results_dir, exist_ok=True)
        copy = os.path.join(ns.results_dir, "BENCH_perf.json")
        write_bench_json(payload, copy)
        print(f"saved {copy}", file=sys.stderr)
    if ns.update_baseline:
        os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
        write_bench_json(results_payload(results), baseline_path)
        print(f"updated baseline {baseline_path}", file=sys.stderr)
    if ns.check:
        failures = check_regression(payload)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        if baseline is None:
            print("perf --check: no baseline to compare against",
                  file=sys.stderr)
    return 0


def _cmd_store(ns: argparse.Namespace) -> int:
    store = ResultStore(ns.results_dir)
    stats = store.gc()
    print(f"store gc at {store.store_dir}: "
          f"removed {stats['tmp_removed']} orphaned tmp file(s) and "
          f"{stats['corrupt_removed']} corrupt record(s); "
          f"{stats['kept']} record(s) kept")
    return 0


def _cmd_summary(ns: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table

    store = ResultStore(ns.results_dir)
    rows: List[List[object]] = []
    total_elapsed = 0.0
    for record in store.records():
        total_elapsed += record.get("elapsed_s", 0.0)
        rows.append([
            record.get("hash", "?"),
            record.get("label", "?"),
            f"{record.get('elapsed_s', 0.0):.1f}s",
            record.get("attempts", "?"),
        ])
    if not rows:
        print(f"result store at {store.store_dir} is empty")
        return 0
    print(format_table(["hash", "job", "elapsed", "attempts"], rows))
    print(f"\n{len(rows)} cached job(s), "
          f"{total_elapsed:.1f}s of simulation on disk "
          f"({store.store_dir})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    ns = parser.parse_args(argv)
    if ns.command is None:
        parser.print_help()
        return 0
    if ns.command == "list":
        return _cmd_list()
    if ns.command == "run":
        return _cmd_run(ns)
    if ns.command == "summary":
        return _cmd_summary(ns)
    if ns.command == "store":
        return _cmd_store(ns)
    if ns.command == "perf":
        return _cmd_perf(ns)
    parser.error(f"unknown command {ns.command!r}")
    return 2
