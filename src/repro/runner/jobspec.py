"""The unit of work a sweep submits: one experiment-function call.

A :class:`JobSpec` is deliberately dumb — a function reference, an
optional ``TestbedConfig`` and extra keyword arguments — so it pickles
across process boundaries and hashes to a stable cache key.  The
function is stored as a ``"module:QualName"`` string (not a code
object), which keeps specs serializable under any multiprocessing
start method and makes the hash independent of the interpreter run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.runner.serialize import content_hash, ref_of, resolve_ref


@dataclass(frozen=True)
class JobSpec:
    """One picklable (experiment fn, config, kwargs) triple."""

    #: ``"module:QualName"`` of a module-level callable
    fn: str
    #: first positional argument, typically a ``TestbedConfig`` (or None)
    cfg: Optional[Any] = None
    #: extra keyword arguments for ``fn``
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: display-only name; excluded from the content hash
    label: str = ""

    @classmethod
    def make(
        cls,
        fn: Callable | str,
        cfg: Optional[Any] = None,
        label: str = "",
        **kwargs: Any,
    ) -> "JobSpec":
        ref = fn if isinstance(fn, str) else ref_of(fn)
        return cls(fn=ref, cfg=cfg, kwargs=kwargs, label=label)

    @property
    def hash(self) -> str:
        """Stable content hash over (fn, cfg, kwargs) — the cache key."""
        return content_hash({"fn": self.fn, "cfg": self.cfg, "kwargs": self.kwargs})

    @property
    def display(self) -> str:
        """Human-readable name for progress lines and store records."""
        if self.label:
            return self.label
        _, _, qualname = self.fn.partition(":")
        return f"{qualname}:{self.hash[:8]}"

    def execute(self) -> Any:
        """Resolve and call the experiment function (in this process)."""
        fn = resolve_ref(self.fn)
        if self.cfg is not None:
            return fn(self.cfg, **self.kwargs)
        return fn(**self.kwargs)
