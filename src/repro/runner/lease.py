"""Lease-based job accounting shared by the pool and the sweep service.

Both executors — the in-process :mod:`repro.runner.pool` and the HTTP
coordinator in :mod:`repro.service` — face the same bookkeeping
problem: a queue of jobs, each "checked out" by some worker for a
while, where workers can crash, hang or vanish.  :class:`LeaseQueue`
is that bookkeeping, with the retry-budget rules the pool pioneered:

* ``fail`` (the job itself raised, or timed out under a per-job
  deadline) **charges** the retry budget; the job requeues at the back
  until the budget is spent, then reports failed.
* ``release`` (the *executor* failed — worker process died under the
  pool, a service lease expired because its worker was SIGKILLed or
  partitioned) requeues at the *front* **without charging** the
  budget: the job did nothing wrong.  A per-job expiry cap
  (``max_releases``) stops a job that somehow kills every worker it
  touches from cycling forever.

The queue is deliberately synchronous and lock-free; callers that need
thread safety (the HTTP coordinator) hold their own lock around it.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: default cap on uncharged requeues before a job is declared cursed
DEFAULT_MAX_RELEASES = 8


@dataclass
class Lease:
    """One claim of one job by one worker, valid until ``deadline``."""

    lease_id: str
    index: int
    #: opaque job payload — a JobSpec in the pool, a JSON dict in the
    #: service; the queue never looks inside it
    spec: Any
    #: attempts including this one (1 on the first claim)
    attempts: int
    worker: str = ""
    started: float = field(default_factory=time.monotonic)
    #: monotonic time after which the lease is expired; None = forever
    deadline: Optional[float] = None

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline


@dataclass
class _Entry:
    index: int
    spec: Any
    attempts: int  # completed attempts so far (0 before the first claim)
    releases: int  # uncharged requeues so far


class LeaseQueue:
    """Pending jobs + in-flight leases + the retry/release budget rules."""

    def __init__(
        self,
        retries: int = 1,
        max_releases: int = DEFAULT_MAX_RELEASES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_releases < 1:
            raise ValueError(f"max_releases must be >= 1, got {max_releases}")
        self.retries = retries
        self.max_releases = max_releases
        self._clock = clock
        self._pending: Deque[_Entry] = deque()
        self._leases: Dict[str, Lease] = {}
        self._entries: Dict[str, _Entry] = {}  # lease_id -> entry
        self._seq = itertools.count(1)

    # --- introspection ------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def in_flight(self) -> int:
        return len(self._leases)

    @property
    def depth(self) -> int:
        """Jobs the queue is still responsible for (pending + leased)."""
        return len(self._pending) + len(self._leases)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._leases

    def leases(self) -> List[Lease]:
        return list(self._leases.values())

    def get(self, lease_id: str) -> Optional[Lease]:
        return self._leases.get(lease_id)

    # --- lifecycle ----------------------------------------------------------

    def add(self, index: int, spec: Any, attempts: int = 0) -> None:
        """Enqueue a job at the back of the pending queue."""
        self._pending.append(_Entry(index, spec, attempts, 0))

    def claim(
        self, worker: str = "", ttl_s: Optional[float] = None
    ) -> Optional[Lease]:
        """Check out the next pending job, charging one attempt.

        Returns None when nothing is pending.  ``ttl_s`` sets the lease
        deadline; expired leases surface via :meth:`expire`.
        """
        if not self._pending:
            return None
        entry = self._pending.popleft()
        entry.attempts += 1
        now = self._clock()
        lease = Lease(
            lease_id=f"L{next(self._seq)}",
            index=entry.index,
            spec=entry.spec,
            attempts=entry.attempts,
            worker=worker,
            started=now,
            deadline=now + ttl_s if ttl_s is not None else None,
        )
        self._leases[lease.lease_id] = lease
        self._entries[lease.lease_id] = entry
        return lease

    def renew(self, lease_id: str, ttl_s: float) -> bool:
        """Push a live lease's deadline out (heartbeat); False if stale."""
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self._clock() + ttl_s
        return True

    def complete(self, lease_id: str) -> Optional[Lease]:
        """Retire a finished lease; None if it was already expired/stale."""
        lease = self._leases.pop(lease_id, None)
        self._entries.pop(lease_id, None)
        return lease

    def fail(self, lease_id: str) -> Tuple[str, Optional[Lease]]:
        """The job itself failed: charge the budget, retry or give up.

        Returns ``("retry", lease)`` when the job requeued (at the
        back), ``("failed", lease)`` when its budget is spent, or
        ``("stale", None)`` when the lease was already gone.
        """
        lease = self._leases.pop(lease_id, None)
        entry = self._entries.pop(lease_id, None)
        if lease is None or entry is None:
            return ("stale", None)
        if entry.attempts <= self.retries:
            self._pending.append(entry)
            return ("retry", lease)
        return ("failed", lease)

    def release(self, lease_id: str) -> Tuple[str, Optional[Lease]]:
        """The *executor* failed: requeue at the front, budget uncharged.

        Returns ``("requeued", lease)`` normally, ``("failed", lease)``
        once the job has been released ``max_releases`` times (a job
        that takes down every worker it meets must not spin forever),
        or ``("stale", None)``.
        """
        lease = self._leases.pop(lease_id, None)
        entry = self._entries.pop(lease_id, None)
        if lease is None or entry is None:
            return ("stale", None)
        entry.attempts -= 1  # this attempt never counts
        entry.releases += 1
        if entry.releases >= self.max_releases:
            entry.attempts += 1  # report the true attempt count
            return ("failed", lease)
        self._pending.appendleft(entry)
        return ("requeued", lease)

    def release_all(self) -> List[Tuple[str, Lease]]:
        """Release every in-flight lease (pool restart): front-queued,
        uncharged, earliest claim ending up first.  Returns each lease
        with its :meth:`release` status (``"failed"`` once a job hits
        the release cap)."""
        out = []
        for lease_id in sorted(
            self._leases, key=lambda lid: self._leases[lid].started,
            reverse=True,
        ):
            status, lease = self.release(lease_id)
            if lease is not None:
                out.append((status, lease))
        return out

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """In-flight leases past their deadline (not yet released)."""
        now = self._clock() if now is None else now
        return [l for l in self._leases.values() if l.expired(now)]
