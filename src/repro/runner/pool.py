"""Process-pool job execution with timeouts, retries and resume.

``run_jobs`` is the single entry point every sweep goes through:

* ``jobs > 1`` (and fork available): a ``concurrent.futures``
  ``ProcessPoolExecutor`` with a sliding submission window of at most
  ``jobs`` in-flight futures, so each job's submit time is its start
  time and per-job wall-clock timeouts are meaningful.
* ``jobs = 1`` or no fork: the same semantics in-process (no pool, no
  pickling overhead); per-job timeouts cannot be enforced without
  preemption and are ignored with a log note.

Failure handling: a job whose worker raises is retried up to
``retries`` times; a worker that *dies* (segfault, ``os._exit``) or
*hangs* past ``timeout_s`` poisons the whole executor, so the pool is
torn down (hung workers are killed), surviving in-flight jobs are
requeued without charging their retry budget, and a fresh executor is
spawned after an exponential backoff.  A job that exhausts its budget
is reported as failed in its outcome — it never kills the sweep.  The
queue/budget bookkeeping lives in :class:`repro.runner.lease.LeaseQueue`,
shared with the distributed coordinator (:mod:`repro.service`); the
full retry/restart/backoff contract is documented in EXPERIMENTS.md
("Retries, restarts and backoff").

``run_jobs(..., service="http://host:port")`` hands the non-cached
jobs to a sweep coordinator instead of a local pool: specs are
submitted over HTTP, executed by remote workers through the same
``_execute_payload`` path, and the outcomes (and local store records)
are indistinguishable from a local run.

Results always round-trip through the JSON encoding
(:mod:`repro.runner.serialize`) — in the serial path too — so cached,
serial and parallel runs of the same spec are byte-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.jobspec import JobSpec
from repro.runner.lease import Lease, LeaseQueue
from repro.runner.serialize import from_jsonable, to_jsonable
from repro.runner.store import ResultStore

#: statuses a finished job can report
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"

_BACKOFF_BASE_S = 0.25
_BACKOFF_CAP_S = 5.0
#: floor for the poll interval while watching in-flight futures
_MIN_POLL_S = 0.05

Logger = Optional[Callable[[str], None]]


@dataclass
class JobOutcome:
    """What happened to one submitted :class:`JobSpec`."""

    spec: JobSpec
    status: str
    result: Any = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)


def _execute_payload(payload: Dict[str, Any]) -> Any:
    """Worker-side entry: decode the spec, run it, encode the result.

    Takes/returns plain JSON-able dicts so the pickle layer never sees
    experiment objects and the transcript matches what the store holds.
    """
    spec = from_jsonable(payload)
    return to_jsonable(spec.execute())


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    log: Logger = None,
    service: Optional[str] = None,
) -> List[JobOutcome]:
    """Run ``specs``; returns one :class:`JobOutcome` per spec, in order.

    ``jobs=None`` means ``os.cpu_count()``.  With a ``store``, completed
    hashes are loaded instead of re-run (``force=True`` invalidates and
    re-runs).  Failures are contained: inspect ``outcome.status``, or
    use :func:`collect_results` to raise on any failure.

    ``service`` is a coordinator base URL (``http://host:port``): the
    non-cached jobs run on that coordinator's workers instead of a
    local pool (``jobs``/``timeout_s`` then govern the coordinator's
    side, not this process).
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if timeout_s is not None and timeout_s <= 0:
        # A non-positive timeout would mark every in-flight job timed
        # out on the first poll and thrash pool restarts forever.
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")

    def _log(msg: str) -> None:
        if log is not None:
            log(msg)

    total = len(specs)
    outcomes: Dict[int, JobOutcome] = {}
    todo: List[Tuple[int, JobSpec]] = []
    for i, spec in enumerate(specs):
        if store is not None and force:
            store.invalidate(spec)
        record = store.load_record(spec) if store is not None and not force else None
        if record is not None:
            outcomes[i] = JobOutcome(
                spec=spec,
                status=STATUS_CACHED,
                result=from_jsonable(record["result"]),
                attempts=0,
                elapsed_s=0.0,
            )
            _log(f"[{len(outcomes)}/{total}] cached {spec.display}")
        else:
            todo.append((i, spec))

    def _finish(idx: int, outcome: JobOutcome) -> None:
        outcomes[idx] = outcome
        note = f" ({outcome.error})" if outcome.error else ""
        _log(
            f"[{len(outcomes)}/{total}] {outcome.status} "
            f"{outcome.spec.display} ({outcome.elapsed_s:.1f}s)"
            f"{note}"
        )

    if todo:
        if service is not None:
            # Local import: repro.service imports repro.runner.
            from repro.service.client import run_via_service

            run_via_service(
                todo, service, retries=retries, force=force,
                store=store, finish=_finish, log=_log,
            )
            return [outcomes[i] for i in range(total)]
        use_pool = jobs > 1 and _fork_available()
        if jobs > 1 and not use_pool:
            _log("fork start method unavailable; degrading to serial execution")
        if use_pool:
            _run_pool(
                todo, jobs=jobs, timeout_s=timeout_s, retries=retries,
                store=store, finish=_finish, log=_log,
            )
        else:
            _run_serial(
                todo, timeout_s=timeout_s, retries=retries,
                store=store, finish=_finish, log=_log,
            )

    return [outcomes[i] for i in range(total)]


def collect_results(outcomes: Sequence[JobOutcome]) -> List[Any]:
    """Results in submission order; raises if any job failed."""
    failed = [o for o in outcomes if not o.ok]
    if failed:
        details = "; ".join(f"{o.spec.display}: {o.error}" for o in failed)
        raise RuntimeError(f"{len(failed)} job(s) failed: {details}")
    return [o.result for o in outcomes]


# --- serial fallback ---------------------------------------------------------


def _run_serial(
    todo: Sequence[Tuple[int, JobSpec]],
    *,
    timeout_s: Optional[float],
    retries: int,
    store: Optional[ResultStore],
    finish: Callable[[int, JobOutcome], None],
    log: Callable[[str], None],
) -> None:
    if timeout_s is not None:
        log("note: per-job timeouts are not enforced in serial mode")
    for index, spec in todo:
        attempts = 0
        t0 = time.monotonic()
        while True:
            attempts += 1
            try:
                payload = to_jsonable(spec.execute())
            except Exception as exc:  # noqa: BLE001 — job errors must not kill the sweep
                err = f"{type(exc).__name__}: {exc}"
                if attempts <= retries:
                    log(f"retrying {spec.display} "
                        f"(attempt {attempts + 1}/{retries + 1}): {err}")
                    continue
                finish(index, JobOutcome(
                    spec=spec, status=STATUS_FAILED, error=err,
                    attempts=attempts, elapsed_s=time.monotonic() - t0,
                ))
                break
            elapsed = time.monotonic() - t0
            if store is not None:
                store.save(spec, payload, elapsed, attempts)
            finish(index, JobOutcome(
                spec=spec, status=STATUS_OK, result=from_jsonable(payload),
                attempts=attempts, elapsed_s=elapsed,
            ))
            break


# --- process pool ------------------------------------------------------------


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down even if its workers are hung."""
    processes = list((getattr(executor, "_processes", None) or {}).values())
    for proc in processes:
        proc.terminate()
    executor.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)


def _run_pool(
    todo: Sequence[Tuple[int, JobSpec]],
    *,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    store: Optional[ResultStore],
    finish: Callable[[int, JobOutcome], None],
    log: Callable[[str], None],
) -> None:
    ctx = multiprocessing.get_context("fork")

    def new_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)

    queue = LeaseQueue(retries=retries)
    for index, spec in todo:
        queue.add(index, spec)
    executor = new_executor()
    in_flight: Dict[Any, Lease] = {}  # future -> lease
    restarts = 0

    def finish_failed(lease: Lease, err: str) -> None:
        finish(lease.index, JobOutcome(
            spec=lease.spec, status=STATUS_FAILED, error=err,
            attempts=lease.attempts,
            elapsed_s=time.monotonic() - lease.started,
        ))

    def fail_or_retry(lease: Lease, err: str) -> None:
        status, _ = queue.fail(lease.lease_id)
        if status == "retry":
            log(f"retrying {lease.spec.display} "
                f"(attempt {lease.attempts + 1}/{retries + 1}): {err}")
        elif status == "failed":
            finish_failed(lease, err)

    try:
        while not queue.idle:
            while queue.pending and len(in_flight) < jobs:
                lease = queue.claim(ttl_s=timeout_s)
                future = executor.submit(
                    _execute_payload, to_jsonable(lease.spec))
                in_flight[future] = lease

            now = time.monotonic()
            poll: Optional[float] = None
            if timeout_s is not None and in_flight:
                nearest = min(l.deadline for l in in_flight.values())
                poll = max(_MIN_POLL_S, nearest - now)
            done, _ = wait(set(in_flight), timeout=poll,
                           return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                lease = in_flight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    fail_or_retry(lease, "worker process died")
                    continue
                except Exception as exc:  # noqa: BLE001 — contained per job
                    fail_or_retry(lease, f"{type(exc).__name__}: {exc}")
                    continue
                queue.complete(lease.lease_id)
                elapsed = time.monotonic() - lease.started
                if store is not None:
                    store.save(lease.spec, payload, elapsed, lease.attempts)
                finish(lease.index, JobOutcome(
                    spec=lease.spec, status=STATUS_OK,
                    result=from_jsonable(payload),
                    attempts=lease.attempts, elapsed_s=elapsed,
                ))

            if timeout_s is not None:
                # a wedged worker holds its process hostage: only a
                # pool restart can reclaim it, and the timed-out job
                # itself is charged (it may be the reason it hangs)
                expired = {l.lease_id for l in queue.expired()}
                if expired:
                    broken = True
                    for future, lease in list(in_flight.items()):
                        if lease.lease_id in expired:
                            del in_flight[future]
                            fail_or_retry(
                                lease, f"timed out after {timeout_s:.1f}s")

            if broken:
                # Requeue the innocent bystanders at the front, without
                # charging their retry budget, then restart on fresh
                # (reseeded) workers after a backoff.
                for status, lease in queue.release_all():
                    if status == "failed":
                        finish_failed(
                            lease,
                            f"requeued {queue.max_releases} times by pool "
                            "restarts without completing")
                in_flight.clear()
                _kill_executor(executor)
                delay = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** restarts))
                restarts += 1
                log(f"worker pool restarted (#{restarts}); "
                    f"backing off {delay:.2f}s")
                time.sleep(delay)
                executor = new_executor()
        executor.shutdown(wait=True)
    except BaseException:
        _kill_executor(executor)
        raise
