"""JSON-safe serialization for experiment configs and results.

Experiment inputs (``TestbedConfig``) and outputs (``RunResult``,
``ScalabilityPoint``, ...) are plain dataclasses of stdlib values, so a
small structural encoding covers all of them without per-type code:

* dataclass       -> ``{"__dataclass__": "module:QualName", "fields": {...}}``
* tuple           -> ``{"__tuple__": [...]}``
* non-str-keyed dict -> ``{"__dict__": [[key, value], ...]}``

Round-tripping is exact: ints stay ints, floats survive via the
shortest-repr JSON encoding, tuples stay tuples, and dict keys keep
their types (flow-rate maps are keyed by int flow id).  That exactness
is what lets the result store promise "parallel == serial, byte for
byte" and lets content hashes double as cache keys.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, Callable

#: marker keys — a plain str-keyed dict may not use these as keys
_MARKERS = ("__dataclass__", "__tuple__", "__dict__")


def ref_of(obj: Callable | type) -> str:
    """A stable, importable ``"module:QualName"`` reference."""
    return f"{obj.__module__}:{obj.__qualname__}"


def resolve_ref(ref: str) -> Any:
    """Import the object a :func:`ref_of` string points to."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed reference {ref!r}; expected 'module:QualName'")
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def to_jsonable(obj: Any) -> Any:
    """Encode ``obj`` into JSON-compatible types, reversibly."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": ref_of(type(obj)),
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in fields(obj)
                if not (f.metadata.get("omit_if_none")
                        and getattr(obj, f.name) is None)
            },
        }
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and not any(k in _MARKERS for k in obj):
            return {k: to_jsonable(v) for k, v in obj.items()}
        return {"__dict__": [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()]}
    if isinstance(obj, tuple):
        return {"__tuple__": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    raise TypeError(
        f"cannot serialize {type(obj).__name__!r}; "
        "use dataclasses / dicts / lists / tuples / scalars"
    )


def from_jsonable(obj: Any) -> Any:
    """Invert :func:`to_jsonable`."""
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        if "__dataclass__" in obj:
            cls = resolve_ref(obj["__dataclass__"])
            return cls(**{k: from_jsonable(v) for k, v in obj["fields"].items()})
        if "__tuple__" in obj:
            return tuple(from_jsonable(v) for v in obj["__tuple__"])
        if "__dict__" in obj:
            return {from_jsonable(k): from_jsonable(v) for k, v in obj["__dict__"]}
        return {k: from_jsonable(v) for k, v in obj.items()}
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of ``obj`` — the hashing/equality form."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any, length: int = 16) -> str:
    """Stable hex digest of ``obj``'s canonical JSON."""
    digest = hashlib.sha256(canonical_json(obj).encode()).hexdigest()
    return digest[:length]
