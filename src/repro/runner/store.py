"""Persistent, resumable result store keyed by job-spec hash.

Each completed job becomes one JSON file
``benchmarks/results/store/<hash>.json`` holding the spec, the encoded
result and execution metadata.  Re-running a sweep loads matching
hashes instead of re-simulating (resume); ``--force`` invalidates.
Writes are atomic (tempfile + ``os.replace``) so a killed sweep never
leaves a half-written record that would poison a resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Iterator, Optional

from repro.runner.jobspec import JobSpec
from repro.runner.serialize import to_jsonable

#: env var overriding the default results root (useful for tests/CI)
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"
DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")


class ResultStore:
    """Content-addressed JSON store under ``<root>/store/``."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get(RESULTS_DIR_ENV) or DEFAULT_RESULTS_DIR
        self.root = root
        self.store_dir = os.path.join(root, "store")

    def path_for(self, spec: JobSpec) -> str:
        return os.path.join(self.store_dir, f"{spec.hash}.json")

    def load_record(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """The stored record for ``spec``, or None on miss/corruption.

        Corruption covers structure, not just syntax: a record that
        parses but lost its ``result`` (truncated write, hand-edit) is
        a cache miss — the job re-runs and overwrites it.
        """
        try:
            with open(self.path_for(spec)) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or "result" not in record:
            return None
        return record

    def save(
        self,
        spec: JobSpec,
        result_jsonable: Any,
        elapsed_s: float,
        attempts: int = 1,
    ) -> str:
        """Atomically persist one job's encoded result; returns the path."""
        os.makedirs(self.store_dir, exist_ok=True)
        record = {
            "hash": spec.hash,
            "label": spec.display,
            "spec": to_jsonable(spec),
            "result": result_jsonable,
            "elapsed_s": round(elapsed_s, 6),
            "attempts": attempts,
            "created_unix": time.time(),
        }
        path = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(dir=self.store_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def invalidate(self, spec: JobSpec) -> bool:
        """Drop the cached record for ``spec``; True if one existed."""
        try:
            os.unlink(self.path_for(spec))
            return True
        except FileNotFoundError:
            return False

    def records(self) -> Iterator[Dict[str, Any]]:
        """All readable records, ordered by filename (= hash)."""
        if not os.path.isdir(self.store_dir):
            return
        for name in sorted(os.listdir(self.store_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.store_dir, name)) as fh:
                    yield json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
