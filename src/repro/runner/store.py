"""Persistent, resumable result store keyed by job-spec hash.

Each completed job becomes one JSON file
``benchmarks/results/store/<hash>.json`` holding the spec, the encoded
result and execution metadata.  Re-running a sweep loads matching
hashes instead of re-simulating (resume); ``--force`` invalidates.
Writes are atomic (tempfile + ``os.replace``) so a killed sweep never
leaves a half-written record that would poison a resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Iterator, Optional

from repro.runner.jobspec import JobSpec
from repro.runner.serialize import to_jsonable

#: env var overriding the default results root (useful for tests/CI)
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"
DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")


class ResultStore:
    """Content-addressed JSON store under ``<root>/store/``."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get(RESULTS_DIR_ENV) or DEFAULT_RESULTS_DIR
        self.root = root
        self.store_dir = os.path.join(root, "store")

    def path_for(self, spec: JobSpec) -> str:
        return os.path.join(self.store_dir, f"{spec.hash}.json")

    @staticmethod
    def _structurally_ok(record: Any) -> bool:
        """The one corruption check every read path applies: a record
        must be a dict that kept its ``result`` (a truncated write or
        hand-edit that lost it is treated as absent everywhere)."""
        return isinstance(record, dict) and "result" in record

    def load_record(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """The stored record for ``spec``, or None on miss/corruption.

        Corruption covers structure, not just syntax: a record that
        parses but lost its ``result`` (truncated write, hand-edit) is
        a cache miss — the job re-runs and overwrites it.
        """
        try:
            with open(self.path_for(spec)) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not self._structurally_ok(record):
            return None
        return record

    def save(
        self,
        spec: JobSpec,
        result_jsonable: Any,
        elapsed_s: float,
        attempts: int = 1,
    ) -> str:
        """Atomically persist one job's encoded result; returns the path."""
        os.makedirs(self.store_dir, exist_ok=True)
        record = {
            "hash": spec.hash,
            "label": spec.display,
            "spec": to_jsonable(spec),
            "result": result_jsonable,
            "elapsed_s": round(elapsed_s, 6),
            "attempts": attempts,
            "created_unix": time.time(),
        }
        path = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(dir=self.store_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def invalidate(self, spec: JobSpec) -> bool:
        """Drop the cached record for ``spec``; True if one existed."""
        try:
            os.unlink(self.path_for(spec))
            return True
        except FileNotFoundError:
            return False

    def records(self) -> Iterator[Dict[str, Any]]:
        """All readable records, ordered by filename (= hash).

        Applies the same structural-corruption check as
        :meth:`load_record`: a record that parses but lost its
        ``result`` is skipped, not yielded half-formed.
        """
        if not os.path.isdir(self.store_dir):
            return
        for name in sorted(os.listdir(self.store_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.store_dir, name)) as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if self._structurally_ok(record):
                yield record

    def gc(self) -> Dict[str, int]:
        """Remove debris a SIGKILLed or buggy writer can leave behind.

        Deletes orphaned ``*.tmp`` files (a writer died between
        ``mkstemp`` and ``os.replace``) and ``*.json`` records that are
        unparsable or structurally corrupt (they are cache misses
        anyway — dropping them just makes that visible).  Returns
        ``{"tmp_removed": n, "corrupt_removed": n, "kept": n}``.
        """
        stats = {"tmp_removed": 0, "corrupt_removed": 0, "kept": 0}
        if not os.path.isdir(self.store_dir):
            return stats
        for name in sorted(os.listdir(self.store_dir)):
            path = os.path.join(self.store_dir, name)
            if name.endswith(".tmp"):
                os.unlink(path)
                stats["tmp_removed"] += 1
                continue
            if not name.endswith(".json"):
                continue
            try:
                with open(path) as fh:
                    record = json.load(fh)
            except (OSError, json.JSONDecodeError):
                record = None
            if self._structurally_ok(record):
                stats["kept"] += 1
            else:
                os.unlink(path)
                stats["corrupt_removed"] += 1
        return stats

    def __len__(self) -> int:
        """Record-file count — O(directory), no parsing.  May include
        structurally-corrupt files :meth:`records` would skip; run
        :meth:`gc` to reconcile."""
        if not os.path.isdir(self.store_dir):
            return 0
        return sum(1 for name in os.listdir(self.store_dir)
                   if name.endswith(".json"))
