"""Named sweeps the CLI can list and run.

Each sweep maps CLI options onto one experiment module's runner-backed
grid function and renders the same summary rows the benchmark suite
prints.  Registered here (vs. hard-coded in the CLI) so future
experiments plug in with one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.runner.store import ResultStore


@dataclass
class SweepReport:
    """One finished sweep: a rendered table plus the raw grid."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    payload: Any


@dataclass
class SweepDef:
    name: str
    description: str
    #: default sweep points when --points is not given
    default_points: Sequence[int]
    run: Callable[..., SweepReport]
    #: True when the sweep understands --topology / --validate; the CLI
    #: rejects those flags for sweeps that do not
    accepts_topology: bool = False
    #: when set, the CLI validates --schemes tokens against this
    #: vocabulary instead of the scheme registry (the search sweep
    #: repurposes --schemes to pick its preset)
    scheme_vocab: Optional[Callable[[], Sequence[str]]] = None


def _rtt_ms(rtts_ns: Sequence[int], pct: float) -> str:
    from repro.metrics.stats import percentile

    return f"{percentile(rtts_ns, pct) / 1e6:.2f}" if rtts_ns else "nan"


def _grid_rows(grid, point_attr: str) -> List[List[object]]:
    rows = []
    for scheme, points in grid.items():
        for p in points:
            rows.append([
                scheme,
                getattr(p, point_attr),
                f"{p.mean_tput_bps / 1e9:.2f}",
                f"{p.loss_rate:.4%}",
                f"{p.fairness:.3f}",
                _rtt_ms(p.rtts_ns, 50),
                _rtt_ms(p.rtts_ns, 99),
            ])
    return rows


def _run_scalability(
    schemes: Sequence[str],
    points: Sequence[int],
    seeds: Sequence[int],
    warm_ns: int,
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
) -> SweepReport:
    from repro.experiments.scalability import DEFAULT_SCHEMES, run_scalability

    grid = run_scalability(
        schemes=schemes or DEFAULT_SCHEMES,
        path_counts=points,
        seeds=seeds,
        warm_ns=warm_ns,
        measure_ns=measure_ns,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log,
        telemetry=telemetry, fidelity=fidelity, service=service,
    )
    headers = ["scheme", "paths", "tput Gbps", "loss", "jain",
               "rtt p50 ms", "rtt p99 ms"]
    return SweepReport("scalability", headers, _grid_rows(grid, "n_paths"), grid)


def _run_oversub(
    schemes: Sequence[str],
    points: Sequence[int],
    seeds: Sequence[int],
    warm_ns: int,
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
) -> SweepReport:
    from repro.experiments.oversub import DEFAULT_SCHEMES, run_oversub

    grid = run_oversub(
        schemes=schemes or DEFAULT_SCHEMES,
        pair_counts=points,
        seeds=seeds,
        warm_ns=warm_ns,
        measure_ns=measure_ns,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log,
        telemetry=telemetry, fidelity=fidelity, service=service,
    )
    headers = ["scheme", "pairs", "tput Gbps", "loss", "jain",
               "rtt p50 ms", "rtt p99 ms"]
    return SweepReport("oversub", headers, _grid_rows(grid, "n_pairs"), grid)


def _run_synthetic(
    schemes: Sequence[str],
    points: Sequence[int],  # unused: synthetic sweeps workloads, not sizes
    seeds: Sequence[int],
    warm_ns: int,
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
) -> SweepReport:
    from repro.experiments.synthetic import (
        DEFAULT_SCHEMES,
        WORKLOADS,
        run_figure15_16,
    )

    grid = run_figure15_16(
        schemes=schemes or DEFAULT_SCHEMES,
        workloads=WORKLOADS,
        seeds=seeds,
        warm_ns=warm_ns,
        measure_ns=measure_ns,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log,
        telemetry=telemetry, fidelity=fidelity, service=service,
    )
    headers = ["scheme", "workload", "tput Gbps", "mice p50 ms", "mice p99 ms"]
    rows = []
    for (scheme, workload), res in grid.items():
        pct = res.mice_percentiles_ms()
        rows.append([
            scheme, workload,
            f"{res.mean_elephant_tput_bps / 1e9:.2f}",
            f"{pct['p50']:.2f}" if pct else "nan",
            f"{pct['p99']:.2f}" if pct else "nan",
        ])
    return SweepReport("synthetic", headers, rows, grid)


def _run_fabric(
    schemes: Sequence[str],
    points: Sequence[int],  # unused: fabric sweeps topologies, not sizes
    seeds: Sequence[int],
    warm_ns: int,  # unused: trace cells measure from t=0 with a drain tail
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
    topologies: Sequence[str] = (),
    validate: bool = False,
) -> SweepReport:
    from repro.experiments.fabric_sweep import (
        DEFAULT_SCHEMES,
        DEFAULT_TOPOLOGIES,
        DEFAULT_WORKLOADS,
        run_fabric_sweep,
    )

    grid = run_fabric_sweep(
        topologies=topologies or DEFAULT_TOPOLOGIES,
        workloads=DEFAULT_WORKLOADS,
        schemes=schemes or DEFAULT_SCHEMES,
        seeds=seeds,
        duration_ns=measure_ns,
        validate=validate,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log,
        telemetry=telemetry, service=service,
        fidelity=fidelity if fidelity is not None else "flow",
    )
    headers = ["topology", "workload", "scheme", "flows",
               "fct p50 ms", "fct p99 ms", "fct p99.9 ms"]
    rows = []
    for (topology, workload, scheme), cells in grid.items():
        total = sum(c.flows_completed for c in cells)
        # report the worst seed's percentiles: tail metrics average badly
        tail = max(cells, key=lambda c: c.fct_summary.get("p99") or 0.0)

        def _ms(key):
            v = tail.fct_summary.get(key)
            return f"{v / 1e6:.2f}" if v is not None else "nan"

        rows.append([topology, workload, scheme, total,
                     _ms("p50"), _ms("p99"), _ms("p99.9")])
    return SweepReport("fabric", headers, rows, grid)


def _run_tournament(
    schemes: Sequence[str],
    points: Sequence[int],  # unused: the tournament grid is fixed
    seeds: Sequence[int],
    warm_ns: int,  # unused: tournament cells measure from t=0
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
    topologies: Sequence[str] = (),
    validate: bool = False,
) -> SweepReport:
    from repro.experiments.tournament import (
        DEFAULT_TOPOLOGIES,
        run_tournament,
        standings_rows,
    )

    result = run_tournament(
        schemes=schemes,
        topologies=topologies or DEFAULT_TOPOLOGIES,
        seeds=seeds,
        duration_ns=measure_ns,
        validate=validate,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log,
        telemetry=telemetry, service=service,
        fidelity=fidelity if fidelity is not None else "flow",
    )
    headers = ["rank", "scheme", "mean place", "wins", "cells"]
    return SweepReport("tournament", headers, standings_rows(result), result)


def _search_presets() -> Sequence[str]:
    from repro.search.driver import PRESETS

    return sorted(PRESETS)


def _run_search(
    schemes: Sequence[str],
    points: Sequence[int],  # unused: the search budget comes from the preset
    seeds: Sequence[int],
    warm_ns: int,  # unused: fitness cells use the preset's windows
    measure_ns: int,
    *,
    jobs: int,
    store: Optional[ResultStore],
    force: bool,
    timeout_s: Optional[float],
    retries: int = 1,
    log=None,
    telemetry=None,
    fidelity=None,
    service: Optional[str] = None,
) -> SweepReport:
    from dataclasses import replace

    from repro.search.driver import PRESETS, run_search

    # --schemes names the preset here (searches fix their own scheme);
    # default is the CI-friendly smoke preset, not the committed paper
    # run, so `runner run search` stays cheap by default.
    preset = schemes[0] if schemes else "smoke"
    if preset not in PRESETS:
        raise ValueError(
            f"unknown search preset {preset!r}; pick from "
            f"{sorted(PRESETS)} (searches pin their own scheme, so "
            f"--schemes selects the preset)")
    settings = PRESETS[preset]
    overrides = {}
    if seeds:
        overrides["eval_seeds"] = tuple(seeds)
    if fidelity is not None:
        overrides["fidelity"] = fidelity
    if overrides:
        settings = replace(settings, **overrides)
    result, _stats = run_search(
        settings,
        jobs=jobs, store=store, force=force, timeout_s=timeout_s,
        retries=retries, log=log, service=service,
    )
    headers = ["rank"] + [k["name"] for k in result.knobs] + [
        "mice FCT us", "gen"]
    rows = []
    for rank, rec in enumerate(result.frontier[:10], start=1):
        fct = (f"{rec.fitness_ns / 1e3:.1f}"
               if rec.fitness_ns is not None else "n/a")
        rows.append([rank]
                    + [rec.knobs[k["name"]] for k in result.knobs]
                    + [fct, rec.generation])
    return SweepReport("search", headers, rows, result)


SWEEPS = {
    "scalability": SweepDef(
        name="scalability",
        description="Figs 7-9: throughput/RTT/loss/fairness vs path count "
                    "(2 leaves, N spines)",
        default_points=(2, 4, 8),
        run=_run_scalability,
    ),
    "oversub": SweepDef(
        name="oversub",
        description="Figs 10-12: the same metrics as the fabric "
                    "oversubscribes 1x-4x (2 spines, N host pairs)",
        default_points=(2, 4, 8),
        run=_run_oversub,
    ),
    "synthetic": SweepDef(
        name="synthetic",
        description="Figs 15-16: shuffle/random/stride/bijection elephants "
                    "+ mice FCTs on the 16-host Clos",
        default_points=(),
        run=_run_synthetic,
    ),
    "fabric": SweepDef(
        name="fabric",
        description="Datacenter-scale: websearch/datamining traces + incast "
                    "over fat-tree/leaf-spine fabrics (--topology; flow "
                    "fidelity by default)",
        default_points=(),
        run=_run_fabric,
        accepts_topology=True,
    ),
    "tournament": SweepDef(
        name="tournament",
        description="Scheme zoo standings: every registered scheme x "
                    "websearch/datamining/incast x three fabrics, "
                    "Borda-ranked by mice FCT (see "
                    "repro.experiments.tournament)",
        default_points=(),
        run=_run_tournament,
        accepts_topology=True,
    ),
    "search": SweepDef(
        name="search",
        description="GA + successive-halving parameter search over the "
                    "Presto design space; --schemes picks the preset "
                    "(smoke/paper/failover/zoo — see python -m "
                    "repro.search list)",
        default_points=(),
        run=_run_search,
        scheme_vocab=_search_presets,
    ),
}
