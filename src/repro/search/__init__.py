"""repro.search — closed-loop parameter search over the Presto design
space (ROADMAP item 5).

The paper hand-sets its constants: 64 KB flowcells, GRO alpha/EWMA
timeouts, controller detection/reaction delays, failover latency, the
zoo's mice/elephant size thresholds.  This package asks the simulator
what the paper could not: a seeded genetic algorithm refines candidate
configurations while successive halving prunes them rung by rung, and
every fitness evaluation is an ordinary multi-seed sweep of
:class:`repro.runner.JobSpec` cells — hash-cached in the
``ResultStore``, fanned over ``--jobs`` processes or a ``--service``
coordinator, byte-reproducible end to end.

Layers (each importable on its own):

``space``    declarative :class:`ParamSpace`: named knobs mapped onto
             ``TestbedConfig`` fields with log/linear/choice lattices.
``halving``  pure successive-halving rung arithmetic.
``ga``       seeded sample/crossover/mutate/selection operators.
``fitness``  the picklable per-(config, seed) fitness cell.
``driver``   the search loop + the committed ``SEARCH.json`` artifact.
``cli``      ``python -m repro.search`` (also ``runner run search``).
"""

from repro.search.driver import (
    PRESETS,
    RunStats,
    SearchResult,
    SearchSettings,
    run_search,
    search_json,
)
from repro.search.ga import crossover, mutate, next_generation, sample_population
from repro.search.halving import Rung, halving_schedule
from repro.search.space import Param, ParamSpace

__all__ = [
    "Param",
    "ParamSpace",
    "Rung",
    "halving_schedule",
    "sample_population",
    "crossover",
    "mutate",
    "next_generation",
    "SearchSettings",
    "SearchResult",
    "RunStats",
    "PRESETS",
    "run_search",
    "search_json",
]
