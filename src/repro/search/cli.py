"""``python -m repro.search`` — run or list parameter searches.

Mirrors the tournament CLI's artifact contract: ``run`` writes (or,
with ``--check``, byte-compares) the committed ``SEARCH.json``;
``--markdown`` adds the human report.  Every runner execution flag
(``--jobs``, ``--force``, ``--results-dir``, ``--service``,
``--timeout``, ``--retries``) passes straight through to the fitness
sweeps.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.runner import ResultStore
from repro.search.driver import (
    PRESETS,
    SearchSettings,
    render_markdown,
    run_search,
    search_json,
)

SEARCH_PATH = "SEARCH.json"


def _csv_ints(text: Optional[str]) -> Tuple[int, ...]:
    return tuple(int(s) for s in (text or "").split(",") if s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.search",
        description="Closed-loop GA + successive-halving search over "
                    "the Presto design space (ROADMAP item 5).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="show the available presets")
    lister.set_defaults(command="list")

    run = sub.add_parser(
        "run",
        help="run a search and write (or --check) SEARCH.json")
    run.add_argument(
        "--preset", default="paper", choices=sorted(PRESETS),
        help="search preset (default: paper — the committed artifact)")
    run.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="GA seed (default: the preset's)")
    run.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="candidates per generation (default: the preset's)")
    run.add_argument(
        "--generations", type=int, default=None, metavar="N",
        help="GA generations (default: the preset's)")
    run.add_argument(
        "--eta", type=int, default=None, metavar="N",
        help="halving rate (default: the preset's)")
    run.add_argument(
        "--base-seeds", type=int, default=None, metavar="N",
        help="seeds per candidate on the first rung (default: preset)")
    run.add_argument(
        "--eval-seeds", default=None, metavar="S1,S2,...",
        help="simulator seeds per full fitness evaluation "
             "(default: the preset's)")
    run.add_argument(
        "--fidelity", choices=("packet", "flow"), default=None,
        help="fitness-cell engine fidelity (default: the preset's)")
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: serial)")
    run.add_argument(
        "--force", action="store_true",
        help="invalidate cached fitness cells and re-run")
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout")
    run.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-runs per failing cell (default: 1)")
    run.add_argument(
        "--service", default=None, metavar="URL",
        help="evaluate fitness cells on a sweep coordinator "
             "(python -m repro.service coordinator) instead of a "
             "local pool, e.g. http://127.0.0.1:8642")
    run.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="result-store root (default: $REPRO_RESULTS_DIR or "
             "benchmarks/results)")
    run.add_argument(
        "--out", default=SEARCH_PATH, metavar="FILE",
        help=f"artifact path (default: {SEARCH_PATH})")
    run.add_argument(
        "--check", action="store_true",
        help="compare against the committed --out file instead of "
             "writing it; exit 1 on any drift")
    run.add_argument(
        "--markdown", default=None, metavar="FILE",
        help="also write the markdown report to FILE")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job progress lines")
    return parser


def settings_from_args(ns) -> SearchSettings:
    settings = PRESETS[ns.preset]
    overrides = {}
    if ns.seed is not None:
        overrides["ga_seed"] = ns.seed
    if ns.population is not None:
        overrides["population"] = ns.population
    if ns.generations is not None:
        overrides["generations"] = ns.generations
    if ns.eta is not None:
        overrides["eta"] = ns.eta
    if ns.base_seeds is not None:
        overrides["base_seeds"] = ns.base_seeds
    if ns.eval_seeds is not None:
        overrides["eval_seeds"] = _csv_ints(ns.eval_seeds)
    if ns.fidelity is not None:
        overrides["fidelity"] = ns.fidelity
    return replace(settings, **overrides) if overrides else settings


def _run(ns) -> int:
    try:
        settings = settings_from_args(ns)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    store = ResultStore(ns.results_dir)
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    try:
        result, stats = run_search(
            settings,
            jobs=ns.jobs,
            store=store,
            force=ns.force,
            timeout_s=ns.timeout,
            retries=ns.retries,
            log=log,
            service=ns.service,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    payload = search_json(result)
    report = render_markdown(result)
    print(report)
    print(f"runner: {stats.submitted} submitted, {stats.executed} "
          f"executed, {stats.cached} store hits", file=sys.stderr)
    if ns.markdown:
        with open(ns.markdown, "w") as fh:
            fh.write(report)
        print(f"saved {ns.markdown}", file=sys.stderr)

    if ns.check:
        try:
            with open(ns.out) as fh:
                committed = fh.read()
        except OSError as exc:
            print(f"--check: cannot read {ns.out}: {exc}", file=sys.stderr)
            return 1
        if committed == payload:
            print(f"--check: {ns.out} reproduced byte-for-byte",
                  file=sys.stderr)
            return 0
        old = json.loads(committed)
        new = json.loads(payload)
        for key in ("preset", "ga_seed", "evaluated"):
            a = old.get("fields", old).get(key)
            b = new.get("fields", new).get(key)
            if a != b:
                print(f"--check: {key} drifted: committed {a!r} != "
                      f"new {b!r}", file=sys.stderr)
        print(f"--check: {ns.out} drifted from this run "
              f"(regenerate with the same flags and review the diff)",
              file=sys.stderr)
        return 1

    with open(ns.out, "w") as fh:
        fh.write(payload)
    print(f"saved {ns.out}", file=sys.stderr)
    return 0


def _list() -> int:
    for name in sorted(PRESETS):
        settings = PRESETS[name]
        knobs = ", ".join(p.name for p in settings.space.params)
        fidelity = settings.fidelity or "packet"
        extras = ", link-failure scenario" if settings.disrupt else ""
        print(f"{name:10s} scheme={settings.scheme} fidelity={fidelity} "
              f"pop={settings.population}x{settings.generations} "
              f"seeds={','.join(str(s) for s in settings.eval_seeds)} "
              f"knobs=[{knobs}]{extras}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    if ns.command == "list":
        return _list()
    return _run(ns)


if __name__ == "__main__":
    raise SystemExit(main())
