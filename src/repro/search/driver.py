"""The search loop: seeded GA x successive halving over runner sweeps.

One *candidate* is a genome over the preset's :class:`ParamSpace`; its
fitness is the mean mice FCT of :func:`repro.search.fitness.
run_search_cell` over the evaluation seeds.  Each generation runs its
novel candidates through a successive-halving ladder
(:mod:`repro.search.halving`): everybody gets ``base_seeds`` cheap
seeds, the best ``1/eta`` fraction is promoted with ``eta`` x the seed
budget, and only ladder survivors carry full-seed fitness.  The GA
(:mod:`repro.search.ga`) then breeds the next generation from the
best-first ranking.  Candidates are deduped by genome — equivalently
by config hash, since lattices are deterministic — so a re-proposed
candidate costs nothing, and *every* job goes through the runner's
``ResultStore``, where a promoted candidate's earlier-seed jobs are
cache hits rather than re-executions.

Determinism contract (pinned by tests/test_search.py): the serialized
:class:`SearchResult` is a pure function of the settings and the GA
seed.  No timestamps, no wall-clock, no dict-order dependence; the
``store`` section counts *structural* hits (jobs this search submitted
more than once) rather than live cache state, so the bytes reproduce
against a cold store and a warm one alike.  Live cache behaviour is
returned separately as :class:`RunStats` for callers that care.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import TestbedConfig
from repro.runner import JobSpec, ResultStore, collect_results, run_jobs
from repro.runner.pool import STATUS_CACHED
from repro.runner.serialize import content_hash
from repro.search.fitness import (
    DEFAULT_MEASURE_NS,
    DEFAULT_WARM_NS,
    run_search_cell,
)
from repro.search.ga import next_generation, sample_population
from repro.search.halving import halving_schedule
from repro.search.space import Genome, Param, ParamSpace
from repro.units import KB, msec, usec

DEFAULT_SEEDS = (1, 2, 3)

#: the constants the paper hand-set, for the found-vs-paper report
PAPER_CONSTANTS: Dict[str, Any] = {
    "flowcell_bytes": 64 * KB,
    "gro_alpha": 2.0,
    "gro_initial_ewma_ns": usec(150),
    "gro_ewma_gain": 0.125,
    "presto_mode": "rr",
    "ctrl_detection_delay_ns": msec(10),
    "ctrl_reaction_delay_ns": msec(5),
    "failover_latency_ns": msec(2),
    # DiffFlow's mice/elephant cutoff (Carpio et al.), not Presto's
    "zoo_threshold_bytes": 100 * KB,
}


@dataclass(frozen=True)
class SearchSettings:
    """Everything one search run depends on (all of it serialized)."""

    preset: str
    scheme: str
    space: ParamSpace
    #: GA seed — the *only* source of randomness in the whole search
    ga_seed: int = 1
    population: int = 12
    generations: int = 2
    eta: int = 2
    base_seeds: int = 1
    #: simulator seeds one full fitness evaluation averages over
    eval_seeds: Tuple[int, ...] = DEFAULT_SEEDS
    #: engine fidelity for fitness cells (None = packet)
    fidelity: Optional[str] = None
    #: arm the link-failure scenario in every fitness cell
    disrupt: bool = False
    warm_ns: int = DEFAULT_WARM_NS
    measure_ns: int = DEFAULT_MEASURE_NS

    def __post_init__(self):
        if self.population < 2:
            raise ValueError(
                f"population must be >= 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(
                f"generations must be >= 1, got {self.generations}")
        if not self.eval_seeds:
            raise ValueError("eval_seeds must name at least one seed")
        if len(set(self.eval_seeds)) != len(self.eval_seeds):
            raise ValueError(f"duplicate eval_seeds {self.eval_seeds}")

    def config(self, genome: Genome, seed: int) -> TestbedConfig:
        base = TestbedConfig(
            scheme=self.scheme, seed=seed, fidelity=self.fidelity)
        return self.space.apply(base, genome)

    def cell_kwargs(self) -> Dict[str, Any]:
        """Fitness-cell kwargs, defaults omitted for hash hygiene."""
        kwargs: Dict[str, Any] = {}
        if self.warm_ns != DEFAULT_WARM_NS:
            kwargs["warm_ns"] = self.warm_ns
        if self.measure_ns != DEFAULT_MEASURE_NS:
            kwargs["measure_ns"] = self.measure_ns
        if self.disrupt:
            kwargs["disrupt"] = True
        return kwargs


@dataclass
class CandidateRecord:
    """One evaluated candidate, as it appears in ``SEARCH.json``."""

    #: content hash of the candidate's seed-independent knob values
    config_hash: str
    knobs: Dict[str, Any]
    genome: Tuple[int, ...]
    #: generation that first proposed this candidate
    generation: int
    #: seeds evaluated so far (== len(eval_seeds) for the frontier)
    n_seeds: int = 0
    #: mean over per-seed mean mice FCTs; None when no mouse finished
    fitness_ns: Optional[float] = None
    per_seed_fct_ns: List[Optional[float]] = field(default_factory=list)


@dataclass
class RungLog:
    """One halving rung's budget accounting."""

    generation: int
    rung: int
    survivors: int
    cum_seeds: int
    #: jobs submitted at this rung (store hits included)
    submitted: int
    #: jobs this search had not submitted before this rung
    new_evals: int


@dataclass
class RunStats:
    """Live runner accounting for one call — NOT serialized, because a
    warm store flips executed jobs to cached ones while the committed
    artifact must stay byte-identical either way."""

    submitted: int = 0
    executed: int = 0
    cached: int = 0


@dataclass
class SearchResult:
    """The whole search: settings echo, rung budgets, ranked frontier."""

    preset: str
    scheme: str
    fidelity: str
    disrupt: bool
    ga_seed: int
    population: int
    generations: int
    eta: int
    base_seeds: int
    eval_seeds: Tuple[int, ...]
    warm_ns: int
    measure_ns: int
    knobs: List[Dict[str, Any]]
    space_size: int
    #: distinct candidates evaluated (post-dedupe)
    evaluated: int
    rungs: List[RungLog]
    #: full-seed candidates, best (lowest mean mice FCT) first
    frontier: List[CandidateRecord]
    #: found-vs-paper per searched knob (see ``paper_comparison``)
    paper_deltas: List[Dict[str, Any]]
    #: structural store accounting: submissions vs first submissions
    store: Dict[str, Any]


def _fitness(per_seed: Sequence[Optional[float]]) -> Optional[float]:
    present = [v for v in per_seed if v is not None]
    return sum(present) / len(present) if present else None


def _rank_key(rec: CandidateRecord):
    """Best-first total order: more seeds beat fewer (their fitness is
    trustworthy), then lower FCT, then hash for full determinism."""
    return (
        -rec.n_seeds,
        rec.fitness_ns if rec.fitness_ns is not None else math.inf,
        rec.config_hash,
    )


def paper_comparison(space: ParamSpace,
                     best: Optional[CandidateRecord]) -> List[Dict[str, Any]]:
    """Found-vs-paper rows for every searched knob.

    ``lattice_steps`` is the index distance between the found value and
    the paper's, when the paper constant sits on the lattice — the
    "within one rung of 64 KB" acceptance check, as data.
    """
    rows = []
    for param, lattice in zip(space.params, space.lattices()):
        paper = PAPER_CONSTANTS.get(param.name)
        found = best.knobs[param.name] if best is not None else None
        steps = None
        if paper in lattice and found is not None:
            steps = abs(lattice.index(found) - lattice.index(paper))
        rows.append({
            "knob": param.name,
            "paper": paper,
            "found": found,
            "lattice_steps": steps,
            "within_one_step": None if steps is None else steps <= 1,
        })
    return rows


def run_search(
    settings: SearchSettings,
    *,
    jobs: Optional[int] = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    log=None,
    service: Optional[str] = None,
) -> Tuple[SearchResult, RunStats]:
    """Run the full search; returns the serializable result and the
    live runner stats (the latter deliberately kept out of the JSON)."""
    space = settings.space
    seeds = settings.eval_seeds
    # screen every lattice extreme through TestbedConfig validation
    # before queueing anything
    space.validate(TestbedConfig(scheme=settings.scheme, seed=seeds[0],
                                 fidelity=settings.fidelity))
    rng = random.Random(settings.ga_seed)
    records: Dict[Genome, CandidateRecord] = {}
    rung_logs: List[RungLog] = []
    stats = RunStats()
    submitted_hashes: set = set()
    structural_submitted = 0
    cell_kwargs = settings.cell_kwargs()

    def make_spec(genome: Genome, seed: int) -> JobSpec:
        rec = records[genome]
        return JobSpec.make(
            run_search_cell,
            cfg=settings.config(genome, seed),
            label=f"search/{settings.preset}/{rec.config_hash[:8]}"
                  f"/seed{seed}",
            **cell_kwargs,
        )

    def evaluate_rung(alive: List[Genome], cum_seeds: int) -> Tuple[int, int]:
        """Submit seeds[:cum_seeds] for each genome; returns
        (submitted, structurally-new) job counts."""
        nonlocal structural_submitted
        specs = [make_spec(g, seed)
                 for g in alive for seed in seeds[:cum_seeds]]
        fresh = 0
        for spec in specs:
            if spec.hash not in submitted_hashes:
                submitted_hashes.add(spec.hash)
                fresh += 1
        structural_submitted += len(specs)
        outcomes = run_jobs(
            specs, jobs=jobs, store=store, force=force,
            timeout_s=timeout_s, retries=retries, log=log, service=service)
        stats.submitted += len(specs)
        for outcome in outcomes:
            if outcome.status == STATUS_CACHED:
                stats.cached += 1
            else:
                stats.executed += 1
        results = collect_results(outcomes)
        it = iter(results)
        for genome in alive:
            per_seed = [next(it)["mean_mice_fct_ns"]
                        for _ in seeds[:cum_seeds]]
            rec = records[genome]
            rec.per_seed_fct_ns = per_seed
            rec.n_seeds = cum_seeds
            rec.fitness_ns = _fitness(per_seed)
        return len(specs), fresh

    population: List[Genome] = sample_population(
        space, settings.population, rng)
    for generation in range(settings.generations):
        if generation > 0:
            ranked = sorted(records.values(), key=_rank_key)
            population = next_generation(
                space, [r.genome for r in ranked], settings.population,
                rng, seen=records)
        cohort = [g for g in population if g not in records]
        if not cohort:
            break  # the GA found nothing novel: converged
        for genome in cohort:
            knobs = space.decode(genome)
            records[genome] = CandidateRecord(
                config_hash=content_hash(
                    {"scheme": settings.scheme, "knobs": knobs}),
                knobs=knobs,
                genome=tuple(genome),
                generation=generation,
            )
        alive = list(cohort)
        for rung in halving_schedule(len(cohort), len(seeds),
                                     settings.eta, settings.base_seeds):
            if rung.index > 0:
                alive = sorted(
                    alive, key=lambda g: _rank_key(records[g])
                )[:rung.survivors]
            submitted, fresh = evaluate_rung(alive, rung.cum_seeds)
            rung_logs.append(RungLog(
                generation=generation,
                rung=rung.index,
                survivors=len(alive),
                cum_seeds=rung.cum_seeds,
                submitted=submitted,
                new_evals=fresh,
            ))

    frontier = sorted(
        (r for r in records.values() if r.n_seeds == len(seeds)),
        key=_rank_key)
    best = frontier[0] if frontier else None
    new_evals = len(submitted_hashes)
    result = SearchResult(
        preset=settings.preset,
        scheme=settings.scheme,
        fidelity=settings.fidelity or "packet",
        disrupt=settings.disrupt,
        ga_seed=settings.ga_seed,
        population=settings.population,
        generations=settings.generations,
        eta=settings.eta,
        base_seeds=settings.base_seeds,
        eval_seeds=tuple(seeds),
        warm_ns=settings.warm_ns,
        measure_ns=settings.measure_ns,
        knobs=list(space.table()),
        space_size=space.size(),
        evaluated=len(records),
        rungs=rung_logs,
        frontier=frontier,
        paper_deltas=paper_comparison(space, best),
        store={
            "submitted": structural_submitted,
            "new_evals": new_evals,
            "hit_rate": round(
                1.0 - new_evals / structural_submitted, 4)
            if structural_submitted else 0.0,
        },
    )
    return result, stats


# --- presets -----------------------------------------------------------------

PRESETS: Dict[str, SearchSettings] = {
    # The committed search: the paper's own operating point.  Packet
    # fidelity on purpose — flowcell size and the GRO constants act
    # through reordering and hold timeouts, which the fluid engine's
    # smooth rate sharing does not model (its mice FCT is flat below
    # 64 KB; see EXPERIMENTS.md "Parameter search").
    "paper": SearchSettings(
        preset="paper",
        scheme="presto",
        space=ParamSpace((
            Param("flowcell_bytes", "log", lo=16 * KB, hi=512 * KB,
                  steps=6, integer=True),
            Param("gro_alpha", "log", lo=0.5, hi=8.0, steps=5),
            Param("gro_initial_ewma_ns", "log", lo=18750, hi=300000,
                  steps=5, integer=True),
            Param("presto_mode", "choice", choices=("rr", "random")),
        )),
    ),
    # Controller-delay / failover-latency tradeoff under a real link
    # failure (the Liang & Borst delay-vs-stickiness axis).
    "failover": SearchSettings(
        preset="failover",
        scheme="presto",
        disrupt=True,
        space=ParamSpace((
            Param("ctrl_detection_delay_ns", "log",
                  lo=usec(250), hi=msec(4), steps=5, integer=True),
            Param("ctrl_reaction_delay_ns", "log",
                  lo=usec(125), hi=msec(2), steps=5, integer=True),
            Param("failover_latency_ns", "log",
                  lo=usec(62), hi=msec(1), steps=5, integer=True),
        )),
        population=8,
    ),
    # DiffFlow's mice/elephant cutoff sensitivity (Carpio et al.).
    "zoo": SearchSettings(
        preset="zoo",
        scheme="diffflow",
        space=ParamSpace((
            Param("zoo_threshold_bytes", "log", lo=25 * KB, hi=400 * KB,
                  steps=5, integer=True),
            Param("flowcell_bytes", "log", lo=32 * KB, hi=128 * KB,
                  steps=3, integer=True),
        )),
        population=6,
        generations=1,
    ),
    # CI smoke: flow fidelity, two seeds, one generation — seconds.
    "smoke": SearchSettings(
        preset="smoke",
        scheme="presto",
        fidelity="flow",
        space=ParamSpace((
            Param("flowcell_bytes", "log", lo=16 * KB, hi=256 * KB,
                  steps=5, integer=True),
            Param("presto_mode", "choice", choices=("rr", "random")),
        )),
        population=4,
        generations=1,
        eval_seeds=(1, 2),
    ),
}


# --- reports -----------------------------------------------------------------


def search_json(result: SearchResult) -> str:
    """Committed-artifact bytes: sorted keys, no timestamps, trailing
    newline — same contract as ``TOURNAMENT.json``."""
    import json

    from repro.runner.serialize import to_jsonable

    return json.dumps(to_jsonable(result), indent=2, sort_keys=True) + "\n"


def _fmt(value: Any) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _us(value: Optional[float]) -> str:
    return f"{value / 1e3:.1f}" if value is not None else "n/a"


def render_markdown(result: SearchResult) -> str:
    """Human-readable search report (GitHub-flavored markdown)."""
    lines = [
        "# Parameter search",
        "",
        f"Preset `{result.preset}`: scheme `{result.scheme}` at "
        f"{result.fidelity} fidelity"
        + (", link-failure scenario armed" if result.disrupt else "")
        + f"; GA seed {result.ga_seed}, population {result.population} "
        f"x {result.generations} generation(s), halving eta "
        f"{result.eta} from {result.base_seeds} seed(s) over "
        f"{len(result.eval_seeds)} evaluation seeds.",
        "",
        f"Evaluated {result.evaluated} of {result.space_size} possible "
        f"candidates; {result.store['new_evals']} cell evaluations for "
        f"{result.store['submitted']} submissions "
        f"(structural store hit rate "
        f"{result.store['hit_rate']:.0%}).",
        "",
        "## Knobs",
        "",
        "| knob | kind | lattice |",
        "| --- | --- | --- |",
    ]
    for knob in result.knobs:
        values = ", ".join(_fmt(v) for v in knob["values"])
        lines.append(f"| {knob['name']} | {knob['kind']} | {values} |")
    lines += [
        "",
        "## Rung schedule",
        "",
        "| generation | rung | survivors | cum seeds | submitted | new |",
        "| ---: | ---: | ---: | ---: | ---: | ---: |",
    ]
    for rung in result.rungs:
        lines.append(
            f"| {rung.generation} | {rung.rung} | {rung.survivors} "
            f"| {rung.cum_seeds} | {rung.submitted} | {rung.new_evals} |")
    lines += [
        "",
        "## Frontier",
        "",
        "Full-seed candidates, best mean mice FCT first.",
        "",
        "| rank | " + " | ".join(k["name"] for k in result.knobs)
        + " | mean mice FCT (us) | gen |",
        "| ---: | " + " | ".join("---:" for _ in result.knobs)
        + " | ---: | ---: |",
    ]
    for rank, rec in enumerate(result.frontier[:10], start=1):
        knobs = " | ".join(_fmt(rec.knobs[k["name"]])
                           for k in result.knobs)
        lines.append(f"| {rank} | {knobs} | {_us(rec.fitness_ns)} "
                     f"| {rec.generation} |")
    lines += [
        "",
        "## Found vs paper",
        "",
        "`lattice_steps` is the index distance between the best found",
        "value and the paper's constant on the searched lattice (n/a",
        "when the paper value is off-lattice).",
        "",
        "| knob | paper | found | lattice steps |",
        "| --- | ---: | ---: | ---: |",
    ]
    for row in result.paper_deltas:
        steps = _fmt(row["lattice_steps"])
        if row["within_one_step"] is not None:
            steps += " (ok)" if row["within_one_step"] else " (drifted)"
        lines.append(f"| {row['knob']} | {_fmt(row['paper'])} "
                     f"| {_fmt(row['found'])} | {steps} |")
    lines.append("")
    return "\n".join(lines)
