"""The fitness cell: one (candidate config, seed) trial, runner-ready.

One candidate's fitness is the mean mice FCT over a small multi-seed
sweep of this cell — mice latency is the paper's headline metric and
the quantity every knob in the space plausibly moves (cell size via
reordering, GRO constants via hold timeouts, controller delays via
blackhole windows, zoo thresholds via spray/pin misclassification).

The cell is a module-level function of ``(TestbedConfig, kwargs)`` so
:class:`repro.runner.JobSpec` can hash, pickle, cache, and ship it to
``--service`` workers like any other experiment cell.  The workload is
derived deterministically from the config's own topology + seed — no
pair lists ride in the kwargs, keeping spec hashes small and stable.

``disrupt=True`` turns the trial into a failure scenario: a spine
uplink drops a third of the way into the measurement window with fast
failover and the control plane armed, so the controller-delay and
failover-latency knobs actually price the blackhole they govern.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import START_JITTER_NS
from repro.experiments.harness import Testbed, TestbedConfig
from repro.faults.schedule import FaultSchedule, LinkDown
from repro.metrics.collectors import LossAccountant, ThroughputMeter
from repro.metrics.stats import mean, percentile
from repro.units import KB, msec

DEFAULT_WARM_NS = msec(3)
DEFAULT_MEASURE_NS = msec(6)
DEFAULT_MICE_SIZE = 50 * KB
DEFAULT_MICE_INTERVAL_NS = msec(1)


def cross_rack_pairs(cfg: TestbedConfig) -> Tuple[List[Tuple[int, int]],
                                                  List[Tuple[int, int]]]:
    """(elephant, mice) pairs for the config's fabric, all cross-rack.

    Elephants: the first half of each rack sends to the same slot one
    rack over (a rotation — every uplink loaded, every pair multipath).
    Mice: the last host of each of up to four racks sends to its peer
    two racks over, so mice share links with elephants without sharing
    hosts.
    """
    spec = cfg.topology_spec()
    racks = spec.n_edges()
    per_rack = spec.hosts_per_edge()
    if racks < 2:
        raise ValueError(
            f"search workload needs >= 2 racks, got {racks}")
    elephants = []
    for rack in range(racks):
        for slot in range(max(1, per_rack // 2)):
            src = rack * per_rack + slot
            dst = ((rack + 1) % racks) * per_rack + slot
            elephants.append((src, dst))
    mice = []
    for rack in range(min(racks, 4)):
        src = rack * per_rack + (per_rack - 1)
        dst = ((rack + 2) % racks) * per_rack + (per_rack - 1)
        if src != dst:
            mice.append((src, dst))
    return elephants, mice


def run_search_cell(
    cfg: TestbedConfig,
    warm_ns: int = DEFAULT_WARM_NS,
    measure_ns: int = DEFAULT_MEASURE_NS,
    mice_size: int = DEFAULT_MICE_SIZE,
    mice_interval_ns: int = DEFAULT_MICE_INTERVAL_NS,
    disrupt: bool = False,
) -> Dict[str, float]:
    """One seeded trial of the search workload; returns plain metrics.

    The FCT population is every mouse completing after the warm-up
    mark, so a ``disrupt`` blackhole mid-window shows up in the mean
    rather than being averaged away by a trailing steady state.
    """
    tb = Testbed(cfg)
    if disrupt:
        tb.controller.enable_fast_failover(cfg.failover_latency_ns)
        tb.enable_control_plane()
        # drop the first rack's first uplink once flows are established
        FaultSchedule.of(
            LinkDown(warm_ns + measure_ns // 3, "L1--S1"),
        ).arm(tb.sim, tb.topo)
    elephants, mice_pairs = cross_rack_pairs(cfg)
    rng = tb.streams.stream("starts")
    meter = ThroughputMeter()
    apps = []
    for src, dst in elephants:
        app = tb.add_elephant(src, dst, start_ns=rng.randrange(START_JITTER_NS))
        apps.append(app)
        meter.track(app)
    mice = [
        tb.add_mice(src, dst, size_bytes=mice_size,
                    interval_ns=mice_interval_ns, start_ns=warm_ns // 2)
        for src, dst in mice_pairs
    ]
    loss = LossAccountant(tb.topo, tb.hosts)
    tb.run(warm_ns)
    meter.mark_start(tb.sim.now)
    loss.mark_start()
    tb.run(warm_ns + measure_ns)
    meter.mark_end(tb.sim.now)

    fcts = [f for app in mice for f in app.fcts_ns]
    rates = meter.flow_rates_bps()
    per_pair = [meter.transfer_rate_bps(app, rates) for app in apps]
    return {
        "mean_mice_fct_ns": mean(fcts) if fcts else None,
        "p99_mice_fct_ns": percentile(fcts, 99) if fcts else None,
        "n_mice": len(fcts),
        "mean_tput_bps": mean(per_pair) if per_pair else 0.0,
        "loss_rate": loss.loss_rate(),
    }
