"""Seeded GA operators over :class:`~repro.search.space.ParamSpace`.

Genomes are lattice-index tuples, so every operator is closed over the
space by construction: crossover picks each gene from one parent,
mutation resamples a gene to a *different* index of the same lattice.
All randomness flows through one caller-owned ``random.Random`` — the
search is a pure function of its seed.

Duplicates are the enemy of a cached search (they waste a slot that a
store hit would satisfy anyway), so population construction and
breeding both dedupe against everything already seen, with a bounded
retry before falling back to fresh uniform samples — and, when the
whole space is nearly exhausted, returning fewer children rather than
looping forever.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.search.space import Genome, ParamSpace

#: proposals per slot before giving up on novelty
_MAX_TRIES = 64


def sample_population(
    space: ParamSpace,
    n: int,
    rng,
    seen: Iterable[Genome] = (),
) -> List[Genome]:
    """``n`` distinct uniform genomes, none of them in ``seen``.

    Returns fewer than ``n`` only when the space has fewer unseen
    genomes left than requested.
    """
    taken: Set[Genome] = set(seen)
    remaining = space.size() - len(taken)
    out: List[Genome] = []
    while len(out) < min(n, max(0, remaining)):
        for _ in range(_MAX_TRIES):
            genome = space.sample(rng)
            if genome not in taken:
                break
        else:
            # rejection sampling is struggling: enumerate the gap
            genome = _first_unseen(space, taken)
            if genome is None:
                break
        taken.add(genome)
        out.append(genome)
    return out


def _first_unseen(space: ParamSpace, taken: Set[Genome]):
    """Deterministic sweep for a genome not yet taken (small spaces)."""

    def rec(prefix, lattices):
        if not lattices:
            genome = tuple(prefix)
            return None if genome in taken else genome
        for idx in range(len(lattices[0])):
            found = rec(prefix + [idx], lattices[1:])
            if found is not None:
                return found
        return None

    return rec([], space.lattices())


def crossover(a: Genome, b: Genome, rng) -> Genome:
    """Uniform crossover: each gene from one parent, coin per gene."""
    if len(a) != len(b):
        raise ValueError(f"parent lengths differ: {len(a)} vs {len(b)}")
    return tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))


def mutate(space: ParamSpace, genome: Genome, rng) -> Genome:
    """Resample one random gene to a *different* lattice index.

    Genes whose lattice has a single value cannot change; if every
    lattice is singular the genome is returned unchanged.
    """
    if not space.contains(genome):
        raise ValueError(f"genome {genome} is outside the space")
    lattices = space.lattices()
    mutable = [i for i, lat in enumerate(lattices) if len(lat) > 1]
    if not mutable:
        return genome
    pos = mutable[rng.randrange(len(mutable))]
    lattice = lattices[pos]
    new_idx = rng.randrange(len(lattice) - 1)
    if new_idx >= genome[pos]:
        new_idx += 1
    return genome[:pos] + (new_idx,) + genome[pos + 1:]


def _tournament_pick(ranked: Sequence[Genome], rng) -> Genome:
    """Binary tournament over a best-first ranking: draw two, keep the
    better-ranked (lower index)."""
    i = rng.randrange(len(ranked))
    j = rng.randrange(len(ranked))
    return ranked[min(i, j)]


def next_generation(
    space: ParamSpace,
    ranked: Sequence[Genome],
    n_children: int,
    rng,
    seen: Iterable[Genome] = (),
) -> List[Genome]:
    """Breed ``n_children`` novel genomes from a best-first ranking.

    Each child is tournament-selected parents -> uniform crossover ->
    one-gene mutation; children colliding with ``seen`` (or each
    other) are retried, then replaced by fresh uniform samples so a
    converged population cannot stall the search.
    """
    if not ranked:
        raise ValueError("ranked survivors must be non-empty")
    taken: Set[Genome] = set(seen)
    taken.update(ranked)
    out: List[Genome] = []
    while len(out) < n_children:
        child = None
        for _ in range(_MAX_TRIES):
            a = _tournament_pick(ranked, rng)
            b = _tournament_pick(ranked, rng)
            proposal = mutate(space, crossover(a, b, rng), rng)
            if proposal not in taken:
                child = proposal
                break
        if child is None:
            fresh = sample_population(space, 1, rng, seen=taken)
            if not fresh:
                break  # space exhausted: a smaller generation is fine
            child = fresh[0]
        taken.add(child)
        out.append(child)
    return out
