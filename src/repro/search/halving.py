"""Successive-halving rung arithmetic, as pure functions.

Fitness noise shrinks with more seeds, but seeds are the expensive
axis — so the search spends them asymmetrically: every candidate gets
``base_seeds`` cheap seeds on the first rung, then each following rung
keeps the best ``1/eta`` fraction and multiplies their seed budget by
``eta``, until the survivors have run the full seed set.  The schedule
below is the whole algorithm; the driver only ranks and trims.

Seed budgets are **cumulative**: a candidate promoted to a rung with
``cum_seeds = 4`` is submitted on seeds 1..4, and the jobs for seeds
1..2 it already ran are result-store hits, not re-executions.  The
per-rung ``new_evals`` accounting makes that explicit, and the
property tests pin the invariants (budgets sum to the total, survivor
counts monotone non-increasing, no (candidate, seed) pair evaluated
twice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Rung:
    """One pruning level of the halving schedule."""

    #: rung number, 0-based
    index: int
    #: candidates evaluated at this rung (the survivors of the last)
    survivors: int
    #: cumulative seeds each survivor has run after this rung
    cum_seeds: int
    #: seeds newly run per survivor at this rung
    new_seeds: int

    @property
    def submitted(self) -> int:
        """Jobs submitted at this rung (cache hits included)."""
        return self.survivors * self.cum_seeds

    @property
    def new_evals(self) -> int:
        """Jobs actually executed at this rung (first submission)."""
        return self.survivors * self.new_seeds


def halving_schedule(
    n_candidates: int,
    n_seeds: int,
    eta: int = 2,
    base_seeds: int = 1,
) -> List[Rung]:
    """The rung ladder for one cohort.

    Rung ``i`` evaluates ``max(1, ceil(n_candidates / eta**i))``
    candidates on the first ``min(n_seeds, base_seeds * eta**i)``
    seeds; the ladder ends at the first rung that reaches the full
    seed set (so the final survivors always carry full-seed fitness).
    """
    if n_candidates < 1:
        raise ValueError(f"n_candidates must be >= 1, got {n_candidates}")
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    if base_seeds < 1:
        raise ValueError(f"base_seeds must be >= 1, got {base_seeds}")
    rungs: List[Rung] = []
    prev_cum = 0
    i = 0
    while True:
        survivors = max(1, math.ceil(n_candidates / eta**i))
        cum = min(n_seeds, base_seeds * eta**i)
        rungs.append(Rung(
            index=i,
            survivors=survivors,
            cum_seeds=cum,
            new_seeds=cum - prev_cum,
        ))
        if cum >= n_seeds:
            return rungs
        prev_cum = cum
        i += 1


def total_new_evals(rungs: List[Rung]) -> int:
    """Distinct (candidate, seed) evaluations across the ladder."""
    return sum(r.new_evals for r in rungs)


def total_submitted(rungs: List[Rung]) -> int:
    """Jobs submitted across the ladder (cache hits included)."""
    return sum(r.submitted for r in rungs)
