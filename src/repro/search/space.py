"""Declarative knob space: named parameters over ``TestbedConfig``.

Every parameter — log-spaced, linearly spaced, or categorical — is a
finite **lattice** of values.  A candidate configuration (a *genome*)
is therefore a tuple of lattice indices, which buys three properties
the search depends on:

* encode/decode round-trips exactly for every range kind (no float
  drift between a sampled value and the value that lands in the
  config),
* two candidates are identical iff their genomes are, so deduping by
  genome is deduping by config hash and the result-store cache fires
  reliably,
* mutation/crossover operate on small integers and provably stay
  inside bounds.

Knob names are ``TestbedConfig`` field names; :meth:`ParamSpace.apply`
is a ``dataclasses.replace``, so the harness's ``__post_init__``
validation screens every generated value.  :meth:`ParamSpace.validate`
runs that screen over each parameter's extreme lattice points up
front, failing fast (with the harness's own ``ValueError``) before a
single job is queued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Sequence, Tuple

KINDS = ("log", "linear", "choice")


@dataclass(frozen=True)
class Param:
    """One named knob and its value lattice."""

    #: a ``TestbedConfig`` field name (screened by ``ParamSpace``)
    name: str
    #: "log" | "linear" | "choice"
    kind: str
    #: range ends for log/linear lattices (inclusive)
    lo: Optional[float] = None
    hi: Optional[float] = None
    #: lattice size for log/linear (>= 2)
    steps: int = 0
    #: explicit values for kind="choice"
    choices: Tuple[Any, ...] = ()
    #: round log/linear lattice values to int (byte counts, delays)
    integer: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"param {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}")
        if self.kind == "choice":
            if len(self.choices) < 1:
                raise ValueError(
                    f"param {self.name!r}: choice needs at least one value")
            if len(set(self.choices)) != len(self.choices):
                raise ValueError(
                    f"param {self.name!r}: duplicate choices")
            return
        if self.lo is None or self.hi is None:
            raise ValueError(
                f"param {self.name!r}: {self.kind} range needs lo and hi")
        if self.steps < 2:
            raise ValueError(
                f"param {self.name!r}: {self.kind} range needs steps >= 2")
        if not self.lo < self.hi:
            raise ValueError(
                f"param {self.name!r}: need lo < hi, "
                f"got [{self.lo}, {self.hi}]")
        if self.kind == "log" and self.lo <= 0:
            raise ValueError(
                f"param {self.name!r}: log range needs lo > 0, got {self.lo}")

    def values(self) -> Tuple[Any, ...]:
        """The full lattice, ascending (choice: declaration order)."""
        if self.kind == "choice":
            return self.choices
        out = []
        for i in range(self.steps):
            frac = i / (self.steps - 1)
            if self.kind == "log":
                value = self.lo * (self.hi / self.lo) ** frac
            else:
                value = self.lo + (self.hi - self.lo) * frac
            out.append(int(round(value)) if self.integer else value)
        if len(set(out)) != len(out):
            raise ValueError(
                f"param {self.name!r}: integer rounding collapsed the "
                f"lattice {out}; widen the range or reduce steps")
        return tuple(out)


#: a candidate configuration: one lattice index per parameter
Genome = Tuple[int, ...]

_CONFIG_FIELDS: Optional[frozenset] = None


def _config_field_names() -> frozenset:
    global _CONFIG_FIELDS
    if _CONFIG_FIELDS is None:
        from repro.experiments.harness import TestbedConfig

        _CONFIG_FIELDS = frozenset(f.name for f in fields(TestbedConfig))
    return _CONFIG_FIELDS


@dataclass(frozen=True)
class ParamSpace:
    """An ordered set of :class:`Param` — the search's genome layout."""

    params: Tuple[Param, ...]

    def __post_init__(self):
        names = [p.name for p in self.params]
        if not names:
            raise ValueError("ParamSpace needs at least one Param")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate param names in {names}")
        unknown = [n for n in names if n not in _config_field_names()]
        if unknown:
            raise ValueError(
                f"params {unknown} are not TestbedConfig fields")

    # --- genome <-> values ----------------------------------------------------

    def lattices(self) -> Tuple[Tuple[Any, ...], ...]:
        return tuple(p.values() for p in self.params)

    def size(self) -> int:
        """Number of distinct genomes."""
        return math.prod(len(v) for v in self.lattices())

    def decode(self, genome: Genome) -> Dict[str, Any]:
        """Genome -> ``{field name: value}`` (raises on out-of-range)."""
        if len(genome) != len(self.params):
            raise ValueError(
                f"genome length {len(genome)} != {len(self.params)} params")
        out = {}
        for param, lattice, idx in zip(
                self.params, self.lattices(), genome):
            if not 0 <= idx < len(lattice):
                raise ValueError(
                    f"param {param.name!r}: index {idx} outside lattice "
                    f"of {len(lattice)}")
            out[param.name] = lattice[idx]
        return out

    def encode(self, values: Dict[str, Any]) -> Genome:
        """``{field name: value}`` -> genome; exact-match inverse of
        :meth:`decode` for every range kind."""
        genome = []
        for param, lattice in zip(self.params, self.lattices()):
            if param.name not in values:
                raise ValueError(f"missing value for param {param.name!r}")
            value = values[param.name]
            try:
                genome.append(lattice.index(value))
            except ValueError:
                raise ValueError(
                    f"param {param.name!r}: {value!r} is not on the "
                    f"lattice {lattice}") from None
        return tuple(genome)

    def contains(self, genome: Genome) -> bool:
        return (len(genome) == len(self.params)
                and all(0 <= idx < len(lattice)
                        for idx, lattice in zip(genome, self.lattices())))

    # --- config plumbing ------------------------------------------------------

    def apply(self, base: Any, genome: Genome) -> Any:
        """``TestbedConfig`` for one candidate (post_init re-validates)."""
        return replace(base, **self.decode(genome))

    def validate(self, base: Any) -> None:
        """Screen each param's lattice extremes through the harness's
        own ``__post_init__`` so a bad range fails before any job runs."""
        for param, lattice in zip(self.params, self.lattices()):
            for value in {lattice[0], lattice[-1]}:
                replace(base, **{param.name: value})

    def sample(self, rng) -> Genome:
        """One uniform random genome from ``rng`` (a ``random.Random``)."""
        return tuple(rng.randrange(len(v)) for v in self.lattices())

    # --- reporting ------------------------------------------------------------

    def table(self) -> Sequence[Dict[str, Any]]:
        """Knob table rows for reports: name, kind, lattice."""
        return [
            {"name": p.name, "kind": p.kind, "values": list(v)}
            for p, v in zip(self.params, self.lattices())
        ]
