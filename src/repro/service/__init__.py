"""Sweep-as-a-service: coordinator/worker execution for paper sweeps.

The process pool in :mod:`repro.runner.pool` parallelizes a sweep
across one machine's cores; this package stretches the same job model
across machines with nothing but the standard library (``http.server``
+ ``urllib``):

* **coordinator** — owns the :class:`~repro.runner.lease.LeaseQueue`
  (the exact class the pool uses), the
  :class:`~repro.runner.store.ResultStore` and the dashboard;
* **workers** — poll ``/claim`` for leases, execute through the same
  ``_execute_payload`` entry the pool forks, heartbeat while running,
  and ``POST /complete`` their results;
* **clients** — any ``run_jobs(..., service=URL)`` caller, including
  every sweep/validate/faults CLI via ``--service``.  The parameter
  search (``python -m repro.search run --service URL``) is the
  heaviest client: each GA rung fans its fitness cells through the
  coordinator, and because promoted candidates resubmit their
  earlier-seed jobs, the coordinator's store-hit path (not the
  workers) absorbs the halving ladder's structural re-submissions.

A worker that dies mid-job simply stops heartbeating; its lease
expires and the job requeues *without* charging its retry budget —
the distributed twin of the pool's innocent-bystander rule.  Results
land in the coordinator's store byte-identical (modulo timestamps) to
a local ``run_jobs`` run of the same specs.

Start with ``python -m repro.service coordinator`` and see
EXPERIMENTS.md "Sweep-as-a-service" for the full workflow.
"""

from repro.service.protocol import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_MAX_QUEUE,
    DEFAULT_PORT,
    Backpressure,
    ServiceError,
)

__all__ = [
    "Backpressure",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_PORT",
    "ServiceError",
]
