"""``python -m repro.service`` — run and talk to the sweep service.

Subcommands::

    coordinator  --host --port --results-dir --retries --lease-ttl
                 --max-queue [--quiet]
    worker       URL [--name N] [--poll S] [--max-idle S] [--max-jobs N]
    submit       URL SWEEP [sweep args...]   # enqueue without waiting
    status       URL [--json] [--watch S]    # one-shot or polling status

A typical two-machine sweep (see EXPERIMENTS.md "Sweep-as-a-service")::

    # terminal 1 — owns the result store and the dashboard at /
    python -m repro.service coordinator --results-dir benchmarks/results

    # terminals 2..N — anywhere that can reach terminal 1
    python -m repro.service worker http://coord:8642

    # terminal N+1 — the sweep CLI, pointed at the coordinator
    python -m repro.runner run scalability --service http://coord:8642
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.service import protocol
from repro.service.protocol import ServiceError, request_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="coordinator/worker sweep execution with leases, "
                    "backpressure and a live dashboard",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    coord = sub.add_parser(
        "coordinator", help="serve the job queue, store and dashboard")
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=protocol.DEFAULT_PORT)
    coord.add_argument(
        "--results-dir", default=None,
        help="ResultStore root (default: benchmarks/results or "
             "$REPRO_RESULTS_DIR); 'none' disables the store")
    coord.add_argument(
        "--retries", type=int, default=1,
        help="per-job retry budget for worker-reported failures "
             "(lease expiries are not charged; default 1)")
    coord.add_argument(
        "--lease-ttl", type=float, default=protocol.DEFAULT_LEASE_TTL_S,
        metavar="S",
        help="seconds without a heartbeat before a lease is requeued "
             f"(default {protocol.DEFAULT_LEASE_TTL_S:g})")
    coord.add_argument(
        "--max-queue", type=int, default=protocol.DEFAULT_MAX_QUEUE,
        help="outstanding-job cap; /submit answers 429 past it "
             f"(default {protocol.DEFAULT_MAX_QUEUE})")
    coord.add_argument("--quiet", action="store_true",
                       help="suppress per-event log lines")

    worker = sub.add_parser(
        "worker", help="poll a coordinator for leased jobs and run them")
    worker.add_argument("url", help="coordinator base URL")
    worker.add_argument("--name", default=None,
                        help="worker name (default host-pid)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="seconds between empty claims (default 0.5)")
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="S",
        help="exit after this long with no work (default: never)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after executing this many jobs")

    submit = sub.add_parser(
        "submit", help="enqueue a named sweep's specs and return "
                       "(fire-and-forget; `status --watch` to follow)")
    submit.add_argument("url", help="coordinator base URL")
    submit.add_argument("sweep", help="sweep name (see repro.runner list)")
    submit.add_argument("--schemes", default=None,
                        help="comma-separated scheme subset")
    submit.add_argument("--points", default=None,
                        help="comma-separated sweep points")
    submit.add_argument("--seeds", default="1,2",
                        help="comma-separated seeds")
    submit.add_argument("--warm-ms", type=float, default=15.0)
    submit.add_argument("--measure-ms", type=float, default=25.0)
    submit.add_argument("--force", action="store_true",
                        help="re-run even when the store has results")

    status = sub.add_parser(
        "status", help="print the coordinator's progress snapshot")
    status.add_argument("url", help="coordinator base URL")
    status.add_argument("--json", action="store_true",
                        help="raw /api/progress JSON instead of a summary")
    status.add_argument(
        "--watch", type=float, default=None, metavar="S",
        help="repeat every S seconds until the sweep finishes")

    return parser


def _cmd_coordinator(ns: argparse.Namespace) -> int:
    from repro.runner.store import ResultStore
    from repro.service.coordinator import serve

    store = None
    if (ns.results_dir or "").lower() != "none":
        store = ResultStore(ns.results_dir)
    log = (lambda msg: None) if ns.quiet else \
        (lambda msg: print(msg, flush=True))
    coordinator, server = serve(
        store, host=ns.host, port=ns.port, retries=ns.retries,
        lease_ttl_s=ns.lease_ttl, max_queue=ns.max_queue, log=log)
    host, port = server.server_address[:2]
    print(f"coordinator on http://{host}:{port}/ "
          f"(store: {store.store_dir if store else 'disabled'}, "
          f"retries {ns.retries}, lease TTL {ns.lease_ttl:g}s, "
          f"queue cap {ns.max_queue})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_worker(ns: argparse.Namespace) -> int:
    from repro.service.worker import run_worker

    try:
        executed = run_worker(
            ns.url, name=ns.name, poll_s=ns.poll, max_idle_s=ns.max_idle,
            max_jobs=ns.max_jobs,
            log=lambda msg: print(msg, flush=True))
    except KeyboardInterrupt:
        return 130
    print(f"executed {executed} job(s)")
    return 0


class _SpecsCaptured(Exception):
    """Sentinel aborting a sweep run once its specs are in hand."""


def collect_sweep_specs(
    sweep_name: str,
    *,
    schemes: str = "",
    points: str = "",
    seeds: str = "1,2",
    warm_ms: float = 15.0,
    measure_ms: float = 25.0,
) -> list:
    """Build a named sweep's JobSpec list without running anything.

    Every sweep grid funnels its specs through one
    ``SweepOptions.execute(specs)`` call; this intercepts that call and
    aborts the grid, so ``submit`` shares the sweeps' real
    spec-construction code instead of duplicating it.
    """
    from repro.experiments.common import SweepOptions
    from repro.runner.sweeps import SWEEPS
    from repro.units import msec

    sweep = SWEEPS[sweep_name]
    captured: list = []
    original = SweepOptions.execute

    def capture(self, specs):
        captured.extend(specs)
        raise _SpecsCaptured

    SweepOptions.execute = capture  # type: ignore[method-assign]
    try:
        sweep.run(
            tuple(s for s in schemes.split(",") if s),
            tuple(int(s) for s in points.split(",") if s)
            or tuple(sweep.default_points),
            tuple(int(s) for s in seeds.split(",") if s),
            msec(warm_ms),
            msec(measure_ms),
            jobs=1, store=None, force=False, timeout_s=None,
        )
    except _SpecsCaptured:
        pass
    finally:
        SweepOptions.execute = original  # type: ignore[method-assign]
    return captured


def _cmd_submit(ns: argparse.Namespace) -> int:
    from repro.runner.serialize import to_jsonable
    from repro.runner.sweeps import SWEEPS

    if ns.sweep not in SWEEPS:
        print(f"unknown sweep {ns.sweep!r}; "
              f"choose from {', '.join(sorted(SWEEPS))}", file=sys.stderr)
        return 2
    try:
        specs = collect_sweep_specs(
            ns.sweep, schemes=ns.schemes or "", points=ns.points or "",
            seeds=ns.seeds, warm_ms=ns.warm_ms, measure_ms=ns.measure_ms)
    except ValueError as exc:
        print(f"bad sweep options: {exc}", file=sys.stderr)
        return 2
    payloads = [to_jsonable(spec) for spec in specs]
    try:
        status, body = request_json(
            ns.url, "/submit", {"specs": payloads, "force": ns.force})
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if status != 200:
        print(f"submit failed (status {status}): {body}", file=sys.stderr)
        return 1
    states = [j["status"] for j in body["jobs"]]
    print(f"submitted {len(states)} spec(s): "
          + ", ".join(f"{states.count(s)} {s}"
                      for s in sorted(set(states))))
    return 0


def _print_status(progress: dict) -> None:
    by = progress["by_status"]
    queue = progress["queue"]
    alive = sum(1 for w in progress["workers"] if w["alive"])
    print(f"{progress['finished']}/{progress['total']} finished "
          f"({by['done']} done, {by['cached']} cached, "
          f"{by['failed']} failed) | queue {queue['pending']} pending, "
          f"{queue['in_flight']} in flight | {alive} worker(s) alive | "
          f"{progress['throughput']['last_minute']} done in last 60s",
          flush=True)


def _cmd_status(ns: argparse.Namespace) -> int:
    while True:
        try:
            _, progress = request_json(ns.url, "/api/progress")
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if ns.json:
            print(json.dumps(progress, indent=2, sort_keys=True))
        else:
            _print_status(progress)
        finished = (progress["total"] > 0
                    and progress["finished"] >= progress["total"])
        if ns.watch is None or finished:
            return 0
        time.sleep(ns.watch)


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    if ns.cmd == "coordinator":
        return _cmd_coordinator(ns)
    if ns.cmd == "worker":
        return _cmd_worker(ns)
    if ns.cmd == "submit":
        return _cmd_submit(ns)
    return _cmd_status(ns)


if __name__ == "__main__":
    sys.exit(main())
