"""Client glue: make ``run_jobs(..., service=URL)`` ride the coordinator.

:func:`run_via_service` is the branch :func:`repro.runner.pool.run_jobs`
takes for the jobs its local store could not satisfy: submit the spec
payloads (chunked, honoring 429 backpressure), poll ``/results`` until
every id is terminal, and hand each :class:`JobOutcome` back through
the same ``finish`` callback the local pool uses — so callers see no
difference beyond where the CPUs were.

Retry budgets are enforced coordinator-side (it was started with
``--retries``); the client's ``retries`` argument exists for signature
parity with the local pool and is intentionally not forwarded, because
two clients sharing one coordinator must not fight over a job's
budget.

Results flowing back are written into the local store only when the
record is absent, preserving ``created_unix`` on coordinator-shared
stores while making client-only stores resumable.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.runner.jobspec import JobSpec
from repro.runner.serialize import from_jsonable, to_jsonable
from repro.runner.store import ResultStore
from repro.service.protocol import (
    Backpressure,
    ServiceError,
    TERMINAL,
    request_json,
)

#: specs per /submit request — bounds request size, not sweep size
SUBMIT_CHUNK = 64
#: how often the client polls /results
DEFAULT_POLL_S = 0.5
#: consecutive unreachable polls before the sweep is declared dead
MAX_CONSECUTIVE_ERRORS = 30


def run_via_service(
    todo: List[Tuple[int, JobSpec]],
    url: str,
    *,
    retries: int = 1,
    force: bool = False,
    store: Optional[ResultStore] = None,
    finish: Callable[[int, object], None],
    log: Callable[[str], None],
    poll_s: float = DEFAULT_POLL_S,
) -> None:
    """Run ``todo`` on the coordinator at ``url``; calls
    ``finish(index, JobOutcome)`` exactly once per entry."""
    from repro.runner.pool import (
        STATUS_FAILED,
        STATUS_OK,
        JobOutcome,
    )

    if not todo:
        return
    log(f"running {len(todo)} job(s) via coordinator at {url}")

    # duplicate specs share a hash; every index gets the shared outcome
    by_id: Dict[str, List[Tuple[int, JobSpec]]] = {}
    for index, spec in todo:
        by_id.setdefault(spec.hash, []).append((index, spec))

    _submit(url, [spec for _, spec in todo], force=force, log=log)

    pending = set(by_id)
    consecutive_errors = 0
    while pending:
        time.sleep(poll_s)
        try:
            _, body = request_json(
                url, "/results", {"ids": sorted(pending)})
        except ServiceError as exc:
            consecutive_errors += 1
            if consecutive_errors >= MAX_CONSECUTIVE_ERRORS:
                raise RuntimeError(
                    f"coordinator at {url} unreachable for "
                    f"{consecutive_errors} consecutive polls; "
                    f"{len(pending)} job(s) unresolved") from exc
            continue
        consecutive_errors = 0
        for job_id, info in (body or {}).get("jobs", {}).items():
            status = info.get("status")
            if job_id not in pending or status not in TERMINAL:
                continue
            pending.discard(job_id)
            for index, spec in by_id[job_id]:
                if status == "failed":
                    outcome = JobOutcome(
                        spec=spec, status=STATUS_FAILED,
                        error=info.get("error") or "failed on coordinator",
                        attempts=info.get("attempts", 0),
                        elapsed_s=info.get("elapsed_s", 0.0),
                    )
                else:  # done or cached — both carry the result payload
                    payload = info["result"]
                    if store is not None and store.load_record(spec) is None:
                        store.save(spec, payload,
                                   info.get("elapsed_s", 0.0),
                                   info.get("attempts", 1))
                    outcome = JobOutcome(
                        spec=spec, status=STATUS_OK,
                        result=from_jsonable(payload),
                        attempts=info.get("attempts", 1),
                        elapsed_s=info.get("elapsed_s", 0.0),
                    )
                finish(index, outcome)


def _submit(
    url: str,
    specs: List[JobSpec],
    *,
    force: bool,
    log: Callable[[str], None],
) -> None:
    """POST the specs in chunks, sleeping through 429 backpressure."""
    for start in range(0, len(specs), SUBMIT_CHUNK):
        chunk = specs[start:start + SUBMIT_CHUNK]
        payloads = [to_jsonable(spec) for spec in chunk]
        while True:
            try:
                status, body = request_json(
                    url, "/submit", {"specs": payloads, "force": force})
            except Backpressure as exc:
                log(f"coordinator queue full; backing off "
                    f"{exc.retry_after_s:g}s before resubmitting "
                    f"{len(chunk)} spec(s)")
                time.sleep(exc.retry_after_s)
                continue
            if status != 200:
                raise ServiceError(
                    f"submit to {url} failed (status {status}): {body}")
            break
