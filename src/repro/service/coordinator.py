"""The sweep coordinator: a lease-granting job queue over HTTP.

:class:`SweepCoordinator` is the pure state machine — submit, claim,
heartbeat, complete, expire — guarded by one lock so the threading
HTTP server can hit it from many connections.  The queue/retry-budget
bookkeeping is the same :class:`repro.runner.lease.LeaseQueue` the
process pool uses:

* a worker that reports a job *raised* charges that job's retry
  budget (it requeues until ``retries`` is spent, then fails);
* a lease that *expires* — the worker was SIGKILLed, hung or
  partitioned away — requeues the job at the front **without**
  charging its budget, exactly like the pool's innocent-bystander
  rule on a pool restart.

Completed results are written to the coordinator's
:class:`~repro.runner.store.ResultStore` through the same
``store.save`` path ``run_jobs`` uses, so a distributed sweep's store
records hold byte-identical ``result`` payloads to a local run of the
same specs.  Submission is bounded: past ``max_queue`` outstanding
jobs, ``/submit`` answers 429 with a Retry-After, and well-behaved
clients (:mod:`repro.service.client`) back off.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runner.jobspec import JobSpec
from repro.runner.lease import DEFAULT_MAX_RELEASES, LeaseQueue
from repro.runner.serialize import from_jsonable
from repro.runner.store import ResultStore
from repro.service import protocol
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.protocol import (
    CACHED,
    DEFAULT_LEASE_TTL_S,
    DEFAULT_MAX_QUEUE,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
)
from repro.telemetry.metrics import Counter

#: names of the coordinator's telemetry counters (snapshot keys)
COUNTER_NAMES = (
    "jobs_submitted",
    "jobs_deduped",
    "jobs_completed",
    "jobs_failed",
    "store_hits",
    "leases_granted",
    "leases_expired",
    "leases_renewed",
    "stale_completions",
    "submits_rejected",
)

#: how many wall-clock seconds of completions the timeline keeps
TIMELINE_WINDOW_S = 600.0
TIMELINE_BUCKET_S = 10.0


class QueueFull(Exception):
    """Raised by :meth:`SweepCoordinator.submit` past ``max_queue``."""

    def __init__(self, retry_after_s: float):
        super().__init__("queue full")
        self.retry_after_s = retry_after_s


@dataclass
class _Job:
    """One submitted spec, keyed by its content hash."""

    job_id: str
    spec: JobSpec
    payload: Dict[str, Any]
    label: str
    status: str = QUEUED
    attempts: int = 0
    worker: str = ""
    error: Optional[str] = None
    #: encoded result for DONE/CACHED jobs (what /results serves)
    result: Optional[Any] = None
    elapsed_s: float = 0.0
    submitted_unix: float = field(default_factory=time.time)
    finished_unix: Optional[float] = None


@dataclass
class _Worker:
    name: str
    last_seen_unix: float = field(default_factory=time.time)
    jobs_done: int = 0
    jobs_failed: int = 0
    current_job: Optional[str] = None


class SweepCoordinator:
    """Thread-safe coordinator state; the HTTP layer is a thin skin."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        retries: int = 1,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_releases: int = DEFAULT_MAX_RELEASES,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.store = store
        self.retries = retries
        self.lease_ttl_s = lease_ttl_s
        self.max_queue = max_queue
        self._log = log or (lambda msg: None)
        self._lock = threading.Lock()
        self._queue = LeaseQueue(retries=retries, max_releases=max_releases)
        self._jobs: Dict[str, _Job] = {}
        self._workers: Dict[str, _Worker] = {}
        self._completions: List[float] = []  # wall stamps, pruned to window
        self.counters = {name: Counter(name) for name in COUNTER_NAMES}
        self.started_unix = time.time()

    # --- client side --------------------------------------------------------

    def submit(
        self, payloads: List[Dict[str, Any]], force: bool = False
    ) -> List[Dict[str, str]]:
        """Enqueue spec payloads; returns one ``{"id","status"}`` per
        payload, deduped by content hash.  Raises :class:`QueueFull`
        (atomically — none of the batch is taken) when admitting the
        batch would exceed ``max_queue`` outstanding jobs."""
        specs = [from_jsonable(p) for p in payloads]
        with self._lock:
            self._expire_leases()
            new = []
            for payload, spec in zip(payloads, specs):
                job = self._jobs.get(spec.hash)
                if job is None or (force and job.status in TERMINAL) or \
                        job.status == FAILED:
                    new.append((payload, spec))
            admitted = self._queue.depth + len(new)
            if admitted > self.max_queue:
                self.counters["submits_rejected"].inc()
                self._log(f"submit rejected: queue depth {self._queue.depth} "
                          f"+ {len(new)} new > {self.max_queue}")
                raise QueueFull(retry_after_s=1.0)
            out = []
            for payload, spec in zip(payloads, specs):
                out.append({"id": spec.hash,
                            "status": self._admit(payload, spec, force)})
            return out

    def _admit(self, payload: Dict[str, Any], spec: JobSpec,
               force: bool) -> str:
        job = self._jobs.get(spec.hash)
        if job is not None:
            if job.status in (QUEUED, RUNNING):
                self.counters["jobs_deduped"].inc()
                return job.status
            if job.status in (DONE, CACHED) and not force:
                self.counters["jobs_deduped"].inc()
                return job.status
            # failed (always re-admitted with a fresh budget) or forced
        if force and self.store is not None:
            self.store.invalidate(spec)
        record = (self.store.load_record(spec)
                  if self.store is not None and not force else None)
        job = _Job(job_id=spec.hash, spec=spec, payload=payload,
                   label=spec.display)
        self._jobs[spec.hash] = job
        self.counters["jobs_submitted"].inc()
        if record is not None:
            self.counters["store_hits"].inc()
            job.status = CACHED
            job.result = record["result"]
            job.attempts = record.get("attempts", 0)
            job.elapsed_s = record.get("elapsed_s", 0.0)
            job.finished_unix = time.time()
            return CACHED
        self._queue.add(spec.hash, spec)
        return QUEUED

    def results(self, job_ids: List[str]) -> Dict[str, Dict[str, Any]]:
        """Status (and, when terminal, result/error) per requested id."""
        with self._lock:
            self._expire_leases()
            out: Dict[str, Dict[str, Any]] = {}
            for job_id in job_ids:
                job = self._jobs.get(job_id)
                if job is None:
                    out[job_id] = {"status": "unknown"}
                    continue
                info: Dict[str, Any] = {
                    "status": job.status,
                    "attempts": job.attempts,
                    "elapsed_s": job.elapsed_s,
                }
                if job.status in (DONE, CACHED):
                    info["result"] = job.result
                elif job.status == FAILED:
                    info["error"] = job.error
                out[job_id] = info
            return out

    # --- worker side --------------------------------------------------------

    def claim(self, worker: str) -> Optional[Dict[str, Any]]:
        """Lease the next queued job to ``worker``; None when idle."""
        with self._lock:
            self._expire_leases()
            self._touch_worker(worker)
            lease = self._queue.claim(worker=worker, ttl_s=self.lease_ttl_s)
            if lease is None:
                return None
            job = self._jobs[lease.index]
            job.status = RUNNING
            job.worker = worker
            job.attempts = lease.attempts
            job.error = None
            self._workers[worker].current_job = job.job_id
            self.counters["leases_granted"].inc()
            self._log(f"leased {job.label} to {worker} "
                      f"(attempt {lease.attempts}, lease {lease.lease_id})")
            return {
                "id": job.job_id,
                "lease": lease.lease_id,
                "payload": job.payload,
                "label": job.label,
                "ttl_s": self.lease_ttl_s,
                "attempts": lease.attempts,
            }

    def heartbeat(self, worker: str,
                  lease_ids: List[str]) -> Dict[str, List[str]]:
        """Renew leases; stale ids tell the worker its work is orphaned."""
        with self._lock:
            self._expire_leases()
            self._touch_worker(worker)
            renewed, stale = [], []
            for lease_id in lease_ids:
                if self._queue.renew(lease_id, self.lease_ttl_s):
                    renewed.append(lease_id)
                    self.counters["leases_renewed"].inc()
                else:
                    stale.append(lease_id)
            return {"renewed": renewed, "stale": stale}

    def complete(
        self,
        lease_id: str,
        worker: str,
        ok: bool,
        result: Optional[Any] = None,
        error: Optional[str] = None,
        elapsed_s: float = 0.0,
    ) -> bool:
        """A worker finished (or failed) its leased job.

        Returns False for a stale lease — it expired and the job was
        requeued to someone else, so this attempt's result is dropped
        (the replacement attempt owns the job now)."""
        with self._lock:
            self._expire_leases()
            self._touch_worker(worker)
            lease = self._queue.get(lease_id)
            if lease is None:
                self.counters["stale_completions"].inc()
                self._log(f"stale completion from {worker} "
                          f"(lease {lease_id})")
                return False
            job = self._jobs[lease.index]
            winfo = self._workers[worker]
            winfo.current_job = None
            if ok:
                self._queue.complete(lease_id)
                job.status = DONE
                job.result = result
                job.attempts = lease.attempts
                job.elapsed_s = elapsed_s
                job.error = None
                job.worker = worker
                job.finished_unix = time.time()
                if self.store is not None:
                    self.store.save(job.spec, result, elapsed_s,
                                    lease.attempts)
                self._completions.append(job.finished_unix)
                self._prune_timeline()
                self.counters["jobs_completed"].inc()
                winfo.jobs_done += 1
                self._log(f"done {job.label} on {worker} "
                          f"({elapsed_s:.1f}s, attempt {lease.attempts})")
            else:
                status, _ = self._queue.fail(lease_id)
                job.error = error
                winfo.jobs_failed += 1
                if status == "retry":
                    job.status = QUEUED
                    job.worker = ""
                    self._log(f"retrying {job.label} "
                              f"(attempt {lease.attempts + 1}/"
                              f"{self.retries + 1}): {error}")
                else:
                    job.status = FAILED
                    job.attempts = lease.attempts
                    job.finished_unix = time.time()
                    self.counters["jobs_failed"].inc()
                    self._log(f"failed {job.label} after "
                              f"{lease.attempts} attempt(s): {error}")
            return True

    # --- internal -----------------------------------------------------------

    def _touch_worker(self, worker: str) -> None:
        info = self._workers.get(worker)
        if info is None:
            info = self._workers[worker] = _Worker(worker)
            self._log(f"worker {worker} joined")
        info.last_seen_unix = time.time()

    def _expire_leases(self) -> None:
        """Requeue jobs whose lease lapsed — uncharged, like the pool's
        innocent-bystander rule.  Called under the lock from every
        public entry point, so expiry needs no background thread."""
        for lease in self._queue.expired():
            status, _ = self._queue.release(lease.lease_id)
            job = self._jobs.get(lease.index)
            self.counters["leases_expired"].inc()
            winfo = self._workers.get(lease.worker)
            if winfo is not None and winfo.current_job == lease.index:
                winfo.current_job = None
            if job is None:
                continue
            if status == "failed":
                job.status = FAILED
                job.error = (f"lease expired {self._queue.max_releases} "
                             "times without a completion")
                job.finished_unix = time.time()
                self.counters["jobs_failed"].inc()
                self._log(f"gave up on {job.label}: {job.error}")
            else:
                job.status = QUEUED
                job.worker = ""
                self._log(f"lease {lease.lease_id} on {job.label} expired "
                          f"(worker {lease.worker}); requeued uncharged")

    def _prune_timeline(self) -> None:
        cutoff = time.time() - TIMELINE_WINDOW_S
        while self._completions and self._completions[0] < cutoff:
            self._completions.pop(0)

    # --- dashboard ----------------------------------------------------------

    def progress(self) -> Dict[str, Any]:
        """The ``/api/progress`` snapshot: jobs, workers, throughput."""
        with self._lock:
            self._expire_leases()
            self._prune_timeline()
            now = time.time()
            by_status: Dict[str, int] = {
                s: 0 for s in (QUEUED, RUNNING, DONE, FAILED, CACHED)}
            jobs = []
            for job in self._jobs.values():
                by_status[job.status] += 1
                jobs.append({
                    "id": job.job_id,
                    "label": job.label,
                    "status": job.status,
                    "worker": job.worker,
                    "attempts": job.attempts,
                    "elapsed_s": round(job.elapsed_s, 3),
                    "error": job.error,
                })
            # newest first, running before queued before terminal
            order = {RUNNING: 0, QUEUED: 1, FAILED: 2, DONE: 3, CACHED: 4}
            jobs.sort(key=lambda j: (order[j["status"]], j["label"]))
            workers = [
                {
                    "name": w.name,
                    "last_seen_s": round(now - w.last_seen_unix, 1),
                    "alive": (now - w.last_seen_unix) < 3 * self.lease_ttl_s,
                    "jobs_done": w.jobs_done,
                    "jobs_failed": w.jobs_failed,
                    "current_job": (self._jobs[w.current_job].label
                                    if w.current_job else None),
                }
                for w in sorted(self._workers.values(),
                                key=lambda w: w.name)
            ]
            n_buckets = int(TIMELINE_WINDOW_S / TIMELINE_BUCKET_S)
            buckets = [0] * n_buckets
            for stamp in self._completions:
                age = now - stamp
                slot = n_buckets - 1 - int(age / TIMELINE_BUCKET_S)
                if 0 <= slot < n_buckets:
                    buckets[slot] += 1
            total = len(self._jobs)
            finished = by_status[DONE] + by_status[FAILED] + by_status[CACHED]
            submitted = self.counters["jobs_submitted"].value
            hits = self.counters["store_hits"].value
            return {
                "uptime_s": round(now - self.started_unix, 1),
                "total": total,
                "finished": finished,
                "by_status": by_status,
                "queue": {
                    "pending": self._queue.pending,
                    "in_flight": self._queue.in_flight,
                    "depth": self._queue.depth,
                    "max_queue": self.max_queue,
                },
                "workers": workers,
                "jobs": jobs[:500],
                "throughput": {
                    "bucket_s": TIMELINE_BUCKET_S,
                    "window_s": TIMELINE_WINDOW_S,
                    "buckets": buckets,
                    "last_minute": sum(
                        1 for t in self._completions if now - t <= 60.0),
                },
                "store": {
                    "enabled": self.store is not None,
                    "hits": hits,
                    "hit_rate": (hits / submitted) if submitted else 0.0,
                    "records": (len(self.store)
                                if self.store is not None else 0),
                },
                "counters": {name: c.value
                             for name, c in self.counters.items()},
                "lease_ttl_s": self.lease_ttl_s,
                "retries": self.retries,
            }


# --- HTTP layer --------------------------------------------------------------


class CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto one shared :class:`SweepCoordinator`."""

    server_version = "repro-service/1"
    #: set by make_server
    coordinator: SweepCoordinator = None  # type: ignore[assignment]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the coordinator log's job, not stderr's

    # -- helpers --

    def _send_json(self, status: int, body: Any,
                   headers: Optional[Dict[str, str]] = None) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length))

    # -- verbs --

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/" or self.path.startswith("/index"):
            data = DASHBOARD_HTML.encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        elif self.path.startswith("/api/progress"):
            self._send_json(200, self.coordinator.progress())
        elif self.path.startswith("/healthz"):
            self._send_json(200, {"ok": True})
        else:
            self._send_json(404, {"error": f"no such path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        try:
            body = self._read_json()
        except (json.JSONDecodeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            if self.path == "/submit":
                self._post_submit(body)
            elif self.path == "/claim":
                job = self.coordinator.claim(
                    str(body.get("worker") or self.client_address[0]))
                self._send_json(200, {"job": job})
            elif self.path == "/heartbeat":
                out = self.coordinator.heartbeat(
                    str(body.get("worker") or ""),
                    list(body.get("leases") or ()))
                self._send_json(200, out)
            elif self.path == "/complete":
                accepted = self.coordinator.complete(
                    str(body.get("lease") or ""),
                    worker=str(body.get("worker") or ""),
                    ok=bool(body.get("ok")),
                    result=body.get("result"),
                    error=body.get("error"),
                    elapsed_s=float(body.get("elapsed_s") or 0.0),
                )
                self._send_json(200, {"accepted": accepted})
            elif self.path == "/results":
                out = self.coordinator.results(list(body.get("ids") or ()))
                self._send_json(200, {"jobs": out})
            elif self.path == "/shutdown":
                self._send_json(200, {"ok": True})
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
            else:
                self._send_json(404, {"error": f"no such path {self.path!r}"})
        except QueueFull as exc:
            self._send_json(
                429, {"error": "queue full",
                      "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": f"{exc.retry_after_s:g}"})
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"})

    def _post_submit(self, body: Dict[str, Any]) -> None:
        payloads = body.get("specs")
        if not isinstance(payloads, list) or not payloads:
            self._send_json(400, {"error": "submit needs a non-empty "
                                           "'specs' list"})
            return
        jobs = self.coordinator.submit(payloads,
                                       force=bool(body.get("force")))
        self._send_json(200, {"jobs": jobs})


def make_server(
    coordinator: SweepCoordinator,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``host:port``
    (``port=0`` picks a free port; read ``server.server_port``)."""
    handler = type("BoundHandler", (CoordinatorHandler,),
                   {"coordinator": coordinator})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    store: Optional[ResultStore] = None,
    *,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    retries: int = 1,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    max_queue: int = DEFAULT_MAX_QUEUE,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[SweepCoordinator, ThreadingHTTPServer]:
    """Build a coordinator + server pair (does not block; call
    ``server.serve_forever()``)."""
    coordinator = SweepCoordinator(
        store, retries=retries, lease_ttl_s=lease_ttl_s,
        max_queue=max_queue, log=log)
    server = make_server(coordinator, host, port)
    return coordinator, server
