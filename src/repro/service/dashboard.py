"""The coordinator's live dashboard: one self-contained HTML page.

Served at ``/`` by :mod:`repro.service.coordinator`; it polls
``/api/progress`` every second and renders stat tiles (done/total,
queue depth, live workers, store hit rate), a single-series completion
timeline (10 s buckets over the last 10 minutes), the worker table and
a capped job table.  No external assets — inline CSS/JS only, so the
page works on an air-gapped testbed.

Colors follow the validated reference palette: series-1 blue for the
single timeline series (no legend needed — the title names it), the
fixed status palette for job states, and every status color is paired
with its status *word*, never color alone.  Light and dark are both
explicit themes keyed off ``prefers-color-scheme``.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro sweep coordinator</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --status-good: #0ca30c;
    --status-critical: #d03b3b;
    --status-warning: #fab219;
    --state-cached: #1baf7a;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
      --state-cached: #199e70;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin: 0 0 20px; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(160px, 1fr));
           gap: 12px; margin-bottom: 20px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 14px 16px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .note { color: var(--muted); font-size: 12px; margin-top: 2px; }
  .card { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 14px 16px; margin-bottom: 20px; }
  .card h2 { font-size: 13px; font-weight: 600; margin: 0 0 10px;
             color: var(--text-secondary); }
  svg { display: block; width: 100%; }
  table { width: 100%; border-collapse: collapse; }
  th { text-align: left; color: var(--muted); font-size: 12px;
       font-weight: 500; padding: 4px 10px 6px 0;
       border-bottom: 1px solid var(--grid); }
  td { padding: 5px 10px 5px 0; border-bottom: 1px solid var(--grid);
       font-variant-numeric: tabular-nums; }
  td.label-cell { font-variant-numeric: normal;
                  max-width: 420px; overflow: hidden;
                  text-overflow: ellipsis; white-space: nowrap; }
  .dot { display: inline-block; width: 8px; height: 8px;
         border-radius: 50%; margin-right: 6px; vertical-align: baseline; }
  .st-queued  .dot { background: var(--muted); }
  .st-running .dot { background: var(--series-1); }
  .st-done    .dot { background: var(--status-good); }
  .st-cached  .dot { background: var(--state-cached); }
  .st-failed  .dot { background: var(--status-critical); }
  .st-failed  { color: var(--status-critical); }
  .dead { color: var(--status-critical); }
  .err { color: var(--muted); font-size: 12px; }
  #offline { display: none; color: var(--status-critical);
             margin-bottom: 16px; }
</style>
</head>
<body>
<h1>repro sweep coordinator</h1>
<p class="sub" id="meta">connecting&hellip;</p>
<p id="offline">&#9888; coordinator unreachable &mdash; retrying</p>

<div class="tiles">
  <div class="tile"><div class="label">Finished</div>
    <div class="value" id="t-done">&ndash;</div>
    <div class="note" id="t-done-note"></div></div>
  <div class="tile"><div class="label">Queue depth</div>
    <div class="value" id="t-queue">&ndash;</div>
    <div class="note" id="t-queue-note"></div></div>
  <div class="tile"><div class="label">Workers alive</div>
    <div class="value" id="t-workers">&ndash;</div>
    <div class="note" id="t-workers-note"></div></div>
  <div class="tile"><div class="label">Store hit rate</div>
    <div class="value" id="t-hits">&ndash;</div>
    <div class="note" id="t-hits-note"></div></div>
</div>

<div class="card">
  <h2>Completions per 10 s (last 10 min)</h2>
  <svg id="chart" viewBox="0 0 600 80" height="80"
       role="img" aria-label="completion timeline"></svg>
</div>

<div class="card">
  <h2>Workers</h2>
  <table><thead><tr><th>name</th><th>status</th><th>last seen</th>
    <th>done</th><th>failed</th><th>current job</th></tr></thead>
    <tbody id="workers"></tbody></table>
</div>

<div class="card">
  <h2>Jobs</h2>
  <table><thead><tr><th>status</th><th>label</th><th>worker</th>
    <th>attempts</th><th>elapsed</th></tr></thead>
    <tbody id="jobs"></tbody></table>
</div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (s) => String(s == null ? "" : s)
  .replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;");

function statusCell(st) {
  return '<span class="st-' + esc(st) + '"><span class="dot"></span>' +
         esc(st) + '</span>';
}

function drawChart(tp) {
  const svg = $("chart");
  const buckets = tp.buckets || [];
  const W = 600, H = 80, pad = 2;
  const n = buckets.length || 1;
  const max = Math.max(1, ...buckets);
  const bw = (W - pad * 2) / n;
  let parts = ['<line x1="0" y1="' + (H - 1) + '" x2="' + W +
    '" y2="' + (H - 1) +
    '" stroke="var(--baseline)" stroke-width="1"/>'];
  buckets.forEach((v, i) => {
    if (!v) return;
    const h = Math.max(3, (H - 10) * v / max);
    parts.push('<rect x="' + (pad + i * bw + 0.5).toFixed(1) +
      '" y="' + (H - 1 - h).toFixed(1) +
      '" width="' + Math.max(1, bw - 1).toFixed(1) +
      '" height="' + h.toFixed(1) +
      '" rx="1.5" fill="var(--series-1)"><title>' + v +
      ' completed</title></rect>');
  });
  svg.innerHTML = parts.join("");
}

function render(p) {
  $("offline").style.display = "none";
  $("meta").textContent = "up " + Math.round(p.uptime_s) + "s \\u00b7 " +
    "lease TTL " + p.lease_ttl_s + "s \\u00b7 retries " + p.retries +
    " \\u00b7 " + p.total + " job(s) submitted";
  $("t-done").textContent = p.finished + " / " + p.total;
  $("t-done-note").textContent = p.by_status.failed + " failed \\u00b7 " +
    p.by_status.cached + " cached";
  $("t-queue").textContent = p.queue.pending;
  $("t-queue-note").textContent = p.queue.in_flight + " in flight \\u00b7 cap " +
    p.queue.max_queue;
  const alive = p.workers.filter((w) => w.alive).length;
  $("t-workers").textContent = alive;
  $("t-workers-note").textContent = p.workers.length + " ever seen";
  $("t-hits").textContent = Math.round(p.store.hit_rate * 100) + "%";
  $("t-hits-note").textContent = p.store.hits + " hits \\u00b7 " +
    p.store.records + " records";
  drawChart(p.throughput);
  $("workers").innerHTML = p.workers.map((w) =>
    "<tr><td>" + esc(w.name) + "</td><td>" +
    (w.alive ? statusCell("running").replace(">running<", ">alive<")
             : '<span class="dead">\\u25cf lost</span>') +
    "</td><td>" + w.last_seen_s + "s ago</td><td>" + w.jobs_done +
    "</td><td>" + w.jobs_failed + "</td><td class=\\"label-cell\\">" +
    esc(w.current_job || "\\u2014") + "</td></tr>").join("") ||
    '<tr><td colspan="6" class="err">no workers yet</td></tr>';
  $("jobs").innerHTML = p.jobs.slice(0, 200).map((j) =>
    "<tr><td>" + statusCell(j.status) + "</td><td class=\\"label-cell\\">" +
    esc(j.label) +
    (j.error ? ' <span class="err">' + esc(j.error) + "</span>" : "") +
    "</td><td>" + esc(j.worker || "\\u2014") + "</td><td>" + j.attempts +
    "</td><td>" + (j.elapsed_s ? j.elapsed_s.toFixed(1) + "s" : "\\u2014") +
    "</td></tr>").join("") ||
    '<tr><td colspan="5" class="err">no jobs submitted yet</td></tr>';
}

async function tick() {
  try {
    const resp = await fetch("/api/progress", {cache: "no-store"});
    render(await resp.json());
  } catch (err) {
    $("offline").style.display = "block";
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
"""
