"""Wire protocol shared by the sweep coordinator, workers and clients.

Everything rides JSON over HTTP/1.1 (stdlib ``http.server`` +
``urllib``; no new dependencies).  Job payloads are the exact
``to_jsonable(JobSpec)`` dicts the process pool pickles — the worker
feeds them to the same ``_execute_payload`` entry, so a job's result
bytes do not depend on where it ran.

Endpoints (all bodies JSON)::

    POST /submit     {"specs": [payload...], "force": bool}
                     -> {"jobs": [{"id", "status"}...]}; 429 + Retry-After
                        when the queue is at --max-queue
    POST /claim      {"worker": name}
                     -> {"job": {"id","lease","payload","label",
                                 "ttl_s","attempts"}} or {"job": null}
    POST /heartbeat  {"worker": name, "leases": [lease_id...]}
                     -> {"renewed": [...], "stale": [...]}
    POST /complete   {"lease": id, "worker": name, "ok": bool,
                      "result": payload | "error": str, "elapsed_s": f}
                     -> {"accepted": bool}
    POST /results    {"ids": [job_id...]}
                     -> {"jobs": {id: {"status", ...}}}
    POST /shutdown   {} -> {"ok": true}; the server exits afterwards
    GET  /api/progress -> the dashboard/status snapshot
    GET  /healthz      -> {"ok": true}
    GET  /             -> the HTML dashboard
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

DEFAULT_PORT = 8642
DEFAULT_LEASE_TTL_S = 30.0
DEFAULT_MAX_QUEUE = 1024

#: job lifecycle states reported by /results and /api/progress
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CACHED = "cached"
TERMINAL = (DONE, FAILED, CACHED)


class ServiceError(RuntimeError):
    """The coordinator is unreachable or answered nonsense."""


class Backpressure(Exception):
    """HTTP 429: the coordinator's queue is full; retry later."""

    def __init__(self, retry_after_s: float):
        super().__init__(f"coordinator queue full; retry in {retry_after_s}s")
        self.retry_after_s = retry_after_s


def request_json(
    base_url: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: float = 30.0,
) -> Tuple[int, Any]:
    """One JSON round-trip: POST ``payload`` (or GET when None).

    Returns ``(status_code, decoded_body)``.  Raises
    :class:`Backpressure` on 429 and :class:`ServiceError` when the
    coordinator is unreachable or replies with a non-JSON body.
    """
    url = base_url.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        if exc.code == 429:
            try:
                retry_after = float(exc.headers.get("Retry-After", "1"))
            except ValueError:
                retry_after = 1.0
            exc.close()
            raise Backpressure(retry_after) from None
        body = exc.read()
        status = exc.code
        exc.close()
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
        raise ServiceError(f"coordinator unreachable at {url}: {exc}") from exc
    if not body:
        return status, None
    try:
        return status, json.loads(body)
    except json.JSONDecodeError as exc:
        raise ServiceError(
            f"coordinator at {url} replied non-JSON "
            f"(status {status}): {body[:200]!r}") from exc
