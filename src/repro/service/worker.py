"""The sweep worker: claim, execute, heartbeat, complete, repeat.

A worker is stateless — everything it knows about a job arrives in the
``/claim`` response, and everything it produces leaves via
``/complete``.  Execution goes through the exact
:func:`repro.runner.pool._execute_payload` entry the process pool
forks, so a result's encoded bytes are identical whether the job ran
locally or across the service.

While a job runs, a daemon heartbeat thread renews its lease every
``ttl/3`` seconds.  If the heartbeat learns the lease went stale (the
coordinator expired it during a partition and handed the job to
someone else), the worker keeps computing but its eventual
``/complete`` is rejected — the replacement attempt owns the job.  A
worker that is SIGKILLed simply stops heartbeating, and the
coordinator requeues its lease without charging the job's retry
budget.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Callable, Dict, Optional

from repro.service.protocol import ServiceError, request_json

#: how long a fresh worker waits between empty /claim polls
DEFAULT_POLL_S = 0.5
#: give up after this long with neither jobs nor reachable coordinator
DEFAULT_MAX_IDLE_S = 60.0


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _heartbeat_loop(
    url: str,
    worker: str,
    lease_id: str,
    ttl_s: float,
    done: threading.Event,
    stale: threading.Event,
) -> None:
    interval = max(0.2, ttl_s / 3.0)
    while not done.wait(interval):
        try:
            _, body = request_json(
                url, "/heartbeat", {"worker": worker, "leases": [lease_id]})
        except ServiceError:
            continue  # partition: keep computing, retry next beat
        if lease_id in (body or {}).get("stale", ()):
            stale.set()
            return


def _execute_leased(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one claimed payload; returns the /complete body (sans ids)."""
    from repro.runner.pool import _execute_payload

    t0 = time.monotonic()
    try:
        result = _execute_payload(payload)
    except BaseException as exc:  # noqa: BLE001 — the job failed, not the worker
        err = "".join(
            traceback.format_exception_only(type(exc), exc)).strip()
        return {"ok": False, "error": err,
                "elapsed_s": time.monotonic() - t0}
    return {"ok": True, "result": result,
            "elapsed_s": time.monotonic() - t0}


def run_worker(
    url: str,
    *,
    name: Optional[str] = None,
    poll_s: float = DEFAULT_POLL_S,
    max_idle_s: Optional[float] = DEFAULT_MAX_IDLE_S,
    max_jobs: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    stop: Optional[threading.Event] = None,
) -> int:
    """Serve jobs from the coordinator at ``url`` until idle too long,
    ``max_jobs`` jobs are done, or ``stop`` is set.  Returns the number
    of jobs executed (failures included — they were work)."""
    worker = name or default_worker_name()
    _log = log or (lambda msg: None)
    stop = stop or threading.Event()
    executed = 0
    idle_since: Optional[float] = None
    _log(f"worker {worker} polling {url}")
    while not stop.is_set():
        if max_jobs is not None and executed >= max_jobs:
            break
        try:
            _, body = request_json(url, "/claim", {"worker": worker})
            job = (body or {}).get("job")
        except ServiceError as exc:
            if idle_since is None:
                idle_since = time.monotonic()
            if (max_idle_s is not None
                    and time.monotonic() - idle_since > max_idle_s):
                _log(f"worker {worker}: coordinator unreachable for "
                     f"{max_idle_s:.0f}s, giving up ({exc})")
                return executed
            stop.wait(poll_s)
            continue
        if job is None:
            if idle_since is None:
                idle_since = time.monotonic()
            if (max_idle_s is not None
                    and time.monotonic() - idle_since > max_idle_s):
                _log(f"worker {worker}: idle {max_idle_s:.0f}s, exiting")
                return executed
            stop.wait(poll_s)
            continue
        idle_since = None

        lease_id = job["lease"]
        _log(f"worker {worker}: running {job['label']} "
             f"(attempt {job['attempts']}, lease {lease_id})")
        done = threading.Event()
        stale = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(url, worker, lease_id, float(job["ttl_s"]), done, stale),
            daemon=True,
        )
        beat.start()
        try:
            outcome = _execute_leased(job["payload"])
        finally:
            done.set()
        executed += 1
        if stale.is_set():
            _log(f"worker {worker}: lease {lease_id} went stale mid-job; "
                 "dropping result")
            continue
        body = {"lease": lease_id, "worker": worker, **outcome}
        try:
            _, reply = request_json(url, "/complete", body, timeout_s=60.0)
        except ServiceError as exc:
            _log(f"worker {worker}: could not report {job['label']}: {exc}")
            continue
        if not (reply or {}).get("accepted"):
            _log(f"worker {worker}: completion of {job['label']} rejected "
                 "(lease expired)")
    return executed
