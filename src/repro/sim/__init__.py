"""Deterministic discrete-event simulation kernel."""

from repro.sim.engine import Event, Simulator
from repro.sim.rand import RandomStreams

__all__ = ["Event", "Simulator", "RandomStreams"]
