"""Event loop at the heart of the simulator.

The engine is deliberately minimal: a binary heap of ``(time, seq,
event)`` entries, a monotonically increasing sequence number to break
ties deterministically, and cancellable events.  Components schedule
plain callbacks; there are no coroutine processes, which keeps the hot
path (packet transmission/arrival) cheap enough to push millions of
events through CPython.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancelling an event is O(1): the heap entry stays but is skipped when
    popped.  ``time`` is the absolute simulation time in nanoseconds.
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(usec(10), my_callback, arg1, arg2)
        sim.run(until=seconds(1))

    Events at the same timestamp fire in scheduling order (FIFO), which
    makes runs reproducible regardless of heap internals.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: List[tuple] = []
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events executed.

        When stopping at ``until``, the clock is advanced to ``until`` so
        rate computations over a fixed window are exact.
        """
        count = 0
        heap = self._heap
        while heap:
            time, _, event = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            event.fn(*event.args)
            count += 1
            if max_events is not None and count >= max_events:
                return count
        if until is not None and self._now < until:
            self._now = until
        return count
