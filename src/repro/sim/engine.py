"""Event loop at the heart of the simulator.

The engine is deliberately minimal: a binary heap of ``(time, seq,
event)`` entries, a monotonically increasing sequence number to break
ties deterministically, and cancellable events.  Components schedule
plain callbacks; there are no coroutine processes, which keeps the hot
path (packet transmission/arrival) cheap enough to push millions of
events through CPython.

Cancellation is O(1) — the heap entry stays behind with a flag — but a
workload that cancels and reschedules long-dated timers on every packet
(TCP re-arms its ~20 ms RTO on every ACK) would otherwise grow the heap
without bound: the dead entries sit far beyond the run horizon and are
never popped.  The simulator therefore counts live cancellations and,
when more than half the heap is dead, rebuilds it without the cancelled
entries.  Entries keep their original ``(time, seq)`` keys, so the pop
order — and with it every simulation result — is unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

#: never bother compacting heaps smaller than this
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancelling an event is O(1): the heap entry stays but is skipped when
    popped.  ``time`` is the absolute simulation time in nanoseconds.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # _note_cancelled() inlined: cancel runs once per ACK
                # (RTO re-arm) and the extra call was measurable
                sim._cancelled = count = sim._cancelled + 1
                if count > _COMPACT_MIN and count * 2 > len(sim._heap):
                    sim._compact()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} {getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Typical use::

        sim = Simulator()
        sim.schedule(usec(10), my_callback, arg1, arg2)
        sim.run(until=seconds(1))

    Events at the same timestamp fire in scheduling order (FIFO), which
    makes runs reproducible regardless of heap internals.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: List[tuple] = []
        self._running = False
        #: cancelled events still sitting in the heap (approximate: an
        #: event cancelled after it fired counts until the next compaction)
        self._cancelled: int = 0
        #: cumulative count of events fired over the simulator's lifetime
        #: (perf benchmarks report events/sec against wall time)
        self.events_executed: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def pending_count(self) -> int:
        """Heap entries currently held, cancelled ones included."""
        return len(self._heap)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        event = Event(time, fn, args, self)
        self._seq = seq = self._seq + 1
        _heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  Entries keep their
        ``(time, seq)`` keys, so pop order is exactly what it would have
        been had the dead entries simply been skipped.  The list is
        mutated in place: ``run()``/``step()`` hold local aliases to it
        while dispatching the callbacks that trigger compaction."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        heap = self._heap
        while heap:
            _, _, event = _heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self.events_executed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events executed.

        When stopping at ``until``, the clock is advanced to ``until`` so
        rate computations over a fixed window are exact.
        """
        count = 0
        heap = self._heap
        pop = _heappop
        while heap:
            time, _, event = heap[0]
            if until is not None and time > until:
                break
            pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            event.fn(*event.args)
            count += 1
            if max_events is not None and count >= max_events:
                self.events_executed += count
                return count
        if until is not None and self._now < until:
            self._now = until
        self.events_executed += count
        return count
