"""Named, seeded random streams.

Every stochastic component pulls from its own ``random.Random`` stream
derived from a single experiment seed plus the component's name.  This
keeps experiments reproducible *and* insulated: adding one more draw in
the workload generator does not perturb ECMP hash decisions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent ``random.Random`` instances keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """A new stream factory whose seed is derived from ``name``."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
