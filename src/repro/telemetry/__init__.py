"""Simulation telemetry: metrics registry, event tracer, Testbed probes.

Off by default.  Enable per run::

    from repro.telemetry import TelemetryConfig
    tb = Testbed(cfg, telemetry=TelemetryConfig(trace=True, trace_dir="out"))
    ...
    snapshot = tb.telemetry.snapshot()       # sorted metrics dict
    tb.telemetry.export_trace()              # Perfetto-loadable JSON

or from the runner CLI with ``--trace`` / ``--metrics-out``.
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryConfig,
    per_cell_telemetry,
)
from repro.telemetry.instrument import instrument_testbed
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "instrument_testbed",
    "per_cell_telemetry",
]
