"""The `Telemetry` handle a Testbed carries, and its no-op twin.

Design rules that keep telemetry honest:

* **Off by default, near-zero overhead.**  Components hold a probe
  attribute that defaults to ``None`` and guard every call site with
  ``if probe is not None``; with telemetry disabled no object is ever
  allocated on the hot path.
* **Pure observer.**  Probes only *read* simulation state — they never
  draw from the RNG streams or schedule events, so enabling telemetry
  cannot change a single packet's fate.  (``tests/test_telemetry.py``
  enforces this by diffing results with telemetry on vs off.)
* **Deterministic.**  Snapshots are sorted dicts of plain values;
  traces are append-only logs of simulation-clock events.  The same
  config + seed produces byte-identical output, serial or parallel.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


@dataclass(frozen=True)
class TelemetryConfig:
    """What to collect.  Frozen so it can ride inside hashed JobSpecs."""

    #: collect metric snapshots (counters/gauges/histograms)
    metrics: bool = True
    #: record structured trace events (spans + instants)
    trace: bool = False
    #: directory trace files are exported into (created on demand)
    trace_dir: Optional[str] = None
    #: basename for exported traces (``<name>.trace.json`` / ``.jsonl``)
    trace_name: Optional[str] = None
    #: tracer memory bound; events past this are counted, not stored
    max_trace_events: int = 1_000_000


def per_cell_telemetry(
    telemetry: Optional[TelemetryConfig], label: str
) -> Optional[TelemetryConfig]:
    """Derive a sweep cell's config: same knobs, its own trace file.

    Labels are slash-separated (``sweep/scheme/point/seed``); flattening
    them keeps every cell's trace in one directory.  ``None`` stays
    ``None`` so disabled telemetry never grows a config object.
    """
    if telemetry is None or not telemetry.trace:
        return telemetry
    return replace(telemetry, trace_name=label.replace("/", "_"))


class Telemetry:
    """Live collector: a metrics registry plus an optional tracer."""

    enabled = True

    def __init__(self, sim, config: Optional[TelemetryConfig] = None):
        self.sim = sim
        self.config = config or TelemetryConfig()
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = (
            Tracer(sim, self.config.max_trace_events)
            if self.config.trace else None
        )
        #: callbacks run at snapshot time to read cumulative sim state
        self._samplers: List[Callable[[MetricsRegistry], None]] = []

    def add_sampler(self, fn: Callable[[MetricsRegistry], None]) -> None:
        self._samplers.append(fn)

    def snapshot(self) -> Dict[str, Any]:
        """Run samplers, then dump every metric (sorted, JSON-able)."""
        if not self.config.metrics:
            return {}
        for sampler in self._samplers:
            sampler(self.registry)
        return self.registry.snapshot()

    def export_trace(self) -> Optional[str]:
        """Write the Chrome trace + JSONL next to it; returns the path.

        No-op (returns None) when tracing is off or no dir was given.
        """
        if self.tracer is None or self.config.trace_dir is None:
            return None
        os.makedirs(self.config.trace_dir, exist_ok=True)
        name = self.config.trace_name or "trace"
        chrome_path = os.path.join(
            self.config.trace_dir, f"{name}.trace.json")
        self.tracer.write_chrome(chrome_path)
        self.tracer.write_jsonl(
            os.path.join(self.config.trace_dir, f"{name}.jsonl"))
        return chrome_path


class NullTelemetry:
    """The disabled sink: every operation is a no-op.

    Components never talk to this directly (they guard on their own
    ``probe is None``); it exists so ``Testbed.telemetry`` is always a
    valid handle and experiment code can call ``snapshot()`` without
    branching.
    """

    enabled = False
    tracer = None

    def add_sampler(self, fn) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def export_trace(self) -> None:
        return None


#: shared singleton — NullTelemetry is stateless
NULL_TELEMETRY = NullTelemetry()
