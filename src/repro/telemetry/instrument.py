"""Probe objects + `instrument_testbed`: attach telemetry to a Testbed.

Two complementary mechanisms feed the registry:

* **Probes** are small objects installed on a component's ``probe``
  attribute (which defaults to ``None``; call sites are guarded, so
  the disabled path never pays for them).  They capture *distributional*
  data that only exists in the moment — queue depth at enqueue, GRO
  hold durations, NIC poll batch cost — and emit trace events.
* **Samplers** run at snapshot time and mirror the simulator's own
  cumulative counters (drops by cause, tx/rx packets, retransmit
  stats) into registry metrics.  Nothing is double-counted: probes
  never increment counters a sampler also reads.

Metric names follow ``component.instance.metric``:

    switch.L1.rx_pkts            port.L1->S1.depth_bytes
    port.L1->S1.drops.pool       host.h0.nic.ring_drops
    host.h0.gro.hold_ns          host.h0.tcp.fast_retransmits
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.core import Telemetry
from repro.telemetry.metrics import (
    DEPTH_BUCKETS_BYTES,
    DURATION_BUCKETS_NS,
    SIZE_BUCKETS_BYTES,
    MetricsRegistry,
)

#: NIC poll batch sizes: 1 .. 64 packets in powers of two
POLL_BATCH_BUCKETS = tuple(1 << k for k in range(0, 7))


class QueueProbe:
    """Per-port queue observer: depth distribution + drop trace events.

    Drop *counts* (by cause) are always kept by the queue itself and
    mirrored by the sampler; this probe adds the depth histogram and
    the per-drop trace instant.
    """

    __slots__ = ("depth", "tracer", "track")

    def __init__(self, telemetry: Telemetry, port_name: str):
        self.depth = telemetry.registry.histogram(
            f"port.{port_name}.depth_bytes", DEPTH_BUCKETS_BYTES)
        self.tracer = telemetry.tracer
        self.track = f"port:{port_name}"

    def on_enqueue(self, pkt, depth_bytes: int) -> None:
        self.depth.observe(depth_bytes)

    def on_drop(self, pkt, cause: str, depth_bytes: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "queue", f"drop:{cause}", self.track,
                {"flow": pkt.flow_id, "seq": pkt.seq,
                 "bytes": pkt.wire_size, "depth_bytes": depth_bytes},
            )


class NicProbe:
    """Per-host NIC observer: poll batch cost spans + ring-drop instants."""

    __slots__ = ("batch_pkts", "poll_cost", "tracer", "track")

    def __init__(self, telemetry: Telemetry, host_id: int):
        reg = telemetry.registry
        prefix = f"host.h{host_id}.nic"
        self.batch_pkts = reg.histogram(
            f"{prefix}.poll_batch_pkts", POLL_BATCH_BUCKETS)
        self.poll_cost = reg.histogram(
            f"{prefix}.poll_cost_ns", DURATION_BUCKETS_NS)
        self.tracer = telemetry.tracer
        self.track = f"host:h{host_id}:nic"

    def on_ring_drop(self, pkt) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "nic", "ring_drop", self.track,
                {"flow": pkt.flow_id, "seq": pkt.seq},
            )

    def on_poll(self, now_ns: int, cost_ns: float, n_pkts: int,
                n_segments: int) -> None:
        self.batch_pkts.observe(n_pkts)
        cost = int(cost_ns)
        self.poll_cost.observe(cost)
        if self.tracer is not None:
            self.tracer.complete(
                "nic", "poll", self.track, now_ns, cost,
                {"pkts": n_pkts, "segments": n_segments},
            )


class GroProbe:
    """Per-host GRO observer: hold/flush decisions of Algorithm 2."""

    __slots__ = ("hold", "segment_bytes", "reorder_wait",
                 "tracer", "track")

    def __init__(self, telemetry: Telemetry, host_id: int):
        reg = telemetry.registry
        prefix = f"host.h{host_id}.gro"
        self.hold = reg.histogram(f"{prefix}.hold_ns", DURATION_BUCKETS_NS)
        self.segment_bytes = reg.histogram(
            f"{prefix}.segment_bytes", SIZE_BUCKETS_BYTES)
        self.reorder_wait = reg.histogram(
            f"{prefix}.reorder_wait_ns", DURATION_BUCKETS_NS)
        self.tracer = telemetry.tracer
        self.track = f"host:h{host_id}:gro"

    def on_push(self, flow_id: int, seg, now_ns: int) -> None:
        self.segment_bytes.observe(seg.payload_len)
        held_ns = now_ns - seg.created_at
        if held_ns > 0:
            self.hold.observe(held_ns)
            if self.tracer is not None:
                self.tracer.complete(
                    "gro", "hold", self.track, seg.created_at, held_ns,
                    {"flow": flow_id, "cell": seg.flowcell_id,
                     "bytes": seg.payload_len},
                )

    def on_loss_detected(self, flow_id: int, seg, now_ns: int) -> None:
        """Intra-flowcell gap pushed immediately: loss, not reordering."""
        if self.tracer is not None:
            self.tracer.instant(
                "gro", "loss_detected", self.track,
                {"flow": flow_id, "cell": seg.flowcell_id, "seq": seg.seq},
            )

    def on_timeout(self, flow_id: int, seg, now_ns: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "gro", "hold_timeout", self.track,
                {"flow": flow_id, "cell": seg.flowcell_id,
                 "held_ns": now_ns - seg.created_at},
            )

    def on_reorder_sample(self, flow_id: int, wait_ns: int) -> None:
        self.reorder_wait.observe(wait_ns)
        if self.tracer is not None:
            self.tracer.instant(
                "gro", "reorder_sample", self.track,
                {"flow": flow_id, "wait_ns": wait_ns},
            )

    def on_evict(self, flow_id: int, seg, now_ns: int) -> None:
        """Official GRO ejecting a segment it could not merge into."""
        self.segment_bytes.observe(seg.payload_len)
        if self.tracer is not None:
            self.tracer.instant(
                "gro", "evict", self.track,
                {"flow": flow_id, "bytes": seg.payload_len},
            )


class TcpProbe:
    """Per-host TCP observer: RTO / fast-retransmit / recovery spans."""

    __slots__ = ("tracer", "track")

    def __init__(self, telemetry: Telemetry, host_id: int):
        self.tracer = telemetry.tracer
        self.track = f"host:h{host_id}:tcp"

    def on_fast_retransmit(self, flow_id: int, snd_una: int,
                           snd_nxt: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "tcp", "fast_retransmit", self.track,
                {"flow": flow_id, "una": snd_una, "nxt": snd_nxt},
            )

    def on_rto(self, flow_id: int, snd_una: int, snd_nxt: int,
               rto_ns: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(
                "tcp", "rto", self.track,
                {"flow": flow_id, "una": snd_una, "nxt": snd_nxt,
                 "rto_ns": rto_ns},
            )

    def on_recovery_end(self, flow_id: int, start_ns: int,
                        now_ns: int) -> None:
        if self.tracer is not None:
            self.tracer.complete(
                "tcp", "recovery", self.track, start_ns, now_ns - start_ns,
                {"flow": flow_id},
            )


class FlowcellProbe:
    """Per-host vSwitch observer: flowcell path assignments."""

    __slots__ = ("assigned", "tracer", "track", "_last")

    def __init__(self, telemetry: Telemetry, host_id: int):
        self.assigned = telemetry.registry.counter(
            f"host.h{host_id}.presto.flowcells_assigned")
        self.tracer = telemetry.tracer
        self.track = f"host:h{host_id}:vswitch"
        self._last = None

    def on_flowcell(self, seg, path_index: int, cell: int) -> None:
        # count each flowcell once, on its first segment
        key = (seg.flow_id, cell)
        if key != self._last:
            self._last = key
            self.assigned.inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "presto", "flowcell", self.track,
                    {"flow": seg.flow_id, "cell": cell, "path": path_index},
                )


def _watch_links(telemetry: Telemetry, topo) -> None:
    """Emit a trace instant on every link state/rate change, so fault
    timelines line up with queue/GRO/TCP activity in Perfetto.

    Observation only: the callback reads the link and writes the trace
    buffer; failover groups and the control plane keep their own
    subscriptions."""
    tracer = telemetry.tracer
    if tracer is None:
        return
    for link in topo.links:
        state = {"up": link.up}

        def on_change(changed, state=state):
            if changed.up != state["up"]:
                state["up"] = changed.up
                tracer.instant(
                    "fault", "link_up" if changed.up else "link_down",
                    f"link:{changed.name}", {"rate_bps": changed.rate_bps})
            else:  # same up/down state: the rate moved (degraded optics)
                tracer.instant(
                    "fault", "link_rate", f"link:{changed.name}",
                    {"rate_bps": changed.rate_bps})

        link.on_state_change.append(on_change)


def _switch_sampler(topo):
    def sample(reg: MetricsRegistry) -> None:
        for name in sorted(topo.switches):
            sw = topo.switches[name]
            reg.counter(f"switch.{name}.rx_pkts").record_total(sw.rx_pkts)
            reg.counter(f"switch.{name}.drops.no_route").record_total(
                sw.no_route_drops)
            reg.counter(f"switch.{name}.drops.ttl").record_total(sw.ttl_drops)
            if sw.shared_buffer is not None:
                reg.gauge(f"switch.{name}.pool_used_bytes").set(
                    sw.shared_buffer.used_bytes)
            for port in sw.ports:
                prefix = f"port.{port.name}"
                reg.counter(f"{prefix}.tx_pkts").record_total(port.tx_pkts)
                reg.counter(f"{prefix}.tx_bytes").record_total(port.tx_bytes)
                reg.counter(f"{prefix}.drops.total").record_total(
                    port.queue.dropped_pkts)
                for cause, n in sorted(port.queue.drop_causes.items()):
                    reg.counter(f"{prefix}.drops.{cause}").record_total(n)
                if port.wire_drop_pkts:
                    reg.counter(f"{prefix}.drops.wire").record_total(
                        port.wire_drop_pkts)
                reg.gauge(f"{prefix}.queued_bytes").set(
                    port.queue.bytes_queued)
    return sample


def _host_sampler(hosts):
    def sample(reg: MetricsRegistry) -> None:
        for host in hosts:
            prefix = f"host.h{host.host_id}"
            nic = host.nic
            reg.counter(f"{prefix}.nic.tx_pkts").record_total(nic.tx_pkts)
            reg.counter(f"{prefix}.nic.tx_segments").record_total(
                nic.tx_segments)
            reg.counter(f"{prefix}.nic.rx_pkts").record_total(nic.rx_pkts)
            reg.counter(f"{prefix}.nic.ring_drops").record_total(
                nic.ring_drops)
            gro = host.gro
            reg.counter(f"{prefix}.gro.merged_pkts").record_total(
                gro.merged_pkts)
            if hasattr(gro, "timeout_fires"):
                reg.counter(f"{prefix}.gro.timeout_fires").record_total(
                    gro.timeout_fires)
                reg.counter(f"{prefix}.gro.reorder_samples").record_total(
                    gro.reorder_samples)
            if hasattr(gro, "evicted_segments"):
                reg.counter(f"{prefix}.gro.evicted_segments").record_total(
                    gro.evicted_segments)
            timeouts = fast_rtx = bytes_retx = 0
            for sender in host.senders.values():
                timeouts += sender.timeouts
                fast_rtx += sender.fast_retransmits
                bytes_retx += sender.bytes_retx
            reg.counter(f"{prefix}.tcp.timeouts").record_total(timeouts)
            reg.counter(f"{prefix}.tcp.fast_retransmits").record_total(
                fast_rtx)
            reg.counter(f"{prefix}.tcp.bytes_retx").record_total(bytes_retx)
    return sample


def instrument_testbed(tb) -> None:
    """Install probes on every hot component of ``tb`` and register the
    snapshot-time samplers.  Idempotent per testbed; only called when
    ``tb.telemetry.enabled``."""
    telemetry: Telemetry = tb.telemetry
    for sw in tb.topo.switches.values():
        for port in sw.ports:
            port.queue.probe = QueueProbe(telemetry, port.name)
    for host in tb.hosts:
        host.nic.probe = NicProbe(telemetry, host.host_id)
        host.gro.probe = GroProbe(telemetry, host.host_id)
        host.tcp_probe = TcpProbe(telemetry, host.host_id)
        host.lb.probe = FlowcellProbe(telemetry, host.host_id)
        # the host's own egress queue (qdisc) is worth watching too
        if host.nic.port is not None:
            host.nic.port.queue.probe = QueueProbe(
                telemetry, host.nic.port.name)
    _watch_links(telemetry, tb.topo)
    telemetry.add_sampler(_switch_sampler(tb.topo))
    telemetry.add_sampler(_host_sampler(tb.hosts))
    # failure-loss byte counters (lazy import: repro.faults builds on
    # the experiment harness, which imports this module at load time)
    from repro.faults.metrics import register_fault_metrics

    register_fault_metrics(telemetry, tb.topo, tb.hosts)
