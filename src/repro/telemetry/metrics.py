"""Simulation-clock-aware metrics: counters, gauges and histograms.

Every metric lives in a :class:`MetricsRegistry` under a dotted name
(``component.instance.metric``, e.g. ``port.L1->S1.depth_bytes``).  A
snapshot is a plain, JSON-able dict with sorted keys, so two runs of
the same deterministic simulation produce byte-identical snapshots —
serial vs parallel, cached vs fresh.

Histograms use *fixed* bucket edges chosen at creation time (never
data-dependent), which is what keeps merged/parallel snapshots
deterministic: the bucket an observation lands in depends only on the
value, not on what arrived before it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Sequence, Union

#: queue/ring depth buckets: 1 KB .. 4 MB in powers of two
DEPTH_BUCKETS_BYTES = tuple(1 << k for k in range(10, 23))
#: duration buckets: 1 us .. ~134 ms in powers of two (ns)
DURATION_BUCKETS_NS = tuple(1000 * (1 << k) for k in range(0, 18))
#: segment/payload size buckets: 256 B .. 64 KB in powers of two
SIZE_BUCKETS_BYTES = tuple(1 << k for k in range(8, 17))


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def record_total(self, total: int) -> None:
        """Mirror an external cumulative counter; must not go backwards."""
        if total < self.value:
            raise ValueError(
                f"counter {self.name!r} went backwards: "
                f"{self.value} -> {total}"
            )
        self.value = total

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Fixed-edge histogram with count/sum/min/max.

    ``edges`` are the *upper-inclusive* boundaries of the first
    ``len(edges)`` buckets; one overflow bucket catches everything
    above the last edge (``counts`` has ``len(edges) + 1`` entries).
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[Union[int, float]]):
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must strictly increase")
        self.name = name
        self.edges = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0
        self.min: Union[int, float, None] = None
        self.max: Union[int, float, None] = None

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect_right(self.edges, value) if value > self.edges[0]
                    else 0] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Sequence[Union[int, float]] = DURATION_BUCKETS_NS
    ) -> Histogram:
        return self._get(name, Histogram, edges)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as a sorted, JSON-able dict (deterministic)."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }
