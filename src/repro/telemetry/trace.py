"""Structured event tracer with Chrome trace-event / JSONL export.

The tracer records *instants* (a drop, a flowcell assignment, an RTO)
and *complete spans* (a GRO hold from segment arrival to flush, a NIC
poll batch) against the simulation clock.  Export targets:

* ``write_jsonl`` — one JSON object per line, trivially greppable;
* ``write_chrome`` — the Chrome trace-event format, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Events carry a ``cat`` (category: ``queue``, ``nic``, ``gro``,
``tcp``, ``presto``), a ``name``, a nanosecond timestamp, and a flat
``args`` dict.  Timestamps are emitted in microseconds (floats) in the
Chrome export because that is the unit the format mandates; the JSONL
export keeps raw nanoseconds.

The tracer is bounded: past ``max_events`` it drops new events and
counts them, so a runaway trace cannot exhaust memory.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Chrome trace-event phase codes
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_METADATA = "M"


class Tracer:
    """Append-only, bounded event log keyed to the simulation clock."""

    def __init__(self, sim, max_events: int = 1_000_000):
        self.sim = sim
        self.max_events = max_events
        self.events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        self._track_ids: Dict[str, int] = {}

    # --- recording -----------------------------------------------------------

    def track_id(self, name: str) -> int:
        """Stable small integer for a named track (maps to a Chrome tid)."""
        tid = self._track_ids.get(name)
        if tid is None:
            tid = len(self._track_ids) + 1
            self._track_ids[name] = tid
        return tid

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def instant(
        self,
        cat: str,
        name: str,
        track: str,
        args: Optional[Dict[str, Any]] = None,
        ts_ns: Optional[int] = None,
    ) -> None:
        self._append({
            "ph": PH_INSTANT,
            "cat": cat,
            "name": name,
            "ts_ns": self.sim.now if ts_ns is None else ts_ns,
            "tid": self.track_id(track),
            "args": args or {},
        })

    def complete(
        self,
        cat: str,
        name: str,
        track: str,
        start_ns: int,
        dur_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._append({
            "ph": PH_COMPLETE,
            "cat": cat,
            "name": name,
            "ts_ns": start_ns,
            "dur_ns": dur_ns,
            "tid": self.track_id(track),
            "args": args or {},
        })

    def __len__(self) -> int:
        return len(self.events)

    # --- export --------------------------------------------------------------

    def to_chrome_json(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        trace_events: List[Dict[str, Any]] = []
        for name, tid in sorted(self._track_ids.items(), key=lambda kv: kv[1]):
            trace_events.append({
                "ph": PH_METADATA,
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            })
        for ev in self.events:
            out = {
                "ph": ev["ph"],
                "cat": ev["cat"],
                "name": ev["name"],
                "pid": 1,
                "tid": ev["tid"],
                "ts": ev["ts_ns"] / 1000.0,
                "args": ev["args"],
            }
            if ev["ph"] == PH_COMPLETE:
                out["dur"] = ev["dur_ns"] / 1000.0
            else:
                out["s"] = "t"  # thread-scoped instant
            trace_events.append(out)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_json(), fh, sort_keys=True)
            fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev, sort_keys=True))
                fh.write("\n")
