"""Unit conventions used throughout the library.

All simulated time is kept as **integer nanoseconds** so event ordering is
exact and runs are reproducible bit-for-bit.  Data sizes are **bytes** and
link/application rates are **bits per second**.  The helpers below exist so
call sites read like the paper ("64 KB flowcells", "10 Gbps links",
"500 us inactivity timer") instead of raw exponents.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


def nsec(value: float) -> int:
    """Nanoseconds as an integer time value."""
    return int(round(value))


def usec(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(round(value * USEC))


def msec(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(round(value * MSEC))


def seconds(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(round(value * SEC))


def to_seconds(time_ns: int) -> float:
    """Integer nanoseconds -> float seconds (for reporting only)."""
    return time_ns / SEC


# --- sizes -----------------------------------------------------------------

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

#: Standard Ethernet MTU payload used by the paper's testbed.
MTU = 1500

#: Bytes of L2-L4 headers we account for on the wire per MTU packet
#: (Ethernet 14 + IP 20 + TCP 20 + preamble/IFG/FCS 24 = 78; we fold the
#: framing overhead into a single constant so goodput/throughput math is
#: explicit at call sites).
HEADER_BYTES = 78

#: Maximum TCP Segmentation Offload segment: the flowcell size (paper S2.1).
MAX_TSO_BYTES = 64 * KB


# --- rates -----------------------------------------------------------------


def kbps(value: float) -> float:
    return value * 1e3


def mbps(value: float) -> float:
    return value * 1e6


def gbps(value: float) -> float:
    return value * 1e9


def serialization_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Time to clock ``size_bytes`` onto a link running at ``rate_bps``.

    Always at least 1 ns so zero-size control packets still advance time.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return max(1, int(round(size_bytes * 8 * SEC / rate_bps)))


def rate_bps(size_bytes: int, duration_ns: int) -> float:
    """Average rate in bit/s for ``size_bytes`` moved in ``duration_ns``."""
    if duration_ns <= 0:
        return 0.0
    return size_bytes * 8 * SEC / duration_ns
