"""repro.validate — paper-fidelity validation.

Three layers, one promise: a regression in the reproduced physics
cannot pass silently.

* **Always-on invariants** (:mod:`repro.validate.invariants`) —
  conservation laws any ``Testbed`` run can arm via
  ``TestbedConfig(validate=True)``: quiesce, byte conservation,
  schedule consistency, flowcell-ID monotonicity, GRO no-data-loss.
* **Figure oracles** (:mod:`repro.validate.oracles`) — seed-robust
  qualitative assertions per headline paper result (FCT ordering, GRO
  reordering bounds, failover/rebalance convergence), fanned out
  through :mod:`repro.runner`.
* **CLI** — ``python -m repro.validate`` runs the oracle suite and
  writes machine-readable ``VALIDATION.json``.

This package's top level stays import-light (invariants + report
shapes only): the experiment-heavy oracle modules load lazily so
``repro.experiments.harness`` can import the probe without cycles.
"""

from repro.validate.invariants import (
    InvariantReport,
    InvariantViolation,
    ValidationProbe,
    byte_ledger,
    check_invariants,
    runtime_check,
)
from repro.validate.report import (
    OracleCheck,
    OracleReport,
    validation_payload,
    write_validation_json,
)

__all__ = [
    "InvariantReport",
    "InvariantViolation",
    "ValidationProbe",
    "byte_ledger",
    "check_invariants",
    "runtime_check",
    "OracleCheck",
    "OracleReport",
    "validation_payload",
    "write_validation_json",
]
