"""``python -m repro.validate`` — run the paper-fidelity oracle suite.

Commands::

    python -m repro.validate list
    python -m repro.validate run --all --seeds 1,2,3 --jobs 4
    python -m repro.validate run gro_reordering --scale 0.5 --no-store
    python -m repro.validate report

``run`` fans every (oracle, scheme, seed) cell through the parallel
runner (cached in the result store, so re-runs resume), prints a
verdict table and writes machine-readable ``VALIDATION.json``.  Exit
status is non-zero when any oracle check fails — CI-friendly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.runner.store import DEFAULT_RESULTS_DIR, RESULTS_DIR_ENV, ResultStore

DEFAULT_OUT = "VALIDATION.json"


def _csv_ints(text: Optional[str]) -> Sequence[int]:
    return tuple(int(s) for s in (text or "").split(",") if s)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Paper-fidelity validation: figure oracles over a "
                    "seed sweep, VALIDATION.json out.",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the available figure oracles")

    run = sub.add_parser("run", help="run oracles and write VALIDATION.json")
    run.add_argument(
        "oracles", nargs="*",
        help="oracle names (see `list`); default with --all: all of them",
    )
    run.add_argument(
        "--all", action="store_true",
        help="run every registered oracle",
    )
    run.add_argument("--seeds", default="1,2,3", help="comma-separated seeds")
    run.add_argument(
        "--scale", type=float, default=1.0, metavar="F",
        help="window scale factor (tests/smoke use e.g. 0.2)",
    )
    run.add_argument(
        "--fidelity", choices=("packet", "flow"), default=None,
        help="simulation fidelity: packet (default) or the fluid "
             "flow-level engine (skips packet-only oracles with --all)",
    )
    run.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="fabric for topology-agnostic oracles, e.g. 'fat-tree:k=4' "
             "(skips fabric-pinned oracles with --all)",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count(); 1 = in-process "
             "serial)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout",
    )
    run.add_argument(
        "--force", action="store_true",
        help="ignore cached cell results and re-run",
    )
    run.add_argument(
        "--no-store", action="store_true",
        help="skip the result store entirely",
    )
    run.add_argument(
        "--service", default=None, metavar="URL",
        help="run the oracle cells on a sweep coordinator "
             "(python -m repro.service coordinator) instead of a local "
             "pool",
    )
    run.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help=f"results root (default: ${RESULTS_DIR_ENV} or "
             f"{DEFAULT_RESULTS_DIR})",
    )
    run.add_argument(
        "--out", default=DEFAULT_OUT, metavar="FILE",
        help=f"machine-readable output path (default: ./{DEFAULT_OUT})",
    )
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines",
    )

    report = sub.add_parser(
        "report", help="render an existing VALIDATION.json as a table")
    report.add_argument(
        "--in", dest="path", default=DEFAULT_OUT, metavar="FILE",
        help=f"VALIDATION.json to read (default: ./{DEFAULT_OUT})",
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments.harness import format_table
    from repro.validate.oracles import ORACLES

    print(format_table(
        ["oracle", "figure", "claim"],
        [[od.name, od.figure, od.description] for od in ORACLES.values()],
    ))
    return 0


def _report_rows(reports) -> List[List[object]]:
    rows = []
    for report in reports:
        for check in report.checks:
            observed = " ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(check.observed.items())
            )
            rows.append([
                report.oracle,
                check.name,
                "PASS" if check.passed else "FAIL",
                observed,
            ])
    return rows


def _cmd_run(ns: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table
    from repro.validate.oracles import ORACLES, oracle_names, run_oracles
    from repro.validate.report import write_validation_json

    known = oracle_names()
    names = tuple(ns.oracles)
    if ns.all:
        if names:
            print("pass either oracle names or --all, not both",
                  file=sys.stderr)
            return 2
        names = known
        if ns.fidelity == "flow":
            skipped = [n for n in names if ORACLES[n].packet_only]
            names = tuple(n for n in names if not ORACLES[n].packet_only)
            if skipped and not ns.quiet:
                print(f"skipping packet-only oracle(s) at --fidelity flow: "
                      f"{', '.join(skipped)}", file=sys.stderr)
        if ns.topology is not None:
            skipped = [n for n in names if ORACLES[n].fixed_topology]
            names = tuple(n for n in names if not ORACLES[n].fixed_topology)
            if skipped and not ns.quiet:
                print(f"skipping fabric-pinned oracle(s) with --topology: "
                      f"{', '.join(skipped)}", file=sys.stderr)
    if not names:
        print(f"no oracles selected; name some or pass --all "
              f"(available: {', '.join(known)})", file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown oracle(s) {', '.join(unknown)}; "
              f"pick from {', '.join(known)}", file=sys.stderr)
        return 2
    if ns.fidelity == "flow":
        packet_only = [n for n in names if ORACLES[n].packet_only]
        if packet_only:
            print(f"oracle(s) {', '.join(packet_only)} are packet-only "
                  f"and cannot run at --fidelity flow", file=sys.stderr)
            return 2
    if ns.topology is not None:
        from repro.net.fabrics import as_spec

        try:
            as_spec(ns.topology)
        except ValueError as exc:
            print(f"bad --topology: {exc}", file=sys.stderr)
            return 2
        pinned = [n for n in names if ORACLES[n].fixed_topology]
        if pinned:
            print(f"oracle(s) {', '.join(pinned)} are pinned to a paper "
                  f"fabric and ignore --topology", file=sys.stderr)
            return 2
    if ns.jobs is not None and ns.jobs < 1:
        print(f"--jobs must be >= 1, got {ns.jobs}", file=sys.stderr)
        return 2
    if ns.timeout is not None and ns.timeout <= 0:
        print(f"--timeout must be positive, got {ns.timeout}",
              file=sys.stderr)
        return 2
    if ns.scale <= 0:
        print(f"--scale must be positive, got {ns.scale}", file=sys.stderr)
        return 2
    try:
        seeds = _csv_ints(ns.seeds)
    except ValueError as exc:
        print(f"--seeds must be comma-separated integers: {exc}",
              file=sys.stderr)
        return 2
    if not seeds:
        print("--seeds must name at least one seed", file=sys.stderr)
        return 2

    store = None if ns.no_store else ResultStore(ns.results_dir)
    log = None if ns.quiet else (lambda msg: print(msg, file=sys.stderr))
    reports = run_oracles(
        names, seeds=seeds, scale=ns.scale,
        jobs=ns.jobs if ns.jobs is not None else 1,
        store=store, force=ns.force, timeout_s=ns.timeout, log=log,
        fidelity=ns.fidelity, topology=ns.topology, service=ns.service,
    )
    print(format_table(["oracle", "check", "verdict", "observed"],
                       _report_rows(reports)))
    path = write_validation_json(reports, ns.out)
    n_passed = sum(1 for r in reports if r.passed)
    print(f"\n{n_passed}/{len(reports)} oracles passed "
          f"(seeds {','.join(map(str, seeds))}, scale {ns.scale:g}); "
          f"wrote {path}", file=sys.stderr)
    return 0 if n_passed == len(reports) else 1


def _cmd_report(ns: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table

    try:
        with open(ns.path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read {ns.path!r}: {exc}", file=sys.stderr)
        return 2
    rows = []
    for oracle in payload.get("oracles", []):
        for check in oracle.get("checks", []):
            fields = check.get("fields", check)
            observed = " ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(fields.get("observed", {}).items())
            )
            rows.append([
                oracle.get("oracle", "?"),
                fields.get("name", "?"),
                "PASS" if fields.get("passed") else "FAIL",
                observed,
            ])
    print(format_table(["oracle", "check", "verdict", "observed"], rows))
    passed = bool(payload.get("passed"))
    print(f"\noverall: {'PASS' if passed else 'FAIL'} ({ns.path})",
          file=sys.stderr)
    return 0 if passed else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    ns = parser.parse_args(argv)
    if ns.command is None:
        parser.print_help()
        return 0
    if ns.command == "list":
        return _cmd_list()
    if ns.command == "run":
        return _cmd_run(ns)
    if ns.command == "report":
        return _cmd_report(ns)
    parser.error(f"unknown command {ns.command!r}")
    return 2
