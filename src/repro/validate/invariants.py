"""Always-on, whole-system invariants any :class:`Testbed` run can check.

Grown out of the chaos soak (:mod:`repro.faults`): these are
conservation laws, not per-feature assertions — *any* bug in the
datapath (a queue flushed without counting, a forwarding loop, a
schedule the controller forgot to push, a GRO segment stranded forever)
shows up as a violated invariant even when no test anticipated that
specific bug.  ``TestbedConfig(validate=True)`` arms them for a plain
experiment; the soak keeps calling :func:`check_invariants` directly.

1. **Quiesce** — once all bounded transfers are done and the topology
   restored, the event heap must drain: nothing may keep rescheduling
   itself forever.
2. **No stuck flows** — every bounded transfer completes (TCP's
   retransmit machinery must survive arbitrary restored fault
   schedules).
3. **Byte conservation** — every wire byte a host NIC transmitted is
   either received by a host NIC (delivered or ring-dropped) or shows
   up in exactly one drop counter along the path:

   ``nic_tx = nic_rx + nic_ring_drop + queue_drops + wire_drops
   + no_route_drops + ttl_drops``  (all in wire bytes)

   Mid-run (``allow_in_flight=True``) the difference must be the
   non-negative number of bytes still sitting in queues and on wires.
4. **Schedule consistency** — after the control plane's last reaction,
   every vSwitch's label schedule equals what the controller would
   compute from the final topology (no stale weighted schedules, no
   missed recovery).
5. **Flowcell-ID monotonicity** (:class:`ValidationProbe`) — per
   (sender, flow), the flowcell ID stamped on outgoing data segments
   never decreases and never skips (paper Algorithm 1; retransmissions
   ride the current cell).
6. **GRO no-data-loss** (:class:`ValidationProbe`) — every wire packet
   a receiver's GRO merged is either pushed up the stack or still held;
   once the sim quiesces nothing may remain held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class InvariantViolation(AssertionError):
    """Raised by :meth:`Testbed.run` when an armed invariant fails."""


@dataclass
class InvariantReport:
    """Outcome of :func:`check_invariants`: violations + the evidence."""

    violations: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _all_ports(tb):
    for sw in tb.topo.switches.values():
        for port in sw.ports:
            yield port
    for host in tb.hosts:
        if host.nic.port is not None:
            yield host.nic.port


def byte_ledger(tb) -> Dict[str, int]:
    """The conservation ledger, in wire bytes."""
    ledger = {
        "nic_tx": sum(h.nic.tx_bytes for h in tb.hosts),
        "nic_rx": sum(h.nic.rx_bytes for h in tb.hosts),
        "nic_ring_drop": sum(h.nic.ring_drop_bytes for h in tb.hosts),
        "queue_drop": 0,
        "wire_drop": 0,
        "no_route_drop": sum(
            sw.no_route_drop_bytes for sw in tb.topo.switches.values()),
        "ttl_drop": sum(
            sw.ttl_drop_bytes for sw in tb.topo.switches.values()),
    }
    for port in _all_ports(tb):
        ledger["queue_drop"] += port.queue.dropped_bytes
        ledger["wire_drop"] += port.wire_drop_bytes
    ledger["accounted"] = (
        ledger["nic_rx"] + ledger["nic_ring_drop"] + ledger["queue_drop"]
        + ledger["wire_drop"] + ledger["no_route_drop"] + ledger["ttl_drop"])
    return ledger


class ValidationProbe:
    """Online observers for the invariants that need in-flight evidence.

    Wraps each host NIC's ``tx_segment`` (labelled segments entering
    TSO) and ``on_segment`` (GRO-flushed segments entering TCP) with
    pass-through observers.  Observation draws no randomness, schedules
    no events and mutates no packet state, so an armed run's
    packet-level behaviour is identical to an unarmed one — only the
    segment pool sees slightly less recycling.
    """

    #: keep reports readable under a pathological datapath
    MAX_RECORDED = 20

    def __init__(self, tb):
        self.violations: List[str] = []
        self._suppressed = 0
        #: (host_id, flow_id) -> last flowcell ID stamped
        self._last_cell: Dict[Tuple[int, int], int] = {}
        #: host_id -> wire packets GRO pushed up the stack
        self._pushed_pkts: Dict[int, int] = {}
        self.segments_labelled = 0
        for host in tb.hosts:
            self._attach(host)

    # --- wiring -----------------------------------------------------------

    def _attach(self, host) -> None:
        nic = host.nic
        host_id = host.host_id
        inner_tx = nic.tx_segment

        def tx_segment(seg, _inner=inner_tx, _hid=host_id):
            self._observe_tx(_hid, seg)
            _inner(seg)

        nic.tx_segment = tx_segment
        inner_up = nic.on_segment

        def on_segment(seg, _inner=inner_up, _hid=host_id):
            self._observe_push(_hid, seg)
            _inner(seg)

        nic.on_segment = on_segment

    def _record(self, message: str) -> None:
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(message)
        else:
            self._suppressed += 1

    # --- observers --------------------------------------------------------

    def _observe_tx(self, host_id: int, seg) -> None:
        if seg.end_seq <= seg.seq:  # ACKs / zero-payload control segments
            return
        self.segments_labelled += 1
        key = (host_id, seg.flow_id)
        prev = self._last_cell.get(key, 0)
        cell = seg.flowcell_id
        if cell < prev:
            self._record(
                f"flowcell ID went backwards at host {host_id} flow "
                f"{seg.flow_id}: {prev} -> {cell}")
        elif cell > prev + 1:
            self._record(
                f"flowcell ID skipped at host {host_id} flow "
                f"{seg.flow_id}: {prev} -> {cell}")
        self._last_cell[key] = cell

    def _observe_push(self, host_id: int, seg) -> None:
        self._pushed_pkts[host_id] = (
            self._pushed_pkts.get(host_id, 0) + seg.pkt_count)

    # --- checking ---------------------------------------------------------

    def check(self, tb, report: InvariantReport,
              require_drained: bool) -> None:
        """Fold the online evidence into ``report``.

        GRO packet conservation (``merged == pushed + held``) holds at
        any event boundary; ``require_drained`` additionally demands
        nothing is still held (true once the sim quiesced).
        """
        for message in self.violations:
            report.violations.append(message)
        if self._suppressed:
            report.violations.append(
                f"... and {self._suppressed} more flowcell violations")
        merged_total = pushed_total = held_total = 0
        for host in tb.hosts:
            merged = getattr(host.gro, "merged_pkts", None)
            if merged is None:  # a custom GRO without counters
                continue
            held = host.gro.held_packet_count()
            pushed = self._pushed_pkts.get(host.host_id, 0)
            merged_total += merged
            pushed_total += pushed
            held_total += held
            if merged != pushed + held:
                report.violations.append(
                    f"GRO packet conservation violated at host "
                    f"{host.host_id}: merged={merged} != pushed={pushed} "
                    f"+ held={held}")
            if require_drained and held:
                report.violations.append(
                    f"GRO at host {host.host_id} still holding {held} "
                    f"packet(s) after quiesce")
        report.stats["segments_labelled"] = self.segments_labelled
        report.stats["flowcell_violations"] = (
            len(self.violations) + self._suppressed)
        report.stats["gro_pkts_merged"] = merged_total
        report.stats["gro_pkts_pushed"] = pushed_total
        report.stats["gro_pkts_held"] = held_total


def check_invariants(
    tb,
    transfers=(),
    check_quiesced: bool = True,
    check_schedules: bool = True,
    probe: Optional[ValidationProbe] = None,
    allow_in_flight: bool = False,
) -> InvariantReport:
    """Run all invariants against a testbed.

    ``transfers`` are the run's *bounded* transfers (objects with the
    :class:`~repro.host.transfer.Transfer` interface plus ``fct_ns``).
    ``check_schedules`` should be False when the control plane has a
    reaction still pending at the horizon (then schedules legitimately
    lag the topology).  ``allow_in_flight=True`` relaxes byte
    conservation to "nothing is double-counted" for mid-run checks,
    when queued/serializing bytes are legitimately unaccounted.
    ``probe`` folds a :class:`ValidationProbe`'s online evidence in.
    """
    report = InvariantReport()

    # 1. quiesce
    pending = tb.sim.peek_time()
    report.stats["quiesced"] = int(pending is None)
    if check_quiesced and pending is not None:
        report.violations.append(
            f"sim did not quiesce: event still pending at t={pending}")

    # 2. no stuck flows
    stuck = [t for t in transfers if getattr(t, "fct_ns", None) is None]
    report.stats["flows_total"] = len(list(transfers))
    report.stats["flows_stuck"] = len(stuck)
    for t in stuck:
        report.violations.append(
            f"stuck transfer: flows {t.flow_ids()} delivered "
            f"{t.delivered_bytes()} bytes, never completed")

    # 3. byte conservation
    ledger = byte_ledger(tb)
    report.stats.update(ledger)
    in_flight = ledger["nic_tx"] - ledger["accounted"]
    if allow_in_flight:
        report.stats["in_flight"] = in_flight
        if in_flight < 0:
            report.violations.append(
                "byte conservation violated: more bytes accounted than "
                f"transmitted (nic_tx={ledger['nic_tx']}, "
                f"accounted={ledger['accounted']}, ledger={ledger})")
    elif in_flight != 0:
        report.violations.append(
            "byte conservation violated: "
            f"nic_tx={ledger['nic_tx']} != accounted={ledger['accounted']} "
            f"(delta={in_flight}, ledger={ledger})")

    # 4. schedules consistent with the final topology
    if check_schedules:
        mismatches = 0
        for lb in tb.controller._vswitches:
            for dst_host in tb.topo.hosts:
                if dst_host == lb.host_id:
                    continue
                expected = tb.controller.schedule_for(lb.host_id, dst_host)
                if lb.labels_for(dst_host) != expected:
                    mismatches += 1
                    if mismatches <= 3:  # keep the report readable
                        report.violations.append(
                            f"stale schedule at host {lb.host_id} -> "
                            f"{dst_host}: {lb.labels_for(dst_host)} != "
                            f"{expected}")
        if mismatches > 3:
            report.violations.append(
                f"... and {mismatches - 3} more stale schedules")
        report.stats["schedule_mismatches"] = mismatches

    # 5+6. online probe evidence (flowcell monotonicity, GRO conservation)
    if probe is not None:
        probe.check(tb, report, require_drained=pending is None)

    return report


def bounded_transfers(apps) -> List:
    """The subset of a run's apps whose completion is checkable: they
    expose ``fct_ns`` and were opened with a byte bound."""
    return [
        app for app in apps
        if getattr(app, "size_bytes", None) is not None
        and hasattr(app, "fct_ns")
    ]


def runtime_check(tb) -> InvariantReport:
    """The always-on subset, with flags derived from live testbed state.

    Safe to call after *any* ``Testbed.run`` horizon: quiesce is never
    demanded (the run may continue), stuck flows are only judged once
    the heap drained, byte conservation tolerates in-flight bytes
    mid-run, and schedule consistency is only asserted when every link
    is up and the control plane (if any) has settled.
    """
    quiesced = tb.sim.peek_time() is None
    control = tb.control_plane
    all_up = all(link.up for link in tb.topo.links)
    return check_invariants(
        tb,
        bounded_transfers(tb.apps) if quiesced else (),
        check_quiesced=False,
        check_schedules=all_up and (control is None or control.settled()),
        probe=getattr(tb, "validation", None),
        allow_in_flight=not quiesced,
    )
