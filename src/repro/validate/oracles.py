"""Figure oracles: machine-checked, seed-robust claims per headline
paper result.

Each oracle runs a scaled-down configuration of the existing
experiment code (the same ``Testbed`` path the figures use) across a
seed sweep via :mod:`repro.runner`, then asserts the paper's
*qualitative* claim — orderings and bounds, never exact numbers, so
the verdicts survive re-seeding and scale changes:

``fct_ordering`` (Figs 9/16)
    Under a fabric-saturating stride workload with concurrent mice,
    Presto's mean mice FCT is strictly better than ECMP's and within a
    tolerance band of the non-blocking Optimal.

``gro_reordering`` (Figs 5/11)
    The fraction of flowcells delivered to TCP with zero out-of-order
    interleavings stays near one for Presto (flowcells + Presto GRO)
    and strictly beats per-packet spraying into the unmodified GRO.

``tournament_ordering`` (Tournament)
    On a doubled-load websearch tournament cell (see
    :mod:`repro.experiments.tournament`), Presto's and RepFlow's mean
    mice FCT both beat per-flow ECMP's — the relative ordering the
    related-work zoo exists to demonstrate.  Packet fidelity only:
    the collision queueing RepFlow hedges against is invisible to the
    fluid engine.

``failover`` (Figs 17/18)
    After a mid-run link failure: the control plane reacts; hardware
    failover restores throughput within a bound long before that
    reaction; the post-reweight phase recovers at least a floor
    fraction of pre-fault per-flow throughput.

Thresholds are deliberately loose (documented constants below): a
violated oracle means a *regression in the reproduced physics*, not a
tolerance misjudged by a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.failure import run_failure_timeline
from repro.experiments.harness import Testbed, TestbedConfig
from repro.experiments.synthetic import run_synthetic_seed
from repro.metrics.reordering import ReorderTracker
from repro.metrics.stats import mean
from repro.runner import JobSpec, ResultStore, ref_of, run_jobs
from repro.units import msec, usec
from repro.validate.report import OracleReport

# --- thresholds (the qualitative claims, as numbers) -------------------------

#: Presto's mean mice FCT must stay within this factor of Optimal's
#: (paper: near-optimal; the band absorbs seed noise at reduced scale)
FCT_OPTIMAL_TOLERANCE = 2.0
#: fraction of flowcells TCP must see with zero out-of-order
#: interleavings under Presto + Presto GRO (paper Fig 5a: ~all)
PRESTO_ZERO_OOO_MIN = 0.9
#: ceiling on the fraction of segments TCP receives behind the highest
#: sequence already delivered, under Presto (loss retransmissions are
#: the only legitimate source, so near zero)
PRESTO_OOO_SEGMENTS_MAX = 0.05
#: post-reweight mean per-flow throughput floor, as a fraction of the
#: pre-fault symmetry phase (paper Fig 17: 3 of 4 trees stay usable)
REBALANCE_MIN_FRACTION = 0.6

# --- per-oracle base windows (multiplied by ``scale``) -----------------------

FCT_SCHEMES = ("presto", "ecmp", "optimal")
FCT_WARM_NS = msec(10)
FCT_MEASURE_NS = msec(20)
FCT_MICE_INTERVAL_NS = msec(2)

REORDER_SCHEMES = ("presto", "perpacket")
REORDER_DURATION_NS = msec(25)

FAILOVER_WORKLOAD = "L1->L4"
FAILOVER_WARM_NS = msec(8)
FAILOVER_MEASURE_NS = msec(12)

#: the tournament ordering claim is checked on a doubled-load
#: websearch cell: at 1x the access links dominate and the field
#: compresses; at 2x fabric collisions separate the schemes
TOURNAMENT_SCHEMES = ("ecmp", "presto", "repflow")
TOURNAMENT_TOPOLOGY = "clos:spines=4,leaves=4,hosts=4"
TOURNAMENT_WORKLOAD = "websearch"
TOURNAMENT_DURATION_NS = msec(5)
TOURNAMENT_DRAIN_NS = msec(5)
TOURNAMENT_LOAD_SCALE = 2.0


def _scaled_ns(base_ns: int, scale: float) -> int:
    """Scale a window, floored so a tiny test scale still simulates."""
    return max(int(base_ns * scale), usec(100))


# --- fct_ordering ------------------------------------------------------------


def _fct_specs(seeds: Sequence[int], scale: float,
               fidelity: Optional[str] = None,
               topology: Optional[str] = None) -> List[JobSpec]:
    # topology rides inside each cell's config, where the default (and
    # any 2-tier clos spec) normalizes to the hash-preserving None —
    # historic stride cells keep their cache keys.
    return [
        JobSpec.make(
            run_synthetic_seed,
            cfg=TestbedConfig(scheme=scheme, seed=seed, fidelity=fidelity,
                              topology=topology),
            label=f"validate/fct/{scheme}/seed{seed}",
            workload="stride",
            warm_ns=_scaled_ns(FCT_WARM_NS, scale),
            measure_ns=_scaled_ns(FCT_MEASURE_NS, scale),
            with_mice=True,
            mice_interval_ns=_scaled_ns(FCT_MICE_INTERVAL_NS, scale),
        )
        for scheme in FCT_SCHEMES
        for seed in seeds
    ]


def _fct_evaluate(seeds: Tuple[int, ...], scale: float,
                  results: List[Any]) -> OracleReport:
    report = OracleReport(oracle="fct_ordering", figure="Fig 9/16",
                          seeds=seeds)
    samples: Dict[str, List[int]] = {}
    it = iter(results)
    for scheme in FCT_SCHEMES:
        samples[scheme] = [f for _ in seeds for f in next(it).mice_fcts_ns]
    report.require(
        "mice_samples",
        all(samples[s] for s in FCT_SCHEMES),
        detail="every scheme must complete mice inside the run",
        **{f"n_{s}": len(samples[s]) for s in FCT_SCHEMES},
    )
    means_ms = {
        s: (mean(samples[s]) / 1e6 if samples[s] else float("inf"))
        for s in FCT_SCHEMES
    }
    report.require(
        "presto_beats_ecmp",
        means_ms["presto"] < means_ms["ecmp"],
        detail="mean mice FCT under a saturating stride workload",
        presto_ms=means_ms["presto"], ecmp_ms=means_ms["ecmp"],
    )
    report.require(
        "presto_near_optimal",
        means_ms["presto"] <= FCT_OPTIMAL_TOLERANCE * means_ms["optimal"],
        detail=f"mean mice FCT within {FCT_OPTIMAL_TOLERANCE}x of Optimal",
        presto_ms=means_ms["presto"], optimal_ms=means_ms["optimal"],
        tolerance=FCT_OPTIMAL_TOLERANCE,
    )
    return report


# --- tournament_ordering -----------------------------------------------------


def _tournament_specs(seeds: Sequence[int], scale: float,
                      fidelity: Optional[str] = None,
                      topology: Optional[str] = None) -> List[JobSpec]:
    # Packet fidelity is the point: RepFlow's hedge pays off against
    # hash-collision queueing, which the fluid engine's smooth rate
    # sharing never produces (there, the duplicate's access-link cost
    # is all that remains and the claim inverts).
    if fidelity == "flow":
        raise ValueError(
            "tournament_ordering is packet-only: RepFlow's first-"
            "finisher gain comes from collision queueing the fluid "
            "engine does not model")
    from repro.experiments.fabric_sweep import fabric_config, run_fabric_cell

    return [
        JobSpec.make(
            run_fabric_cell,
            cfg=fabric_config(topology or TOURNAMENT_TOPOLOGY, scheme,
                              seed, fidelity),
            label=f"validate/tournament/{scheme}/seed{seed}",
            workload=TOURNAMENT_WORKLOAD,
            duration_ns=_scaled_ns(TOURNAMENT_DURATION_NS, scale),
            load_scale=TOURNAMENT_LOAD_SCALE,
            drain_ns=_scaled_ns(TOURNAMENT_DRAIN_NS, scale),
        )
        for scheme in TOURNAMENT_SCHEMES
        for seed in seeds
    ]


def _tournament_evaluate(seeds: Tuple[int, ...], scale: float,
                         results: List[Any]) -> OracleReport:
    report = OracleReport(oracle="tournament_ordering", figure="Tournament",
                          seeds=seeds)
    # count-weighted mean over seeds: cells carry P^2 summaries, not
    # raw FCT populations
    means_ms: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    it = iter(results)
    for scheme in TOURNAMENT_SCHEMES:
        total, n = 0.0, 0
        for _ in seeds:
            summary = next(it).fct_summary
            count = summary.get("count") or 0
            if count and summary.get("mean") is not None:
                total += summary["mean"] * count
                n += count
        counts[scheme] = n
        means_ms[scheme] = (total / n / 1e6) if n else float("inf")
    report.require(
        "mice_samples",
        all(counts[s] for s in TOURNAMENT_SCHEMES),
        detail="every scheme must complete mice inside the run",
        **{f"n_{s}": counts[s] for s in TOURNAMENT_SCHEMES},
    )
    report.require(
        "presto_beats_ecmp",
        means_ms["presto"] < means_ms["ecmp"],
        detail="mean mice FCT on the doubled-load websearch cell",
        presto_ms=means_ms["presto"], ecmp_ms=means_ms["ecmp"],
    )
    report.require(
        "repflow_beats_ecmp",
        means_ms["repflow"] < means_ms["ecmp"],
        detail="replicated mice must win the race against collision "
               "queueing despite doubling their own access-link load",
        repflow_ms=means_ms["repflow"], ecmp_ms=means_ms["ecmp"],
    )
    return report


# --- gro_reordering ----------------------------------------------------------


@dataclass
class ReorderCell:
    """One (scheme, seed) reordering trial's raw evidence."""

    scheme: str
    seed: int
    #: per-flowcell interleave counts (Fig 5a; only meaningful for
    #: schemes that actually batch segments into flowcells)
    ooo_counts: List[int] = field(default_factory=list)
    pushed_segments: int = 0
    #: segments delivered to TCP behind the highest sequence already
    #: delivered for their flow — scheme-agnostic TCP-visible disorder
    ooo_segments: int = 0

    @property
    def frac_zero_ooo(self) -> float:
        if not self.ooo_counts:
            return 0.0
        return (sum(1 for c in self.ooo_counts if c == 0)
                / len(self.ooo_counts))


class _SeqOrderTap:
    """Segment tap: feed the ReorderTracker and count sequence-order
    violations as TCP would see them."""

    def __init__(self, inner):
        self.inner = inner
        self._hi: Dict[int, int] = {}
        self.total = 0
        self.ooo = 0

    def __call__(self, seg) -> None:
        self.inner(seg)
        hi = self._hi.get(seg.flow_id)
        self.total += 1
        if hi is not None and seg.seq < hi:
            self.ooo += 1
        if hi is None or seg.end_seq > hi:
            self._hi[seg.flow_id] = seg.end_seq


def reorder_config(scheme: str, seed: int) -> TestbedConfig:
    """The Fig 4b two-path fabric, receive window pinned to 1 MB so the
    path queues breathe enough to reorder (see
    :func:`repro.experiments.gro_micro.run_fig5`)."""
    cfg = TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                        hosts_per_leaf=2, seed=seed)
    return replace(cfg, tcp=replace(cfg.tcp, rcv_wnd=1024 * 1024))


def run_reorder_cell(cfg: TestbedConfig,
                     duration_ns: int = REORDER_DURATION_NS) -> ReorderCell:
    """One (scheme, seed) trial — the picklable job unit."""
    tb = Testbed(cfg)
    trackers = []
    taps = []
    for dst in (2, 3):
        tracker = ReorderTracker()
        tap = _SeqOrderTap(tracker.observe)
        tb.hosts[dst].segment_tap = tap
        trackers.append(tracker)
        taps.append(tap)
    tb.add_elephant(0, 2)
    tb.add_elephant(1, 3)
    tb.run(duration_ns)
    return ReorderCell(
        scheme=cfg.scheme,
        seed=cfg.seed,
        ooo_counts=[c for t in trackers for c in t.out_of_order_counts()],
        pushed_segments=sum(tap.total for tap in taps),
        ooo_segments=sum(tap.ooo for tap in taps),
    )


def _reorder_specs(seeds: Sequence[int], scale: float,
                   fidelity: Optional[str] = None,
                   topology: Optional[str] = None) -> List[JobSpec]:
    if fidelity == "flow":
        raise ValueError(
            "gro_reordering is packet-only: it taps per-segment GRO "
            "delivery, which the fluid engine does not model")
    if topology is not None:
        raise ValueError(
            "gro_reordering pins the Fig 4b two-path fabric; "
            "--topology does not apply")
    return [
        JobSpec.make(
            run_reorder_cell,
            cfg=reorder_config(scheme, seed),
            label=f"validate/reorder/{scheme}/seed{seed}",
            duration_ns=_scaled_ns(REORDER_DURATION_NS, scale),
        )
        for scheme in REORDER_SCHEMES
        for seed in seeds
    ]


def _reorder_evaluate(seeds: Tuple[int, ...], scale: float,
                      results: List[Any]) -> OracleReport:
    report = OracleReport(oracle="gro_reordering", figure="Fig 5/11",
                          seeds=seeds)
    counts: Dict[str, List[int]] = {}
    pushed: Dict[str, int] = {}
    ooo: Dict[str, int] = {}
    it = iter(results)
    for scheme in REORDER_SCHEMES:
        cells = [next(it) for _ in seeds]
        counts[scheme] = [c for cell in cells for c in cell.ooo_counts]
        pushed[scheme] = sum(cell.pushed_segments for cell in cells)
        ooo[scheme] = sum(cell.ooo_segments for cell in cells)
    report.require(
        "segments_observed",
        all(pushed[s] for s in REORDER_SCHEMES),
        detail="both schemes must deliver observable segments",
        **{f"n_{s}": pushed[s] for s in REORDER_SCHEMES},
    )
    frac_zero_presto = (
        (sum(1 for c in counts["presto"] if c == 0) / len(counts["presto"]))
        if counts["presto"] else 0.0)
    report.require(
        "presto_flowcells_in_order",
        frac_zero_presto >= PRESTO_ZERO_OOO_MIN,
        detail="fraction of flowcells TCP sees with zero out-of-order "
               "interleavings under Presto + Presto GRO",
        frac_zero_presto=frac_zero_presto,
        threshold=PRESTO_ZERO_OOO_MIN,
    )
    frac_ooo = {
        s: (ooo[s] / pushed[s] if pushed[s] else 1.0)
        for s in REORDER_SCHEMES
    }
    report.require(
        "presto_ooo_bounded",
        frac_ooo["presto"] <= PRESTO_OOO_SEGMENTS_MAX,
        detail="fraction of segments TCP receives behind the highest "
               "delivered sequence under Presto + Presto GRO",
        frac_ooo_presto=frac_ooo["presto"],
        threshold=PRESTO_OOO_SEGMENTS_MAX,
    )
    report.require(
        "presto_beats_perpacket",
        frac_ooo["presto"] < frac_ooo["perpacket"],
        detail="per-packet spraying into the stock GRO must expose "
               "strictly more TCP-visible disorder than Presto's "
               "flowcells",
        frac_ooo_presto=frac_ooo["presto"],
        frac_ooo_perpacket=frac_ooo["perpacket"],
    )
    return report


# --- failover ----------------------------------------------------------------


def _failover_specs(seeds: Sequence[int], scale: float,
                    fidelity: Optional[str] = None,
                    topology: Optional[str] = None) -> List[JobSpec]:
    if topology is not None:
        raise ValueError(
            "failover replays the paper's L1->L4 timeline on the "
            "16-host Clos; --topology does not apply")
    specs = []
    for seed in seeds:
        kwargs = dict(
            workload=FAILOVER_WORKLOAD,
            seed=seed,
            warm_ns=_scaled_ns(FAILOVER_WARM_NS, scale),
            measure_ns=_scaled_ns(FAILOVER_MEASURE_NS, scale),
        )
        # The explicit cfg joins the kwargs only when fidelity is set,
        # so default runs keep their historical content hashes (cache
        # keys in the ResultStore stay warm).  It rides in kwargs —
        # never the JobSpec ``cfg`` slot, whose value is passed as the
        # first positional argument (``workload`` here).
        if fidelity is not None:
            kwargs["cfg"] = TestbedConfig(
                scheme="presto", seed=seed, fidelity=fidelity)
        specs.append(JobSpec(
            fn=ref_of(run_failure_timeline),
            kwargs=kwargs,
            label=f"validate/failover/seed{seed}",
        ))
    return specs


def _failover_evaluate(seeds: Tuple[int, ...], scale: float,
                       results: List[Any]) -> OracleReport:
    report = OracleReport(oracle="failover", figure="Fig 17/18",
                          seeds=seeds)
    measure_ns = _scaled_ns(FAILOVER_MEASURE_NS, scale)
    # Hardware failover engages failover_latency after the fault; the
    # timeline samples in measure/6 windows, so allow the latency plus
    # half a phase for TCP to ramp back through the detection grid.
    failover_bound_ns = msec(2) + measure_ns // 2
    report.require(
        "controller_reacted",
        all(tl.reaction_ns is not None for tl in results),
        detail="the modeled control plane must push reweighted "
               "schedules in-sim",
        n_reacted=sum(1 for tl in results if tl.reaction_ns is not None),
        n_runs=len(results),
    )
    failover_times = [tl.convergence.time_to_failover_ns for tl in results]
    report.require(
        "failover_within_bound",
        all(t is not None and t <= failover_bound_ns
            for t in failover_times),
        detail="throughput back at 80% of the failover plateau before "
               "the controller reacts, within the hardware bound",
        worst_ms=max((t for t in failover_times if t is not None),
                     default=-1) / 1e6,
        bound_ms=failover_bound_ns / 1e6,
        n_missing=sum(1 for t in failover_times if t is None),
    )
    rebalance_times = [tl.convergence.time_to_rebalance_ns for tl in results]
    report.require(
        "rebalance_converges",
        all(t is not None for t in rebalance_times),
        detail="after the reweight push, throughput must reach 80% of "
               "the weighted plateau",
        n_missing=sum(1 for t in rebalance_times if t is None),
    )
    ratios = []
    for tl in results:
        symmetry = tl.phases["symmetry"].mean_flow_tput_bps
        weighted = tl.phases["weighted"].mean_flow_tput_bps
        ratios.append(weighted / symmetry if symmetry > 0 else 0.0)
    report.require(
        "post_rebalance_throughput",
        min(ratios, default=0.0) >= REBALANCE_MIN_FRACTION,
        detail="weighted-phase mean per-flow throughput vs the "
               "pre-fault symmetry phase (3 of 4 trees survive)",
        worst_fraction=min(ratios, default=0.0),
        threshold=REBALANCE_MIN_FRACTION,
    )
    return report


# --- registry ----------------------------------------------------------------


@dataclass(frozen=True)
class OracleDef:
    """One figure oracle: a spec builder plus its verdict function."""

    name: str
    figure: str
    description: str
    build_specs: Callable[..., List[JobSpec]]
    evaluate: Callable[[Tuple[int, ...], float, List[Any]], OracleReport]
    #: oracles that tap packet-level machinery (GRO, segment order)
    #: cannot run at fidelity="flow"
    packet_only: bool = False
    #: oracles pinned to a specific paper fabric ignore --topology;
    #: with --all + --topology they are skipped, named explicitly they
    #: raise
    fixed_topology: bool = False


ORACLES: Dict[str, OracleDef] = {
    od.name: od
    for od in (
        OracleDef(
            name="fct_ordering",
            figure="Fig 9/16",
            description="Presto mean mice FCT < ECMP and within "
                        f"{FCT_OPTIMAL_TOLERANCE}x of Optimal under a "
                        "saturating stride workload",
            build_specs=_fct_specs,
            evaluate=_fct_evaluate,
        ),
        OracleDef(
            name="tournament_ordering",
            figure="Tournament",
            description="Presto and RepFlow mean mice FCT below ECMP "
                        "on a doubled-load websearch tournament cell",
            build_specs=_tournament_specs,
            evaluate=_tournament_evaluate,
            packet_only=True,
        ),
        OracleDef(
            name="gro_reordering",
            figure="Fig 5/11",
            description="fraction of zero-out-of-order flowcells "
                        f">= {PRESTO_ZERO_OOO_MIN} for Presto+GRO and "
                        "strictly above per-packet spraying",
            build_specs=_reorder_specs,
            evaluate=_reorder_evaluate,
            packet_only=True,
            fixed_topology=True,
        ),
        OracleDef(
            name="failover",
            figure="Fig 17/18",
            description="failover restores throughput before the "
                        "controller reacts; post-reweight throughput "
                        f">= {REBALANCE_MIN_FRACTION}x pre-fault",
            build_specs=_failover_specs,
            evaluate=_failover_evaluate,
            fixed_topology=True,
        ),
    )
}


def oracle_names() -> Tuple[str, ...]:
    return tuple(ORACLES)


def get_oracle(name: str) -> OracleDef:
    oracle = ORACLES.get(name)
    if oracle is None:
        raise ValueError(
            f"unknown oracle {name!r}; pick from {', '.join(ORACLES)}")
    return oracle


def run_oracles(
    names: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 1.0,
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    force: bool = False,
    timeout_s: Optional[float] = None,
    log=None,
    fidelity: Optional[str] = None,
    topology: Optional[str] = None,
    service: Optional[str] = None,
) -> List[OracleReport]:
    """Run the named oracles (default: all) across ``seeds``.

    Every (oracle, scheme, seed) cell is one runner job, so the whole
    suite fans out over ``jobs`` workers and resumes from ``store``.
    A cell that errors does not kill the suite: its oracle reports a
    failed ``jobs_completed`` check carrying the error text.

    ``fidelity="flow"`` runs the oracles on the fluid engine.  With the
    default oracle set, packet-only oracles (``gro_reordering``) are
    skipped; naming one explicitly at that fidelity raises.

    ``topology`` reruns the topology-agnostic oracles (``fct_ordering``)
    on another fabric, e.g. ``"fat-tree:k=4"``.  Oracles pinned to a
    paper fabric are skipped under the default set and raise when named
    explicitly.
    """
    if not seeds:
        raise ValueError("seeds must name at least one seed")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    defs = [get_oracle(n) for n in (names or oracle_names())]
    if names is None and fidelity == "flow":
        defs = [od for od in defs if not od.packet_only]
    if names is None and topology is not None:
        defs = [od for od in defs if not od.fixed_topology]
    seeds = tuple(seeds)
    batches = [(od, od.build_specs(seeds, scale, fidelity, topology))
               for od in defs]
    outcomes = run_jobs(
        [spec for _, specs in batches for spec in specs],
        jobs=jobs, store=store, force=force, timeout_s=timeout_s, log=log,
        service=service,
    )
    reports: List[OracleReport] = []
    cursor = 0
    for od, specs in batches:
        batch = outcomes[cursor:cursor + len(specs)]
        cursor += len(specs)
        failed = [o for o in batch if not o.ok]
        if failed:
            report = OracleReport(oracle=od.name, figure=od.figure,
                                  seeds=seeds)
            report.require(
                "jobs_completed", False,
                detail="; ".join(
                    f"{o.spec.display}: {o.error}" for o in failed),
                n_failed=len(failed), n_jobs=len(specs),
            )
            reports.append(report)
            continue
        reports.append(od.evaluate(seeds, scale, [o.result for o in batch]))
    return reports
