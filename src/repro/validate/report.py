"""Structured results of the figure oracles, and the VALIDATION.json
they roll up into.

An :class:`OracleReport` is the machine-checkable verdict for one
headline paper result across a seed sweep: a list of named
:class:`OracleCheck` assertions, each carrying the observed numbers so
a failing nightly run is diagnosable from the JSON alone.  Reports are
plain dataclasses of stdlib values, so they ride the runner's exact
JSON round-trip (``to_jsonable``/``from_jsonable``) and byte-identical
determinism guarantees for free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.runner.serialize import to_jsonable

#: bump when the VALIDATION.json layout changes incompatibly
SCHEMA_VERSION = 1


@dataclass
class OracleCheck:
    """One named assertion with its evidence."""

    name: str
    passed: bool
    #: the numbers the assertion compared (thresholds included), for
    #: diagnosis from the JSON alone
    observed: Dict[str, float] = field(default_factory=dict)
    detail: str = ""


@dataclass
class OracleReport:
    """Verdict of one figure oracle across a seed sweep."""

    oracle: str
    figure: str
    seeds: Tuple[int, ...] = ()
    checks: List[OracleCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def require(self, name: str, passed: bool,
                detail: str = "", **observed: float) -> OracleCheck:
        check = OracleCheck(
            name=name, passed=bool(passed), observed=dict(observed),
            detail=detail)
        self.checks.append(check)
        return check

    def failures(self) -> List[OracleCheck]:
        return [c for c in self.checks if not c.passed]


def validation_payload(reports: List[OracleReport]) -> dict:
    """The VALIDATION.json document (JSON-ready, deterministic order)."""
    ordered = sorted(reports, key=lambda r: r.oracle)
    return {
        "schema": SCHEMA_VERSION,
        "passed": all(r.passed for r in ordered),
        "oracles": [
            {
                "oracle": r.oracle,
                "figure": r.figure,
                "seeds": list(r.seeds),
                "passed": r.passed,
                "checks": [to_jsonable(c) for c in r.checks],
            }
            for r in ordered
        ],
    }


def write_validation_json(reports: List[OracleReport], path) -> Path:
    """Write VALIDATION.json; deterministic bytes for identical reports."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(validation_payload(reports),
                      indent=2, sort_keys=True) + "\n"
    path.write_text(text)
    return path
