"""Workload generators for the paper's evaluation."""

from repro.workloads.flows import EmpiricalDistribution
from repro.workloads.synthetic import (
    random_bijection_pairs,
    random_pairs,
    shuffle_workload,
    stride_pairs,
)
from repro.workloads.tracedriven import (
    KANDULA_FLOW_SIZES,
    TraceWorkload,
)
from repro.workloads.northsouth import NorthSouthWorkload

__all__ = [
    "EmpiricalDistribution",
    "stride_pairs",
    "random_pairs",
    "random_bijection_pairs",
    "shuffle_workload",
    "KANDULA_FLOW_SIZES",
    "TraceWorkload",
    "NorthSouthWorkload",
]
