"""Workload generators for the paper's evaluation."""

from repro.workloads.flows import EmpiricalDistribution
from repro.workloads.synthetic import (
    random_bijection_pairs,
    random_pairs,
    shuffle_workload,
    stride_pairs,
)
from repro.workloads.tracedriven import (
    DATAMINING_FLOW_SIZES,
    KANDULA_FLOW_SIZES,
    TRACE_PROFILES,
    WEBSEARCH_FLOW_SIZES,
    IncastWorkload,
    TraceWorkload,
    trace_profile,
)
from repro.workloads.northsouth import NorthSouthWorkload

__all__ = [
    "EmpiricalDistribution",
    "stride_pairs",
    "random_pairs",
    "random_bijection_pairs",
    "shuffle_workload",
    "KANDULA_FLOW_SIZES",
    "WEBSEARCH_FLOW_SIZES",
    "DATAMINING_FLOW_SIZES",
    "TRACE_PROFILES",
    "trace_profile",
    "TraceWorkload",
    "IncastWorkload",
    "NorthSouthWorkload",
]
