"""Distribution machinery shared by the trace-driven workloads."""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple


class EmpiricalDistribution:
    """Piecewise log-linear inverse-CDF sampler.

    Defined by ``(value, cumulative_probability)`` knots; sampling draws
    a uniform u and interpolates between knots in log-value space, which
    suits the heavy-tailed flow-size distributions measured in
    datacenters (Kandula et al., IMC'09; Benson et al., IMC'10).
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("need at least two (value, cdf) points")
        prev_v, prev_p = None, -1.0
        for value, prob in points:
            if value <= 0:
                raise ValueError(f"values must be positive: {value}")
            if prob <= prev_p:
                raise ValueError("cdf probabilities must be increasing")
            if prev_v is not None and value <= prev_v:
                raise ValueError("values must be increasing")
            prev_v, prev_p = value, prob
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError("last cdf point must have probability 1.0")
        self.points = list(points)

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        pts = self.points
        if u <= pts[0][1]:
            return pts[0][0]
        for (v0, p0), (v1, p1) in zip(pts, pts[1:]):
            if u <= p1:
                frac = (u - p0) / (p1 - p0)
                return math.exp(
                    math.log(v0) + frac * (math.log(v1) - math.log(v0))
                )
        return pts[-1][0]

    def mean_estimate(self, rng: random.Random, n: int = 10_000) -> float:
        """Monte-Carlo mean (used to convert load targets to arrival rates)."""
        return sum(self.sample(rng) for _ in range(n)) / n

    def scaled(self, factor: float) -> "EmpiricalDistribution":
        """Same shape with every value multiplied by ``factor`` (the
        paper scales its trace's flow sizes by 10)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive: {factor}")
        return EmpiricalDistribution(
            [(v * factor, p) for v, p in self.points]
        )
