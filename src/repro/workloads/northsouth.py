"""North-south cross traffic (paper S6, Table 2).

One remote-user host hangs off each spine switch behind a 100 Mbps
(WAN-emulating) link.  Every datacenter server starts a flow to a
random remote user each millisecond, sized from a web-transfer
distribution (He et al., IMC'13 [29]) — this is ECMP-load-balanced
north-south traffic coexisting with Presto's east-west traffic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.host.gro import OfficialGro
from repro.host.host import Host
from repro.units import KB, MB, mbps, msec, usec
from repro.workloads.flows import EmpiricalDistribution

#: Web-object transfer sizes (IMC'13 shape: mostly small responses,
#: occasional large downloads).
WEB_FLOW_SIZES = EmpiricalDistribution(
    [
        (500, 0.0),
        (2 * KB, 0.4),
        (10 * KB, 0.7),
        (100 * KB, 0.95),
        (1 * MB, 1.0),
    ]
)


class NorthSouthWorkload:
    """Attaches remote users to the spines and drives the flows."""

    def __init__(
        self,
        testbed,
        rng: random.Random,
        wan_rate_bps: float = mbps(100),
        interval_ns: int = msec(1),
        sizes: Optional[EmpiricalDistribution] = None,
        stop_ns: Optional[int] = None,
    ):
        self.tb = testbed
        self.rng = rng
        self.interval_ns = interval_ns
        self.sizes = sizes or WEB_FLOW_SIZES
        self.stop_ns = stop_ns
        self.remote_users: List[Host] = []
        self.flows_started = 0
        next_id = len(testbed.hosts)
        for spine in testbed.topo.spines:
            user = Host(
                testbed.sim,
                next_id,
                gro=OfficialGro(),
                tcp_cfg=testbed.cfg.tcp,
                model_cpu=False,
            )
            # remote users hang off the spines behind the WAN-limited link
            testbed.topo.attach_host(
                user, spine, rate_bps=wan_rate_bps,
                prop_delay_ns=usec(50),
            )
            self.remote_users.append(user)
            next_id += 1

    def start(self) -> None:
        for src in range(len(self.tb.hosts)):
            self.tb.sim.schedule(
                self.rng.randrange(self.interval_ns), self._tick, src
            )

    def _tick(self, src: int) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        user = self.rng.choice(self.remote_users)
        size = max(350, int(self.sizes.sample(self.rng)))
        flow_id = self.tb.flow_ids.next()
        sender = self.tb.hosts[src].open_sender(flow_id, user.host_id)
        sender.write(size)
        self.flows_started += 1
        self.tb.sim.schedule(self.interval_ns, self._tick, src)
