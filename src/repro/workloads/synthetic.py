"""The paper's synthetic workloads (S4): stride, random, random
bijection, and shuffle.  These functions compute sender->receiver pairs
or drive transfer schedules; the experiment harness turns pairs into
elephants/mice/probes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple


def stride_pairs(n_hosts: int, stride: int = 8) -> List[Tuple[int, int]]:
    """stride(k): server[i] sends to server[(i + k) mod n]."""
    if not 0 < stride < n_hosts:
        raise ValueError(f"stride must be in (0, {n_hosts}): {stride}")
    return [(i, (i + stride) % n_hosts) for i in range(n_hosts)]


def random_pairs(
    n_hosts: int,
    hosts_per_pod: int,
    rng: random.Random,
) -> List[Tuple[int, int]]:
    """Random: each server sends to a random destination in another pod;
    multiple senders may pick the same receiver."""
    pairs = []
    for src in range(n_hosts):
        src_pod = src // hosts_per_pod
        while True:
            dst = rng.randrange(n_hosts)
            if dst != src and dst // hosts_per_pod != src_pod:
                pairs.append((src, dst))
                break
    return pairs


def random_bijection_pairs(
    n_hosts: int,
    hosts_per_pod: int,
    rng: random.Random,
    max_tries: int = 10_000,
) -> List[Tuple[int, int]]:
    """Random bijection: a permutation where every server sends to a
    different-pod destination and receives from exactly one sender."""
    hosts = list(range(n_hosts))
    for _ in range(max_tries):
        dsts = hosts[:]
        rng.shuffle(dsts)
        if all(
            src != dst and src // hosts_per_pod != dst // hosts_per_pod
            for src, dst in zip(hosts, dsts)
        ):
            return list(zip(hosts, dsts))
    raise RuntimeError("could not find a cross-pod bijection (too few pods?)")


class shuffle_workload:
    """Shuffle: every server sends ``bytes_per_transfer`` to every other
    server in random order, ``concurrent`` transfers at a time (the
    paper: 1 GB to each server, two active flows per host, emulating a
    Hadoop shuffle).

    Drive it by calling :meth:`start`; it keeps each sender's pipeline
    full by starting the next transfer whenever one finishes.
    """

    def __init__(
        self,
        testbed,
        bytes_per_transfer: int,
        concurrent: int = 2,
        rng: Optional[random.Random] = None,
        jitter_ns: int = 0,
    ):
        self.tb = testbed
        self.bytes_per_transfer = bytes_per_transfer
        self.concurrent = concurrent
        self.rng = rng if rng is not None else random.Random(0)
        self.jitter_ns = jitter_ns
        n = len(testbed.hosts)
        self._queues = {}
        for src in range(n):
            dsts = [d for d in range(n) if d != src]
            self.rng.shuffle(dsts)
            self._queues[src] = dsts
        self.completed = 0
        self.apps = []

    def start(self) -> None:
        for src in self._queues:
            for _ in range(self.concurrent):
                self._launch(src)

    def _launch(self, src: int) -> None:
        queue = self._queues[src]
        if not queue:
            return
        dst = queue.pop()
        start = self.rng.randrange(self.jitter_ns + 1) if self.jitter_ns else 0
        app = self.tb.add_elephant(
            src, dst, size_bytes=self.bytes_per_transfer, start_ns=start,
            on_complete=lambda _app, src=src: self._done(src),
        )
        self.apps.append(app)

    def _done(self, src: int) -> None:
        self.completed += 1
        self._launch(src)
