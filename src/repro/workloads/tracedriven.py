"""Trace-driven workload (paper S6, Table 1).

The paper replays flow sizes and inter-arrival times measured by
Kandula et al., "The Nature of Data Center Traffic" (IMC 2009), scaled
by 10x, over long-lived all-to-all TCP connections: each server
repeatedly samples a size + gap and sends to a random out-of-rack
receiver.  The raw traces are proprietary, so we encode the published
shape of the distribution — the overwhelming majority of flows are
mice (<10 KB) while most *bytes* come from flows >1 MB — as an
empirical CDF (see DESIGN.md substitution table).

Mice are flows <100 KB, elephants >1 MB, as the paper defines.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.units import KB, MB, msec, usec
from repro.workloads.flows import EmpiricalDistribution

#: Flow-size CDF encoding the IMC'09 measurement shape (80% of flows
#: under ~10 KB; byte volume dominated by the >1 MB tail).
KANDULA_FLOW_SIZES = EmpiricalDistribution(
    [
        (350, 0.0),
        (1 * KB, 0.50),
        (10 * KB, 0.80),
        (100 * KB, 0.95),
        (1 * MB, 0.99),
        (10 * MB, 0.999),
        (100 * MB, 1.0),
    ]
)

#: Per-server flow inter-arrival CDF: median ~a few ms with a bursty
#: short tail, per the paper's "continuously samples ... inter-arrival
#: times" methodology.
KANDULA_INTERARRIVALS_NS = EmpiricalDistribution(
    [
        (usec(100), 0.0),
        (usec(800), 0.5),
        (msec(3), 0.9),
        (msec(10), 0.99),
        (msec(100), 1.0),
    ]
)


class TraceWorkload:
    """Replays the empirical distributions on a testbed.

    Each server loops: wait ~interarrival, pick a random receiver not in
    its own rack, send a sampled-size transfer.  Completions are sorted
    into mice (<100 KB) and elephants (>1 MB) FCT/throughput records.
    """

    MICE_LIMIT = 100 * KB
    ELEPHANT_LIMIT = 1 * MB

    def __init__(
        self,
        testbed,
        rng: random.Random,
        size_scale: float = 10.0,
        load_scale: float = 1.0,
        sizes: Optional[EmpiricalDistribution] = None,
        interarrivals: Optional[EmpiricalDistribution] = None,
        stop_ns: Optional[int] = None,
        max_size: int = 20 * MB,
    ):
        self.tb = testbed
        self.rng = rng
        self.sizes = (sizes or KANDULA_FLOW_SIZES).scaled(size_scale)
        self.interarrivals = interarrivals or KANDULA_INTERARRIVALS_NS
        self.load_scale = load_scale
        self.stop_ns = stop_ns
        #: cap keeps single sampled transfers from outliving short runs
        self.max_size = max_size
        self.mice_fcts_ns: List[int] = []
        self.elephant_records: List[Tuple[int, int]] = []  # (bytes, fct)
        self.flows_started = 0

    def start(self) -> None:
        for src in range(len(self.tb.hosts)):
            self.tb.sim.schedule(self._next_gap(), self._tick, src)

    def _next_gap(self) -> int:
        gap = self.interarrivals.sample(self.rng) / self.load_scale
        return max(1, int(gap))

    def _tick(self, src: int) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        hosts_per_pod = self.tb.cfg.hosts_per_leaf
        n = len(self.tb.hosts)
        while True:
            dst = self.rng.randrange(n)
            if dst != src and dst // hosts_per_pod != src // hosts_per_pod:
                break
        size = min(self.max_size, max(350, int(self.sizes.sample(self.rng))))
        self.flows_started += 1
        self.tb.add_elephant(
            src, dst, size_bytes=size,
            on_complete=lambda app, size=size: self._done(app, size),
        )
        self.tb.sim.schedule(self._next_gap(), self._tick, src)

    def _done(self, app, size: int) -> None:
        fct = app.fct_ns if hasattr(app, "fct_ns") else None
        if fct is None and hasattr(app, "sender"):
            fct = app.sender.fct_ns
        if fct is None:
            return
        if size < self.MICE_LIMIT:
            self.mice_fcts_ns.append(fct)
        elif size > self.ELEPHANT_LIMIT:
            self.elephant_records.append((size, fct))
