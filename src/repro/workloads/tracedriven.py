"""Trace-driven workload (paper S6, Table 1).

The paper replays flow sizes and inter-arrival times measured by
Kandula et al., "The Nature of Data Center Traffic" (IMC 2009), scaled
by 10x, over long-lived all-to-all TCP connections: each server
repeatedly samples a size + gap and sends to a random out-of-rack
receiver.  The raw traces are proprietary, so we encode the published
shape of the distribution — the overwhelming majority of flows are
mice (<10 KB) while most *bytes* come from flows >1 MB — as an
empirical CDF (see DESIGN.md substitution table).

Mice are flows <100 KB, elephants >1 MB, as the paper defines.

Two further published workloads join the Kandula shape for the fabric
sweeps: the web-search distribution from the DCTCP measurement study
(Alizadeh et al., SIGCOMM 2010) and the data-mining distribution from
VL2 (Greenberg et al., SIGCOMM 2009).  ``TRACE_PROFILES`` maps names to
(sizes, interarrivals) pairs so sweeps can select one by string.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.units import KB, MB, msec, usec
from repro.workloads.flows import EmpiricalDistribution

#: Flow-size CDF encoding the IMC'09 measurement shape (80% of flows
#: under ~10 KB; byte volume dominated by the >1 MB tail).
KANDULA_FLOW_SIZES = EmpiricalDistribution(
    [
        (350, 0.0),
        (1 * KB, 0.50),
        (10 * KB, 0.80),
        (100 * KB, 0.95),
        (1 * MB, 0.99),
        (10 * MB, 0.999),
        (100 * MB, 1.0),
    ]
)

#: Web-search flow sizes (DCTCP, Fig 2 shape): mostly short query
#: traffic with a moderate 1-30 MB background tail.
WEBSEARCH_FLOW_SIZES = EmpiricalDistribution(
    [
        (6 * KB, 0.0),
        (10 * KB, 0.15),
        (30 * KB, 0.40),
        (100 * KB, 0.60),
        (300 * KB, 0.75),
        (1 * MB, 0.85),
        (3 * MB, 0.93),
        (10 * MB, 0.98),
        (30 * MB, 1.0),
    ]
)

#: Data-mining flow sizes (VL2 shape): even heavier mice skew — over
#: 80% of flows under 10 KB — with a sparse 100 MB-class tail carrying
#: most bytes.
DATAMINING_FLOW_SIZES = EmpiricalDistribution(
    [
        (100, 0.0),
        (1 * KB, 0.50),
        (10 * KB, 0.82),
        (100 * KB, 0.90),
        (1 * MB, 0.95),
        (10 * MB, 0.98),
        (100 * MB, 0.999),
        (1000 * MB, 1.0),
    ]
)

#: Per-server flow inter-arrival CDF: median ~a few ms with a bursty
#: short tail, per the paper's "continuously samples ... inter-arrival
#: times" methodology.
KANDULA_INTERARRIVALS_NS = EmpiricalDistribution(
    [
        (usec(100), 0.0),
        (usec(800), 0.5),
        (msec(3), 0.9),
        (msec(10), 0.99),
        (msec(100), 1.0),
    ]
)

#: Named (sizes, interarrivals) pairs the fabric sweep selects from.
#: All three reuse the Kandula arrival process; published studies vary
#: the size distribution far more than the arrival shape.
TRACE_PROFILES = {
    "kandula": (KANDULA_FLOW_SIZES, KANDULA_INTERARRIVALS_NS),
    "websearch": (WEBSEARCH_FLOW_SIZES, KANDULA_INTERARRIVALS_NS),
    "datamining": (DATAMINING_FLOW_SIZES, KANDULA_INTERARRIVALS_NS),
}


def trace_profile(name: str) -> Tuple[EmpiricalDistribution, EmpiricalDistribution]:
    """Look up a named trace profile, with a clear error on typos."""
    try:
        return TRACE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown trace profile {name!r}; "
            f"choose from {sorted(TRACE_PROFILES)}"
        ) from None


class TraceWorkload:
    """Replays the empirical distributions on a testbed.

    Each server loops: wait ~interarrival, pick a random receiver not in
    its own rack, send a sampled-size transfer.  Completions are sorted
    into mice (<100 KB) and elephants (>1 MB) FCT/throughput records.

    By default every completion is appended to the in-memory lists
    (``mice_fcts_ns`` / ``elephant_records``) as before.  Large sweeps
    pass ``mice_sink`` / ``elephant_sink`` callables instead —
    typically :class:`repro.metrics.streaming.StreamingQuantiles` /
    :class:`~repro.metrics.streaming.TopK` feeders — and the unbounded
    lists are left empty, keeping per-cell memory O(1) in simulated
    time.  The rack check uses ``testbed.pod_of``, so the workload runs
    unchanged on 2-tier Clos and 3-tier fat-tree fabrics.
    """

    MICE_LIMIT = 100 * KB
    ELEPHANT_LIMIT = 1 * MB

    def __init__(
        self,
        testbed,
        rng: random.Random,
        size_scale: float = 10.0,
        load_scale: float = 1.0,
        sizes: Optional[EmpiricalDistribution] = None,
        interarrivals: Optional[EmpiricalDistribution] = None,
        stop_ns: Optional[int] = None,
        max_size: int = 20 * MB,
        mice_sink: Optional[Callable[[int], None]] = None,
        elephant_sink: Optional[Callable[[int, int], None]] = None,
    ):
        self.tb = testbed
        self.rng = rng
        self.sizes = (sizes or KANDULA_FLOW_SIZES).scaled(size_scale)
        self.interarrivals = interarrivals or KANDULA_INTERARRIVALS_NS
        self.load_scale = load_scale
        self.stop_ns = stop_ns
        #: cap keeps single sampled transfers from outliving short runs
        self.max_size = max_size
        self.mice_sink = mice_sink
        self.elephant_sink = elephant_sink
        self.mice_fcts_ns: List[int] = []
        self.elephant_records: List[Tuple[int, int]] = []  # (bytes, fct)
        self.flows_started = 0
        self.flows_completed = 0

    def start(self) -> None:
        for src in range(len(self.tb.hosts)):
            self.tb.sim.schedule(self._next_gap(), self._tick, src)

    def _next_gap(self) -> int:
        gap = self.interarrivals.sample(self.rng) / self.load_scale
        return max(1, int(gap))

    def _pick_dst(self, src: int) -> int:
        n = len(self.tb.hosts)
        src_pod = self.tb.pod_of(src)
        while True:
            dst = self.rng.randrange(n)
            if dst != src and self.tb.pod_of(dst) != src_pod:
                return dst

    def _tick(self, src: int) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        dst = self._pick_dst(src)
        size = min(self.max_size, max(350, int(self.sizes.sample(self.rng))))
        self.flows_started += 1
        self.tb.add_elephant(
            src, dst, size_bytes=size,
            on_complete=lambda app, size=size: self._done(app, size),
        )
        self.tb.sim.schedule(self._next_gap(), self._tick, src)

    def _done(self, app, size: int) -> None:
        fct = app.fct_ns if hasattr(app, "fct_ns") else None
        if fct is None and hasattr(app, "sender"):
            fct = app.sender.fct_ns
        if fct is None:
            return
        self.flows_completed += 1
        if size < self.MICE_LIMIT:
            if self.mice_sink is not None:
                self.mice_sink(fct)
            else:
                self.mice_fcts_ns.append(fct)
        elif size > self.ELEPHANT_LIMIT:
            if self.elephant_sink is not None:
                self.elephant_sink(size, fct)
            else:
                self.elephant_records.append((size, fct))


class IncastWorkload:
    """Fan-in (incast) pattern: an aggregator repeatedly requests
    ``request_bytes`` split across ``fanin`` out-of-rack workers, who
    all respond at once.  The request FCT is the time until the *last*
    response completes — the paper-style partition/aggregate metric.

    Each host takes a turn as aggregator round-robin; request FCTs feed
    ``sink`` when given (bounded memory), else ``request_fcts_ns``.
    """

    def __init__(
        self,
        testbed,
        rng: random.Random,
        fanin: int = 8,
        request_bytes: int = 1 * MB,
        interval_ns: int = msec(2),
        stop_ns: Optional[int] = None,
        sink: Optional[Callable[[int], None]] = None,
    ):
        self.tb = testbed
        self.rng = rng
        self.fanin = fanin
        self.request_bytes = request_bytes
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self.sink = sink
        self.request_fcts_ns: List[int] = []
        self.requests_started = 0
        self.requests_completed = 0
        self._next_aggregator = 0

    def _workers_for(self, aggregator: int) -> List[int]:
        agg_pod = self.tb.pod_of(aggregator)
        candidates = [
            h for h in range(len(self.tb.hosts))
            if h != aggregator and self.tb.pod_of(h) != agg_pod
        ]
        if len(candidates) < self.fanin:
            raise ValueError(
                f"fan-in {self.fanin} needs {self.fanin} out-of-rack "
                f"workers but only {len(candidates)} exist"
            )
        return self.rng.sample(candidates, self.fanin)

    def start(self) -> None:
        self.tb.sim.schedule(1, self._fire)

    def _fire(self) -> None:
        if self.stop_ns is not None and self.tb.sim.now >= self.stop_ns:
            return
        aggregator = self._next_aggregator
        self._next_aggregator = (aggregator + 1) % len(self.tb.hosts)
        workers = self._workers_for(aggregator)
        start_ns = self.tb.sim.now
        per_worker = max(1, self.request_bytes // self.fanin)
        pending = {"left": len(workers)}
        self.requests_started += 1

        def one_done(app, _p=pending, _t0=start_ns):
            _p["left"] -= 1
            if _p["left"] == 0:
                self.requests_completed += 1
                fct = self.tb.sim.now - _t0
                if self.sink is not None:
                    self.sink(fct)
                else:
                    self.request_fcts_ns.append(fct)

        for w in workers:
            self.tb.add_elephant(
                w, aggregator, size_bytes=per_worker, on_complete=one_done
            )
        self.tb.sim.schedule(self.interval_ns, self._fire)
