"""Unit tests for MAC addressing / shadow-MAC labels."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    host_mac,
    is_shadow_mac,
    mac_str,
    shadow_mac,
    shadow_mac_host,
    shadow_mac_tree,
)


def test_host_mac_identity():
    assert host_mac(5) == 5
    assert not is_shadow_mac(host_mac(5))


def test_shadow_mac_is_distinguishable():
    mac = shadow_mac(0, 0)
    assert is_shadow_mac(mac)


def test_round_trip_fields():
    mac = shadow_mac(3, 17)
    assert shadow_mac_tree(mac) == 3
    assert shadow_mac_host(mac) == 17


def test_real_mac_host_recoverable():
    assert shadow_mac_host(host_mac(9)) == 9


def test_tree_on_real_mac_raises():
    with pytest.raises(ValueError):
        shadow_mac_tree(host_mac(1))


def test_invalid_inputs():
    with pytest.raises(ValueError):
        host_mac(-1)
    with pytest.raises(ValueError):
        shadow_mac(-1, 0)
    with pytest.raises(ValueError):
        shadow_mac(0, -1)


def test_mac_str_renders():
    assert mac_str(host_mac(2)) == "h00000002"
    assert mac_str(shadow_mac(1, 2)) == "t1:h00000002"


@given(tree=st.integers(0, 1000), host=st.integers(0, 2**32 - 1))
def test_shadow_mac_round_trip_property(tree, host):
    mac = shadow_mac(tree, host)
    assert is_shadow_mac(mac)
    assert shadow_mac_tree(mac) == tree
    assert shadow_mac_host(mac) == host


@given(
    a=st.tuples(st.integers(0, 100), st.integers(0, 10_000)),
    b=st.tuples(st.integers(0, 100), st.integers(0, 10_000)),
)
def test_shadow_macs_injective(a, b):
    if a != b:
        assert shadow_mac(*a) != shadow_mac(*b)
