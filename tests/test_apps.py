"""Unit tests for traffic applications (bulk, mice, RTT probes)."""

from repro.experiments.harness import Testbed, TestbedConfig
from repro.host.app import FlowIdAllocator
from repro.units import KB, msec, usec


def mini(hosts=2):
    return Testbed(TestbedConfig(scheme="optimal", n_leaves=1,
                                 hosts_per_leaf=hosts, model_cpu=False))


def test_flow_id_allocator_unique_monotonic():
    alloc = FlowIdAllocator()
    ids = [alloc.next() for _ in range(100)]
    assert ids == sorted(set(ids))


def test_bulk_app_start_delay():
    tb = mini()
    app = tb.add_elephant(0, 1, size_bytes=10 * KB, start_ns=msec(5))
    tb.run(msec(4))
    assert app.sender is None  # not started yet
    tb.run(msec(20))
    assert app.fct_ns is not None


def test_mice_app_cadence():
    tb = mini()
    mice = tb.add_mice(0, 1, size_bytes=50 * KB, interval_ns=msec(2))
    tb.run(msec(21))
    assert mice.sent == 11  # t = 0, 2, ..., 20
    assert len(mice.fcts_ns) >= 10


def test_mice_app_stop():
    tb = mini()
    mice = tb.add_mice(0, 1, interval_ns=msec(2), stop_ns=msec(5))
    tb.run(msec(30))
    assert mice.sent == 3  # t = 0, 2, 4


def test_mice_fcts_reasonable():
    tb = mini()
    mice = tb.add_mice(0, 1, size_bytes=50 * KB, interval_ns=msec(2))
    tb.run(msec(20))
    # idle network: a 50 KB mouse takes tens of microseconds wire time
    # plus interrupt coalescing; well under a millisecond
    assert all(usec(40) < f < msec(1) for f in mice.fcts_ns)


def test_probe_pingpong():
    tb = mini()
    probe = tb.add_probe(0, 1, interval_ns=msec(1))
    tb.run(msec(10))
    assert len(probe.rtts_ns) >= 8
    # idle RTT dominated by 2x interrupt coalescing (~15us per side)
    assert all(usec(20) < r < usec(200) for r in probe.rtts_ns)


def test_probe_stop():
    tb = mini()
    probe = tb.add_probe(0, 1, interval_ns=msec(1), stop_ns=msec(3))
    tb.run(msec(20))
    assert 2 <= len(probe.rtts_ns) <= 4
