"""Unit tests for congestion controllers (Reno, CUBIC, coupled)."""

import pytest

from repro.host.cc import CubicCc, RenoCc, make_cc
from repro.mptcp.coupled import CoupledCc, CoupledGroup
from repro.units import msec, seconds, usec

MSS = 1448


class TestReno:
    def test_initial_window(self):
        cc = RenoCc(MSS, init_cwnd_pkts=10)
        assert cc.cwnd == 10 * MSS
        assert cc.in_slow_start()

    def test_slow_start_doubles_per_window(self):
        cc = RenoCc(MSS)
        start = cc.cwnd
        cc.on_ack(int(start), 0, usec(100))
        assert cc.cwnd == 2 * start

    def test_congestion_avoidance_one_mss_per_window(self):
        cc = RenoCc(MSS)
        cc.ssthresh = cc.cwnd  # leave slow start
        w = cc.cwnd
        acked = 0
        while acked < w:  # one window's worth of ACKs
            cc.on_ack(MSS, 0, usec(100))
            acked += MSS
        assert w + MSS <= cc.cwnd <= w + 2 * MSS

    def test_recovery_halves(self):
        cc = RenoCc(MSS)
        cc.cwnd = 100 * MSS
        cc.on_enter_recovery(100 * MSS, 0)
        assert cc.cwnd == pytest.approx(50 * MSS)

    def test_timeout_collapses_to_one_mss(self):
        cc = RenoCc(MSS)
        cc.cwnd = 100 * MSS
        cc.on_timeout(100 * MSS, 0)
        assert cc.cwnd == MSS
        assert cc.ssthresh == pytest.approx(50 * MSS)

    def test_floor_two_mss(self):
        cc = RenoCc(MSS)
        cc.on_enter_recovery(MSS, 0)
        assert cc.ssthresh == 2 * MSS


class TestCubic:
    def test_beta_reduction(self):
        cc = CubicCc(MSS)
        cc.cwnd = 100 * MSS
        cc.on_enter_recovery(100 * MSS, 0)
        assert cc.cwnd == pytest.approx(70 * MSS)  # beta = 0.7

    def test_growth_returns_toward_wmax(self):
        cc = CubicCc(MSS)
        cc.cwnd = 100 * MSS
        cc.on_enter_recovery(100 * MSS, 0)
        w_after_cut = cc.cwnd
        now = 0
        for _ in range(4000):
            now += usec(100)
            cc.on_ack(MSS, now, usec(100))
        assert cc.cwnd > w_after_cut

    def test_growth_eventually_exceeds_wmax(self):
        cc = CubicCc(MSS)
        cc.cwnd = 30 * MSS
        cc.on_enter_recovery(30 * MSS, 0)
        now = 0
        for _ in range(60_000):
            now += usec(100)
            cc.on_ack(MSS, now, usec(100))
        assert cc.cwnd > 30 * MSS  # probed past the old maximum


def test_make_cc_factory():
    assert isinstance(make_cc("reno", MSS), RenoCc)
    assert isinstance(make_cc("cubic", MSS), CubicCc)
    with pytest.raises(ValueError):
        make_cc("vegas", MSS)


class TestCoupled:
    def test_members_register(self):
        group = CoupledGroup()
        ccs = [CoupledCc(group, MSS) for _ in range(4)]
        assert group.members == ccs

    def test_loss_halves_only_one_subflow(self):
        group = CoupledGroup()
        a = CoupledCc(group, MSS)
        b = CoupledCc(group, MSS)
        a.cwnd = b.cwnd = 100 * MSS
        a.on_enter_recovery(100 * MSS, 0)
        assert a.cwnd == pytest.approx(50 * MSS)
        assert b.cwnd == 100 * MSS

    def test_coupled_increase_less_aggressive_than_reno(self):
        """With N equal subflows, the aggregate grows like ~one Reno flow,
        not N of them."""
        group = CoupledGroup()
        subflows = [CoupledCc(group, MSS) for _ in range(4)]
        for cc in subflows:
            cc.ssthresh = cc.cwnd = 50 * MSS
            cc.last_rtt_ns = usec(100)
        total_before = sum(c.cwnd for c in subflows)
        for _ in range(50):
            for cc in subflows:
                cc.on_ack(MSS, 0, usec(100))
        coupled_growth = sum(c.cwnd for c in subflows) - total_before

        solo = RenoCc(MSS)
        solo.ssthresh = solo.cwnd = 200 * MSS
        for _ in range(200):
            solo.on_ack(MSS, 0, usec(100))
        reno_growth = solo.cwnd - 200 * MSS
        assert coupled_growth <= 2.1 * reno_growth

    def test_slow_start_uncoupled(self):
        group = CoupledGroup()
        cc = CoupledCc(group, MSS)
        w = cc.cwnd
        cc.on_ack(int(w), 0, usec(100))
        assert cc.cwnd == 2 * w

    def test_alpha_finite_with_fresh_members(self):
        group = CoupledGroup()
        for _ in range(8):
            CoupledCc(group, MSS)
        assert group.alpha() > 0
