"""Unit tests for the Presto controller (schedules, weights, failover)."""

from collections import Counter

from repro.host.gro import PrestoGro
from repro.host.host import Host
from repro.net.addresses import host_mac, shadow_mac, shadow_mac_tree
from repro.net.topology import build_clos, build_single_switch
from repro.presto.controller import PrestoController, _interleave_schedule
from repro.presto.vswitch import PrestoLb
from repro.sim.engine import Simulator


def build(n_spines=4, n_leaves=2, hosts_per_leaf=2):
    sim = Simulator()
    topo = build_clos(sim, n_spines, n_leaves)
    hosts = []
    for i in range(n_leaves * hosts_per_leaf):
        host = Host(sim, i, lb=PrestoLb(i), gro=PrestoGro(), model_cpu=False)
        topo.attach_host(host, topo.leaves[i // hosts_per_leaf])
        hosts.append(host)
    controller = PrestoController(topo)
    for host in hosts:
        controller.register_vswitch(host.lb)
    return sim, topo, controller, hosts


def test_schedule_covers_all_trees_when_healthy():
    _, topo, controller, hosts = build()
    schedule = controller.schedule_for(0, 2)
    trees = {shadow_mac_tree(mac) for mac in schedule}
    assert trees == {0, 1, 2, 3}
    assert len(schedule) == 4  # equal weights -> one label each


def test_same_leaf_pair_uses_direct_mac():
    _, topo, controller, hosts = build()
    assert controller.schedule_for(0, 1) == [host_mac(1)]


def test_single_switch_schedules_direct():
    sim = Simulator()
    topo = build_single_switch(sim)
    host0 = Host(sim, 0, lb=PrestoLb(0), model_cpu=False)
    host1 = Host(sim, 1, lb=PrestoLb(1), model_cpu=False)
    topo.attach_host(host0, topo.leaves[0])
    topo.attach_host(host1, topo.leaves[0])
    controller = PrestoController(topo)
    assert controller.schedule_for(0, 1) == [host_mac(1)]


def test_failure_prunes_tree_for_affected_pairs():
    _, topo, controller, hosts = build()
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_down()
    schedule = controller.schedule_for(0, 2)  # L1 host -> L2 host
    trees = {shadow_mac_tree(mac) for mac in schedule}
    assert 0 not in trees  # tree through S1 pruned
    assert trees == {1, 2, 3}
    # reverse direction equally pruned
    rev = controller.schedule_for(2, 0)
    assert 0 not in {shadow_mac_tree(m) for m in rev}


def test_failure_does_not_affect_unrelated_pairs():
    sim, topo, controller, hosts = build(n_leaves=4, hosts_per_leaf=1)
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_down()
    # L2 -> L3 does not touch L1: all four trees usable
    schedule = controller.schedule_for(1, 2)
    assert {shadow_mac_tree(m) for m in schedule} == {0, 1, 2, 3}


def test_push_all_updates_registered_vswitches():
    _, topo, controller, hosts = build()
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_down()
    controller.push_all()
    labels = hosts[0].lb.labels_for(2)
    assert all(shadow_mac_tree(m) != 0 for m in labels)


def test_weighted_schedule_duplicates_labels():
    """Halving one leg's rate should weight other trees 2x."""
    _, topo, controller, hosts = build()
    port = topo.port_between(topo.leaves[0], topo.spines[0])
    port.link.rate_bps = port.link.rate_bps / 2
    schedule = controller.schedule_for(0, 2)
    counts = Counter(shadow_mac_tree(m) for m in schedule)
    assert counts[0] == 1
    assert counts[1] == counts[2] == counts[3] == 2


def test_interleave_spreads_duplicates():
    a, b, c = 11, 22, 33
    out = _interleave_schedule([a, b, b, c])
    # the two b's must not be adjacent (cyclically this layout is fine)
    idx = [i for i, x in enumerate(out) if x == b]
    assert abs(idx[0] - idx[1]) > 1


def test_fast_failover_configures_leaves_and_spines():
    _, topo, controller, hosts = build()
    controller.enable_fast_failover(latency_ns=0)
    for leaf in topo.leaves:
        assert leaf.failover is not None
    for spine in topo.spines:
        assert spine.failover is not None


def test_spine_failover_rewrite_moves_tree():
    sim, topo, controller, hosts = build()
    controller.enable_fast_failover(latency_ns=0)
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_down()
    # a tree-0 labelled packet destined to host 0 (on L1), arriving at S1,
    # must be relabelled and still reach host 0
    from repro.net.packet import Packet

    pkt = Packet(flow_id=1, src_host=2, dst_host=0, dst_mac=shadow_mac(0, 0),
                 kind="data", seq=0, payload_len=100, flowcell_id=1)
    topo.leaves[1].receive(pkt, None)  # send from L2 up tree 0
    sim.run()
    assert hosts[0].nic.rx_pkts == 1


def test_set_rate_reweights_via_state_change():
    """Degrading a leg with Link.set_rate (not raw attribute pokes) must
    notify observers; a subscribed control loop pushing push_all then
    yields the weighted schedule."""
    _, topo, controller, hosts = build()
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.on_state_change.append(lambda _l: controller.push_all())
    link.set_rate(link.rate_bps / 2)
    counts = Counter(shadow_mac_tree(m) for m in hosts[0].lb.labels_for(2))
    assert counts[0] == 1
    assert counts[1] == counts[2] == counts[3] == 2


def test_weight_is_min_of_both_legs():
    """A degraded *downlink* constrains the tree exactly like a degraded
    uplink: the WCMP weight is min(up leg, down leg)."""
    _, topo, controller, hosts = build()
    up = next(l for l in topo.links if l.name == "L1--S2")
    down = next(l for l in topo.links if l.name == "L2--S2")
    down.set_rate(down.rate_bps / 4)  # only the far leg is slow
    counts = Counter(shadow_mac_tree(m) for m in controller.schedule_for(0, 2))
    assert counts[1] == 1
    assert counts[0] == counts[2] == counts[3] == 4
    # the same degraded link is the *up* leg for the reverse direction
    rev = Counter(shadow_mac_tree(m) for m in controller.schedule_for(2, 0))
    assert rev[1] == 1 and rev[0] == 4
    assert up.rate_bps != down.rate_bps  # sanity: asymmetric legs


def test_interleave_no_adjacent_duplicates_in_weighted_schedule():
    """The 1:2:2:2 schedule a halved leg produces must not send two
    consecutive flowcells down the same tree."""
    _, topo, controller, hosts = build()
    link = next(l for l in topo.links if l.name == "L1--S1")
    link.set_rate(link.rate_bps / 2)
    schedule = controller.schedule_for(0, 2)
    assert len(schedule) == 7
    for a, b in zip(schedule, schedule[1:]):
        assert a != b


def test_interleave_preserves_label_multiset():
    labels = [11] * 3 + [22] * 2 + [33]
    out = _interleave_schedule(labels)
    assert Counter(out) == Counter(labels)
    assert _interleave_schedule([]) == []


def test_disconnected_pair_falls_back_to_all_trees():
    """With every uplink of the source leaf dead the pair is unroutable;
    the schedule falls back to all trees (packets blackhole in the
    fabric) instead of going empty and wedging the round robin."""
    _, topo, controller, hosts = build()
    for link in topo.links:
        if link.name.startswith("L1--"):
            link.set_down()
    schedule = controller.schedule_for(0, 2)
    assert len(schedule) == 4
    assert {shadow_mac_tree(m) for m in schedule} == {0, 1, 2, 3}
