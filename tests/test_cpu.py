"""Unit tests for the receiver CPU model."""

import pytest

from repro.host.cpu import CpuCosts, ReceiverCpu
from repro.sim.engine import Simulator
from repro.units import usec


def test_costs_segment_push():
    costs = CpuCosts(per_segment_ns=1000, per_byte_ns=0.5)
    assert costs.segment_push_cost(2000) == 2000.0


def test_consume_serializes_work():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    done1 = cpu.consume(1000)
    done2 = cpu.consume(500)
    assert done1 == 1000
    assert done2 == 1500  # queued behind the first chunk


def test_free_at_after_idle_gap():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    cpu.consume(100)
    sim.schedule(usec(10), lambda: None)
    sim.run()
    assert cpu.free_at() == sim.now  # idle: free immediately


def test_zero_cost_noop():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    before = cpu.busy_ns_total
    cpu.consume(0)
    assert cpu.busy_ns_total == before


def test_utilization_fully_busy():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    # 10 work chunks of 10us back-to-back over 100us
    for i in range(10):
        sim.schedule(i * usec(10), cpu.consume, usec(10))
        sim.schedule(i * usec(10), cpu.checkpoint)
    sim.schedule(usec(100), cpu.checkpoint)
    sim.run()
    assert cpu.utilization(0, usec(100)) == pytest.approx(1.0, abs=0.05)


def test_utilization_half_busy():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    for i in range(10):
        sim.schedule(i * usec(10), cpu.consume, usec(5))
        sim.schedule(i * usec(10), cpu.checkpoint)
    sim.schedule(usec(100), cpu.checkpoint)
    sim.run()
    assert cpu.utilization(0, usec(100)) == pytest.approx(0.5, abs=0.1)


def test_utilization_series_windows():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    # busy only in the first 50us
    for i in range(5):
        sim.schedule(i * usec(10), cpu.consume, usec(10))
        sim.schedule(i * usec(10), cpu.checkpoint)
    sim.schedule(usec(100), cpu.checkpoint)
    sim.run()
    series = cpu.utilization_series(usec(50))
    assert len(series) == 2
    assert series[0][1] > 0.8
    assert series[1][1] < 0.2


def test_utilization_empty_window():
    sim = Simulator()
    cpu = ReceiverCpu(sim)
    assert cpu.utilization(10, 10) == 0.0
