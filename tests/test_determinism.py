"""Determinism harness: byte-identical results across reruns, across
serial/parallel execution, and against committed golden fixtures.

The fixtures in ``tests/golden/`` were generated *before* the hot-path
optimization pass (heap compaction, Packet/Segment pooling, callback
flattening); re-running the same tiny configs on the current code and
comparing bytes is what proves those optimizations behavior-preserving.
Any event reordered, any float expression regrouped, any RNG draw moved
shows up here as a diff.

Regenerate intentionally-changed goldens with ``python
tools/gen_golden.py`` and review the fixture diff like any other code
change.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.goldens import golden_bytes, golden_run
from repro.experiments.schemes import scheme_names
from repro.runner import JobSpec, collect_results, run_jobs, to_jsonable

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SCHEMES = scheme_names()


def result_bytes(result) -> str:
    """Serialize a RunResult exactly as the fixtures store it."""
    return json.dumps(to_jsonable(result), indent=2, sort_keys=True) + "\n"


def test_serial_rerun_is_byte_identical():
    assert golden_bytes("presto") == golden_bytes("presto")


def test_parallel_matches_serial():
    """The same runs through the sweep runner's worker pool produce the
    same bytes: forked workers inherit nothing that changes results."""
    schemes = ["presto", "ecmp"]
    serial = [golden_bytes(s) for s in schemes]
    specs = [JobSpec.make(golden_run, s, label=s) for s in schemes]
    results = collect_results(run_jobs(specs, jobs=2))
    assert [result_bytes(r) for r in results] == serial


def test_every_scheme_has_a_golden_fixture():
    assert {p.stem for p in GOLDEN_DIR.glob("*.json")} == set(SCHEMES)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_golden_fixture_unchanged(scheme):
    fixture = (GOLDEN_DIR / f"{scheme}.json").read_text()
    assert golden_bytes(scheme) == fixture, (
        f"simulation behavior changed for {scheme!r}; if intentional, "
        "regenerate with tools/gen_golden.py and review the fixture diff"
    )


@pytest.mark.tier2
def test_oracle_reports_byte_identical_across_runs_and_serial_vs_parallel():
    """Every figure oracle's OracleReport JSON is byte-identical across
    two runs and between serial and pooled execution (store disabled so
    nothing is cached away)."""
    from repro.validate.oracles import run_oracles
    from repro.validate.report import validation_payload

    kw = dict(seeds=(1, 2), scale=0.1, store=None)

    def payload_bytes(reports):
        return json.dumps(validation_payload(reports),
                          indent=2, sort_keys=True)

    first = payload_bytes(run_oracles(jobs=1, **kw))
    second = payload_bytes(run_oracles(jobs=1, **kw))
    pooled = payload_bytes(run_oracles(jobs=2, **kw))
    assert first == second
    assert first == pooled
