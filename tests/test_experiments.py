"""Smoke tests for every experiment module at miniature scale.

These guard the benchmark entry points against bit-rot: each paper
experiment's runner must build, run, and produce the right result
structure.  Numbers here are NOT meaningful (tiny windows); the
benchmarks assert the paper shapes at proper scale.
"""

import pytest

from repro.experiments.failure import STAGES, run_failure_stage
from repro.experiments.flowlet_cmp import run_flowlet_cmp
from repro.experiments.flowlet_sizes import run_flowlet_sizes, slice_flowlets
from repro.experiments.gro_micro import run_fig5, run_figure6
from repro.experiments.northsouth import run_northsouth
from repro.experiments.oversub import run_oversub_point
from repro.experiments.perhop_cmp import run_perhop_cmp
from repro.experiments.scalability import run_scalability_point
from repro.experiments.synthetic import run_synthetic
from repro.experiments.trace import run_trace
from repro.units import MB, msec, usec

FAST = dict(seeds=(1,), warm_ns=msec(4), measure_ns=msec(6))


def test_slice_flowlets_pure():
    events = [(0, 100), (usec(10), 50), (usec(900), 200)]
    sizes = slice_flowlets(events, gap_ns=usec(500))
    assert sizes == [150, 200]
    assert slice_flowlets([], usec(500)) == []


def test_flowlet_sizes_runner():
    res = run_flowlet_sizes(1, transfer_bytes=2 * MB, duration_ns=msec(8))
    assert res.competing_flows == 1
    assert sum(res.flowlet_sizes) > 0
    assert res.flowlet_sizes == sorted(res.flowlet_sizes, reverse=True)


def test_fig5_runner():
    res = run_fig5("presto", duration_ns=msec(8))
    assert res.gro == "presto"
    assert res.throughput_bps > 1e9
    assert 0 <= res.cpu_utilization <= 1
    assert res.ooo_counts


def test_fig6_runner():
    res = run_figure6(duration_ns=msec(6), sample_ns=msec(2))
    assert set(res.mean_util) == {"presto", "official"}
    assert all(0 < u <= 1 for u in res.mean_util.values())
    assert res.series["presto"]


def test_scalability_point():
    p = run_scalability_point("presto", 2, **FAST, with_probes=False)
    assert p.n_paths == 2
    assert p.mean_tput_bps > 1e9
    assert 0 <= p.fairness <= 1


def test_oversub_point():
    p = run_oversub_point("ecmp", 2, **FAST, with_probes=False)
    assert p.oversubscription == 1.0
    assert p.mean_tput_bps > 0


def test_flowlet_cmp_runner():
    res = run_flowlet_cmp(schemes=("flowlet500us",), **FAST)
    assert "flowlet500us" in res
    assert res["flowlet500us"].mean_tput_bps > 0


def test_perhop_cmp_runner():
    res = run_perhop_cmp(schemes=("presto",), **FAST)
    assert res["presto"].mean_tput_bps > 1e9


def test_synthetic_runner_stride():
    res = run_synthetic("presto", "stride", **FAST, with_mice=False)
    assert res.workload == "stride"
    assert res.mean_elephant_tput_bps > 1e9


def test_synthetic_runner_shuffle():
    res = run_synthetic("ecmp", "shuffle", **FAST, with_mice=False)
    assert res.workload == "shuffle"
    assert res.mean_elephant_tput_bps > 0


def test_synthetic_rejects_unknown_workload():
    with pytest.raises(ValueError):
        run_synthetic("presto", "zigzag", **FAST)


def test_trace_runner():
    res = run_trace("presto", seeds=(1,), duration_ns=msec(15))
    assert res.flows > 0
    # structure only; tails need longer runs
    assert isinstance(res.mice_fcts_ns, list)


def test_northsouth_runner():
    res = run_northsouth("presto", **FAST)
    assert res.mean_elephant_tput_bps > 0
    assert 0 <= res.mice_timeout_fraction <= 1


def test_failure_stages():
    for stage in STAGES:
        res = run_failure_stage(stage, "L1->L4", seeds=(1,),
                                warm_ns=msec(4), measure_ns=msec(6))
        assert res.stage == stage
        assert res.mean_tput_bps >= 0
    with pytest.raises(ValueError):
        run_failure_stage("chaos", "stride")
    with pytest.raises(ValueError):
        run_failure_stage("symmetry", "zigzag")
