"""Tests for the TopologySpec API, datacenter fabric builders, the
multi-tier spanning-tree allocator and the fabric sweep.

Covers the PR's acceptance surface:

* TopologySpec parse/validate/normalize round trips, including the
  leaf-spine oversubscription math;
* hash stability — legacy trio configs and their TopologySpec
  equivalents hash bit-identically, so no cached result invalidates;
* hypothesis properties over fat-tree/leaf-spine shapes: full
  host-to-host reachability, one tree per core, pairwise trunk
  disjointness, and every (tree, host) shadow-MAC label resolving to
  the destination's access port;
* tier-agnostic helpers raising :class:`TopologyShapeError` instead of
  returning wrong answers on unsupported shapes;
* the bounded-memory streaming collectors behind the fabric sweep;
* an end-to-end 128-host fat-tree sweep through the runner (tier 2).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.fabric_sweep import (
    FabricCellResult,
    fabric_config,
    fabric_specs,
    run_fabric_cell,
)
from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.stats import percentile
from repro.metrics.streaming import P2Quantile, StreamingQuantiles, TopK
from repro.net.addresses import shadow_mac
from repro.net.fabrics import (
    TopologySpec,
    as_spec,
    build_fabric,
    fabric_link_names,
)
from repro.net.routing import (
    TopologyShapeError,
    TreeValidationError,
    allocate_spanning_trees,
    enumerate_paths,
    install_tree_routes,
    validate_trees,
)
from repro.net.topology import Topology
from repro.runner.serialize import content_hash, from_jsonable, to_jsonable
from repro.sim.engine import Simulator
from repro.units import msec

SEED_DEFAULT_CONFIG_HASH = "bc4b591b401b0e68"


# --- TopologySpec API --------------------------------------------------------


def test_spec_parse_round_trips():
    for text, expect in [
        ("fat-tree:k=8", TopologySpec.fat_tree(8)),
        ("fattree:k=4", TopologySpec.fat_tree(4)),
        ("clos:spines=2,leaves=3,hosts=4", TopologySpec.clos(2, 3, 4)),
        ("clos", TopologySpec.clos()),
        ("leaf-spine:pods=8,radix=12,oversub=3", TopologySpec.leaf_spine(
            pods=8, radix=12, oversub=3)),
    ]:
        spec = TopologySpec.parse(text)
        assert spec == expect
        # cli() rendering re-parses to the same spec
        assert TopologySpec.parse(spec.cli()) == spec


def test_spec_parse_rejects_garbage():
    for bad in ("fat-tree", "fat-tree:k=3", "fat-tree:k=banana",
                "clos:spines=0", "hypercube:d=4", "fat-tree:q=8",
                "clos:spines=2,leaves=2,hosts=2,extra=1"):
        with pytest.raises(ValueError):
            TopologySpec.parse(bad)


def test_fat_tree_arithmetic():
    spec = TopologySpec.fat_tree(4)
    assert spec.n_hosts() == 16
    assert spec.n_edges() == 8
    assert spec.hosts_per_edge() == 2
    assert spec.n_tiers == 3
    assert TopologySpec.fat_tree(8).n_hosts() == 128
    assert spec.edge_of(0) == 0 and spec.edge_of(15) == 7
    with pytest.raises(ValueError):
        spec.edge_of(16)


def test_leaf_spine_oversubscription_math():
    # radix 48 at 2:1 oversub: 16 spines, 32 hosts per leaf
    spec = TopologySpec.leaf_spine(pods=4, radix=48, oversub=2.0)
    assert spec.kind == "clos"
    assert spec.n_spines == 16
    assert spec.n_leaves == 4
    assert spec.hosts_per_leaf == 32
    with pytest.raises(ValueError):
        TopologySpec.leaf_spine(pods=4, radix=47, oversub=2.0)


def test_spec_serializes_and_hashes():
    spec = TopologySpec.fat_tree(8)
    assert from_jsonable(to_jsonable(spec)) == spec
    assert content_hash(spec) == content_hash(TopologySpec.fat_tree(8))
    assert content_hash(spec) != content_hash(TopologySpec.fat_tree(4))
    assert hash(spec) == hash(TopologySpec.fat_tree(8))


# --- hash stability (acceptance criterion) -----------------------------------


def test_legacy_trio_and_spec_hash_identically():
    """A 2-tier spec normalizes into the legacy trio, so configs built
    either way hash bit-identically — no cached store entry, golden
    fixture or sweep cache key moves."""
    assert content_hash(TestbedConfig()) == SEED_DEFAULT_CONFIG_HASH
    via_spec = TestbedConfig(topology=TopologySpec.clos(4, 4, 4))
    assert content_hash(via_spec) == SEED_DEFAULT_CONFIG_HASH
    assert via_spec.topology is None  # normalized away
    via_str = TestbedConfig(topology="clos:spines=4,leaves=4,hosts=4")
    assert content_hash(via_str) == SEED_DEFAULT_CONFIG_HASH
    via_ls = TestbedConfig(
        topology=TopologySpec.leaf_spine(pods=4, n_spines=4,
                                         hosts_per_leaf=4))
    assert content_hash(via_ls) == SEED_DEFAULT_CONFIG_HASH
    assert "topology" not in to_jsonable(TestbedConfig())["fields"]


def test_fat_tree_config_hash_differs_and_round_trips():
    cfg = TestbedConfig(topology="fat-tree:k=4")
    assert content_hash(cfg) != SEED_DEFAULT_CONFIG_HASH
    again = from_jsonable(to_jsonable(cfg))
    assert content_hash(again) == content_hash(cfg)
    assert again.topology_spec() == TopologySpec.fat_tree(4)
    # legacy mirror keeps 2-tier consumers meaningful
    assert (cfg.n_spines, cfg.n_leaves, cfg.hosts_per_leaf) == (2, 8, 2)


def test_conflicting_spec_and_trio_rejected():
    with pytest.raises(ValueError):
        TopologySpec(kind="fat-tree", k=4, n_spines=2)
    with pytest.raises(ValueError):
        TopologySpec(kind="clos", n_spines=2, n_leaves=2,
                     hosts_per_leaf=2, k=4)


# --- fabric builders + multi-tier trees --------------------------------------


def _fat_tree_testbed(k: int, scheme: str = "presto") -> Testbed:
    return Testbed(TestbedConfig(scheme=scheme,
                                 topology=TopologySpec.fat_tree(k)))


def test_fat_tree_shape_k4():
    tb = _fat_tree_testbed(4)
    topo = tb.topo
    assert len(topo.cores) == 4
    assert len(topo.leaves) == 8       # edges play the leaf role
    assert len(topo.spines) == 8       # aggs play the spine role
    assert len(topo.pod_edges) == 4 and len(topo.pod_aggs) == 4
    assert len(tb.hosts) == 16
    assert topo.n_tiers == 3
    trees = tb.controller.trees
    assert len(trees) == 4             # one per core
    validate_trees(topo, trees)


@settings(max_examples=8, deadline=None)
@given(k=st.sampled_from([2, 4, 6]),
       seed=st.integers(min_value=0, max_value=2**16))
def test_fat_tree_paths_and_trees_properties(k, seed):
    """For every even k: every host pair has at least one path, trees
    number (k/2)^2 (one per core), and the validator's reachability +
    disjointness invariants hold."""
    import random

    sim = Simulator()
    topo = build_fabric(sim, TopologySpec.fat_tree(k))
    n_hosts = TopologySpec.fat_tree(k).n_hosts()

    class _H:
        def __init__(self, host_id):
            self.host_id = host_id
            self.receivers = {}

        def attach(self, port, topo):
            pass

    spec = TopologySpec.fat_tree(k)
    for h in range(n_hosts):
        topo.attach_host(_H(h), topo.leaves[spec.edge_of(h)])
    trees = allocate_spanning_trees(topo)
    assert len(trees) == (k // 2) ** 2
    install_tree_routes(topo, trees)
    validate_trees(topo, trees)  # raises on any violation

    rng = random.Random(seed)
    for _ in range(4):
        a, b = rng.randrange(n_hosts), rng.randrange(n_hosts)
        paths = enumerate_paths(topo, a, b)
        assert paths, f"no path {a}->{b} on k={k}"
        if spec.edge_of(a) != spec.edge_of(b):
            # inter-pod pairs see one path per core, intra-pod one per agg
            same_pod = (spec.edge_of(a) // (k // 2)
                        == spec.edge_of(b) // (k // 2))
            assert len(paths) == (k // 2 if same_pod else (k // 2) ** 2)


@settings(max_examples=8, deadline=None)
@given(k=st.sampled_from([2, 4, 6]))
def test_every_tree_host_label_resolves(k):
    """Walking any (tree, host) shadow-MAC label from any edge switch
    terminates at the destination host's access port."""
    sim = Simulator()
    spec = TopologySpec.fat_tree(k)
    topo = build_fabric(sim, spec)

    class _H:
        def __init__(self, host_id):
            self.host_id = host_id
            self.receivers = {}

        def attach(self, port, topo):
            pass

    for h in range(spec.n_hosts()):
        topo.attach_host(_H(h), topo.leaves[spec.edge_of(h)])
    trees = allocate_spanning_trees(topo)
    install_tree_routes(topo, trees)
    for tree in trees:
        for host_id in range(spec.n_hosts()):
            label = shadow_mac(tree.tree_id, host_id)
            for start in topo.leaves:
                node, hops = start, 0
                while hops <= 2 * topo.n_tiers + 1:
                    out = node.l2_table.get(label)
                    assert out is not None, (
                        f"tree {tree.tree_id} label for host {host_id} "
                        f"dead-ends at {node.name}")
                    if out is topo.host_port[host_id]:
                        break
                    node = out.peer
                    hops += 1
                else:
                    pytest.fail(f"label walk looped: tree {tree.tree_id} "
                                f"host {host_id} from {start.name}")


def test_tree_trunks_pairwise_disjoint_k4():
    """Different trees never share an agg<->core trunk link; sharing an
    edge<->agg access link is only legal within an uplink class."""
    tb = _fat_tree_testbed(4)
    trunk_links = {}
    from repro.net.routing import tree_legs

    spec = TopologySpec.fat_tree(4)
    for tree in tb.controller.trees:
        for src in range(0, 16, 2):
            for dst in range(0, 16, 2):
                src_leaf = tb.topo.leaves[spec.edge_of(src)]
                dst_leaf = tb.topo.leaves[spec.edge_of(dst)]
                legs = tree_legs(tb.topo, tree, src_leaf, dst_leaf)
                if not legs or len(legs) != 4:
                    continue
                for leg in legs[1:3]:  # agg->core, core->agg
                    owner = trunk_links.setdefault(leg.link.name,
                                                   tree.tree_id)
                    assert owner == tree.tree_id, (
                        f"trunk {leg.link.name} shared by trees "
                        f"{owner} and {tree.tree_id}")


def test_validator_catches_broken_tree():
    tb = _fat_tree_testbed(4)
    # corrupt one edge's route for tree 0 toward host 15
    label = shadow_mac(0, 15)
    victim = tb.topo.leaves[0]
    del victim.l2_table[label]
    with pytest.raises(TreeValidationError, match="no route|dead-ends"):
        validate_trees(tb.topo, tb.controller.trees)


def test_fabric_link_names_match_built_topology():
    for spec in (TopologySpec.fat_tree(4), TopologySpec.clos(3, 2, 2)):
        sim = Simulator()
        topo = build_fabric(sim, spec)
        names, by_switch = fabric_link_names(spec)
        built = {link.name for link in topo.links}
        assert set(names) <= built
        for sw, links in by_switch.items():
            assert set(links) <= built


# --- tier-agnostic error behavior --------------------------------------------


def test_enumerate_paths_raises_on_unsupported_shape():
    sim = Simulator()
    topo = Topology(sim)
    s1 = topo.add_switch("X1")
    s2 = topo.add_switch("X2")
    topo.connect(s1, s2)

    class _H:
        def __init__(self, host_id):
            self.host_id = host_id
            self.receivers = {}

        def attach(self, port, topo):
            pass

    topo.attach_host(_H(0), s1)
    topo.attach_host(_H(1), s2)
    with pytest.raises(TopologyShapeError):
        enumerate_paths(topo, 0, 1)


def test_pod_of_switch_raises_without_metadata():
    sim = Simulator()
    topo = build_fabric(sim, TopologySpec.clos(2, 2, 2))
    with pytest.raises(ValueError, match="pod"):
        topo.pod_of_switch(topo.leaves[0])


# --- streaming collectors ----------------------------------------------------


def test_p2_exact_below_five_samples():
    q = P2Quantile(0.5)
    for v in (5.0, 1.0, 3.0):
        q.add(v)
    assert q.value() == 3.0


def test_p2_small_n_matches_exact_percentile():
    assert P2Quantile(0.9).value() is None  # no samples yet
    q = P2Quantile(0.5)
    q.add(7.0)
    assert q.value() == 7.0  # n=1: the sample is every percentile
    q.add(3.0)
    assert q.value() == 5.0  # n=2: linear interpolation, not a marker
    samples = [4.0, 2.0, 8.0, 6.0]
    for pct in (0.5, 0.9, 0.99, 0.999):
        est = P2Quantile(pct)
        for v in samples:
            est.add(v)
        assert est.value() == pytest.approx(percentile(samples, pct * 100))


def test_p2_duplicate_heavy_streams_stay_finite():
    # all-identical stream: every marker collapses to the same height
    q = P2Quantile(0.99)
    for _ in range(50):
        q.add(5.0)
    assert q.value() == 5.0
    # duplicates below five samples use the exact fallback
    q = P2Quantile(0.5)
    for v in (2.0, 2.0, 1.0):
        q.add(v)
    assert q.value() == 2.0
    # near-constant stream with one outlier must not diverge or crash
    q = P2Quantile(0.9)
    for i in range(200):
        q.add(1.0 if i != 100 else 100.0)
    value = q.value()
    assert 1.0 <= value <= 100.0


def test_streaming_quantiles_track_exact_percentiles():
    import random

    rng = random.Random(42)
    xs = [rng.lognormvariate(10, 1.5) for _ in range(20000)]
    sq = StreamingQuantiles()
    sq.extend(xs)
    s = sq.summary()
    assert s["count"] == len(xs)
    assert s["min"] == min(xs) and s["max"] == max(xs)
    for q, key in [(50, "p50"), (90, "p90"), (99, "p99")]:
        exact = percentile(xs, q)
        assert abs(s[key] - exact) / exact < 0.05, key
    assert abs(s["p99.9"] - percentile(xs, 99.9)) / percentile(xs, 99.9) < 0.2


def test_topk_keeps_largest_with_payloads():
    tk = TopK(3)
    for i, v in enumerate([5.0, 1.0, 9.0, 7.0, 3.0, 9.0]):
        tk.add(v, f"item{i}")
    values = [v for v, _ in tk.items()]
    assert values == [9.0, 9.0, 7.0]
    assert tk.items()[0][1] == "item2"  # first 9.0 wins the tie


def test_empty_streams_summarize_cleanly():
    s = StreamingQuantiles().summary()
    assert s["count"] == 0 and s["mean"] is None and s["p99"] is None
    assert TopK(4).items() == []


# --- fabric sweep ------------------------------------------------------------


def test_fabric_cell_runs_with_validation_and_bounded_memory():
    r = run_fabric_cell(
        fabric_config("fat-tree:k=4", "presto", 1), "websearch",
        duration_ns=msec(3), validate=True)
    assert isinstance(r, FabricCellResult)
    assert r.trees_validated
    assert r.flows_started > 0 and r.flows_completed > 0
    assert r.fct_summary["count"] >= 0
    assert len(r.worst_fcts) <= 16
    # serializes for the result store
    rt = from_jsonable(to_jsonable(r))
    assert rt.fct_summary == r.fct_summary


def test_fabric_cell_rejects_unknown_workload():
    with pytest.raises(ValueError, match="workload"):
        run_fabric_cell(fabric_config("fat-tree:k=4", "presto", 1),
                        "bitcoin-mining")


def test_fabric_specs_validate_topologies_up_front():
    with pytest.raises(ValueError):
        fabric_specs(topologies=("fat-tree:k=5",))
    specs = fabric_specs(topologies=("fat-tree:k=4",),
                         workloads=("incast",), schemes=("presto",),
                         seeds=(1,))
    assert len(specs) == 1
    assert specs[0].label == "fabric/fat-tree-k4/incast/presto/seed1"


def test_runner_cli_rejects_topology_for_non_fabric_sweeps(capsys):
    from repro.runner.cli import main

    assert main(["run", "scalability", "--topology", "fat-tree:k=4"]) == 2
    assert "--topology" in capsys.readouterr().err
    assert main(["run", "--topology", "fat-tree:k=5"]) == 2
    assert "bad --topology" in capsys.readouterr().err


# --- tier 2: datacenter-scale end-to-end -------------------------------------


@pytest.mark.tier2
def test_k8_flow_fidelity_sweep_through_runner(tmp_path):
    """The acceptance-criteria run, scaled to the test budget: a
    128-host fat-tree k=8 trace sweep at flow fidelity through the
    runner CLI, spanning-tree invariants armed."""
    from repro.runner.cli import main

    rc = main([
        "run", "--topology", "fat-tree:k=8", "--fidelity", "flow",
        "--seeds", "1", "--measure-ms", "3", "--validate",
        "--results-dir", str(tmp_path), "--quiet",
    ])
    assert rc == 0
    out = tmp_path / "runner_fabric.json"
    assert out.exists()
    import json

    payload = json.loads(out.read_text())
    cells = payload["data"]
    assert cells  # six (workload, scheme) cells on k=8
