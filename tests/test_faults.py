"""Tests for the fault subsystem: schedule DSL, control plane,
convergence metrics, invariants and the chaos soak."""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.faults.controlplane import ControlPlane
from repro.faults.invariants import byte_ledger, check_invariants
from repro.faults.metrics import BlackholeAccountant, ThroughputTimeline
from repro.faults.schedule import (
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkFlap,
    LinkUp,
    SwitchDown,
    SwitchUp,
    classic_failure_schedule,
    random_schedule,
)
from repro.faults.soak import random_case, run_soak, run_soak_case
from repro.net.addresses import shadow_mac_tree
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.units import KB, gbps, msec, usec


def small_cfg(**kw):
    kw.setdefault("scheme", "presto")
    kw.setdefault("seed", 7)
    kw.setdefault("ctrl_detection_delay_ns", usec(400))
    kw.setdefault("ctrl_reaction_delay_ns", usec(100))
    return TestbedConfig(**kw)


def link_by_name(tb, name):
    return next(l for l in tb.topo.links if l.name == name)


# --- schedule DSL -----------------------------------------------------------


def test_flap_expands_to_down_up_cycles():
    actions = LinkFlap(100, "L1--S1", period_ns=10, count=2).actions()
    assert [(a.at_ns, a.kind) for a in actions] == [
        (100, "link_down"), (105, "link_up"),
        (110, "link_down"), (115, "link_up"),
    ]


def test_schedule_actions_sorted_and_end_ns():
    sched = FaultSchedule.of(
        LinkUp(300, "a"), LinkDown(100, "a"), LinkDegrade(200, "b", 0.5))
    times = [a.at_ns for a in sched.actions()]
    assert times == sorted(times)
    assert sched.end_ns == 300
    assert sched.link_names() == ("a", "b")
    assert FaultSchedule().end_ns == 0


def test_event_validation():
    with pytest.raises(ValueError):
        LinkDown(-1, "a").actions()
    with pytest.raises(ValueError):
        LinkFlap(0, "a", period_ns=1).actions()
    with pytest.raises(ValueError):
        LinkFlap(0, "a", period_ns=10, count=0).actions()
    with pytest.raises(ValueError):
        LinkDegrade(0, "a", rate_factor=0.0).actions()
    with pytest.raises(ValueError):
        LinkDegrade(0, "a", rate_factor=1.5).actions()
    with pytest.raises(ValueError):
        LinkDegrade(0, "a", rate_factor=0.5, duration_ns=0).actions()


def test_restores_network():
    assert not FaultSchedule.of(LinkDown(10, "a")).restores_network()
    assert FaultSchedule.of(
        LinkDown(10, "a"), LinkUp(20, "a")).restores_network()
    assert not FaultSchedule.of(
        LinkDegrade(10, "a", 0.5)).restores_network()
    assert FaultSchedule.of(
        LinkDegrade(10, "a", 0.5, duration_ns=5)).restores_network()
    # a SwitchUp covers the links a SwitchDown killed once expanded
    sw = {"S1": ["a", "b"]}
    down_only = FaultSchedule.of(SwitchDown(10, "S1"))
    assert not down_only.restores_network(sw)
    assert FaultSchedule.of(
        SwitchDown(10, "S1"), SwitchUp(20, "S1")).restores_network(sw)
    # ... and per-link recoveries count, but only under expansion
    mixed = FaultSchedule.of(
        SwitchDown(10, "S1"), LinkUp(20, "a"), LinkUp(21, "b"))
    assert mixed.restores_network(sw)


def test_random_schedule_deterministic_and_self_restoring():
    links = [f"L{i}--S{j}" for i in (1, 2) for j in (1, 2)]
    switches = {"S1": ["L1--S1", "L2--S1"], "S2": ["L1--S2", "L2--S2"]}
    for seed in range(8):
        a = random_schedule(RandomStreams(seed).stream("s"), links,
                            window_ns=msec(10), switches=switches)
        b = random_schedule(RandomStreams(seed).stream("s"), links,
                            window_ns=msec(10), switches=switches)
        assert a == b
        assert a.restores_network(switches)
        assert all(act.at_ns < msec(10) * 0.9 for act in a.actions())


def test_classic_failure_schedule_is_permanent():
    sched = classic_failure_schedule()
    assert not sched.restores_network()
    assert sched.link_names() == ("L1--S1",)


# --- arming against a live testbed ------------------------------------------


def test_arm_rejects_unknown_targets_and_past_times():
    tb = Testbed(small_cfg())
    with pytest.raises(ValueError, match="unknown link"):
        FaultSchedule.of(LinkDown(10, "nope")).arm(tb.sim, tb.topo)
    with pytest.raises(ValueError, match="unknown switch"):
        FaultSchedule.of(SwitchDown(10, "nope")).arm(tb.sim, tb.topo)
    tb.run(usec(1))
    with pytest.raises(ValueError, match="in the past"):
        FaultSchedule.of(LinkDown(0, "L1--S1")).arm(tb.sim, tb.topo)


def test_armed_actions_apply_at_their_times():
    tb = Testbed(small_cfg())
    armed = FaultSchedule.of(
        LinkDown(usec(10), "L1--S1"), LinkUp(usec(30), "L1--S1"),
    ).arm(tb.sim, tb.topo)
    link = link_by_name(tb, "L1--S1")
    tb.run(usec(20))
    assert not link.up
    tb.run(usec(40))
    assert link.up
    assert armed.applied == [
        (usec(10), "link_down L1--S1"), (usec(30), "link_up L1--S1")]


def test_degrade_restores_the_original_rate():
    tb = Testbed(small_cfg())
    link = link_by_name(tb, "L2--S3")
    orig = link.rate_bps
    FaultSchedule.of(
        LinkDegrade(usec(10), "L2--S3", 0.25, duration_ns=usec(20)),
    ).arm(tb.sim, tb.topo)
    tb.run(usec(15))
    assert link.rate_bps == orig * 0.25
    tb.run(usec(40))
    assert link.rate_bps == orig


def test_switch_down_kills_every_attached_link():
    tb = Testbed(small_cfg())
    FaultSchedule.of(
        SwitchDown(usec(10), "S2"), SwitchUp(usec(30), "S2"),
    ).arm(tb.sim, tb.topo)
    s2_links = [l for l in tb.topo.links if l.name.endswith("--S2")]
    assert len(s2_links) == tb.cfg.n_leaves
    tb.run(usec(20))
    assert all(not l.up for l in s2_links)
    assert all(l.up for l in tb.topo.links if l not in s2_links)
    tb.run(usec(40))
    assert all(l.up for l in tb.topo.links)


# --- control plane ----------------------------------------------------------


def test_control_plane_reacts_after_detection_plus_reaction():
    tb = Testbed(small_cfg())
    control = tb.enable_control_plane()
    FaultSchedule.of(LinkDown(usec(10), "L1--S1")).arm(tb.sim, tb.topo)
    lb = tb.hosts[0].lb
    before = list(lb.labels_for(12))  # L1 host -> L4 host, 4 trees
    tb.run(usec(10) + control.total_delay_ns - 1)
    # observed immediately, but no push until the delays elapse
    assert [c.link for c in control.observed] == ["L1--S1"]
    assert control.reactions == [] and not control.settled()
    assert lb.labels_for(12) == before
    tb.run(usec(10) + control.total_delay_ns)
    assert control.last_reaction_ns() == usec(10) + control.total_delay_ns
    assert control.settled()
    trees = {shadow_mac_tree(m) for m in lb.labels_for(12)}
    assert trees == {1, 2, 3}  # tree through S1 pruned


def test_control_plane_coalesces_simultaneous_changes():
    tb = Testbed(small_cfg())
    control = tb.enable_control_plane()
    FaultSchedule.of(SwitchDown(usec(10), "S1")).arm(tb.sim, tb.topo)
    tb.run(msec(2))
    assert len(control.observed) == tb.cfg.n_leaves
    assert len(control.reactions) == 1  # one push for the whole burst
    assert len(control.reactions[0].changes) == tb.cfg.n_leaves


def test_recovery_restores_unweighted_schedules():
    tb = Testbed(small_cfg())
    control = tb.enable_control_plane()
    FaultSchedule.of(
        LinkDown(usec(10), "L1--S1"), LinkUp(usec(600), "L1--S1"),
    ).arm(tb.sim, tb.topo)
    lb = tb.hosts[0].lb
    healthy = list(lb.labels_for(12))
    tb.run(usec(600))  # failure observed and reacted to; recovery pending
    assert {shadow_mac_tree(m) for m in lb.labels_for(12)} == {1, 2, 3}
    tb.run(msec(2))
    assert len(control.reactions) == 2
    assert lb.labels_for(12) == healthy


def test_control_plane_rejects_negative_delays():
    tb = Testbed(small_cfg())
    with pytest.raises(ValueError):
        ControlPlane(tb.sim, tb.controller, tb.topo.links,
                     detection_delay_ns=-1)


# --- convergence metrics ----------------------------------------------------


def test_throughput_timeline_windows_and_quiesce():
    sim = Simulator()

    class FakeTransfer:
        delivered = 0

        def delivered_bytes(self):
            return FakeTransfer.delivered

    def deliver(n):
        FakeTransfer.delivered += n

    tl = ThroughputTimeline(sim, window_ns=100, stop_ns=400)
    tl.track(FakeTransfer())
    sim.schedule(50, deliver, 1000)     # lands in window ending at 100
    sim.schedule(250, deliver, 500)     # lands in window ending at 300
    sim.run()
    assert tl.samples == [(100, 1000), (200, 0), (300, 500), (400, 0)]
    assert sim.peek_time() is None  # sampling stopped; sim can quiesce
    rates = dict(tl.rates_bps())
    assert rates[100] == pytest.approx(1000 * 8 * 1e9 / 100)
    assert tl.mean_bps_between(100, 300) == pytest.approx(
        (rates[200] + rates[300]) / 2)
    assert tl.recovery_ns(100, rates[300], fraction=1.0) == 200
    assert tl.recovery_ns(300, rates[100], fraction=1.0) is None


def test_throughput_timeline_validates_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        ThroughputTimeline(sim, window_ns=0, stop_ns=100)
    with pytest.raises(ValueError):
        ThroughputTimeline(sim, window_ns=10, stop_ns=0)


def test_blackhole_accountant_counts_fault_losses():
    tb = Testbed(small_cfg())
    tb.controller.enable_fast_failover(tb.cfg.failover_latency_ns)
    tb.enable_control_plane()
    accountant = BlackholeAccountant(tb.topo, tb.hosts)
    assert accountant.delta()["total"] == 0
    app = tb.add_elephant(0, 12, size_bytes=512 * KB)
    # kill the uplink while the flow is in flight
    FaultSchedule.of(LinkDown(usec(200), "L1--S1")).arm(tb.sim, tb.topo)
    tb.run(msec(120))
    assert app.fct_ns is not None
    delta = accountant.delta()
    assert delta["total"] > 0
    assert delta["total"] == sum(
        v for k, v in delta.items() if k != "total")


# --- invariants -------------------------------------------------------------


def test_invariants_pass_on_clean_faulted_run():
    tb = Testbed(small_cfg())
    tb.controller.enable_fast_failover(tb.cfg.failover_latency_ns)
    tb.enable_control_plane()
    apps = [tb.add_elephant(0, 12, size_bytes=512 * KB),
            tb.add_elephant(5, 9, size_bytes=512 * KB)]
    FaultSchedule.of(
        LinkDown(usec(200), "L1--S1"), LinkUp(msec(3), "L1--S1"),
    ).arm(tb.sim, tb.topo)
    tb.run(msec(300))
    report = check_invariants(tb, apps)
    assert report.ok, report.violations
    assert report.stats["quiesced"] == 1
    assert report.stats["flows_stuck"] == 0
    assert report.stats["schedule_mismatches"] == 0
    ledger = byte_ledger(tb)
    assert ledger["nic_tx"] == ledger["accounted"] > 0


def test_invariants_flag_stuck_flows_and_stale_schedules():
    tb = Testbed(small_cfg())
    tb.run(msec(1))

    class Stuck:
        fct_ns = None

        def flow_ids(self):
            return [99]

        def delivered_bytes(self):
            return 0

    # hand-mangle one vswitch schedule: the consistency check must see it
    tb.hosts[0].lb.set_schedule(12, [1234])
    report = check_invariants(tb, [Stuck()])
    assert not report.ok
    assert any("stuck transfer" in v for v in report.violations)
    assert any("stale schedule" in v for v in report.violations)
    assert report.stats["flows_stuck"] == 1


# --- soak -------------------------------------------------------------------


def test_random_case_deterministic():
    a = random_case(3, 5)
    b = random_case(3, 5)
    assert a == b
    assert a != random_case(3, 6)
    assert a.schedule.restores_network(
        {f"S{j + 1}": [f"L{i + 1}--S{j + 1}" for i in range(a.cfg.n_leaves)]
         for j in range(a.cfg.n_spines)})
    srcs = [s for s, _ in a.pairs]
    dsts = [d for _, d in a.pairs]
    assert len(set(srcs)) == len(srcs) and len(set(dsts)) == len(dsts)
    leaf = lambda h: h // a.cfg.hosts_per_leaf
    assert all(leaf(s) != leaf(d) for s, d in a.pairs)


def test_run_soak_case_holds_invariants():
    result = run_soak_case(random_case(0, 0))
    assert result.ok, result.violations
    assert result.faults_applied >= 2  # fault + its recovery at minimum
    assert result.reactions >= 1
    assert result.stats["flows_stuck"] == 0


def test_run_soak_through_runner():
    report = run_soak(n_cases=2, base_seed=1, jobs=1, store=None)
    assert report.ok, [r.violations for r in report.results if r]
    assert report.n_passed == 2
    assert len(report.rows()) == 2
