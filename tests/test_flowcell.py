"""Unit + property tests for flowcell creation (paper Algorithm 1)."""

from hypothesis import given, strategies as st

import pytest

from repro.presto.flowcell import FLOWCELL_BYTES, FlowcellTagger
from repro.presto.vswitch import PrestoLb
from repro.net.packet import Segment


def test_first_segment_starts_cell_one():
    tagger = FlowcellTagger()
    idx, cell = tagger.tag(1, 1448, 4)
    assert (idx, cell) == (0, 1)


def test_rotation_at_threshold():
    tagger = FlowcellTagger(threshold=10_000)
    idx, cell = tagger.tag(1, 6_000, 4)
    assert (idx, cell) == (0, 1)
    # 6000 + 6000 > 10000 -> rotate
    idx, cell = tagger.tag(1, 6_000, 4)
    assert (idx, cell) == (1, 2)


def test_exact_threshold_does_not_rotate():
    tagger = FlowcellTagger(threshold=10_000)
    assert tagger.tag(1, 10_000, 4) == (0, 1)
    # next byte rotates
    assert tagger.tag(1, 1, 4) == (1, 2)


def test_round_robin_wraps():
    tagger = FlowcellTagger(threshold=100)
    seen = [tagger.tag(1, 100, 3)[0]]
    for _ in range(5):
        seen.append(tagger.tag(1, 100, 3)[0])
    assert seen == [0, 1, 2, 0, 1, 2]


def test_flows_are_independent():
    tagger = FlowcellTagger(threshold=100)
    tagger.tag(1, 100, 4)
    tagger.tag(1, 100, 4)  # flow 1 now on idx 1
    assert tagger.tag(2, 50, 4) == (0, 1)


def test_default_threshold_is_64kb():
    assert FLOWCELL_BYTES == 64 * 1024


def test_zero_labels_rejected():
    with pytest.raises(ValueError):
        FlowcellTagger().tag(1, 10, 0)


def test_bad_threshold_rejected():
    with pytest.raises(ValueError):
        FlowcellTagger(threshold=0)


def test_initial_index_fn():
    tagger = FlowcellTagger(threshold=100)
    tagger.set_initial_index_fn(lambda flow_id: flow_id * 7)
    idx, _ = tagger.tag(2, 10, 4)
    assert idx == (2 * 7) % 4


@given(
    lens=st.lists(st.integers(1, FLOWCELL_BYTES), min_size=1, max_size=200),
    n_labels=st.integers(1, 8),
)
def test_flowcells_bounded_and_ids_monotone(lens, n_labels):
    """Every flowcell carries at most 64 KB, IDs only ever step by one,
    and consecutive cells land on consecutive labels (round robin)."""
    tagger = FlowcellTagger()
    cell_bytes = {}
    prev_cell = 0
    prev_idx = None
    for seg_len in lens:
        idx, cell = tagger.tag(9, seg_len, n_labels)
        assert cell in (prev_cell, prev_cell + 1)
        if cell == prev_cell + 1 and prev_idx is not None:
            assert idx == (prev_idx + 1) % n_labels
        prev_cell, prev_idx = cell, idx
        cell_bytes[cell] = cell_bytes.get(cell, 0) + seg_len
    for cell, total in cell_bytes.items():
        assert total <= FLOWCELL_BYTES or cell_bytes.get(cell - 1) is None and total == lens[0]


@given(lens=st.lists(st.integers(1, 1448), min_size=1, max_size=300))
def test_bytes_partition_preserved(lens):
    """The tagger never drops or duplicates bytes: the sum over cells
    equals the input."""
    tagger = FlowcellTagger()
    total_in = 0
    per_cell = {}
    for seg_len in lens:
        _, cell = tagger.tag(5, seg_len, 4)
        total_in += seg_len
        per_cell[cell] = per_cell.get(cell, 0) + seg_len
    assert sum(per_cell.values()) == total_in


def _segment(flow_id, seq, size, dst=3):
    return Segment(flow_id=flow_id, src_host=0, dst_host=dst,
                   seq=seq, end_seq=seq + size)


def test_presto_lb_assigns_labels_and_cells():
    lb = PrestoLb(0)
    lb.set_schedule(3, [101, 102, 103, 104])
    seg = _segment(1, 0, 64 * 1024)
    lb.select(seg)
    first_mac, first_cell = seg.dst_mac, seg.flowcell_id
    assert first_mac in (101, 102, 103, 104)
    assert first_cell == 1
    seg2 = _segment(1, 64 * 1024, 64 * 1024)
    lb.select(seg2)
    assert seg2.flowcell_id == 2
    assert seg2.dst_mac != first_mac


def test_presto_lb_acks_stay_on_one_label():
    lb = PrestoLb(0)
    lb.set_schedule(3, [101, 102])
    macs = set()
    for _ in range(10):
        ack = _segment(7, 0, 0)
        lb.select(ack)
        macs.add(ack.dst_mac)
    assert len(macs) == 1


# --- boundary edges: exact 64 KB landings and TSO-disabled streams ----------

MSS = 1448  # TSO disabled: TCP hands the vSwitch MSS-sized segments


def test_exact_boundary_segments_rotate_per_segment():
    """Segments exactly one flowcell wide: each one fills its cell to
    the byte, so every subsequent segment starts a fresh cell on the
    next label."""
    tagger = FlowcellTagger()
    for i in range(9):
        idx, cell = tagger.tag(1, FLOWCELL_BYTES, 4)
        assert cell == i + 1
        assert idx == i % 4


@given(
    cuts=st.lists(st.integers(1, FLOWCELL_BYTES - 1), max_size=8),
    n_labels=st.integers(1, 8),
    reps=st.integers(1, 4),
)
def test_segments_landing_exactly_on_boundary_keep_round_robin(
        cuts, n_labels, reps):
    """Partition the 64 KB cell into segments whose last byte lands
    exactly on the boundary, repeated: no rotation mid-partition, and
    each repetition starts the next cell on the next label."""
    bounds = sorted(set(cuts))
    sizes = [b - a for a, b in zip([0] + bounds, bounds + [FLOWCELL_BYTES])]
    sizes = [s for s in sizes if s > 0]
    assert sum(sizes) == FLOWCELL_BYTES
    tagger = FlowcellTagger()
    for rep in range(reps):
        for size in sizes:
            idx, cell = tagger.tag(3, size, n_labels)
            assert cell == rep + 1
            assert idx == rep % n_labels


@given(n_segments=st.integers(1, 200), n_labels=st.integers(1, 8))
def test_tso_disabled_mss_stream_rotates_on_64kb(n_segments, n_labels):
    """With TSO off the tagger only ever sees MSS-sized segments; cells
    still carry at most 64 KB, IDs step by exactly one and labels stay
    round-robin."""
    tagger = FlowcellTagger()
    per_cell = {}
    prev_cell, prev_idx = 0, None
    for _ in range(n_segments):
        idx, cell = tagger.tag(7, MSS, n_labels)
        assert cell in (prev_cell, prev_cell + 1)
        if prev_idx is not None:
            expected = (prev_idx + 1) % n_labels if cell > prev_cell else prev_idx
            assert idx == expected
        per_cell[cell] = per_cell.get(cell, 0) + MSS
        prev_cell, prev_idx = cell, idx
    assert all(total <= FLOWCELL_BYTES for total in per_cell.values())
    # every closed cell packed with the same maximal MSS count
    full = (FLOWCELL_BYTES // MSS) * MSS
    for cell, total in per_cell.items():
        if cell < prev_cell:
            assert total == full
