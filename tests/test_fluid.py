"""The fluid flow-level engine: dispatch, config-hash stability,
physics sanity, determinism, failover, and the tier-2 cross-fidelity
and speedup gates.

Tier 1 pins the contracts: ``TestbedConfig(fidelity=...)`` serializes
omit-if-default (seed config hashes — and with them every cached
runner result — are bit-unchanged), ``Testbed(cfg)`` dispatches to
:class:`FluidTestbed` at ``fidelity="flow"``, the engine reproduces
line rate / fair shares / failover plateaus exactly, and serial vs
parallel sweeps are byte-identical.  Tier 2 runs the cross-fidelity
agreement gate and the >=20x speedup floor.
"""

import json
import math
import time

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.experiments.scalability import (
    scalability_config,
    scalability_specs,
)
from repro.experiments.synthetic import run_synthetic_seed
from repro.fluid.testbed import FluidTestbed
from repro.runner import collect_results, run_jobs, to_jsonable
from repro.runner.serialize import content_hash
from repro.units import KB, msec

# --- satellite 1: omit-if-default serialization ------------------------------

#: content hashes captured at the seed commit, before ``fidelity``
#: existed.  If any of these move, every cached runner result and
#: golden fixture silently invalidates — that is a bug, not churn.
SEED_DEFAULT_CONFIG_HASH = "bc4b591b401b0e68"
SEED_SCALABILITY_CONFIG_HASH = "988859f88690486b"
SEED_SCALABILITY_SPEC_HASH = "51060f0e7e217978"


def test_seed_config_hashes_unchanged():
    assert content_hash(TestbedConfig()) == SEED_DEFAULT_CONFIG_HASH
    assert (content_hash(scalability_config("presto", 4, 1))
            == SEED_SCALABILITY_CONFIG_HASH)
    assert scalability_specs()[0].hash == SEED_SCALABILITY_SPEC_HASH


def test_explicit_packet_hashes_like_default():
    """``fidelity="packet"`` normalizes to None, so explicit-packet
    configs hash — and hit the result store — exactly like historic
    ones."""
    assert (content_hash(TestbedConfig(fidelity="packet"))
            == SEED_DEFAULT_CONFIG_HASH)
    assert TestbedConfig(fidelity="packet").fidelity is None
    assert "fidelity" not in to_jsonable(TestbedConfig())["fields"]


def test_flow_fidelity_changes_hash():
    assert (content_hash(TestbedConfig(fidelity="flow"))
            != SEED_DEFAULT_CONFIG_HASH)
    assert (to_jsonable(TestbedConfig(fidelity="flow"))["fields"]["fidelity"]
            == "flow")


def test_invalid_fidelity_rejected():
    with pytest.raises(ValueError, match="fidelity"):
        TestbedConfig(fidelity="quantum")


# --- dispatch ----------------------------------------------------------------


def test_testbed_dispatches_on_fidelity():
    assert isinstance(Testbed(TestbedConfig(fidelity="flow")), FluidTestbed)
    assert not isinstance(Testbed(TestbedConfig()), FluidTestbed)
    assert not isinstance(
        Testbed(TestbedConfig(fidelity="packet")), FluidTestbed)
    # naming the subclass directly must keep working too
    assert isinstance(
        FluidTestbed(TestbedConfig(scheme="ecmp", fidelity="flow")),
        FluidTestbed)


# --- physics sanity ----------------------------------------------------------


def _flow_testbed(scheme="presto", n_paths=4):
    return Testbed(scalability_config(scheme, n_paths, seed=1,
                                      fidelity="flow"))


def test_fluid_elephants_fill_line_rate():
    """Four presto elephants over four spines: every flow gets exactly
    its 10G line rate (the fluid allocation has no queueing noise)."""
    tb = _flow_testbed()
    apps = [tb.add_elephant(i, 4 + i, start_ns=0) for i in range(4)]
    tb.run(msec(4))
    rate = tb.topo.links[0].rate_bps
    for app in apps:
        delivered = sum(app.delivered_by_flow().values())
        expected = rate * msec(4) / 8e9  # bps over 4 ms -> bytes
        assert delivered == pytest.approx(expected, rel=0.02)


def test_fluid_mice_fct_presto_beats_ecmp():
    """The headline ordering survives the fidelity change: with the
    fabric saturated by stride elephants, presto mice finish faster
    than ecmp mice (whose elephants collide and crowd the mice out)."""
    fcts = {}
    for scheme in ("presto", "ecmp"):
        run = run_synthetic_seed(
            TestbedConfig(scheme=scheme, seed=1, fidelity="flow"),
            workload="stride",
            warm_ns=msec(3), measure_ns=msec(6),
            with_mice=True, mice_interval_ns=msec(1),
        )
        assert run.mice_fcts_ns, scheme
        fcts[scheme] = sum(run.mice_fcts_ns) / len(run.mice_fcts_ns)
    assert fcts["presto"] < fcts["ecmp"]


def test_fluid_transfer_byte_ledger_exact():
    """Bounded transfers complete with delivered == size, to the byte,
    and the invariant checker signs off on the run."""
    cfg = TestbedConfig(scheme="presto", seed=1, fidelity="flow",
                        validate=True)
    tb = Testbed(cfg)
    app = tb.add_mice(0, 8, size_bytes=200 * KB, interval_ns=msec(2),
                      start_ns=0)
    tb.run(msec(6))
    assert app.fcts_ns, "mice must complete"
    for transfer in tb.engine.transfers:
        if transfer.done:
            assert sum(transfer.delivered_by_flow().values()) \
                == transfer.size_bytes


def test_fluid_failover_timeline_phases():
    """The Fig 17 plateaus, computed exactly by the fluid engine:
    10G symmetric, 7.5G after the spine link dies (4 flows on 3
    spines... weighted by the controller to the same 7.5G)."""
    from repro.experiments.failure import run_failure_timeline

    tl = run_failure_timeline(
        "L1->L4", seed=1, warm_ns=msec(5), measure_ns=msec(8),
        cfg=TestbedConfig(scheme="presto", seed=1, fidelity="flow"),
    )
    phases = {k: p.mean_flow_tput_bps for k, p in tl.phases.items()}
    assert phases["symmetry"] == pytest.approx(10e9, rel=0.02)
    assert phases["failover"] == pytest.approx(7.5e9, rel=0.05)
    assert phases["weighted"] == pytest.approx(7.5e9, rel=0.05)
    assert tl.convergence.time_to_rebalance_ns is not None


# --- satellite 3: serial vs parallel byte-identical --------------------------


def _result_bytes(results):
    return [json.dumps(to_jsonable(r), indent=2, sort_keys=True)
            for r in results]


def test_fluid_serial_parallel_byte_identical():
    """The same flow-fidelity sweep through 1 worker and through a
    2-process pool produces byte-identical results: the allocator's
    sorted-order float reductions leave nothing for fork order or
    dict seeding to perturb."""
    specs = scalability_specs(
        schemes=("presto", "ecmp"), path_counts=(2, 4), seeds=(1,),
        warm_ns=msec(1), measure_ns=msec(2), with_probes=True,
        fidelity="flow",
    )
    serial = collect_results(run_jobs(specs, jobs=1))
    parallel = collect_results(run_jobs(specs, jobs=2))
    assert _result_bytes(serial) == _result_bytes(parallel)


# --- tier 2: cross-fidelity agreement + speedup floor ------------------------


@pytest.mark.tier2
def test_cross_fidelity_mice_ordering_agreement():
    """Both engines must rank the schemes identically on mice FCT
    (presto < ecmp) — the fluid engine is allowed to be absolutely
    faster (no slow-start), never differently *ordered*."""
    means = {}
    for fidelity in (None, "flow"):
        for scheme in ("presto", "ecmp"):
            run = run_synthetic_seed(
                TestbedConfig(scheme=scheme, seed=1, fidelity=fidelity),
                workload="stride",
                warm_ns=msec(4), measure_ns=msec(8),
                with_mice=True, mice_interval_ns=msec(1),
            )
            assert run.mice_fcts_ns, (fidelity, scheme)
            means[(fidelity, scheme)] = (
                sum(run.mice_fcts_ns) / len(run.mice_fcts_ns))
    assert means[(None, "presto")] < means[(None, "ecmp")]
    assert means[("flow", "presto")] < means[("flow", "ecmp")]


@pytest.mark.tier2
def test_fct_ordering_oracle_passes_at_flow_fidelity():
    from repro.validate.oracles import run_oracles

    reports = run_oracles(["fct_ordering"], seeds=(1, 2, 3), scale=0.3,
                          fidelity="flow")
    assert len(reports) == 1
    assert reports[0].passed, [c for c in reports[0].checks if not c.passed]


@pytest.mark.tier2
def test_fluid_at_least_20x_faster_on_scalability_grid():
    """The acceptance floor: the fluid engine runs the scalability
    sweep grid >= 20x faster than the packet engine (observed: several
    hundred x)."""
    grid = dict(schemes=("presto", "ecmp"), path_counts=(2, 4), seeds=(1,),
                warm_ns=msec(1), measure_ns=msec(3), with_probes=True)
    walls = {}
    for fidelity in (None, "flow"):
        specs = scalability_specs(fidelity=fidelity, **grid)
        t0 = time.perf_counter()
        outcomes = run_jobs(specs, jobs=1)
        walls[fidelity] = time.perf_counter() - t0
        assert all(o.ok for o in outcomes)
    speedup = walls[None] / walls["flow"]
    assert speedup >= 20.0, f"fluid only {speedup:.1f}x faster"
