"""Property-based tests of the weighted max-min allocator (hypothesis).

The invariants the fluid engine's correctness rests on:

1. **Capacity** — no link ever carries more than its capacity.
2. **Work conservation** — a flow's rate can only be raised by
   violating a capacity or a demand cap: every flow is pinned against
   at least one saturated link, its demand, or is unbounded (inf).
3. **Bottleneck fairness** — equal-weight flows sharing one saturated
   link and nothing else get equal rates; weighted flows get rates
   proportional to their weights.
4. **Permutation invariance** — permuting the input flow list permutes
   the output rates *bit-for-bit* (every float reduction inside runs
   in sorted order), which is what makes serial and parallel sweeps
   byte-identical.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fluid.allocator import max_min_allocation

LINKS = [f"L{i}" for i in range(6)]

#: float slack for capacity / conservation checks (the allocator works
#: in absolute rates around ~1e0-1e2 here)
EPS = 1e-9


@st.composite
def allocation_case(draw):
    """(flows, capacity): up to 8 flows over up to 6 links, some flows
    demand-capped, weights in [0.1, 8]."""
    n_links = draw(st.integers(1, len(LINKS)))
    links = LINKS[:n_links]
    capacity = {
        link: draw(st.floats(0.125, 100.0, allow_nan=False))
        for link in links
    }
    n_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(n_flows):
        path = draw(st.lists(st.sampled_from(links), min_size=1,
                             max_size=n_links, unique=True))
        weight = draw(st.floats(0.1, 8.0, allow_nan=False))
        demand = draw(st.one_of(
            st.none(), st.floats(0.0, 50.0, allow_nan=False)))
        flows.append((tuple(path), weight, demand))
    return flows, capacity


def link_loads(flows, rates):
    loads = {}
    for (links, _, _), rate in zip(flows, rates):
        for link in set(links):
            loads[link] = loads.get(link, 0.0) + rate
    return loads


@settings(max_examples=200, deadline=None)
@given(allocation_case())
def test_capacity_respected(case):
    flows, capacity = case
    rates = max_min_allocation(flows, capacity)
    assert all(r >= 0.0 for r in rates)
    for link, load in link_loads(flows, rates).items():
        assert load <= capacity[link] * (1 + 1e-9) + EPS


@settings(max_examples=200, deadline=None)
@given(allocation_case())
def test_work_conserving(case):
    """Every finite-rate flow is pinned: against its demand cap or
    against a link with (numerically) zero headroom."""
    flows, capacity = case
    rates = max_min_allocation(flows, capacity)
    loads = link_loads(flows, rates)
    for (links, _, demand), rate in zip(flows, rates):
        if math.isinf(rate):
            assert demand is None and not links
            continue
        at_demand = demand is not None and rate >= demand - EPS
        at_link = any(
            loads[link] >= capacity[link] * (1 - 1e-6) - EPS
            for link in set(links)
        )
        assert at_demand or at_link, (
            f"flow rate {rate} not pinned by demand {demand} "
            f"or any of {sorted(set(links))}")


@settings(max_examples=200, deadline=None)
@given(allocation_case())
def test_permutation_invariance_exact(case):
    """Shuffling the flow list permutes the rates without changing a
    single bit — the property serial/parallel determinism rides on."""
    flows, capacity = case
    base = max_min_allocation(flows, capacity)
    order = list(range(len(flows)))
    rng = random.Random(0xF1D0)
    for _ in range(3):
        rng.shuffle(order)
        shuffled = max_min_allocation([flows[i] for i in order], capacity)
        for pos, i in enumerate(order):
            assert shuffled[pos] == base[i]  # bitwise, not approx


def test_bottleneck_fairness_equal_weights():
    flows = [(("A",), 1.0, None) for _ in range(4)]
    rates = max_min_allocation(flows, {"A": 10.0})
    assert rates == [2.5, 2.5, 2.5, 2.5]


def test_bottleneck_fairness_weighted():
    flows = [(("A",), 1.0, None), (("A",), 3.0, None)]
    rates = max_min_allocation(flows, {"A": 8.0})
    assert rates == pytest.approx([2.0, 6.0])


def test_classic_two_bottleneck_example():
    """Bertsekas & Gallager's shape: a long flow crossing both links
    shares the tighter one; short flows soak up the leftovers."""
    flows = [
        (("A", "B"), 1.0, None),  # long flow
        (("A",), 1.0, None),
        (("B",), 1.0, None),
    ]
    rates = max_min_allocation(flows, {"A": 10.0, "B": 4.0})
    assert rates[0] == pytest.approx(2.0)   # bottlenecked on B
    assert rates[2] == pytest.approx(2.0)
    assert rates[1] == pytest.approx(8.0)   # A's leftover
    assert rates[0] + rates[1] == pytest.approx(10.0)
    assert rates[0] + rates[2] == pytest.approx(4.0)


def test_demand_caps_free_capacity_for_others():
    flows = [(("A",), 1.0, 1.0), (("A",), 1.0, None)]
    rates = max_min_allocation(flows, {"A": 10.0})
    assert rates == pytest.approx([1.0, 9.0])


def test_linkless_flows():
    """No links: bounded flows sit at their demand, unbounded at inf."""
    rates = max_min_allocation([((), 1.0, 7.0), ((), 1.0, None)], {})
    assert rates[0] == 7.0
    assert math.isinf(rates[1])


def test_zero_capacity_blackhole():
    rates = max_min_allocation(
        [(("A",), 1.0, None), (("B",), 1.0, None)],
        {"A": 0.0, "B": 5.0},
    )
    assert rates == pytest.approx([0.0, 5.0])


def test_input_validation():
    with pytest.raises(ValueError):
        max_min_allocation([(("A",), 0.0, None)], {"A": 1.0})
    with pytest.raises(ValueError):
        max_min_allocation([(("A",), 1.0, -1.0)], {"A": 1.0})
    with pytest.raises(ValueError):
        max_min_allocation([(("missing",), 1.0, None)], {"A": 1.0})
    with pytest.raises(ValueError):
        max_min_allocation([(("A",), 1.0, None)], {"A": -1.0})
    assert max_min_allocation([], {"A": 1.0}) == []
