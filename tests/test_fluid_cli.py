"""CLI surfaces of the fidelity knob and the cross-fidelity compare
tool.

Every entry point that grew ``--fidelity`` must reject an unknown
value as an argparse error (SystemExit 2) rather than deep inside a
worker process, and the packet-only gro_reordering oracle must refuse
``--fidelity flow`` when named explicitly.  ``python -m repro.fluid
compare`` validates its inputs the same way and writes a
byte-deterministic report.
"""

import json

import pytest

from repro.faults.cli import main as faults_main
from repro.fluid.cli import main as fluid_main
from repro.runner.cli import main as runner_main
from repro.validate.cli import main as validate_main


# --- satellite 6: unknown fidelity is an argparse error ----------------------


@pytest.mark.parametrize("argv", [
    ["run", "scalability", "--fidelity", "quantum"],
    ["run", "synthetic", "--fidelity", ""],
])
def test_runner_cli_rejects_unknown_fidelity(argv):
    with pytest.raises(SystemExit) as exc:
        runner_main(argv)
    assert exc.value.code == 2


def test_validate_cli_rejects_unknown_fidelity():
    with pytest.raises(SystemExit) as exc:
        validate_main(["run", "--all", "--fidelity", "quantum"])
    assert exc.value.code == 2


def test_faults_cli_rejects_unknown_fidelity():
    with pytest.raises(SystemExit) as exc:
        faults_main(["fig17", "--fidelity", "quantum"])
    assert exc.value.code == 2


def test_validate_cli_refuses_packet_only_oracle_at_flow(capsys):
    code = validate_main(["run", "gro_reordering", "--fidelity", "flow",
                          "--no-store"])
    assert code == 2
    assert "packet-only" in capsys.readouterr().err


def test_reorder_specs_refuse_flow_fidelity():
    from repro.validate.oracles import _reorder_specs

    with pytest.raises(ValueError, match="packet-only"):
        _reorder_specs([1], 1.0, "flow")


def test_run_oracles_default_set_skips_packet_only_at_flow():
    from repro.validate.oracles import ORACLES, run_oracles

    # spec-building only (scale stays tiny and seeds empty would raise,
    # so probe via the oracle registry instead of a full run)
    assert ORACLES["gro_reordering"].packet_only
    assert not ORACLES["fct_ordering"].packet_only
    assert not ORACLES["failover"].packet_only
    with pytest.raises(ValueError):
        run_oracles(["gro_reordering"], seeds=(1,), scale=0.1,
                    fidelity="flow")


# --- repro.fluid compare -----------------------------------------------------


def test_compare_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit) as exc:
        fluid_main(["compare", "--experiments", "warp"])
    assert exc.value.code == 2


def test_compare_cli_rejects_bad_seeds():
    with pytest.raises(SystemExit) as exc:
        fluid_main(["compare", "--seeds", "one,two"])
    assert exc.value.code == 2


def test_compare_report_deterministic(tmp_path):
    """Two identical compare runs write byte-identical JSON: the
    divergence report carries no wall-clock, no dict-order noise."""
    from repro.fluid.compare import compare_report, write_report

    kwargs = dict(experiments=("scalability",), seeds=(1,), scale=0.1,
                  schemes=("presto",))
    a, b = compare_report(**kwargs), compare_report(**kwargs)
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    write_report(a, str(pa)), write_report(b, str(pb))
    assert pa.read_bytes() == pb.read_bytes()

    payload = json.loads(pa.read_text())
    assert payload["schema"] == "repro.fluid.compare/1"
    cell = payload["experiments"]["scalability"]["cells"]["presto/seed1"]
    for side in ("packet", "flow"):
        assert "fct_percentiles_ms" in cell[side]
        assert cell[side]["link_utilization"]
    div = cell["divergence"]
    assert "fct_p50_rel" in div
    assert "link_util_max_abs" in div
