"""Unit tests for official GRO and Presto GRO (Algorithm 2)."""

import pytest

from repro.host.gro import OfficialGro, PrestoGro
from repro.net.packet import Packet
from repro.units import usec


def pkt(seq, size=1448, cell=1, flow=1, retx=False):
    return Packet(
        flow_id=flow,
        src_host=0,
        dst_host=1,
        dst_mac=1,
        kind="data",
        seq=seq,
        payload_len=size,
        flowcell_id=cell,
        is_retx=retx,
    )


def flush_ranges(segs):
    return sorted((s.seq, s.end_seq) for s in segs)


class TestOfficialGro:
    def test_in_order_merges_to_one_segment(self):
        gro = OfficialGro()
        for i in range(10):
            gro.merge(pkt(i * 1448), now=0)
        segs = gro.flush(0)
        assert len(segs) == 1
        assert segs[0].seq == 0
        assert segs[0].end_seq == 14480
        assert segs[0].pkt_count == 10

    def test_reordering_ejects_small_segments(self):
        """The Fig 2 scenario: interleaved packets from two paths."""
        gro = OfficialGro()
        order = [0, 1, 2, 5, 3, 6, 4, 7, 8]  # P0..P8 arrival from the paper
        for i in order:
            gro.merge(pkt(i * 1448), now=0)
        segs = gro.flush(0)
        # official GRO pushes many small segments under this pattern
        assert len(segs) >= 4

    def test_flows_do_not_merge_together(self):
        gro = OfficialGro()
        gro.merge(pkt(0, flow=1), now=0)
        gro.merge(pkt(0, flow=2), now=0)
        segs = gro.flush(0)
        assert len(segs) == 2
        assert {s.flow_id for s in segs} == {1, 2}

    def test_segment_size_cap(self):
        gro = OfficialGro(max_segment_bytes=3000)
        for i in range(4):
            gro.merge(pkt(i * 1448), now=0)
        segs = gro.flush(0)
        assert all(s.payload_len <= 3000 for s in segs)
        assert sum(s.payload_len for s in segs) == 4 * 1448

    def test_flush_clears_state(self):
        gro = OfficialGro()
        gro.merge(pkt(0), now=0)
        assert len(gro.flush(0)) == 1
        assert gro.flush(0) == []


class TestPrestoGroInOrder:
    def test_in_order_single_flowcell(self):
        gro = PrestoGro()
        for i in range(5):
            gro.merge(pkt(i * 1448, cell=1), now=0)
        segs = gro.flush(0)
        assert len(segs) == 1
        assert segs[0].pkt_count == 5

    def test_in_order_across_flowcells(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.merge(pkt(1000, size=1000, cell=2), now=0)
        segs = gro.flush(0)
        assert flush_ranges(segs) == [(0, 1000), (1000, 2000)]

    def test_does_not_merge_across_flowcells(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.merge(pkt(1000, size=1000, cell=2), now=0)
        # two segments, not one merged segment
        assert gro.held_segment_count() == 2 or len(gro.flush(0)) == 2


class TestPrestoGroReordering:
    def test_boundary_gap_held_not_pushed(self):
        """First packet of cell 2 arrives while cell 1's tail is missing:
        hold cell 2 (could be reordering)."""
        gro = PrestoGro()
        gro.merge(pkt(0, size=1448, cell=1), now=0)
        segs = gro.flush(0)
        assert flush_ranges(segs) == [(0, 1448)]
        # cell 3's data arrives before the rest of cell 2
        gro.merge(pkt(5000, size=1000, cell=3), now=100)
        segs = gro.flush(100)
        assert segs == []
        assert gro.held_segment_count() == 1

    def test_gap_fill_releases_in_order(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        # out-of-order: cell 3 first
        gro.merge(pkt(2000, size=1000, cell=3), now=10)
        assert gro.flush(10) == []
        # gap fill: cell 2 arrives
        gro.merge(pkt(1000, size=1000, cell=2), now=20)
        segs = gro.flush(20)
        assert flush_ranges(segs) == [(1000, 2000), (2000, 3000)]
        assert gro.held_segment_count() == 0

    def test_intra_flowcell_gap_is_loss_pushed_immediately(self):
        """A sequence hole inside one flowcell means loss: push now so
        TCP can recover fast (Algorithm 2 lines 3-5)."""
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        # 1000..2000 lost; 2000.. arrives with the SAME cell
        gro.merge(pkt(2000, size=1000, cell=1), now=10)
        segs = gro.flush(10)
        assert flush_ranges(segs) == [(2000, 3000)]

    def test_timeout_releases_held_segment(self):
        gro = PrestoGro(initial_ewma_ns=usec(50))
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(2000, size=1000, cell=2), now=usec(1))
        assert gro.flush(usec(1)) == []
        deadline = gro.earliest_deadline()
        assert deadline is not None
        segs = gro.flush(deadline + usec(200))
        assert flush_ranges(segs) == [(2000, 3000)]
        assert gro.timeout_fires == 1

    def test_beta_rule_extends_hold_while_merging(self):
        gro = PrestoGro(initial_ewma_ns=usec(50))
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(2000, size=1000, cell=2), now=0)
        # keep merging into the held segment right up to the alpha deadline
        t = usec(95)
        gro.merge(pkt(3000, size=1000, cell=2), now=t)
        # at alpha*ewma=100us the segment has a merge 5us ago < ewma/beta=25us
        segs = gro.flush(usec(100))
        assert segs == []

    def test_retransmission_bypasses_merging(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(5000, size=1000, cell=3), now=10)  # held
        gro.merge(pkt(1000, size=1000, cell=2, retx=True), now=20)
        segs = gro.flush(20)
        # the retransmission is pushed even though cell 3 is held
        assert (1000, 2000) in flush_ranges(segs)

    def test_stale_flowcell_pushed_immediately(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(1000, size=1000, cell=2), now=10)
        gro.flush(10)  # state advances to cell 2
        # late duplicate from cell 1
        gro.merge(pkt(500, size=500, cell=1), now=20)
        segs = gro.flush(20)
        assert flush_ranges(segs) == [(500, 1000)]

    def test_overlap_at_boundary_pushed(self):
        """Retransmitted first packet of a new flowcell (expSeq > startSeq)."""
        gro = PrestoGro()
        gro.merge(pkt(0, size=2000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(1000, size=1000, cell=2), now=10)
        segs = gro.flush(10)
        assert flush_ranges(segs) == [(1000, 2000)]

    def test_reorder_sample_updates_ewma(self):
        gro = PrestoGro(initial_ewma_ns=usec(50))
        gro.merge(pkt(0, size=1000, cell=1), now=0)
        gro.flush(0)
        gro.merge(pkt(2000, size=1000, cell=3), now=0)
        gro.flush(0)  # held
        gro.merge(pkt(1000, size=1000, cell=2), now=usec(30))
        gro.flush(usec(30))
        assert gro.reorder_samples == 1

    def test_masks_fig2_pattern_completely(self):
        """The Fig 2 arrival order: Presto GRO must deliver everything
        in order with no small-segment flood."""
        gro = PrestoGro()
        # P0-P4 are cell 1, P5-P8 are cell 2 (paths interleave arrivals)
        order = [(0, 1), (1, 1), (2, 1), (5, 2), (3, 1), (6, 2), (4, 1), (7, 2), (8, 2)]
        for i, cell in order:
            gro.merge(pkt(i * 1448, cell=cell), now=0)
        segs = gro.flush(0)
        ranges = flush_ranges(segs)
        # in-order, contiguous, exactly the two flowcell segments
        assert ranges == [(0, 5 * 1448), (5 * 1448, 9 * 1448)]

    def test_multiple_flows_independent(self):
        gro = PrestoGro()
        gro.merge(pkt(0, size=1000, cell=1, flow=1), now=0)
        gro.merge(pkt(500, size=1000, cell=5, flow=2), now=0)
        segs = gro.flush(0)
        flows = {s.flow_id for s in segs}
        assert 1 in flows

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PrestoGro(alpha=0)
        with pytest.raises(ValueError):
            PrestoGro(beta=-1)
