"""Property-based tests of the GRO invariants (hypothesis).

The two invariants Presto's correctness rests on:

1. **Conservation** — GRO never invents, drops, or duplicates bytes:
   everything merged in comes out across flushes (plus a final timeout
   flush for held segments).
2. **In-order release under pure reordering** — when packets of
   consecutive flowcells arrive in any interleaving *without loss*,
   Presto GRO pushes bytes to TCP in strictly increasing sequence
   order (reordering fully masked), given gaps resolve before the
   adaptive timeout.
"""

from hypothesis import given, settings, strategies as st

from repro.host.gro import OfficialGro, PrestoGro
from repro.net.packet import Packet
from repro.units import usec

MSS = 1448


def make_packets(n_cells, pkts_per_cell):
    """The sender's stream: cells 1..n, each of pkts_per_cell packets."""
    packets = []
    seq = 0
    for cell in range(1, n_cells + 1):
        for _ in range(pkts_per_cell):
            packets.append((seq, cell))
            seq += MSS
    return packets


def to_packet(seq, cell, flow=1):
    return Packet(flow_id=flow, src_host=0, dst_host=1, dst_mac=1,
                  kind="data", seq=seq, payload_len=MSS,
                  flowcell_id=cell)


@st.composite
def reordered_stream(draw):
    """A loss-free arrival order where reordering happens only *across*
    flowcells (same-cell packets keep FIFO order, as a single path
    guarantees), produced by a bounded-displacement shuffle."""
    n_cells = draw(st.integers(2, 5))
    per_cell = draw(st.integers(1, 6))
    packets = make_packets(n_cells, per_cell)
    # riffle: at each step pick the head of one cell's remaining queue
    queues = {}
    for seq, cell in packets:
        queues.setdefault(cell, []).append(seq)
    order = []
    live = sorted(queues)
    while live:
        # bias toward low cells so gaps usually resolve quickly
        weights = list(range(len(live), 0, -1))
        idx = draw(st.sampled_from([i for i, w in enumerate(weights)
                                    for _ in range(w)]))
        cell = live[idx]
        order.append((queues[cell].pop(0), cell))
        if not queues[cell]:
            live.remove(cell)
    return order


@given(stream=reordered_stream(), batch=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_presto_gro_conservation_and_order(stream, batch):
    gro = PrestoGro(initial_ewma_ns=usec(50))
    pushed = []
    now = 0
    for i in range(0, len(stream), batch):
        for seq, cell in stream[i:i + batch]:
            gro.merge(to_packet(seq, cell), now)
        pushed.extend(gro.flush(now))
        now += usec(10)
    # drain any held segments via the timeout path
    for _ in range(200):
        if gro.held_segment_count() == 0:
            break
        now += usec(100)
        pushed.extend(gro.flush(now))
    assert gro.held_segment_count() == 0, "GRO lost bytes in held segments"

    # conservation: exact byte coverage, no duplication
    covered = sorted((s.seq, s.end_seq) for s in pushed)
    expect = 0
    for start, end in covered:
        assert start == expect, f"gap or duplicate at {start} (expected {expect})"
        expect = end
    assert expect == len(stream) * MSS


@given(stream=reordered_stream())
@settings(max_examples=60, deadline=None)
def test_presto_gro_masks_reordering_without_timeouts(stream):
    """With all gaps resolving within one flush epoch spacing (10us),
    no timeout fires and delivery is strictly in order."""
    gro = PrestoGro(initial_ewma_ns=usec(500))
    pushed = []
    now = 0
    for seq, cell in stream:
        gro.merge(to_packet(seq, cell), now)
        pushed.extend(gro.flush(now))
        now += usec(1)
    # final packets may still be held; drain (no timeout needed when the
    # stream ended in-order, otherwise allow the timeout path)
    for _ in range(200):
        if gro.held_segment_count() == 0:
            break
        now += usec(200)
        pushed.extend(gro.flush(now))
    if gro.timeout_fires == 0:
        seqs = [s.seq for s in pushed]
        assert seqs == sorted(seqs), "out-of-order push without timeout"


@given(stream=reordered_stream(), batch=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_official_gro_conservation(stream, batch):
    """Official GRO also never loses bytes — it just pushes them in
    whatever (possibly reordered) arrangement they arrived."""
    gro = OfficialGro()
    pushed = []
    for i in range(0, len(stream), batch):
        for seq, cell in stream[i:i + batch]:
            gro.merge(to_packet(seq, cell), 0)
        pushed.extend(gro.flush(0))
    covered = sorted((s.seq, s.end_seq) for s in pushed)
    expect = 0
    for start, end in covered:
        assert start == expect
        expect = end
    assert expect == len(stream) * MSS


@given(stream=reordered_stream(), batch=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_presto_gro_pooled_packets_match_fresh(stream, batch):
    """Driving GRO with pool-recycled packets (alloc -> merge -> release,
    exactly the NIC poll loop's lifecycle) pushes the same segments as
    fresh construction: recycling is invisible to GRO."""

    def drive(make_packet, release):
        gro = PrestoGro(initial_ewma_ns=usec(50))
        pushed = []
        now = 0
        for i in range(0, len(stream), batch):
            for seq, cell in stream[i:i + batch]:
                pkt = make_packet(seq, cell)
                gro.merge(pkt, now)
                if release:
                    pkt.release()
            pushed.extend(gro.flush(now))
            now += usec(10)
        for _ in range(200):
            if gro.held_segment_count() == 0:
                break
            now += usec(100)
            pushed.extend(gro.flush(now))
        return [(s.seq, s.end_seq, s.flow_id, s.flowcell_id, s.pkt_count)
                for s in pushed]

    fresh = drive(to_packet, release=False)
    Packet._pool.clear()
    pooled = drive(
        lambda seq, cell: Packet.alloc(
            flow_id=1, src_host=0, dst_host=1, dst_mac=1, kind="data",
            seq=seq, payload_len=MSS, flowcell_id=cell),
        release=True,
    )
    assert pooled == fresh


@given(
    drop=st.sets(st.integers(0, 19), max_size=6),
    stream=st.permutations(list(range(20))),
)
@settings(max_examples=40, deadline=None)
def test_presto_gro_never_duplicates_under_loss(drop, stream):
    """Arbitrary loss + arbitrary arrival order (stressing beyond the
    single-path FIFO assumption): pushed byte ranges never overlap."""
    gro = PrestoGro(initial_ewma_ns=usec(20))
    packets = make_packets(4, 5)  # 20 packets, cells of 5
    pushed = []
    now = 0
    for idx in stream:
        if idx in drop:
            continue
        seq, cell = packets[idx]
        gro.merge(to_packet(seq, cell), now)
        pushed.extend(gro.flush(now))
        now += usec(5)
    for _ in range(200):
        if gro.held_segment_count() == 0:
            break
        now += usec(100)
        pushed.extend(gro.flush(now))
    covered = sorted((s.seq, s.end_seq) for s in pushed)
    for (s1, e1), (s2, e2) in zip(covered, covered[1:]):
        assert e1 <= s2, "overlapping segments pushed"
    total = sum(e - s for s, e in covered)
    assert total == (20 - len(drop)) * MSS
