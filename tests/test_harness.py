"""Unit tests for the experiment harness (Testbed construction)."""

import pytest

from repro.experiments.harness import SCHEMES, Testbed, TestbedConfig, format_table
from repro.host.gro import OfficialGro, PrestoGro
from repro.lb.ecmp import EcmpLb
from repro.lb.flowlet import FlowletLb
from repro.lb.perpacket import PerPacketLb
from repro.lb.presto_ecmp import PrestoEcmpLb
from repro.net.switch import HASH_FLOW, HASH_FLOWCELL
from repro.presto.vswitch import PrestoLb
from repro.units import KB, msec, usec


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        Testbed(TestbedConfig(scheme="magic"))


def test_all_schemes_construct():
    for scheme in SCHEMES:
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
        assert len(tb.hosts) == 2


def test_scheme_lb_types():
    expected = {
        "presto": PrestoLb,
        "presto_ecmp": PrestoEcmpLb,
        "ecmp": EcmpLb,
        "mptcp": EcmpLb,
        "flowlet100us": FlowletLb,
        "flowlet500us": FlowletLb,
        "perpacket": PerPacketLb,
    }
    for scheme, lb_type in expected.items():
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
        assert type(tb.hosts[0].lb) is lb_type


def test_scheme_default_gro():
    presto = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
    assert isinstance(presto.hosts[0].gro, PrestoGro)
    ecmp = Testbed(TestbedConfig(scheme="ecmp", n_spines=2, n_leaves=2,
                                 hosts_per_leaf=1))
    assert isinstance(ecmp.hosts[0].gro, OfficialGro)


def test_gro_override():
    tb = Testbed(TestbedConfig(scheme="presto", gro_override="official",
                               n_spines=2, n_leaves=2, hosts_per_leaf=1))
    assert isinstance(tb.hosts[0].gro, OfficialGro)


def test_flowlet_gap_configured():
    tb100 = Testbed(TestbedConfig(scheme="flowlet100us", n_spines=2,
                                  n_leaves=2, hosts_per_leaf=1))
    tb500 = Testbed(TestbedConfig(scheme="flowlet500us", n_spines=2,
                                  n_leaves=2, hosts_per_leaf=1))
    assert tb100.hosts[0].lb.gap_ns == usec(100)
    assert tb500.hosts[0].lb.gap_ns == usec(500)


def test_optimal_is_single_switch():
    tb = Testbed(TestbedConfig(scheme="optimal"))
    assert len(tb.topo.switches) == 1
    assert len(tb.hosts) == 16


def test_presto_ecmp_underlay_hash_mode():
    tb = Testbed(TestbedConfig(scheme="presto_ecmp", n_spines=2, n_leaves=2,
                               hosts_per_leaf=1))
    assert tb.topo.leaves[0].ecmp_default.mode == HASH_FLOWCELL
    tb2 = Testbed(TestbedConfig(scheme="ecmp", n_spines=2, n_leaves=2,
                                hosts_per_leaf=1))
    assert tb2.topo.leaves[0].ecmp_default.mode == HASH_FLOW


def test_presto_schedules_pushed():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=4, n_leaves=2,
                               hosts_per_leaf=2))
    labels = tb.hosts[0].lb.labels_for(2)  # cross-leaf destination
    assert len(labels) == 4


def test_ablation_knobs_propagate():
    tb = Testbed(TestbedConfig(scheme="presto", flowcell_bytes=16 * KB,
                               presto_mode="random", gro_adaptive=False,
                               n_spines=2, n_leaves=2, hosts_per_leaf=1))
    assert tb.hosts[0].lb.tagger.threshold == 16 * KB
    assert tb.hosts[0].lb.mode == "random"
    assert tb.hosts[0].gro.adaptive is False


def test_experiment_tcp_rto_scaled():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                               hosts_per_leaf=1))
    assert tb.cfg.tcp.min_rto_ns == msec(20)


def test_format_table():
    text = format_table(["a", "bb"], [[1, 2], ["x", "yy"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert set(lines[1]) <= {"-", "+"}


def test_reproducibility_same_seed_same_result():
    def run():
        tb = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                                   hosts_per_leaf=2, seed=9))
        app = tb.add_elephant(0, 2)
        tb.run(msec(5))
        return app.delivered_bytes()

    assert run() == run()


def test_different_seed_different_hash_choices():
    def labels(seed):
        tb = Testbed(TestbedConfig(scheme="ecmp", seed=seed))
        app = tb.add_elephant(0, 8)
        tb.run(msec(1))
        seg_macs = set()
        sender = tb.hosts[0].senders[app.flow_id]
        return tb.hosts[0].lb._choice.get(app.flow_id)

    picks = {labels(s) for s in range(8)}
    assert len(picks) > 1
