"""Unit tests for the experiment harness (Testbed construction)."""

import pytest

from repro.experiments.harness import SCHEMES, Testbed, TestbedConfig, format_table
from repro.host.gro import OfficialGro, PrestoGro
from repro.lb.ecmp import EcmpLb
from repro.lb.flowlet import FlowletLb
from repro.lb.perpacket import PerPacketLb
from repro.lb.presto_ecmp import PrestoEcmpLb
from repro.net.switch import HASH_FLOW, HASH_FLOWCELL
from repro.presto.vswitch import PrestoLb
from repro.units import KB, msec, usec


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        Testbed(TestbedConfig(scheme="magic"))


def test_all_schemes_construct():
    for scheme in SCHEMES:
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
        assert len(tb.hosts) == 2


def test_scheme_lb_types():
    expected = {
        "presto": PrestoLb,
        "presto_ecmp": PrestoEcmpLb,
        "ecmp": EcmpLb,
        "mptcp": EcmpLb,
        "flowlet100us": FlowletLb,
        "flowlet500us": FlowletLb,
        "perpacket": PerPacketLb,
    }
    for scheme, lb_type in expected.items():
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
        assert type(tb.hosts[0].lb) is lb_type


def test_scheme_default_gro():
    presto = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                                   hosts_per_leaf=1))
    assert isinstance(presto.hosts[0].gro, PrestoGro)
    ecmp = Testbed(TestbedConfig(scheme="ecmp", n_spines=2, n_leaves=2,
                                 hosts_per_leaf=1))
    assert isinstance(ecmp.hosts[0].gro, OfficialGro)


def test_gro_override():
    tb = Testbed(TestbedConfig(scheme="presto", gro_override="official",
                               n_spines=2, n_leaves=2, hosts_per_leaf=1))
    assert isinstance(tb.hosts[0].gro, OfficialGro)


def test_flowlet_gap_configured():
    tb100 = Testbed(TestbedConfig(scheme="flowlet100us", n_spines=2,
                                  n_leaves=2, hosts_per_leaf=1))
    tb500 = Testbed(TestbedConfig(scheme="flowlet500us", n_spines=2,
                                  n_leaves=2, hosts_per_leaf=1))
    assert tb100.hosts[0].lb.gap_ns == usec(100)
    assert tb500.hosts[0].lb.gap_ns == usec(500)


def test_optimal_is_single_switch():
    tb = Testbed(TestbedConfig(scheme="optimal"))
    assert len(tb.topo.switches) == 1
    assert len(tb.hosts) == 16


def test_presto_ecmp_underlay_hash_mode():
    tb = Testbed(TestbedConfig(scheme="presto_ecmp", n_spines=2, n_leaves=2,
                               hosts_per_leaf=1))
    assert tb.topo.leaves[0].ecmp_default.mode == HASH_FLOWCELL
    tb2 = Testbed(TestbedConfig(scheme="ecmp", n_spines=2, n_leaves=2,
                                hosts_per_leaf=1))
    assert tb2.topo.leaves[0].ecmp_default.mode == HASH_FLOW


def test_presto_schedules_pushed():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=4, n_leaves=2,
                               hosts_per_leaf=2))
    labels = tb.hosts[0].lb.labels_for(2)  # cross-leaf destination
    assert len(labels) == 4


def test_ablation_knobs_propagate():
    tb = Testbed(TestbedConfig(scheme="presto", flowcell_bytes=16 * KB,
                               presto_mode="random", gro_adaptive=False,
                               n_spines=2, n_leaves=2, hosts_per_leaf=1))
    assert tb.hosts[0].lb.tagger.threshold == 16 * KB
    assert tb.hosts[0].lb.mode == "random"
    assert tb.hosts[0].gro.adaptive is False


def test_experiment_tcp_rto_scaled():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                               hosts_per_leaf=1))
    assert tb.cfg.tcp.min_rto_ns == msec(20)


def test_format_table():
    text = format_table(["a", "bb"], [[1, 2], ["x", "yy"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert set(lines[1]) <= {"-", "+"}


def test_reproducibility_same_seed_same_result():
    def run():
        tb = Testbed(TestbedConfig(scheme="presto", n_spines=2, n_leaves=2,
                                   hosts_per_leaf=2, seed=9))
        app = tb.add_elephant(0, 2)
        tb.run(msec(5))
        return app.delivered_bytes()

    assert run() == run()


def test_different_seed_different_hash_choices():
    def labels(seed):
        tb = Testbed(TestbedConfig(scheme="ecmp", seed=seed))
        app = tb.add_elephant(0, 8)
        tb.run(msec(1))
        seg_macs = set()
        sender = tb.hosts[0].senders[app.flow_id]
        return tb.hosts[0].lb._choice.get(app.flow_id)

    picks = {labels(s) for s in range(8)}
    assert len(picks) > 1


# --- config validation (the search can generate nonsense knobs) --------------


class TestConfigValidation:
    def test_flowcell_bytes_must_be_positive(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="flowcell_bytes"):
                TestbedConfig(flowcell_bytes=bad)

    def test_gro_alpha_positive_and_finite(self):
        for bad in (0.0, -2.0, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="gro_alpha"):
                TestbedConfig(gro_alpha=bad)
        TestbedConfig(gro_alpha=2.0)  # the paper's own value passes

    def test_gro_ewma_gain_in_unit_interval(self):
        for bad in (0.0, -0.5, 1.0001, 2.0):
            with pytest.raises(ValueError, match="gro_ewma_gain"):
                TestbedConfig(gro_ewma_gain=bad)
        TestbedConfig(gro_ewma_gain=1.0)  # closed upper end
        TestbedConfig(gro_ewma_gain=0.125)

    def test_delays_must_be_nonnegative(self):
        for name in ("failover_latency_ns", "ctrl_detection_delay_ns",
                     "ctrl_reaction_delay_ns"):
            with pytest.raises(ValueError, match=name):
                TestbedConfig(**{name: -1})
            TestbedConfig(**{name: 0})

    def test_zoo_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="zoo_threshold_bytes"):
            TestbedConfig(zoo_threshold_bytes=0)
        TestbedConfig(zoo_threshold_bytes=100 * KB)

    def test_gro_ewma_gain_reaches_the_gro(self):
        tb = Testbed(TestbedConfig(scheme="presto", gro_ewma_gain=0.5))
        assert tb.hosts[0].gro.ewma_gain == 0.5

    def test_zoo_threshold_reaches_the_zoo_lbs(self):
        tb = Testbed(TestbedConfig(scheme="diffflow",
                                   zoo_threshold_bytes=200 * KB))
        assert tb.hosts[0].lb.threshold == 200 * KB
        tb = Testbed(TestbedConfig(scheme="elephant_iso",
                                   zoo_threshold_bytes=512 * KB))
        assert tb.hosts[0].lb.threshold == 512 * KB

    def test_validation_does_not_perturb_store_hashes(self):
        # the new tri-state knobs serialize as *omitted* when unset, so
        # every pre-existing store record keeps its content hash (the
        # canonical pin lives in test_fabrics.py; this guards the
        # serialized field set directly)
        from repro.runner.serialize import to_jsonable

        fields = to_jsonable(TestbedConfig())["fields"]
        assert "gro_ewma_gain" not in fields
        assert "zoo_threshold_bytes" not in fields
