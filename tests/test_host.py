"""Unit tests for the Host wiring (passive open, ACK routing, taps)."""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.units import KB, msec


def mini():
    return Testbed(TestbedConfig(scheme="optimal", n_leaves=1,
                                 hosts_per_leaf=2, model_cpu=False))


def test_passive_open_creates_receiver():
    tb = mini()
    app = tb.add_elephant(0, 1, size_bytes=64 * KB)
    tb.run(msec(10))
    assert app.flow_id in tb.hosts[1].receivers
    assert tb.hosts[1].receivers[app.flow_id].peer_host == 0


def test_ack_routed_to_sender():
    tb = mini()
    app = tb.add_elephant(0, 1, size_bytes=64 * KB)
    tb.run(msec(10))
    sender = tb.hosts[0].senders[app.flow_id]
    assert sender.snd_una == 64 * KB  # ACKs made it back


def test_duplicate_flow_id_rejected():
    tb = mini()
    tb.hosts[0].open_sender(5, 1)
    with pytest.raises(ValueError):
        tb.hosts[0].open_sender(5, 1)


def test_expect_flow_callback():
    tb = mini()
    deliveries = []
    flow_id = tb.flow_ids.next()
    tb.hosts[1].expect_flow(flow_id, deliveries.append)
    sender = tb.hosts[0].open_sender(flow_id, 1)
    sender.write(10 * KB)
    tb.run(msec(10))
    assert deliveries
    assert deliveries[-1] == 10 * KB


def test_expect_flow_after_data_started():
    """Registering the callback late attaches it to the live receiver."""
    tb = mini()
    flow_id = tb.flow_ids.next()
    sender = tb.hosts[0].open_sender(flow_id, 1)
    sender.set_unbounded()
    tb.run(msec(1))
    seen = []
    tb.hosts[1].expect_flow(flow_id, seen.append)
    tb.run(msec(2))
    assert seen


def test_segment_tap_sees_data():
    tb = mini()
    taps = []
    tb.hosts[1].segment_tap = taps.append
    tb.add_elephant(0, 1, size_bytes=64 * KB)
    tb.run(msec(10))
    assert taps
    assert sum(s.payload_len for s in taps) >= 64 * KB


def test_tx_tap_sees_labelled_segments():
    tb = mini()
    taps = []
    tb.hosts[0].tx_tap = taps.append
    tb.add_elephant(0, 1, size_bytes=64 * KB)
    tb.run(msec(10))
    data = [s for s in taps if s.kind == "data"]
    assert data
    assert all(s.dst_mac != 0 or s.dst_host == 0 for s in data)
