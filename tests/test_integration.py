"""End-to-end integration tests: the paper's headline behaviours at
reduced scale (kept fast enough for the unit-test suite)."""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.metrics.collectors import LossAccountant, ThroughputMeter
from repro.metrics.reordering import ReorderTracker
from repro.metrics.stats import jain_fairness
from repro.units import KB, msec, usec


def test_presto_tracks_optimal_on_two_paths():
    rates = {}
    for scheme in ("presto", "optimal"):
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=2, seed=1))
        apps = [tb.add_elephant(0, 2), tb.add_elephant(1, 3, start_ns=usec(100))]
        tb.run(msec(15))
        rates[scheme] = sum(a.delivered_bytes() for a in apps) * 8 / 15e-3 / 1e9
    assert rates["presto"] > 0.93 * rates["optimal"]


def test_presto_masks_reordering_end_to_end():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=4, n_leaves=2,
                               hosts_per_leaf=1, seed=2))
    tracker = ReorderTracker()
    tb.hosts[1].segment_tap = tracker.observe
    tb.add_elephant(0, 1)
    tb.run(msec(15))
    counts = tracker.out_of_order_counts()
    assert counts, "no flowcells observed"
    frac_zero = sum(1 for c in counts if c == 0) / len(counts)
    assert frac_zero > 0.99


def test_presto_spreads_flowcells_over_all_spines():
    tb = Testbed(TestbedConfig(scheme="presto", n_spines=4, n_leaves=2,
                               hosts_per_leaf=1, seed=3))
    tb.add_elephant(0, 1)
    tb.run(msec(10))
    # measure the data direction only (spine -> L2); the reverse ACK
    # stream pins one spine and would skew rx counts
    l2 = tb.topo.switches["L2"]
    down_bytes = [tb.topo.port_between(s, l2).tx_bytes for s in tb.topo.spines]
    assert min(down_bytes) > 0
    # round robin: spine loads within a few percent of each other
    assert max(down_bytes) < 1.1 * min(down_bytes)


def test_ecmp_flow_stays_on_one_spine():
    tb = Testbed(TestbedConfig(scheme="ecmp", n_spines=4, n_leaves=2,
                               hosts_per_leaf=1, seed=3))
    tb.add_elephant(0, 1)
    tb.run(msec(5))
    # only the hashed spine carries data toward the receiver's leaf
    l2 = tb.topo.switches["L2"]
    active = [
        s for s in tb.topo.spines
        if tb.topo.port_between(s, l2).tx_bytes > 100_000
    ]
    assert len(active) == 1


def test_presto_no_loss_on_symmetric_stride():
    tb = Testbed(TestbedConfig(scheme="presto", seed=4))
    from repro.workloads.synthetic import stride_pairs

    loss = LossAccountant(tb.topo, tb.hosts)
    for src, dst in stride_pairs(16, 8):
        tb.add_elephant(src, dst, start_ns=tb.streams.stream("s").randrange(usec(300)))
    loss.mark_start()
    tb.run(msec(15))
    assert loss.loss_rate() < 1e-3
    assert tb.topo.total_switch_drops() == 0


def test_failover_keeps_network_connected():
    cfg = TestbedConfig(scheme="presto", seed=5)
    tb = Testbed(cfg)
    tb.controller.enable_fast_failover(usec(100))
    link = next(l for l in tb.topo.links if l.name == "L1--S1")
    link.set_down()
    app = tb.add_elephant(0, 12)   # L1 -> L4 through the degraded fabric
    rev = tb.add_elephant(12, 0)   # and the blackhole-prone reverse
    tb.run(msec(30))
    assert app.delivered_bytes() > 1_000_000
    assert rev.delivered_bytes() > 1_000_000


def test_weighted_stage_rebalances():
    cfg = TestbedConfig(scheme="presto", seed=6)
    tb = Testbed(cfg)
    link = next(l for l in tb.topo.links if l.name == "L1--S1")
    link.set_down()
    tb.controller.on_link_failure(link)
    apps = [tb.add_elephant(i, 12 + i, start_ns=i * usec(100)) for i in range(4)]
    tb.run(msec(25))
    rates = [a.delivered_bytes() * 8 / 25e-3 / 1e9 for a in apps]
    assert min(rates) > 2.0            # nobody starved
    assert jain_fairness(rates) > 0.9  # evenly spread over 3 trees
    # and tree 0 (via S1) is not used by L1 senders
    s1 = tb.topo.switches["S1"]
    l1_up = tb.topo.port_between(tb.topo.switches["L1"], s1)
    assert l1_up.tx_pkts == 0


def test_mice_tail_presto_beats_ecmp():
    tails = {}
    for scheme in ("presto", "ecmp"):
        tb = Testbed(TestbedConfig(scheme=scheme, seed=7))
        from repro.workloads.synthetic import stride_pairs

        rng = tb.streams.stream("starts")
        for src, dst in stride_pairs(16, 8):
            tb.add_elephant(src, dst, start_ns=rng.randrange(usec(300)))
        mice = [tb.add_mice(src, dst, size_bytes=50 * KB,
                            interval_ns=msec(3), start_ns=msec(5))
                for src, dst in stride_pairs(16, 8)[::4]]
        tb.run(msec(40))
        fcts = sorted(f for m in mice for f in m.fcts_ns)
        assert fcts, f"no mice completed under {scheme}"
        tails[scheme] = fcts[int(len(fcts) * 0.9):]
    # compare upper tails (p90+ mean)
    presto_tail = sum(tails["presto"]) / len(tails["presto"])
    ecmp_tail = sum(tails["ecmp"]) / len(tails["ecmp"])
    assert presto_tail < ecmp_tail


def test_perpacket_spraying_floods_receiver():
    """The paper's argument against per-packet schemes: once competing
    traffic skews the per-path queues, per-packet spraying reorders
    massively, official GRO floods TCP with small segments and
    throughput collapses.  (Perfectly symmetric load keeps RR spraying
    accidentally in-order — DRB's assumption — so the competitor here is
    pinned to one path to create the skew real fabrics have.)"""
    from repro.net.addresses import shadow_mac

    rates = {}
    for scheme in ("perpacket", "presto"):
        tb = Testbed(TestbedConfig(scheme=scheme, n_spines=2, n_leaves=2,
                                   hosts_per_leaf=2, seed=8))
        app = tb.add_elephant(0, 2)
        # competitor rides tree 0 only: path queues become unequal
        tb.hosts[1].lb.set_schedule(3, [shadow_mac(0, 3)])
        tb.add_elephant(1, 3, start_ns=usec(100))
        tb.run(msec(15))
        rates[scheme] = app.delivered_bytes() * 8 / 15e-3 / 1e9
    assert rates["perpacket"] < 0.85 * rates["presto"]
