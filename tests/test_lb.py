"""Unit tests for the edge load-balancer schemes."""

import random

import pytest

from repro.lb.base import LoadBalancer
from repro.lb.ecmp import EcmpLb
from repro.lb.flowlet import FlowletLb
from repro.lb.perpacket import PerPacketLb
from repro.lb.presto_ecmp import PrestoEcmpLb
from repro.net.addresses import host_mac
from repro.net.packet import Packet, Segment
from repro.presto.vswitch import PrestoLb
from repro.sim.engine import Simulator
from repro.units import KB, usec

LABELS = [1001, 1002, 1003, 1004]


def seg(flow=1, size=10 * KB, dst=3):
    return Segment(flow_id=flow, src_host=0, dst_host=dst,
                   seq=0, end_seq=size)


def test_base_defaults_to_real_mac():
    lb = LoadBalancer(0)
    s = seg(dst=5)
    lb.select(s)
    assert s.dst_mac == host_mac(5)


def test_base_schedule_validation():
    lb = LoadBalancer(0)
    with pytest.raises(ValueError):
        lb.set_schedule(3, [])


class TestEcmp:
    def test_sticky_per_flow(self):
        lb = EcmpLb(0, random.Random(1))
        lb.set_schedule(3, LABELS)
        macs = set()
        for _ in range(20):
            s = seg(flow=7)
            lb.select(s)
            macs.add(s.dst_mac)
        assert len(macs) == 1

    def test_different_flows_spread(self):
        lb = EcmpLb(0, random.Random(1))
        lb.set_schedule(3, LABELS)
        macs = set()
        for flow in range(100):
            s = seg(flow=flow)
            lb.select(s)
            macs.add(s.dst_mac)
        assert macs == set(LABELS)


class TestFlowlet:
    def test_no_gap_no_switch(self):
        sim = Simulator()
        lb = FlowletLb(0, sim, gap_ns=usec(500), rng=random.Random(1))
        lb.set_schedule(3, LABELS)
        macs = set()
        for _ in range(10):
            s = seg()
            lb.select(s)
            macs.add(s.dst_mac)
        assert len(macs) == 1

    def test_gap_switches_path_and_bumps_id(self):
        sim = Simulator()
        lb = FlowletLb(0, sim, gap_ns=usec(500), rng=random.Random(1))
        lb.set_schedule(3, LABELS)
        s1 = seg()
        lb.select(s1)
        sim.schedule(usec(600), lambda: None)
        sim.run()
        s2 = seg()
        lb.select(s2)
        assert s2.dst_mac != s1.dst_mac
        assert s2.flowcell_id == s1.flowcell_id + 1

    def test_bad_gap_rejected(self):
        with pytest.raises(ValueError):
            FlowletLb(0, Simulator(), gap_ns=0)


class TestPerPacket:
    def test_labeler_rotates_every_packet(self):
        lb = PerPacketLb(0, random.Random(1))
        lb.set_schedule(3, LABELS)
        label = lb.packet_labeler()
        macs = []
        for i in range(8):
            p = Packet(flow_id=1, src_host=0, dst_host=3, dst_mac=0,
                       kind="data", seq=i * 1448, payload_len=1448,
                       flowcell_id=0)
            label(p)
            macs.append(p.dst_mac)
        # consecutive packets never repeat a path
        assert all(a != b for a, b in zip(macs, macs[1:]))


class TestPrestoEcmp:
    def test_keeps_real_mac_but_stamps_cells(self):
        lb = PrestoEcmpLb(0, random.Random(1))
        lb.set_schedule(3, LABELS)
        s1 = seg(size=64 * KB)
        lb.select(s1)
        s2 = seg(size=64 * KB)
        lb.select(s2)
        assert s1.dst_mac == host_mac(3)
        assert s2.flowcell_id == s1.flowcell_id + 1


class TestPrestoModes:
    def test_rr_walks_schedule_in_order(self):
        lb = PrestoLb(0, random.Random(1))
        lb.set_schedule(3, LABELS)
        macs = []
        for _ in range(8):
            s = seg(size=64 * KB)
            lb.select(s)
            macs.append(s.dst_mac)
        # strict rotation: every window of 4 covers all labels
        assert set(macs[:4]) == set(LABELS)
        assert macs[:4] == macs[4:8]

    def test_random_mode_stable_within_cell(self):
        lb = PrestoLb(0, random.Random(1), mode="random")
        lb.set_schedule(3, LABELS)
        s1 = seg(size=10 * KB)
        s2 = seg(size=10 * KB)
        lb.select(s1)
        lb.select(s2)
        assert s1.flowcell_id == s2.flowcell_id
        assert s1.dst_mac == s2.dst_mac  # same cell -> same label

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            PrestoLb(0, mode="zigzag")

    def test_weighted_schedule_respected(self):
        """Duplicated labels get proportionally more flowcells."""
        lb = PrestoLb(0, random.Random(1))
        lb.set_schedule(3, [1001, 1002, 1001, 1003])  # 1001 weighted 2x
        from collections import Counter
        counts = Counter()
        for _ in range(40):
            s = seg(size=64 * KB)
            lb.select(s)
            counts[s.dst_mac] += 1
        assert counts[1001] == 2 * counts[1002] == 2 * counts[1003]


class TestSchemeRegistry:
    def test_duplicate_name_error_names_first_registrant(self):
        """A collision must say which module owns the name, so the
        loser of the race knows what to rename."""
        from repro.experiments.schemes import Scheme, register

        with pytest.raises(ValueError) as exc:
            register(Scheme(name="diffflow", make_lb=lambda *a: None))
        msg = str(exc.value)
        assert "diffflow" in msg
        assert "repro.experiments.schemes" in msg
        assert "pick another name" in msg

    def test_zoo_schemes_registered(self):
        from repro.experiments.schemes import scheme_names

        names = scheme_names()
        for scheme in ("diffflow", "repflow", "elephant_iso"):
            assert scheme in names

    def test_unknown_transport_rejected(self):
        from repro.experiments.schemes import Scheme, register

        with pytest.raises(ValueError, match="transport"):
            register(Scheme(name="zoo-test-bogus", make_lb=lambda *a: None,
                            transport="udp"))
