"""Unit tests for links and ports (serialization, delivery, failure)."""

import pytest

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.engine import Simulator
from repro.units import HEADER_BYTES, gbps, serialization_time_ns, usec


class SinkNode:
    def __init__(self):
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append(pkt)


def pkt(size=1000, flow=1):
    return Packet(flow_id=flow, src_host=0, dst_host=1, dst_mac=1,
                  kind="data", seq=0, payload_len=size, flowcell_id=1)


def make_port(sim, rate=gbps(10), delay=usec(1), buffer_bytes=100_000):
    link = Link("test", rate, delay)
    port = Port(sim, "a->b", link, buffer_bytes)
    sink = SinkNode()
    port.peer = sink
    return port, sink, link


def test_delivery_after_serialization_plus_propagation():
    sim = Simulator()
    port, sink, link = make_port(sim)
    p = pkt(1000)
    port.send(p)
    sim.run()
    expected = serialization_time_ns(p.wire_size, link.rate_bps) + link.prop_delay_ns
    assert sink.received == [p]
    assert sim.now == expected


def test_back_to_back_pipelining():
    """Transmitter is released at serialization end; packets arrive
    spaced by serialization time, each shifted by the propagation."""
    sim = Simulator()
    port, sink, link = make_port(sim)
    times = []
    sink.receive = lambda p, _: times.append(sim.now)
    port.send(pkt(1000))
    port.send(pkt(1000))
    sim.run()
    ser = serialization_time_ns(1000 + HEADER_BYTES, link.rate_bps)
    assert times[1] - times[0] == ser


def test_hop_counter_increments():
    sim = Simulator()
    port, sink, _ = make_port(sim)
    p = pkt()
    port.send(p)
    sim.run()
    assert p.hops == 1


def test_link_down_drops_sends():
    sim = Simulator()
    port, sink, link = make_port(sim)
    link.set_down()
    assert not port.send(pkt())
    assert port.queue.dropped_pkts == 1
    sim.run()
    assert sink.received == []


def test_link_down_flushes_queue():
    sim = Simulator()
    port, sink, link = make_port(sim)
    for _ in range(5):
        port.send(pkt())
    link.set_down()
    sim.run()
    # at most the packet already on the wire survives
    assert len(sink.received) <= 1


def test_link_state_callbacks():
    link = Link("cb")
    events = []
    link.on_state_change.append(lambda l: events.append(l.up))
    link.set_down()
    link.set_down()  # idempotent
    link.set_up()
    assert events == [False, True]


def test_bad_link_params_rejected():
    with pytest.raises(ValueError):
        Link("x", rate_bps=0)
    with pytest.raises(ValueError):
        Link("x", prop_delay_ns=-1)


def test_tx_jitter_bounds_and_determinism():
    sim1 = Simulator()
    port1, sink1, _ = make_port(sim1)
    port1.tx_jitter_ns = 32
    times1 = []
    sink1.receive = lambda p, _: times1.append(sim1.now)
    for _ in range(20):
        port1.send(pkt())
    sim1.run()

    sim2 = Simulator()
    port2, sink2, _ = make_port(sim2)
    port2.tx_jitter_ns = 32
    times2 = []
    sink2.receive = lambda p, _: times2.append(sim2.now)
    for _ in range(20):
        port2.send(pkt())
    sim2.run()
    assert times1 == times2  # same port name -> same jitter stream
    gaps = [b - a for a, b in zip(times1, times1[1:])]
    base = min(gaps)
    assert all(base <= g <= base + 32 + 32 for g in gaps)


def test_on_dequeue_hook():
    sim = Simulator()
    port, sink, _ = make_port(sim)
    seen = []
    port.on_dequeue = lambda p: seen.append(p.flow_id)
    port.send(pkt(flow=9))
    sim.run()
    assert seen == [9]


def test_link_recovery_resumes_delivery():
    """Regression: set_up must mirror set_down — notify ports *and*
    observers — so traffic flows again after a repair."""
    sim = Simulator()
    port, sink, link = make_port(sim)
    transitions = []
    link.on_state_change.append(lambda l: transitions.append(l.up))
    link.set_down()
    assert not port.send(pkt())
    link.set_up()
    assert port.send(pkt())
    sim.run()
    assert len(sink.received) == 1
    assert transitions == [False, True]


def test_link_state_changes_are_idempotent():
    sim = Simulator()
    _, _, link = make_port(sim)
    transitions = []
    link.on_state_change.append(lambda l: transitions.append(l.up))
    link.set_up()       # already up: no notification
    link.set_down()
    link.set_down()     # already down: no notification
    link.set_up()
    assert transitions == [False, True]


def test_link_down_loses_frame_on_the_wire():
    """The frame mid-serialization when the cable is cut is destroyed
    and counted as a wire drop, not silently lost."""
    sim = Simulator()
    port, sink, link = make_port(sim)
    p = pkt(1000)
    port.send(p)
    sim.run(until=100)  # mid-serialization (ser time is ~800ns at 10G)
    link.set_down()
    sim.run()
    assert sink.received == []
    assert port.wire_drop_pkts == 1
    assert port.wire_drop_bytes == p.wire_size


def test_set_rate_applies_to_later_packets():
    sim = Simulator()
    port, sink, link = make_port(sim)
    times = []
    sink.receive = lambda p, _: times.append(sim.now)
    port.send(pkt(1000))
    sim.run()
    link.set_rate(link.rate_bps / 2)
    port.send(pkt(1000))
    sim.run()
    ser_fast = serialization_time_ns(1000 + HEADER_BYTES, gbps(10))
    ser_slow = serialization_time_ns(1000 + HEADER_BYTES, gbps(5))
    assert times[0] == ser_fast + link.prop_delay_ns
    # sent from idle at times[0]: serialization (at the new rate) + prop
    assert times[1] - times[0] == ser_slow + link.prop_delay_ns
