"""Unit + property tests for metrics (stats, collectors, reordering)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.reordering import ReorderTracker
from repro.metrics.stats import cdf_points, ewma, jain_fairness, mean, percentile
from repro.net.packet import Segment


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_endpoints(self):
        data = [10, 20, 30]
        assert percentile(data, 0) == 10
        assert percentile(data, 100) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100),
           st.floats(0, 100))
    def test_within_range(self, data, pct):
        value = percentile(data, pct)
        tol = 1e-6 * max(1.0, max(data))  # interpolation float slack
        assert min(data) - tol <= value <= max(data) + tol

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=50))
    def test_monotone_in_pct(self, data):
        assert percentile(data, 25) <= percentile(data, 75)


class TestJain:
    def test_perfect(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_one(self):
        assert jain_fairness([]) == 1.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=32))
    def test_bounds(self, rates):
        index = jain_fairness(rates)
        assert 0 <= index <= 1.0 + 1e-9


def test_mean_empty():
    assert mean([]) == 0.0


def test_cdf_points():
    pts = cdf_points([3, 1, 2])
    assert pts == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]


def test_ewma():
    assert ewma([10], 0.5) == 10
    assert ewma([10, 20], 0.5) == 15
    with pytest.raises(ValueError):
        ewma([], 0.5)
    with pytest.raises(ValueError):
        ewma([1], 0)


def seg(flow, cell, size=1000):
    return Segment(flow_id=flow, src_host=0, dst_host=1,
                   seq=0, end_seq=size, flowcell_id=cell)


class TestReorderTracker:
    def test_in_order_cells_have_zero_counts(self):
        tracker = ReorderTracker()
        for cell in (1, 1, 2, 2, 3):
            tracker.observe(seg(1, cell))
        assert tracker.out_of_order_counts() == [0, 0, 0]

    def test_interleaving_counted(self):
        tracker = ReorderTracker()
        # cell 1's segments sandwich two cell-2 segments
        for cell in (1, 2, 2, 1):
            tracker.observe(seg(1, cell))
        counts = dict(zip([1, 2], tracker.out_of_order_counts()))
        assert counts[1] == 2
        assert counts[2] == 0

    def test_flows_tracked_separately(self):
        tracker = ReorderTracker()
        tracker.observe(seg(1, 1))
        tracker.observe(seg(2, 9))
        tracker.observe(seg(1, 1))
        assert tracker.out_of_order_counts(flow_id=1) == [0]

    def test_segment_sizes(self):
        tracker = ReorderTracker()
        tracker.observe(seg(1, 1, size=500))
        tracker.observe(seg(1, 1, size=700))
        assert sorted(tracker.segment_sizes()) == [500, 700]

    def test_truncation(self):
        tracker = ReorderTracker(max_samples=3)
        for i in range(10):
            tracker.observe(seg(1, i))
        assert tracker.truncated
        assert len(tracker.segment_sizes()) == 3
