"""Unit + property tests for metrics (stats, collectors, reordering)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.reordering import ReorderTracker
from repro.metrics.stats import cdf_points, ewma, jain_fairness, mean, percentile
from repro.net.packet import Segment


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_endpoints(self):
        data = [10, 20, 30]
        assert percentile(data, 0) == 10
        assert percentile(data, 100) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=100),
           st.floats(0, 100))
    def test_within_range(self, data, pct):
        value = percentile(data, pct)
        tol = 1e-6 * max(1.0, max(data))  # interpolation float slack
        assert min(data) - tol <= value <= max(data) + tol

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=50))
    def test_monotone_in_pct(self, data):
        assert percentile(data, 25) <= percentile(data, 75)


class TestJain:
    def test_perfect(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_is_one(self):
        assert jain_fairness([]) == 1.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=32))
    def test_bounds(self, rates):
        index = jain_fairness(rates)
        assert 0 <= index <= 1.0 + 1e-9


def test_mean_empty():
    assert mean([]) == 0.0


def test_cdf_points():
    pts = cdf_points([3, 1, 2])
    assert pts == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]


def test_ewma():
    assert ewma([10], 0.5) == 10
    assert ewma([10, 20], 0.5) == 15
    with pytest.raises(ValueError):
        ewma([], 0.5)
    with pytest.raises(ValueError):
        ewma([1], 0)


def seg(flow, cell, size=1000):
    return Segment(flow_id=flow, src_host=0, dst_host=1,
                   seq=0, end_seq=size, flowcell_id=cell)


class TestReorderTracker:
    def test_in_order_cells_have_zero_counts(self):
        tracker = ReorderTracker()
        for cell in (1, 1, 2, 2, 3):
            tracker.observe(seg(1, cell))
        assert tracker.out_of_order_counts() == [0, 0, 0]

    def test_interleaving_counted(self):
        tracker = ReorderTracker()
        # cell 1's segments sandwich two cell-2 segments
        for cell in (1, 2, 2, 1):
            tracker.observe(seg(1, cell))
        counts = dict(zip([1, 2], tracker.out_of_order_counts()))
        assert counts[1] == 2
        assert counts[2] == 0

    def test_flows_tracked_separately(self):
        tracker = ReorderTracker()
        tracker.observe(seg(1, 1))
        tracker.observe(seg(2, 9))
        tracker.observe(seg(1, 1))
        assert tracker.out_of_order_counts(flow_id=1) == [0]

    def test_segment_sizes(self):
        tracker = ReorderTracker()
        tracker.observe(seg(1, 1, size=500))
        tracker.observe(seg(1, 1, size=700))
        assert sorted(tracker.segment_sizes()) == [500, 700]

    def test_truncation(self):
        tracker = ReorderTracker(max_samples=3)
        for i in range(10):
            tracker.observe(seg(1, i))
        assert tracker.truncated
        assert len(tracker.segment_sizes()) == 3


# --- streaming collectors under search load ----------------------------------
# The search driver leans on these for fitness aggregation at scale, so
# the estimators are pinned on exactly the streams that break naive
# marker updates: sorted, constant, and two-point inputs.

from repro.metrics.stats import percentile as exact_percentile  # noqa: E402
from repro.metrics.streaming import P2Quantile, StreamingQuantiles, TopK  # noqa: E402


class TestP2Adversarial:
    def test_sorted_ascending_stream(self):
        xs = list(range(1, 1001))
        for q in (0.5, 0.9, 0.99):
            est = P2Quantile(q)
            for x in xs:
                est.add(x)
            exact = exact_percentile(xs, q * 100)
            assert abs(est.value() - exact) / exact < 0.05

    def test_sorted_descending_stream(self):
        xs = list(range(1000, 0, -1))
        est = P2Quantile(0.9)
        for x in xs:
            est.add(x)
        exact = exact_percentile(xs, 90)
        assert abs(est.value() - exact) / exact < 0.05

    def test_constant_stream_is_exact(self):
        est = P2Quantile(0.99)
        for _ in range(500):
            est.add(42.0)
        assert est.value() == 42.0

    def test_two_point_stream_stays_bracketed(self):
        # alternating {0, 100}: any quantile estimate must stay inside
        # the sample range (the parabolic update must not extrapolate)
        est = P2Quantile(0.5)
        for i in range(1000):
            est.add(0.0 if i % 2 == 0 else 100.0)
        assert 0.0 <= est.value() <= 100.0

    def test_small_samples_exact(self):
        # below five samples value() is the exact interpolated quantile
        est = P2Quantile(0.5)
        for x in (10.0, 20.0, 30.0):
            est.add(x)
        assert est.value() == exact_percentile([10.0, 20.0, 30.0], 50)

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=300))
    def test_estimate_within_sample_range(self, xs):
        est = P2Quantile(0.9)
        for x in xs:
            est.add(x)
        assert min(xs) <= est.value() <= max(xs)


class TestStreamingSummary:
    def test_summary_keys_and_exact_fields(self):
        sq = StreamingQuantiles()
        sq.extend([float(x) for x in range(1, 101)])
        s = sq.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        for key in ("p50", "p90", "p99", "p99.9"):
            assert key in s

    def test_empty_summary(self):
        s = StreamingQuantiles().summary()
        assert s["count"] == 0
        assert s["mean"] is None and s["p50"] is None


class TestTopKTies:
    def test_ties_earlier_wins(self):
        top = TopK(k=2)
        top.add(5.0, "first")
        top.add(5.0, "second")
        top.add(5.0, "third")
        assert top.items() == [(5.0, "first"), (5.0, "second")]

    def test_tie_break_deterministic_across_runs(self):
        def run():
            top = TopK(k=3)
            for i in range(100):
                top.add(float(i % 7), f"item{i}")
            return top.items()

        assert run() == run()

    def test_largest_first_ordering(self):
        top = TopK(k=3)
        for v in (1.0, 9.0, 3.0, 7.0, 5.0):
            top.add(v, v)
        assert [v for v, _ in top.items()] == [9.0, 7.0, 5.0]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopK(k=0)
