"""Unit tests for the MPTCP model."""

import pytest

from repro.experiments.harness import Testbed, TestbedConfig
from repro.mptcp.mptcp import MptcpConnection
from repro.units import KB, MB, msec


def mini(paths=2, hosts_per_leaf=1):
    return Testbed(
        TestbedConfig(scheme="mptcp", n_spines=paths, n_leaves=2,
                      hosts_per_leaf=hosts_per_leaf, model_cpu=False)
    )


def test_subflow_count():
    tb = mini()
    conn = tb.add_elephant(0, 1)
    assert len(conn.subflow_ids) == tb.cfg.mptcp_subflows
    assert len(set(conn.subflow_ids)) == tb.cfg.mptcp_subflows


def test_sized_transfer_partitioned_and_completes():
    tb = mini()
    conn = tb.add_elephant(0, 1, size_bytes=800 * KB)
    tb.run(msec(50))
    assert conn.fct_ns is not None
    assert conn.delivered_bytes() == 800 * KB
    # every subflow carried its share
    sizes = [
        tb.hosts[1].receivers[f].delivered_bytes
        for f in conn.subflow_ids
        if f in tb.hosts[1].receivers
    ]
    assert sum(sizes) == 800 * KB


def test_uneven_size_remainder_to_first():
    tb = mini()
    conn = tb.add_elephant(0, 1, size_bytes=100 * KB + 3)
    tb.run(msec(50))
    assert conn.delivered_bytes() == 100 * KB + 3


def test_unbounded_uses_all_paths():
    tb = mini(paths=4)
    conn = tb.add_elephant(0, 1)
    tb.run(msec(10))
    rate = conn.delivered_bytes() * 8 / 10e-3 / 1e9
    assert rate > 8.0  # aggregates to ~line rate over 4 paths


def test_subflow_rwnd_is_shared_fraction():
    tb = mini()
    conn = tb.add_elephant(0, 1)
    tb.run(msec(1))
    sender = tb.hosts[0].senders[conn.subflow_ids[0]]
    assert sender.cfg.rcv_wnd == tb.cfg.tcp.rcv_wnd // tb.cfg.mptcp_subflows


def test_coupled_group_shared():
    tb = mini()
    conn = tb.add_elephant(0, 1)
    tb.run(msec(1))
    ccs = [tb.hosts[0].senders[f].cc for f in conn.subflow_ids]
    assert all(cc.group is conn.group for cc in ccs)


def test_zero_subflows_rejected():
    tb = mini()
    with pytest.raises(ValueError):
        MptcpConnection(tb.sim, tb.hosts[0], tb.hosts[1], tb.flow_ids,
                        n_subflows=0)


def test_completion_callback_once():
    tb = mini()
    done = []
    tb.add_elephant(0, 1, size_bytes=200 * KB, on_complete=done.append)
    tb.run(msec(50))
    assert len(done) == 1


def test_timeout_counter_aggregates():
    tb = mini()
    conn = tb.add_elephant(0, 1, size_bytes=1 * MB)
    tb.run(msec(50))
    assert conn.timeouts() == sum(
        tb.hosts[0].senders[f].timeouts for f in conn.subflow_ids
    )
